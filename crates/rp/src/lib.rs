//! Seeded random-projection candidate index for high-dimensional
//! Euclidean/embedding workloads, in the sDBSCAN mold (Xu & Pham).
//!
//! The grid index (`mdbscan_grid`) generates candidates by spatial
//! bucketing and is hard-gated to d ≤ 3; net-anchored triangle-inequality
//! pruning (the paper's §3 machinery) erodes as the doubling dimension
//! grows. This crate covers the remaining regime — ML embedding vectors
//! at d = 128–768 — with **K seeded random Gaussian directions**:
//!
//! 1. every direction is drawn from the shim-`rand` generator
//!    (Box–Muller, [`rand::distr::StandardNormal`]) seeded by
//!    [`RpConfig::seed`] and normalised to unit length;
//! 2. every point's dot product with every direction is computed once at
//!    build time (ascending-dimension accumulation, so the result is
//!    bit-identical regardless of batching);
//! 3. per direction the index keeps the **top-m closest** list (largest
//!    dot products) and the **top-m furthest** list (smallest), ordered
//!    by (value, id) under [`f64::total_cmp`];
//! 4. a query for point `id` ranks the directions by the point's **list
//!    depth** — its would-be position in the stored closest/furthest
//!    list, found by binary search on the (value, id) order — consults
//!    the [`RpConfig::probes`] shallowest ones (taking whichever end the
//!    point is nearer), and returns the sorted, deduplicated union (self
//!    always included).
//!
//! Depth-ranked probing, rather than ranking directions by the raw
//! `|value|`, matters on real embedding tables: any direction component
//! shared by the whole table (a non-centered mean, a dominant principal
//! direction) shifts every point's value on a direction by a common
//! per-direction amount. Raw `|value|` ranking then probes the
//! directions with the largest *common* shift — the same lists for
//! every query, regardless of where the query actually sits. List depth
//! is invariant under any per-direction monotone shift, and guarantees
//! the query itself is inside every probed list whose depth is within
//! `top_m` — the precondition for its neighbours to be there too.
//!
//! # Determinism vs. quality
//!
//! The candidate sets are **deterministic for a fixed seed**: directions
//! depend only on `(seed, dim)`, projection values only on a point's own
//! coordinates, and [`RpIndex::extend`] is bit-identical to a fresh
//! [`RpIndex::build`] over the concatenated point set (top-m of a union
//! is contained in the union of per-part top-ms, so merging the stored
//! lists with the new points' values reproduces the fresh sort exactly).
//! Solvers built on this index therefore stay bit-identical across
//! thread counts, cache states, ingest-vs-fresh, and artifact round
//! trips. What the index does *not* promise is agreement with the exact
//! solver: a candidate set may miss true ε-neighbours, which shows up as
//! a *quality* score (measured against the exact solver via
//! `crates/eval`), not as nondeterminism. More projections, deeper
//! lists, and more probes buy quality with evaluation count.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use rand::distr::StandardNormal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a random-projection index; part of the engine
/// configuration, so every artifact built from it is reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RpConfig {
    /// Seed for the direction generator. Two indexes with the same seed
    /// and dimension share the exact same directions.
    pub seed: u64,
    /// Number of random directions `K`.
    pub projections: u32,
    /// List depth `m`: each direction keeps its `m` closest and `m`
    /// furthest points.
    pub top_m: u32,
    /// Directions consulted per query (clamped to `projections`).
    pub probes: u32,
}

impl RpConfig {
    /// A config with the given seed and the default shape
    /// (`projections = 32`, `top_m = 128`, `probes = 4`).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            projections: 32,
            top_m: 128,
            probes: 4,
        }
    }

    /// Sets the number of random directions.
    pub fn projections(mut self, projections: u32) -> Self {
        self.projections = projections.max(1);
        self
    }

    /// Sets the per-direction list depth.
    pub fn top_m(mut self, top_m: u32) -> Self {
        self.top_m = top_m.max(1);
        self
    }

    /// Sets the number of directions consulted per query.
    pub fn probes(mut self, probes: u32) -> Self {
        self.probes = probes.max(1);
        self
    }
}

impl Default for RpConfig {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Work counters for random-projection candidate generation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpStats {
    /// Projection lists consulted.
    pub projections: u64,
    /// Candidate ids handed to the caller (after dedup, self included).
    pub candidates_emitted: u64,
    /// Candidates discarded by the caller without a distance evaluation
    /// (duplicates across probed lists, or ids filtered out because they
    /// are not summary members / centers).
    pub candidates_rejected: u64,
}

impl RpStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &RpStats) {
        self.projections += other.projections;
        self.candidates_emitted += other.candidates_emitted;
        self.candidates_rejected += other.candidates_rejected;
    }
}

/// One list entry: the point's projection value and its id. Values are
/// kept so [`RpIndex::extend`] can merge stored lists against new points
/// without re-projecting old ones.
type Entry = (f64, u32);

/// Ordering for the closest list: value descending, id ascending. Total
/// (via [`f64::total_cmp`]), so sorts are deterministic.
fn closest_cmp(a: &Entry, b: &Entry) -> std::cmp::Ordering {
    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
}

/// Ordering for the furthest list: value ascending, id ascending.
fn furthest_cmp(a: &Entry, b: &Entry) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

/// The immutable index: build once per epoch, share behind an `Arc`,
/// query concurrently (queries take `&self`).
#[derive(Debug, Clone)]
pub struct RpIndex {
    cfg: RpConfig,
    dim: usize,
    len: usize,
    /// `projections × dim`, row per direction, unit-norm.
    dirs: Vec<f64>,
    /// Per direction: one projection value per point, point order.
    values: Vec<Vec<f64>>,
    /// Per direction: up to `top_m` entries, `closest_cmp` order.
    closest: Vec<Vec<Entry>>,
    /// Per direction: up to `top_m` entries, `furthest_cmp` order.
    furthest: Vec<Vec<Entry>>,
}

impl RpIndex {
    /// Builds the index over `coords` (row-major, `dim` values per
    /// point, point id = row position). Panics when `dim == 0` or
    /// `coords.len()` is not a multiple of `dim`.
    pub fn build(dim: usize, coords: &[f64], cfg: RpConfig) -> Self {
        assert!(dim > 0, "RpIndex requires dim >= 1");
        assert!(
            coords.len().is_multiple_of(dim),
            "coords length {} not a multiple of dim {dim}",
            coords.len()
        );
        let k = cfg.projections.max(1) as usize;
        let dirs = sample_directions(cfg.seed, k, dim);
        let mut index = Self {
            cfg,
            dim,
            len: 0,
            dirs,
            values: vec![Vec::new(); k],
            closest: vec![Vec::new(); k],
            furthest: vec![Vec::new(); k],
        };
        index.absorb(coords);
        index
    }

    /// A new index covering the old points plus `new_coords`, appended
    /// in order (ids continue from [`RpIndex::len`]). **Bit-identical**
    /// to a fresh build over the concatenated coordinates: directions
    /// depend only on the seed, values only on each point's own row, and
    /// the merged top-m lists equal the fresh ones because every entry a
    /// stored list dropped is dominated by `top_m` entries it kept.
    pub fn extend(&self, new_coords: &[f64]) -> Self {
        assert!(
            new_coords.len().is_multiple_of(self.dim),
            "coords length {} not a multiple of dim {}",
            new_coords.len(),
            self.dim
        );
        let mut next = self.clone();
        next.absorb(new_coords);
        next
    }

    /// Projects `coords` onto every direction, appends the values, and
    /// re-selects the per-direction lists.
    fn absorb(&mut self, coords: &[f64]) {
        let added = coords.len() / self.dim;
        let k = self.values.len();
        let m = self.cfg.top_m.max(1) as usize;
        for kk in 0..k {
            let dir = &self.dirs[kk * self.dim..(kk + 1) * self.dim];
            let vals = &mut self.values[kk];
            vals.reserve(added);
            for i in 0..added {
                let row = &coords[i * self.dim..(i + 1) * self.dim];
                // Ascending-dimension accumulation: one canonical
                // summation order, so the value never depends on how
                // points are batched into build/extend calls.
                let mut acc = 0.0f64;
                for d in 0..self.dim {
                    acc += dir[d] * row[d];
                }
                vals.push(acc);
            }
            let fresh = |base: &[Entry]| -> Vec<Entry> {
                let mut pool: Vec<Entry> = base.to_vec();
                pool.extend((0..added).map(|i| (vals[self.len + i], (self.len + i) as u32)));
                pool
            };
            let mut close = fresh(&self.closest[kk]);
            close.sort_unstable_by(closest_cmp);
            close.truncate(m);
            self.closest[kk] = close;
            let mut far = fresh(&self.furthest[kk]);
            far.sort_unstable_by(furthest_cmp);
            far.truncate(m);
            self.furthest[kk] = far;
        }
        self.len += added;
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The configuration the index was built with.
    pub fn cfg(&self) -> RpConfig {
        self.cfg
    }

    /// Fills `out` with the candidate ids for indexed point `id`:
    /// the union of the [`RpConfig::probes`] *shallowest* directions'
    /// lists — shallowest by the point's own position in the stored
    /// list order (closest or furthest, whichever end the point is
    /// nearer) — sorted ascending, deduplicated, `id` itself always
    /// present. Dropped duplicates are charged to
    /// [`RpStats::candidates_rejected`].
    pub fn candidates_for(&self, id: u32, out: &mut Vec<u32>, stats: &mut RpStats) {
        assert!((id as usize) < self.len, "query id {id} out of range");
        let k = self.values.len();
        let probes = (self.cfg.probes.max(1) as usize).min(k);
        // Rank directions by the point's list depth ascending (see the
        // crate docs: depth is invariant under per-direction common
        // shifts, unlike |value|), direction index ascending — a total
        // order, so probe choice is deterministic.
        let mut ranked: Vec<(usize, usize, bool)> = (0..k)
            .map(|kk| {
                let probe = (self.values[kk][id as usize], id);
                let dc = self.closest[kk].partition_point(|e| closest_cmp(e, &probe).is_lt());
                let df = self.furthest[kk].partition_point(|e| furthest_cmp(e, &probe).is_lt());
                (dc.min(df), kk, dc <= df)
            })
            .collect();
        ranked.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        out.clear();
        out.push(id);
        for &(_, kk, near_close) in ranked.iter().take(probes) {
            let list = if near_close {
                &self.closest[kk]
            } else {
                &self.furthest[kk]
            };
            out.extend(list.iter().map(|&(_, pid)| pid));
        }
        stats.projections += probes as u64;
        let raw = out.len();
        out.sort_unstable();
        out.dedup();
        stats.candidates_emitted += out.len() as u64;
        stats.candidates_rejected += (raw - out.len()) as u64;
    }
}

/// `k` unit-norm Gaussian directions of dimension `dim`, drawn in a
/// fixed order from a [`StdRng`] seeded with `seed`.
fn sample_directions(seed: u64, k: usize, dim: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirs = vec![0.0f64; k * dim];
    for kk in 0..k {
        let row = &mut dirs[kk * dim..(kk + 1) * dim];
        loop {
            for slot in row.iter_mut() {
                *slot = StandardNormal.sample(&mut rng);
            }
            let mut norm_sq = 0.0f64;
            for &x in row.iter() {
                norm_sq += x * x;
            }
            if norm_sq > 0.0 {
                let inv = 1.0 / norm_sq.sqrt();
                for slot in row.iter_mut() {
                    *slot *= inv;
                }
                break;
            }
            // All-zero draw: probability ~0, but resampling keeps the
            // direction well-defined without a panic.
        }
    }
    dirs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A little two-cluster row-major dataset on the unit sphere of
    /// dimension `dim`: half the points hug +e0, half hug -e0.
    fn two_poles(n: usize, dim: usize) -> Vec<f64> {
        let mut coords = Vec::with_capacity(n * dim);
        for i in 0..n {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let wobble = 0.05 * (i as f64 / n as f64);
            let mut row = vec![0.0; dim];
            row[0] = sign;
            row[1] = wobble;
            let norm = (1.0 + wobble * wobble).sqrt();
            for x in row.iter_mut() {
                *x /= norm;
            }
            coords.extend_from_slice(&row);
        }
        coords
    }

    fn assert_index_eq(a: &RpIndex, b: &RpIndex) {
        assert_eq!(a.len, b.len);
        assert_eq!(a.dim, b.dim);
        assert_eq!(a.cfg, b.cfg);
        for (x, y) in a.dirs.iter().zip(&b.dirs) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for kk in 0..a.values.len() {
            assert_eq!(a.values[kk].len(), b.values[kk].len());
            for (x, y) in a.values[kk].iter().zip(&b.values[kk]) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (lists_a, lists_b) in [
                (&a.closest[kk], &b.closest[kk]),
                (&a.furthest[kk], &b.furthest[kk]),
            ] {
                assert_eq!(lists_a.len(), lists_b.len());
                for ((va, ia), (vb, ib)) in lists_a.iter().zip(lists_b.iter()) {
                    assert_eq!(va.to_bits(), vb.to_bits());
                    assert_eq!(ia, ib);
                }
            }
        }
    }

    #[test]
    fn build_is_deterministic_for_fixed_seed() {
        let coords = two_poles(200, 16);
        let cfg = RpConfig::new(42).projections(8).top_m(16).probes(3);
        let a = RpIndex::build(16, &coords, cfg);
        let b = RpIndex::build(16, &coords, cfg);
        assert_index_eq(&a, &b);
        let other = RpIndex::build(16, &coords, RpConfig::new(43).projections(8));
        assert_ne!(a.dirs[0].to_bits(), other.dirs[0].to_bits());
    }

    #[test]
    fn extend_is_bit_identical_to_fresh_build() {
        let dim = 24;
        let coords = two_poles(800, dim);
        let cfg = RpConfig::new(7).projections(6).top_m(32).probes(2);
        let fresh = RpIndex::build(dim, &coords, cfg);
        for splits in [vec![800usize], vec![500, 300], vec![100, 0, 350, 350]] {
            let mut index: Option<RpIndex> = None;
            let mut off = 0usize;
            for chunk in splits {
                let part = &coords[off * dim..(off + chunk) * dim];
                index = Some(match index {
                    None => RpIndex::build(dim, part, cfg),
                    Some(prev) => prev.extend(part),
                });
                off += chunk;
            }
            assert_index_eq(&fresh, &index.unwrap());
        }
    }

    #[test]
    fn candidates_are_sorted_deduped_and_contain_self() {
        let coords = two_poles(300, 8);
        let cfg = RpConfig::new(1).projections(5).top_m(40).probes(3);
        let index = RpIndex::build(8, &coords, cfg);
        let mut out = Vec::new();
        let mut stats = RpStats::default();
        for id in [0u32, 7, 299] {
            index.candidates_for(id, &mut out, &mut stats);
            assert!(out.binary_search(&id).is_ok(), "self id missing");
            assert!(out.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
            assert!(out.iter().all(|&q| (q as usize) < 300));
        }
        assert_eq!(stats.projections, 9);
        assert!(stats.candidates_emitted > 0);
    }

    #[test]
    fn same_pole_points_see_each_other() {
        // Tight clusters at opposite poles: a point's candidates must
        // cover its own pole (the aligned direction's closest list when
        // the value is positive, the furthest list when negative).
        let n = 120;
        let coords = two_poles(n, 12);
        let cfg = RpConfig::new(9).projections(16).top_m(n as u32).probes(4);
        let index = RpIndex::build(12, &coords, cfg);
        let mut out = Vec::new();
        let mut stats = RpStats::default();
        for id in 0..n as u32 {
            index.candidates_for(id, &mut out, &mut stats);
            let same_pole = out.iter().filter(|&&q| q % 2 == id % 2).count();
            assert!(
                same_pole >= n / 2,
                "point {id}: only {same_pole} same-pole candidates"
            );
        }
    }

    #[test]
    fn probes_clamp_to_projection_count() {
        let coords = two_poles(50, 4);
        let cfg = RpConfig::new(3).projections(2).top_m(10).probes(99);
        let index = RpIndex::build(4, &coords, cfg);
        let mut out = Vec::new();
        let mut stats = RpStats::default();
        index.candidates_for(0, &mut out, &mut stats);
        assert_eq!(stats.projections, 2);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = RpStats {
            projections: 1,
            candidates_emitted: 2,
            candidates_rejected: 3,
        };
        let b = RpStats {
            projections: 10,
            candidates_emitted: 20,
            candidates_rejected: 30,
        };
        a.merge(&b);
        assert_eq!(
            a,
            RpStats {
                projections: 11,
                candidates_emitted: 22,
                candidates_rejected: 33,
            }
        );
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        let _ = RpIndex::build(0, &[], RpConfig::new(0));
    }
}
