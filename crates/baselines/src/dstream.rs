//! D-Stream (Chen & Tu, KDD 2007): density-grid stream clustering. Space
//! is cut into fixed cells; each arrival bumps its cell's exponentially
//! decayed density; offline, cells are classified dense / transitional /
//! sparse and adjacent dense cells (with transitional boundaries) form
//! clusters. Grid-based, so Euclidean and effectively low-dimensional —
//! in the paper's Table 4 it collapses on the high-dimensional sets,
//! which this implementation reproduces honestly.

use mdbscan_core::{Clustering, PointLabel, UnionFind};
use std::collections::HashMap;

type Cell = Vec<i64>;

/// The D-Stream engine.
pub struct DStream {
    /// Cell side length.
    pub cell_side: f64,
    /// Decay factor λ (base-2 exponent per time step).
    pub lambda: f64,
    /// Density at or above which a cell is *dense*.
    pub dense_threshold: f64,
    /// Density below which a cell is *sparse* (and prunable);
    /// densities in between are *transitional*.
    pub sparse_threshold: f64,
    cells: HashMap<Cell, (f64, u64)>,
    t: u64,
}

impl DStream {
    /// Creates an engine with the given grid and density knobs.
    pub fn new(cell_side: f64, lambda: f64, dense_threshold: f64, sparse_threshold: f64) -> Self {
        assert!(cell_side > 0.0 && dense_threshold >= sparse_threshold);
        Self {
            cell_side,
            lambda,
            dense_threshold,
            sparse_threshold,
            cells: HashMap::new(),
            t: 0,
        }
    }

    fn key(&self, p: &[f64]) -> Cell {
        p.iter()
            .map(|&x| (x / self.cell_side).floor() as i64)
            .collect()
    }

    /// Feeds one point.
    pub fn insert(&mut self, p: &[f64]) {
        self.t += 1;
        let key = self.key(p);
        let t = self.t;
        let lambda = self.lambda;
        let e = self.cells.entry(key).or_insert((0.0, t));
        let decayed = e.0 * (-lambda * (t - e.1) as f64).exp2();
        *e = (decayed + 1.0, t);
    }

    /// Number of tracked cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    fn density(&self, cell: &Cell) -> f64 {
        self.cells
            .get(cell)
            .map(|&(d, last)| d * (-self.lambda * (self.t - last) as f64).exp2())
            .unwrap_or(0.0)
    }

    /// Offline clustering: group face-adjacent dense cells, attach
    /// transitional cells that touch a dense group; returns the cell →
    /// cluster map.
    fn cluster_cells(&self) -> HashMap<Cell, u32> {
        let dense: Vec<&Cell> = self
            .cells
            .keys()
            .filter(|c| self.density(c) >= self.dense_threshold)
            .collect();
        let index: HashMap<&Cell, usize> = dense.iter().enumerate().map(|(i, c)| (*c, i)).collect();
        let mut uf = UnionFind::new(dense.len());
        for (i, cell) in dense.iter().enumerate() {
            for dim in 0..cell.len() {
                for delta in [-1i64, 1] {
                    let mut nb = (*cell).clone();
                    nb[dim] += delta;
                    if let Some(&j) = index.get(&nb) {
                        uf.union(i, j);
                    }
                }
            }
        }
        let comp = uf.component_ids();
        let mut out: HashMap<Cell, u32> = dense
            .iter()
            .enumerate()
            .map(|(i, c)| ((*c).clone(), comp[i]))
            .collect();
        // transitional cells adopt an adjacent dense group's id
        for cell in self.cells.keys() {
            let d = self.density(cell);
            if d < self.dense_threshold && d >= self.sparse_threshold {
                'dims: for dim in 0..cell.len() {
                    for delta in [-1i64, 1] {
                        let mut nb = cell.clone();
                        nb[dim] += delta;
                        if let Some(&j) = index.get(&nb) {
                            out.insert(cell.clone(), comp[j]);
                            break 'dims;
                        }
                    }
                }
            }
        }
        out
    }

    /// Convenience batch API: stream once, then label every point by its
    /// cell's cluster (sparse/unclustered cells → noise).
    pub fn fit(
        points: &[Vec<f64>],
        cell_side: f64,
        lambda: f64,
        dense_threshold: f64,
        sparse_threshold: f64,
    ) -> Clustering {
        let mut engine = Self::new(cell_side, lambda, dense_threshold, sparse_threshold);
        for p in points {
            engine.insert(p);
        }
        let map = engine.cluster_cells();
        let labels: Vec<PointLabel> = points
            .iter()
            .map(|p| match map.get(&engine.key(p)) {
                Some(&c) => PointLabel::Border(c),
                None => PointLabel::Noise,
            })
            .collect();
        Clustering::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_strips(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 30.0 };
                vec![c + (i % 10) as f64 * 0.3, ((i / 10) % 4) as f64 * 0.3]
            })
            .collect()
    }

    #[test]
    fn recovers_two_strips() {
        let pts = two_strips(2000);
        let c = DStream::fit(&pts, 1.0, 0.0, 10.0, 2.0);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(0), c.cluster_of(2));
        assert_ne!(c.cluster_of(0), c.cluster_of(1));
    }

    #[test]
    fn sparse_regions_are_noise() {
        let mut pts = two_strips(1000);
        pts.push(vec![500.0, 500.0]);
        let c = DStream::fit(&pts, 1.0, 0.0, 10.0, 2.0);
        assert!(c.labels().last().unwrap().is_noise());
    }

    #[test]
    fn decay_forgets_old_regions() {
        let mut e = DStream::new(1.0, 0.01, 5.0, 1.0);
        for _ in 0..20 {
            e.insert(&[0.0, 0.0]);
        }
        for i in 0..5000 {
            e.insert(&[50.0 + (i % 5) as f64 * 0.3, 0.0]);
        }
        let map = e.cluster_cells();
        assert!(
            !map.contains_key(&e.key(&[0.0, 0.0])),
            "old cell should have decayed below the thresholds"
        );
    }

    #[test]
    fn cell_count_is_bounded_by_support() {
        let pts = two_strips(5000);
        let mut e = DStream::new(1.0, 0.0, 10.0, 2.0);
        for p in &pts {
            e.insert(p);
        }
        assert!(e.num_cells() < 30, "got {}", e.num_cells());
    }
}
