//! Density Peaks clustering (Rodriguez & Laio, Science 2014): rank every
//! point by local density `ρ` and by `δ`, the distance to its nearest
//! higher-density neighbor; cluster centers are the points where both are
//! large (`γ = ρ·δ`), and every other point inherits the cluster of its
//! nearest denser neighbor. `O(n²)` time, `O(n)` memory — a Table 3
//! baseline (the paper reports it running out of 500 GB on the large
//! sets, which the quadratic all-pairs structure explains).

use mdbscan_core::{Clustering, PointLabel};
use mdbscan_metric::Metric;

/// Runs Density Peaks with cutoff distance `d_c`, extracting the top-`k`
/// points by `γ = ρ·δ` as cluster centers.
pub fn density_peak<P, M: Metric<P>>(points: &[P], metric: &M, d_c: f64, k: usize) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::from_labels(vec![]);
    }
    let k = k.clamp(1, n);
    // ρ: cutoff-kernel local density (self excluded, as in the original).
    let mut rho = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if metric.within(&points[i], &points[j], d_c) {
                rho[i] += 1;
                rho[j] += 1;
            }
        }
    }
    // δ and the nearest denser neighbor. Ties in ρ are broken by index so
    // that the "denser than" relation is a strict total order (the
    // original prescribes sorting by ρ).
    let denser = |a: usize, b: usize| rho[a] > rho[b] || (rho[a] == rho[b] && a < b);
    let mut delta = vec![f64::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    let mut global_max = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            if i == j || !denser(j, i) {
                continue;
            }
            let d = metric.distance(&points[i], &points[j]);
            if d < delta[i] {
                delta[i] = d;
                parent[i] = j;
            }
        }
        if delta[i].is_infinite() {
            // the densest point: δ = max distance to anything
            let d = (0..n)
                .filter(|&j| j != i)
                .map(|j| metric.distance(&points[i], &points[j]))
                .fold(0.0, f64::max);
            delta[i] = d;
        }
        global_max = global_max.max(delta[i]);
    }
    // centers: top-k by γ.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| {
        let ga = rho[a] as f64 * delta[a];
        let gb = rho[b] as f64 * delta[b];
        gb.total_cmp(&ga)
    });
    let mut cluster = vec![u32::MAX; n];
    for (c, &i) in order.iter().take(k).enumerate() {
        cluster[i] = c as u32;
    }
    // assignment in decreasing-density order: inherit from parent.
    let mut by_density: Vec<usize> = (0..n).collect();
    by_density.sort_unstable_by(|&a, &b| {
        if denser(a, b) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
    for &i in &by_density {
        if cluster[i] == u32::MAX {
            let p = parent[i];
            cluster[i] = if p == usize::MAX { 0 } else { cluster[p] };
        }
    }
    Clustering::from_labels(
        cluster
            .into_iter()
            .map(PointLabel::Core)
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for c in [[0.0, 0.0], [40.0, 0.0]] {
            for i in 0..40 {
                pts.push(vec![
                    c[0] + (i % 8) as f64 * 0.2,
                    c[1] + (i / 8) as f64 * 0.2,
                ]);
            }
        }
        pts
    }

    #[test]
    fn two_peaks_two_clusters() {
        let pts = blobs();
        let c = density_peak(&pts, &Euclidean, 1.0, 2);
        assert_eq!(c.num_clusters(), 2);
        for i in 0..40 {
            assert_eq!(c.cluster_of(i), c.cluster_of(0), "first blob split at {i}");
            assert_eq!(c.cluster_of(40 + i), c.cluster_of(40));
        }
        assert_ne!(c.cluster_of(0), c.cluster_of(40));
    }

    #[test]
    fn k_one_merges_everything() {
        let pts = blobs();
        let c = density_peak(&pts, &Euclidean, 1.0, 1);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn singleton_and_empty() {
        let c = density_peak(&[vec![1.0]], &Euclidean, 1.0, 3);
        assert_eq!(c.num_clusters(), 1);
        let c = density_peak::<Vec<f64>, _>(&[], &Euclidean, 1.0, 3);
        assert!(c.is_empty());
    }
}
