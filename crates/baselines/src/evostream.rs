//! evoStream (Carnein & Trautmann, Big Data Research 2018): stream
//! clustering that maintains DBStream-style micro-clusters online and
//! refines the macro-clustering with an evolutionary algorithm during
//! idle time — a population of candidate center sets evolves by
//! tournament selection, uniform crossover, and Gaussian mutation against
//! the weighted k-means objective over the micro-clusters.

use mdbscan_core::{Clustering, PointLabel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::kmeans::{sq_dist, weighted_kmeans, weighted_ssq};

struct MicroCluster {
    center: Vec<f64>,
    weight: f64,
    last: u64,
}

/// The evoStream engine.
pub struct EvoStream {
    /// Micro-cluster radius.
    pub radius: f64,
    /// Decay factor λ.
    pub lambda: f64,
    /// Macro-cluster count `k`.
    pub k: usize,
    /// Evolutionary population size.
    pub population: usize,
    /// Generations evolved per [`EvoStream::evolve`] call.
    pub generations: usize,
    mcs: Vec<MicroCluster>,
    t: u64,
    seed: u64,
}

impl EvoStream {
    /// Creates an engine.
    pub fn new(
        radius: f64,
        lambda: f64,
        k: usize,
        population: usize,
        generations: usize,
        seed: u64,
    ) -> Self {
        assert!(radius > 0.0 && k >= 1 && population >= 2);
        Self {
            radius,
            lambda,
            k,
            population,
            generations,
            mcs: Vec::new(),
            t: 0,
            seed,
        }
    }

    /// Feeds one point (DBStream-style nearest-leader update).
    pub fn insert(&mut self, p: &[f64]) {
        self.t += 1;
        let r2 = self.radius * self.radius;
        let mut best: Option<(usize, f64)> = None;
        for (i, mc) in self.mcs.iter().enumerate() {
            let d = sq_dist(&mc.center, p);
            if d <= r2 && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, _)) => {
                let t = self.t;
                let lambda = self.lambda;
                let mc = &mut self.mcs[i];
                mc.weight = mc.weight * (-lambda * (t - mc.last) as f64).exp2() + 1.0;
                mc.last = t;
                let eta = 1.0 / mc.weight;
                for (c, &x) in mc.center.iter_mut().zip(p.iter()) {
                    *c += eta * (x - *c);
                }
            }
            None => self.mcs.push(MicroCluster {
                center: p.to_vec(),
                weight: 1.0,
                last: self.t,
            }),
        }
    }

    /// Number of live micro-clusters.
    pub fn num_micro_clusters(&self) -> usize {
        self.mcs.len()
    }

    fn micro_points(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let pts: Vec<Vec<f64>> = self.mcs.iter().map(|m| m.center.clone()).collect();
        let ws: Vec<f64> = self
            .mcs
            .iter()
            .map(|m| m.weight * (-self.lambda * (self.t - m.last) as f64).exp2())
            .collect();
        (pts, ws)
    }

    /// The offline evolutionary macro-clustering: evolves center sets for
    /// `self.generations` generations and returns the fittest one.
    pub fn evolve(&self) -> Vec<Vec<f64>> {
        let (pts, ws) = self.micro_points();
        if pts.is_empty() {
            return Vec::new();
        }
        let k = self.k.min(pts.len());
        let d = pts[0].len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Initial population: k-means++ solutions with different seeds
        // (one individual gets full Lloyd, the rest are raw seedings —
        // mirrors evoStream's "incrementally refined" population).
        let mut pop: Vec<Vec<Vec<f64>>> = (0..self.population)
            .map(|i| {
                let iters = if i == 0 { 5 } else { 0 };
                weighted_kmeans(&pts, &ws, k, iters, self.seed.wrapping_add(i as u64)).0
            })
            .collect();
        let fitness = |ind: &Vec<Vec<f64>>| -> f64 { 1.0 / (1.0 + weighted_ssq(&pts, &ws, ind)) };
        let mut scores: Vec<f64> = pop.iter().map(&fitness).collect();
        let spread = {
            // mutation scale: data spread / 20
            let mut lo = vec![f64::INFINITY; d];
            let mut hi = vec![f64::NEG_INFINITY; d];
            for p in &pts {
                for j in 0..d {
                    lo[j] = lo[j].min(p[j]);
                    hi[j] = hi[j].max(p[j]);
                }
            }
            (0..d)
                .map(|j| (hi[j] - lo[j]).max(1e-9) / 20.0)
                .collect::<Vec<f64>>()
        };
        for _ in 0..self.generations {
            // tournament selection of two parents
            let pick = |rng: &mut StdRng, scores: &[f64]| -> usize {
                let a = rng.random_range(0..scores.len());
                let b = rng.random_range(0..scores.len());
                if scores[a] >= scores[b] {
                    a
                } else {
                    b
                }
            };
            let pa = pick(&mut rng, &scores);
            let pb = pick(&mut rng, &scores);
            // uniform crossover over centers
            let mut child: Vec<Vec<f64>> = (0..k)
                .map(|c| {
                    if rng.random::<bool>() {
                        pop[pa][c].clone()
                    } else {
                        pop[pb][c].clone()
                    }
                })
                .collect();
            // Gaussian mutation
            for center in child.iter_mut() {
                for (j, x) in center.iter_mut().enumerate() {
                    if rng.random::<f64>() < 0.1 {
                        *x += spread[j] * crate::gaussian(&mut rng);
                    }
                }
            }
            let f = fitness(&child);
            // replace the worst individual if the child beats it
            let (worst, &worst_f) = scores
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty population");
            if f > worst_f {
                pop[worst] = child;
                scores[worst] = f;
            }
        }
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty population");
        pop.swap_remove(best)
    }

    /// Labels a point: macro-cluster of its nearest micro-cluster within
    /// the radius, else noise.
    pub fn label(&self, p: &[f64], macro_centers: &[Vec<f64>]) -> PointLabel {
        let r2 = self.radius * self.radius;
        let mut nearest_mc: Option<(f64, usize)> = None;
        for (i, mc) in self.mcs.iter().enumerate() {
            let d = sq_dist(&mc.center, p);
            if d <= r2 && nearest_mc.is_none_or(|(bd, _)| d < bd) {
                nearest_mc = Some((d, i));
            }
        }
        let Some((_, mci)) = nearest_mc else {
            return PointLabel::Noise;
        };
        let mc_center = &self.mcs[mci].center;
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (c, center) in macro_centers.iter().enumerate() {
            let d = sq_dist(mc_center, center);
            if d < best_d {
                best_d = d;
                best = c as u32;
            }
        }
        PointLabel::Border(best)
    }

    /// Batch convenience: stream once, evolve, label everything.
    pub fn fit(points: &[Vec<f64>], radius: f64, lambda: f64, k: usize, seed: u64) -> Clustering {
        let mut engine = Self::new(radius, lambda, k, 10, 500, seed);
        for p in points {
            engine.insert(p);
        }
        let centers = engine.evolve();
        Clustering::from_labels(
            points
                .iter()
                .map(|p| engine.label(p, &centers))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let c = (i % 3) as f64 * 25.0;
                vec![c + (i % 7) as f64 * 0.2, ((i / 7) % 5) as f64 * 0.2]
            })
            .collect()
    }

    #[test]
    fn recovers_three_blobs() {
        let pts = blobs(900);
        let c = EvoStream::fit(&pts, 2.0, 0.0, 3, 42);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.cluster_of(0), c.cluster_of(3));
        assert_ne!(c.cluster_of(0), c.cluster_of(1));
        assert_ne!(c.cluster_of(1), c.cluster_of(2));
    }

    #[test]
    fn evolution_does_not_regress_fitness() {
        let pts = blobs(600);
        let mut engine = EvoStream::new(2.0, 0.0, 3, 8, 0, 7);
        for p in &pts {
            engine.insert(p);
        }
        let (mpts, mws) = engine.micro_points();
        let no_evo = engine.evolve();
        engine.generations = 400;
        let evolved = engine.evolve();
        assert!(
            weighted_ssq(&mpts, &mws, &evolved) <= weighted_ssq(&mpts, &mws, &no_evo) + 1e-9,
            "evolution made the objective worse"
        );
    }

    #[test]
    fn far_point_is_noise() {
        let pts = blobs(300);
        let mut engine = EvoStream::new(2.0, 0.0, 3, 8, 50, 7);
        for p in &pts {
            engine.insert(p);
        }
        let centers = engine.evolve();
        assert_eq!(engine.label(&[1e6, 1e6], &centers), PointLabel::Noise);
    }

    #[test]
    fn empty_stream() {
        let engine = EvoStream::new(1.0, 0.0, 2, 4, 10, 1);
        assert!(engine.evolve().is_empty());
    }
}
