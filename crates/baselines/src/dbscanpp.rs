//! DBSCAN++ (Jang & Jiang, ICML 2019): compute core-ness only for a
//! sampled subset of points, cluster the sampled cores, then attach the
//! remaining points to their nearest sampled core. Sub-quadratic
//! (`O(s·n²)` for sample fraction `s`) at the cost of approximating the
//! density landscape; the paper runs it at 30 % sampling (§5.2).

use mdbscan_core::{Clustering, PointLabel, UnionFind};
use mdbscan_metric::Metric;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How DBSCAN++ picks its sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleInit {
    /// Uniformly random `⌈s·n⌉` points.
    Uniform,
    /// Greedy farthest-point (k-center) sample of the same size — the
    /// variant the DBSCAN++ paper recommends for adversarial densities.
    KCenter,
}

/// Runs DBSCAN++ with sample fraction `s ∈ (0, 1]`.
pub fn dbscan_pp<P: Sync, M: Metric<P> + Sync>(
    points: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
    s: f64,
    init: SampleInit,
    seed: u64,
) -> Clustering {
    assert!(s > 0.0 && s <= 1.0, "sample fraction must be in (0,1]");
    let n = points.len();
    if n == 0 {
        return Clustering::from_labels(vec![]);
    }
    let m = ((n as f64 * s).ceil() as usize).clamp(1, n);
    let sample: Vec<usize> = match init {
        SampleInit::Uniform => {
            let mut idx: Vec<usize> = (0..n).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            idx.shuffle(&mut rng);
            idx.truncate(m);
            idx
        }
        SampleInit::KCenter => {
            mdbscan_kcenter::gonzalez(points, metric, m, (seed as usize) % n).centers
        }
    };

    // Core test for sampled points, against the FULL dataset.
    let mut sampled_cores: Vec<usize> = Vec::new();
    for &i in &sample {
        let mut count = 0usize;
        for j in 0..n {
            if metric.within(&points[i], &points[j], eps) {
                count += 1;
                if count >= min_pts {
                    sampled_cores.push(i);
                    break;
                }
            }
        }
    }

    // Connect sampled cores at distance ≤ ε.
    let k = sampled_cores.len();
    let mut uf = UnionFind::new(k);
    for a in 0..k {
        for b in (a + 1)..k {
            if !uf.connected(a, b)
                && metric.within(&points[sampled_cores[a]], &points[sampled_cores[b]], eps)
            {
                uf.union(a, b);
            }
        }
    }
    let comp = uf.component_ids();

    // Attach every point to its nearest sampled core within ε.
    let mut labels = vec![PointLabel::Noise; n];
    for (a, &i) in sampled_cores.iter().enumerate() {
        labels[i] = PointLabel::Core(comp[a]);
    }
    for p in 0..n {
        if labels[p].is_core() {
            continue;
        }
        let mut best: Option<(f64, u32)> = None;
        for (a, &i) in sampled_cores.iter().enumerate() {
            let bound = best.map_or(eps, |(d, _)| d);
            if let Some(d) = metric.distance_leq(&points[p], &points[i], bound) {
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, comp[a]));
                }
            }
        }
        if let Some((_, c)) = best {
            labels[p] = PointLabel::Border(c);
        }
    }
    Clustering::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..60 {
            pts.push(vec![(i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1]);
            pts.push(vec![50.0 + (i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1]);
        }
        pts.push(vec![25.0, 25.0]);
        pts
    }

    #[test]
    fn full_sample_equals_dbscan() {
        let pts = two_blobs();
        let pp = dbscan_pp(&pts, &Euclidean, 0.3, 5, 1.0, SampleInit::Uniform, 1);
        let reference = crate::original_dbscan(&pts, &Euclidean, 0.3, 5);
        assert_eq!(pp.num_clusters(), reference.num_clusters());
        for i in 0..pts.len() {
            assert_eq!(pp.labels()[i].is_noise(), reference.labels()[i].is_noise());
        }
    }

    #[test]
    fn subsample_still_finds_blobs() {
        // At 30% sampling the core graph is sparser, so the connection
        // radius must out-span the sampling gaps (the DBSCAN++ paper makes
        // the same adjustment when s shrinks).
        let pts = two_blobs();
        for init in [SampleInit::Uniform, SampleInit::KCenter] {
            let c = dbscan_pp(&pts, &Euclidean, 0.5, 3, 0.3, init, 7);
            assert_eq!(c.num_clusters(), 2, "{init:?}");
            assert!(c.labels()[120].is_noise(), "{init:?}: outlier kept");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = two_blobs();
        let a = dbscan_pp(&pts, &Euclidean, 0.3, 3, 0.5, SampleInit::Uniform, 3);
        let b = dbscan_pp(&pts, &Euclidean, 0.3, 3, 0.5, SampleInit::Uniform, 3);
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn empty_input() {
        let pts: Vec<Vec<f64>> = vec![];
        let c = dbscan_pp(&pts, &Euclidean, 1.0, 3, 0.5, SampleInit::Uniform, 1);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic]
    fn bad_fraction_panics() {
        let pts = vec![vec![0.0]];
        let _ = dbscan_pp(&pts, &Euclidean, 1.0, 3, 0.0, SampleInit::Uniform, 1);
    }
}
