//! Gan–Tao grid DBSCAN (SIGMOD 2015), exact and ρ-approximate — the
//! low-dimensional *Euclidean* baselines (GT_Exact / GT_Approx in Fig. 3).
//!
//! The space is cut into cells of side `ε/√d`, so any two points in one
//! cell are within `ε` (a populated cell with `≥ MinPts` points is all
//! core). Core labeling scans the `O((2⌈√d⌉+1)^d)` neighboring cells;
//! merging connects cells whose *core* point sets contain a pair `≤ ε`
//! (exact: early-terminated BCP; approximate: a per-cell sub-grid of side
//! `ρε/(2√d)` answers the relaxed test "`≤ ε ⇒ connect`,
//! `> (1+ρ)ε ⇒ don't`, in between ⇒ may", which is Gan–Tao's
//! approximation contract with a sub-grid instead of their quadtree).
//!
//! Cost grows as `(1/ρ)^{d−1}` and `(√d)^d`, exactly why the main paper's
//! Fig. 3 only runs GT on its low/medium-dimensional panels; this
//! implementation enforces `d ≤ 8`.

use std::collections::HashMap;

use mdbscan_core::{Clustering, PointLabel, UnionFind};
use mdbscan_metric::{Euclidean, Metric};

type CellKey = Vec<i64>;

struct Grid {
    side: f64,
    cells: HashMap<CellKey, Vec<usize>>,
    /// Neighbor offsets whose cells can contain points within ε.
    offsets: Vec<Vec<i64>>,
}

fn build_grid(points: &[Vec<f64>], eps: f64) -> Grid {
    let d = points.first().map_or(0, Vec::len);
    assert!(
        (1..=8).contains(&d),
        "grid DBSCAN is a low-dimensional Euclidean algorithm (d ≤ 8), got d={d}"
    );
    let side = eps / (d as f64).sqrt();
    let mut cells: HashMap<CellKey, Vec<usize>> = HashMap::new();
    for (i, p) in points.iter().enumerate() {
        let key: CellKey = p.iter().map(|&x| (x / side).floor() as i64).collect();
        cells.entry(key).or_default().push(i);
    }
    // Offsets with min cell-to-cell distance ≤ ε: per-axis offset o
    // contributes (|o|-1)·side of guaranteed gap when |o| ≥ 1.
    let reach = (eps / side).ceil() as i64 + 1;
    let mut offsets: Vec<Vec<i64>> = vec![vec![]];
    for _ in 0..d {
        let mut next = Vec::new();
        for o in &offsets {
            for v in -reach..=reach {
                let mut o2 = o.clone();
                o2.push(v);
                next.push(o2);
            }
        }
        offsets = next;
    }
    let eps2 = eps * eps;
    offsets.retain(|o| {
        let gap2: f64 = o
            .iter()
            .map(|&v| {
                let g = (v.abs() - 1).max(0) as f64 * side;
                g * g
            })
            .sum();
        gap2 <= eps2
    });
    Grid {
        side,
        cells,
        offsets,
    }
}

impl Grid {
    fn key_of(&self, p: &[f64]) -> CellKey {
        p.iter().map(|&x| (x / self.side).floor() as i64).collect()
    }

    fn neighbors<'g>(&'g self, key: &'g CellKey) -> impl Iterator<Item = &'g CellKey> + 'g {
        self.offsets.iter().filter_map(move |o| {
            let k: CellKey = key.iter().zip(o.iter()).map(|(a, b)| a + b).collect();
            self.cells.get_key_value(&k).map(|(kk, _)| kk)
        })
    }
}

/// Shared pipeline; `approx` = Some(ρ) switches the merge step to the
/// relaxed sub-grid test.
fn grid_dbscan(points: &[Vec<f64>], eps: f64, min_pts: usize, approx: Option<f64>) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::from_labels(vec![]);
    }
    let grid = build_grid(points, eps);
    // ---- core labeling ----
    let mut is_core = vec![false; n];
    for (key, members) in &grid.cells {
        if members.len() >= min_pts {
            for &p in members {
                is_core[p] = true;
            }
            continue;
        }
        for &p in members {
            let mut count = 0usize;
            'cells: for nk in grid.neighbors(key) {
                for &q in &grid.cells[nk] {
                    if Euclidean.within(&points[p], &points[q], eps) {
                        count += 1;
                        if count >= min_pts {
                            break 'cells;
                        }
                    }
                }
            }
            is_core[p] = count >= min_pts;
        }
    }
    // ---- collect core cells ----
    let core_cells: Vec<(&CellKey, Vec<usize>)> = grid
        .cells
        .iter()
        .map(|(k, v)| {
            (
                k,
                v.iter()
                    .copied()
                    .filter(|&p| is_core[p])
                    .collect::<Vec<_>>(),
            )
        })
        .filter(|(_, cores)| !cores.is_empty())
        .collect();
    let cell_index: HashMap<&CellKey, usize> = core_cells
        .iter()
        .enumerate()
        .map(|(i, (k, _))| (*k, i))
        .collect();
    // Approximate mode: per-cell sub-grid representatives of core points.
    let reps: Option<Vec<Vec<usize>>> = approx.map(|rho| {
        let d = points[0].len() as f64;
        let sub_side = rho * eps / (2.0 * d.sqrt());
        core_cells
            .iter()
            .map(|(_, cores)| {
                let mut seen: HashMap<CellKey, usize> = HashMap::new();
                for &p in cores {
                    let k: CellKey = points[p]
                        .iter()
                        .map(|&x| (x / sub_side).floor() as i64)
                        .collect();
                    seen.entry(k).or_insert(p);
                }
                seen.into_values().collect()
            })
            .collect()
    });
    // ---- merge core cells ----
    let mut uf = UnionFind::new(core_cells.len());
    for (a, (key, cores_a)) in core_cells.iter().enumerate() {
        for nk in grid.neighbors(key) {
            let Some(&b) = cell_index.get(nk) else {
                continue;
            };
            if b <= a || uf.connected(a, b) {
                continue;
            }
            let connected = match (&reps, approx) {
                (Some(reps), Some(rho)) => {
                    // relaxed test against sub-grid representatives:
                    // rep within (1+ρ/2)ε ⇔ some pair ≤ (1+ρ)ε may exist,
                    // and every true pair ≤ ε is caught.
                    let bound = (1.0 + rho / 2.0) * eps;
                    cores_a.iter().any(|&p| {
                        reps[b]
                            .iter()
                            .any(|&r| Euclidean.within(&points[p], &points[r], bound))
                    })
                }
                _ => cores_a.iter().any(|&p| {
                    core_cells[b]
                        .1
                        .iter()
                        .any(|&q| Euclidean.within(&points[p], &points[q], eps))
                }),
            };
            if connected {
                uf.union(a, b);
            }
        }
    }
    let comp = uf.component_ids();
    // ---- labels ----
    let mut labels = vec![PointLabel::Noise; n];
    for (a, (_, cores)) in core_cells.iter().enumerate() {
        for &p in cores {
            labels[p] = PointLabel::Core(comp[a]);
        }
    }
    for p in 0..n {
        if is_core[p] {
            continue;
        }
        let key = grid.key_of(&points[p]);
        let mut best: Option<(f64, u32)> = None;
        for nk in grid.neighbors(&key) {
            let Some(&b) = cell_index.get(nk) else {
                continue;
            };
            for &q in &core_cells[b].1 {
                let bound = best.map_or(eps, |(d, _)| d);
                if let Some(d) = Euclidean.distance_leq(&points[p], &points[q], bound) {
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, comp[b]));
                    }
                }
            }
        }
        if let Some((_, c)) = best {
            labels[p] = PointLabel::Border(c);
        }
    }
    Clustering::from_labels(labels)
}

/// Gan–Tao exact grid DBSCAN. Euclidean, `d ≤ 8`.
pub fn grid_dbscan_exact(points: &[Vec<f64>], eps: f64, min_pts: usize) -> Clustering {
    grid_dbscan(points, eps, min_pts, None)
}

/// Gan–Tao ρ-approximate grid DBSCAN. Euclidean, `d ≤ 8`, `ρ > 0`.
pub fn grid_dbscan_approx(points: &[Vec<f64>], eps: f64, min_pts: usize, rho: f64) -> Clustering {
    assert!(rho > 0.0, "rho must be positive");
    grid_dbscan(points, eps, min_pts, Some(rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs_2d() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(vec![(i % 10) as f64 * 0.2, (i / 10) as f64 * 0.2]);
            pts.push(vec![30.0 + (i % 10) as f64 * 0.2, (i / 10) as f64 * 0.2]);
        }
        pts.push(vec![15.0, 15.0]);
        pts
    }

    #[test]
    fn exact_matches_original_dbscan() {
        let pts = two_blobs_2d();
        for eps in [0.3, 0.5, 1.0] {
            let grid = grid_dbscan_exact(&pts, eps, 4);
            let reference = crate::original_dbscan(&pts, &Euclidean, eps, 4);
            assert_eq!(grid.num_clusters(), reference.num_clusters(), "eps={eps}");
            for i in 0..pts.len() {
                assert_eq!(
                    grid.labels()[i].is_core(),
                    reference.labels()[i].is_core(),
                    "eps={eps} i={i}"
                );
                assert_eq!(
                    grid.labels()[i].is_noise(),
                    reference.labels()[i].is_noise(),
                    "eps={eps} i={i}"
                );
            }
        }
    }

    #[test]
    fn approx_is_sandwiched() {
        let pts = two_blobs_2d();
        let eps = 0.5;
        let rho = 0.5;
        let lower = crate::original_dbscan(&pts, &Euclidean, eps, 4);
        let upper = crate::original_dbscan(&pts, &Euclidean, (1.0 + rho) * eps, 4);
        let mid = grid_dbscan_approx(&pts, eps, 4, rho);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let low_pair = lower.labels()[i].is_core()
                    && lower.labels()[j].is_core()
                    && lower.cluster_of(i) == lower.cluster_of(j);
                if low_pair {
                    assert_eq!(mid.cluster_of(i), mid.cluster_of(j));
                }
                let mid_pair = mid.labels()[i].is_core()
                    && mid.labels()[j].is_core()
                    && mid.cluster_of(i) == mid.cluster_of(j);
                if mid_pair {
                    assert_eq!(upper.cluster_of(i), upper.cluster_of(j));
                }
            }
        }
    }

    #[test]
    fn works_in_3d() {
        let mut pts = Vec::new();
        for i in 0..40 {
            pts.push(vec![
                (i % 4) as f64 * 0.2,
                ((i / 4) % 4) as f64 * 0.2,
                (i / 16) as f64 * 0.2,
            ]);
        }
        pts.push(vec![50.0, 50.0, 50.0]);
        let c = grid_dbscan_exact(&pts, 0.5, 4);
        assert_eq!(c.num_clusters(), 1);
        assert!(c.labels()[40].is_noise());
    }

    #[test]
    #[should_panic]
    fn high_dim_rejected() {
        let pts = vec![vec![0.0; 32]];
        let _ = grid_dbscan_exact(&pts, 1.0, 2);
    }

    #[test]
    fn empty_input() {
        let pts: Vec<Vec<f64>> = vec![];
        assert!(grid_dbscan_exact(&pts, 1.0, 2).is_empty());
    }
}
