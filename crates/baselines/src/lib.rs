//! Baseline algorithms for the metric DBSCAN evaluation.
//!
//! Everything the paper's experiment section compares against is
//! re-implemented here from the respective original papers, behind the
//! same [`Clustering`](mdbscan_core::Clustering) output type as the main
//! solvers, so the harness treats all algorithms uniformly.
//!
//! | module | algorithm | paper | used in |
//! |---|---|---|---|
//! | [`original`] | DBSCAN (brute-force region queries) | Ester et al., KDD '96 | Fig. 3 |
//! | [`dbscanpp`] | DBSCAN++ (sampled cores) | Jang & Jiang, ICML '19 | Fig. 3 |
//! | [`grid`] | exact + ρ-approximate grid DBSCAN | Gan & Tao, SIGMOD '15 | Fig. 3 (low-dim Euclidean panels) |
//! | [`dyw`] | randomized k-center metric DBSCAN | Ding, Yang, Wang, IJCAI '21 | Fig. 3 |
//! | [`dpmeans`] | DP-means | Kulis & Jordan, ICML '12 | Fig. 5, Table 3 |
//! | [`bico`] | BICO coreset-tree streaming k-means | Fichtenberger et al., ESA '13 | Tables 3–4 |
//! | [`densitypeak`] | Density Peaks | Rodriguez & Laio, Science '14 | Table 3 |
//! | [`meanshift`] | flat-kernel mean shift | Comaniciu & Meer, PAMI '02 | Table 3 |
//! | [`optics`](mod@optics) | OPTICS ordering + ExtractDBSCAN | Ankerst et al., SIGMOD '99 | related-work oracle |
//! | [`dbstream`] | DBStream shared-density micro-clusters | Hahsler & Bolaños, TKDE '16 | Table 4 |
//! | [`dstream`] | D-Stream density grid | Chen & Tu, KDD '07 | Table 4 |
//! | [`evostream`] | evoStream evolutionary stream clustering | Carnein & Trautmann, BDR '18 | Table 4 |
//!
//! Documented simplifications (all conservative — they can only make the
//! *baseline* faster/better relative to our solvers, never weaker):
//! BICO's projection filter is replaced by plain nearest-CF search;
//! Gan–Tao's per-cell quadtree is a per-cell sub-grid with the identical
//! `≤ε ⇒ connect / >(1+ρ)ε ⇒ don't` contract; evoStream's micro-cluster
//! front-end reuses DBStream's insertion rule, as in the original.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bico;
pub mod dbscanpp;
pub mod dbstream;
pub mod densitypeak;
pub mod dpmeans;
pub mod dstream;
pub mod dyw;
pub mod evostream;
pub mod grid;
mod kmeans;
pub mod meanshift;
pub mod optics;
pub mod original;

pub use bico::Bico;
pub use dbscanpp::{dbscan_pp, SampleInit};
pub use dbstream::DbStream;
pub use densitypeak::density_peak;
pub use dpmeans::{dp_means, lambda_from_kcenter};
pub use dstream::DStream;
pub use dyw::dyw_dbscan;
pub use evostream::EvoStream;
pub use grid::{grid_dbscan_approx, grid_dbscan_exact};
pub use meanshift::mean_shift;
pub use optics::{optics, OpticsOrdering};
pub use original::original_dbscan;

/// Box–Muller standard normal sample (shared by evoStream's mutation).
pub(crate) fn gaussian<R: rand::Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}
