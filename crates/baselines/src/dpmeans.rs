//! DP-means (Kulis & Jordan, ICML 2012): the nonparametric k-means the
//! paper compares against in §5.4 and Fig. 5. A point farther than `√λ`
//! from every center spawns a new cluster; otherwise Lloyd updates run as
//! usual. Fast and simple — and, being center-based, structurally unable
//! to recover arbitrary-shape clusters or reject outliers, which is the
//! contrast Fig. 5 draws.

use mdbscan_core::{Clustering, PointLabel};
use mdbscan_kcenter::gonzalez;
use mdbscan_metric::Euclidean;

use crate::kmeans::sq_dist;

/// The λ-selection rule the paper uses (§5.4): the squared maximum
/// distance of a `k`-center (Gonzalez) initialization.
pub fn lambda_from_kcenter(points: &[Vec<f64>], k: usize, first: usize) -> f64 {
    if points.is_empty() {
        return 1.0;
    }
    let res = gonzalez(points, &Euclidean, k.max(1), first % points.len());
    (res.radius * res.radius).max(f64::MIN_POSITIVE)
}

/// Runs DP-means with cluster penalty `lambda` (squared-distance units)
/// until assignments stabilize or `max_iters` passes.
///
/// Every point is assigned (DP-means has no noise concept); labels are
/// all [`PointLabel::Core`] since the output is a plain partition.
pub fn dp_means(points: &[Vec<f64>], lambda: f64, max_iters: usize) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::from_labels(vec![]);
    }
    assert!(lambda > 0.0, "lambda must be positive");
    let d = points[0].len();
    // Init: single cluster at the global mean.
    let mut centers: Vec<Vec<f64>> = vec![(0..d)
        .map(|j| points.iter().map(|p| p[j]).sum::<f64>() / n as f64)
        .collect()];
    let mut assignment = vec![0u32; n];
    for _ in 0..max_iters.max(1) {
        let mut changed = false;
        // Assignment / spawning sweep.
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let dd = sq_dist(p, center);
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            if best_d > lambda {
                centers.push(p.clone());
                best = centers.len() - 1;
                changed = true;
            }
            if assignment[i] != best as u32 {
                assignment[i] = best as u32;
                changed = true;
            }
        }
        // Mean update.
        let mut sums = vec![vec![0.0; d]; centers.len()];
        let mut counts = vec![0usize; centers.len()];
        for (i, p) in points.iter().enumerate() {
            let a = assignment[i] as usize;
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p.iter()) {
                *s += x;
            }
        }
        for (c, center) in centers.iter_mut().enumerate() {
            if counts[c] > 0 {
                for (x, s) in center.iter_mut().zip(sums[c].iter()) {
                    *x = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Clustering::from_labels(
        assignment
            .into_iter()
            .map(PointLabel::Core)
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for c in [[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]] {
            for i in 0..30 {
                pts.push(vec![
                    c[0] + (i % 6) as f64 * 0.1,
                    c[1] + (i / 6) as f64 * 0.1,
                ]);
            }
        }
        pts
    }

    #[test]
    fn finds_separated_blobs() {
        let pts = three_blobs();
        // λ between blob diameter² (~0.6²) and separation² (50²)
        let c = dp_means(&pts, 100.0, 50);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.num_noise(), 0);
        for i in 0..30 {
            assert_eq!(c.cluster_of(i), c.cluster_of(0));
            assert_eq!(c.cluster_of(30 + i), c.cluster_of(30));
        }
    }

    #[test]
    fn huge_lambda_gives_one_cluster() {
        let pts = three_blobs();
        let c = dp_means(&pts, 1e9, 20);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn tiny_lambda_fragments() {
        let pts = three_blobs();
        let c = dp_means(&pts, 1e-6, 20);
        assert!(c.num_clusters() > 3);
    }

    #[test]
    fn lambda_helper_is_sane() {
        let pts = three_blobs();
        let l = lambda_from_kcenter(&pts, 3, 0);
        // 3-center radius of three tight blobs is ≤ blob diameter
        assert!(l < 10.0, "lambda {l}");
        let c = dp_means(&pts, l.max(1.0), 50);
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(lambda_from_kcenter(&[], 3, 0), 1.0);
    }

    #[test]
    fn empty_input() {
        assert!(dp_means(&[], 1.0, 5).is_empty());
    }
}
