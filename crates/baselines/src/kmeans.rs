//! Shared weighted Lloyd k-means with k-means++ seeding, used by the BICO
//! offline stage and evoStream's fitness evaluation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weighted k-means++ seeding followed by Lloyd iterations.
///
/// Returns `(centers, assignment)`. `weights[i]` scales point `i`'s
/// contribution (coreset semantics). Deterministic per `seed`; `k` is
/// clamped to the number of points.
pub(crate) fn weighted_kmeans(
    points: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    iters: usize,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<u32>) {
    assert_eq!(points.len(), weights.len());
    let n = points.len();
    if n == 0 || k == 0 {
        return (Vec::new(), Vec::new());
    }
    let k = k.min(n);
    let d = points[0].len();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding over weighted points.
    let total_w: f64 = weights.iter().sum();
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = sample_weighted(&mut rng, weights, total_w);
    centers.push(points[first].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centers[0])).collect();
    while centers.len() < k {
        let scores: Vec<f64> = d2
            .iter()
            .zip(weights.iter())
            .map(|(&dd, &w)| dd * w)
            .collect();
        let z: f64 = scores.iter().sum();
        let next = if z > 0.0 {
            sample_weighted(&mut rng, &scores, z)
        } else {
            rng.random_range(0..n)
        };
        centers.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let nd = sq_dist(p, centers.last().expect("non-empty"));
            if nd < d2[i] {
                d2[i] = nd;
            }
        }
    }

    // Lloyd.
    let mut assignment = vec![0u32; n];
    for _ in 0..iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let dd = sq_dist(p, center);
                if dd < best_d {
                    best_d = dd;
                    best = c as u32;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0; d]; centers.len()];
        let mut wsum = vec![0.0; centers.len()];
        for (i, p) in points.iter().enumerate() {
            let a = assignment[i] as usize;
            wsum[a] += weights[i];
            for (s, &x) in sums[a].iter_mut().zip(p.iter()) {
                *s += weights[i] * x;
            }
        }
        for (c, center) in centers.iter_mut().enumerate() {
            if wsum[c] > 0.0 {
                for (x, s) in center.iter_mut().zip(sums[c].iter()) {
                    *x = s / wsum[c];
                }
            }
        }
        if !changed {
            break;
        }
    }
    (centers, assignment)
}

pub(crate) fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn sample_weighted<R: Rng>(rng: &mut R, weights: &[f64], total: f64) -> usize {
    let mut t = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Weighted within-cluster sum of squared distances of `points` to their
/// nearest center — the k-means objective (evoStream's fitness).
pub(crate) fn weighted_ssq(points: &[Vec<f64>], weights: &[f64], centers: &[Vec<f64>]) -> f64 {
    points
        .iter()
        .zip(weights.iter())
        .map(|(p, &w)| {
            let d = centers
                .iter()
                .map(|c| sq_dist(p, c))
                .fold(f64::INFINITY, f64::min);
            w * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_weighted_blobs() {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![i as f64 * 0.01, 0.0]);
            pts.push(vec![100.0 + i as f64 * 0.01, 0.0]);
        }
        let w = vec![1.0; pts.len()];
        let (centers, assign) = weighted_kmeans(&pts, &w, 2, 20, 1);
        assert_eq!(centers.len(), 2);
        // points of the same blob share an assignment
        for i in (0..40).step_by(2) {
            assert_eq!(assign[i], assign[0]);
            assert_eq!(assign[i + 1], assign[1]);
        }
        assert_ne!(assign[0], assign[1]);
    }

    #[test]
    fn weights_pull_centers() {
        let pts = vec![vec![0.0], vec![10.0]];
        let (centers, _) = weighted_kmeans(&pts, &[1000.0, 1.0], 1, 10, 2);
        assert!(
            centers[0][0] < 0.1,
            "heavy point dominates: {}",
            centers[0][0]
        );
    }

    #[test]
    fn k_clamped_and_degenerate() {
        let pts = vec![vec![1.0]];
        let (centers, assign) = weighted_kmeans(&pts, &[1.0], 5, 5, 3);
        assert_eq!(centers.len(), 1);
        assert_eq!(assign, vec![0]);
        let (c0, a0) = weighted_kmeans(&[], &[], 3, 5, 3);
        assert!(c0.is_empty() && a0.is_empty());
    }

    #[test]
    fn ssq_decreases_with_more_centers() {
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let w = vec![1.0; 30];
        let (c1, _) = weighted_kmeans(&pts, &w, 1, 10, 4);
        let (c3, _) = weighted_kmeans(&pts, &w, 3, 10, 4);
        assert!(weighted_ssq(&pts, &w, &c3) < weighted_ssq(&pts, &w, &c1));
    }
}
