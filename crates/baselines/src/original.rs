//! The original DBSCAN of Ester, Kriegel, Sander, Xu (KDD 1996), with
//! brute-force region queries — the metric-space baseline every
//! acceleration in the main paper is measured against. `Θ(n²)` distance
//! evaluations, `O(n)` memory (neighborhoods are recomputed per expansion,
//! never stored).

use mdbscan_core::{Clustering, PointLabel};
use mdbscan_metric::Metric;

/// Classic DBSCAN: BFS cluster expansion from unvisited core points.
///
/// Matches Definition 1 of the metric DBSCAN paper: core = `|B(p, ε) ∩ X|
/// ≥ MinPts` (closed ball, self included); borders join the first cluster
/// that reaches them.
pub fn original_dbscan<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
) -> Clustering {
    let n = points.len();
    let mut labels = vec![PointLabel::Noise; n];
    // Pass 1: core flags (n² early-abandoned distance tests).
    let mut is_core = vec![false; n];
    for i in 0..n {
        let mut count = 0usize;
        for j in 0..n {
            if metric.within(&points[i], &points[j], eps) {
                count += 1;
                if count >= min_pts {
                    is_core[i] = true;
                    break;
                }
            }
        }
    }
    // Pass 2: BFS over the core graph; borders are absorbed en route.
    let mut cluster = 0u32;
    let mut queue: Vec<usize> = Vec::new();
    for start in 0..n {
        if !is_core[start] || !labels[start].is_noise() {
            continue;
        }
        labels[start] = PointLabel::Core(cluster);
        queue.push(start);
        while let Some(p) = queue.pop() {
            for q in 0..n {
                if !metric.within(&points[p], &points[q], eps) {
                    continue;
                }
                if is_core[q] {
                    if labels[q].is_noise() {
                        labels[q] = PointLabel::Core(cluster);
                        queue.push(q);
                    }
                } else if labels[q].is_noise() {
                    labels[q] = PointLabel::Border(cluster);
                }
            }
        }
        cluster += 1;
    }
    Clustering::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::{Euclidean, Levenshtein};

    #[test]
    fn two_line_segments() {
        let mut pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.5]).collect();
        pts.extend((0..10).map(|i| vec![100.0 + i as f64 * 0.5]));
        pts.push(vec![50.0]); // lone outlier
        let c = original_dbscan(&pts, &Euclidean, 0.6, 3);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.num_noise(), 1);
        assert!(c.labels()[20].is_noise());
        assert_eq!(c.cluster_of(0), c.cluster_of(9));
        assert_ne!(c.cluster_of(0), c.cluster_of(10));
    }

    #[test]
    fn border_points_are_not_core() {
        // chain: core has 3 neighbors, endpoint has 2
        let pts = vec![vec![0.0], vec![0.5], vec![1.0], vec![1.5]];
        let c = original_dbscan(&pts, &Euclidean, 0.6, 3);
        assert_eq!(c.num_clusters(), 1);
        assert!(!c.labels()[0].is_core());
        assert!(c.labels()[1].is_core());
    }

    #[test]
    fn agrees_with_metric_dbscan_core_solver() {
        // cross-check against the accelerated exact solver on strings
        let words: Vec<String> = ["aaaa", "aaab", "aaba", "abaa", "zzzz", "zzzy", "qqqq"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let ours = mdbscan_core::exact_dbscan(&words, &Levenshtein, 1.0, 2).unwrap();
        let reference = original_dbscan(&words, &Levenshtein, 1.0, 2);
        assert_eq!(ours.num_clusters(), reference.num_clusters());
        for i in 0..words.len() {
            assert_eq!(ours.labels()[i].is_core(), reference.labels()[i].is_core());
            assert_eq!(
                ours.labels()[i].is_noise(),
                reference.labels()[i].is_noise()
            );
        }
    }

    #[test]
    fn empty_and_min_pts_one() {
        let pts: Vec<Vec<f64>> = vec![];
        let c = original_dbscan(&pts, &Euclidean, 1.0, 2);
        assert_eq!(c.len(), 0);
        let pts = vec![vec![0.0], vec![10.0]];
        let c = original_dbscan(&pts, &Euclidean, 1.0, 1);
        assert_eq!(c.num_clusters(), 2);
    }
}
