//! DYW_DBSCAN (Ding, Yang, Wang, IJCAI 2021): metric DBSCAN accelerated by
//! a *randomized k-center with outliers* pre-partition.
//!
//! This is the closest prior work to the main paper and the target of its
//! §3.3 comparison. The pipeline: partition the data into balls of radius
//! `ε/2` with the randomized greedy (needs the outlier estimate `z̃`, the
//! oversampling factor `η`, and a manual center budget — the knobs the
//! main paper removes); then run the *original* DBSCAN, but with every
//! `ε`-region query restricted to the neighboring balls. Worst-case
//! `O(n²)`, no dense-ball shortcut, no cover trees — those are exactly the
//! main paper's improvements.
//!
//! Points left uncovered by the truncated k-center run (up to `z̃` of
//! them) have no ball-locality guarantee, so they are kept on a global
//! "stray" list scanned by every query — preserving exactness at
//! `O(n·z̃)` extra cost.

use mdbscan_core::{Clustering, PointLabel};
use mdbscan_kcenter::{kcenter_with_outliers, CenterAdjacency};

/// Runs DYW_DBSCAN. `z_estimate` is their outlier-count guess `z̃`,
/// `eta` the sampling oversampling factor, `max_centers` the manual
/// termination budget (all three are knobs the main paper's §3.3
/// criticizes; see the crate docs).
#[allow(clippy::too_many_arguments)]
pub fn dyw_dbscan<P: Sync, M: mdbscan_metric::BatchMetric<P> + Sync>(
    points: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
    z_estimate: usize,
    eta: f64,
    max_centers: usize,
    seed: u64,
) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::from_labels(vec![]);
    }
    let rbar = eps / 2.0;
    let part = kcenter_with_outliers(points, metric, rbar, z_estimate, eta, max_centers, seed);
    let k = part.centers.len();
    // Ball membership, with strays (outside every rbar-ball) kept apart.
    let mut balls: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut strays: Vec<usize> = Vec::new();
    for i in 0..n {
        if part.dist_to_center[i] <= rbar {
            balls[part.assignment[i] as usize].push(i);
        } else {
            strays.push(i);
        }
    }
    let center_points: Vec<usize> = part.centers.clone();
    let adj = CenterAdjacency::build(points, metric, &center_points, 2.0 * rbar + eps);

    // ε-region query restricted to neighbor balls + strays; calls `f` for
    // every point within ε of `p` (including p itself); `f` returns false
    // to stop early.
    let region = |p: usize, mut f: Box<dyn FnMut(usize) -> bool + '_>| {
        let candidates: Box<dyn Iterator<Item = usize>> = if part.dist_to_center[p] <= rbar {
            let home = part.assignment[p] as usize;
            Box::new(
                adj.neighbors[home]
                    .iter()
                    .flat_map(|&e| balls[e as usize].iter().copied())
                    .chain(strays.iter().copied()),
            )
        } else {
            // stray points have no locality guarantee: full scan
            Box::new(0..n)
        };
        for q in candidates {
            if metric.within(&points[p], &points[q], eps) && !f(q) {
                return;
            }
        }
    };

    // Original-DBSCAN control flow over the restricted region queries.
    let mut is_core = vec![false; n];
    #[allow(clippy::needless_range_loop)] // p is a point id used in the query closure too
    for p in 0..n {
        let mut count = 0usize;
        region(
            p,
            Box::new(|_q| {
                count += 1;
                count < min_pts
            }),
        );
        is_core[p] = count >= min_pts;
    }
    let mut labels = vec![PointLabel::Noise; n];
    let mut cluster = 0u32;
    let mut queue: Vec<usize> = Vec::new();
    for start in 0..n {
        if !is_core[start] || !labels[start].is_noise() {
            continue;
        }
        labels[start] = PointLabel::Core(cluster);
        queue.push(start);
        while let Some(p) = queue.pop() {
            let mut reached: Vec<usize> = Vec::new();
            region(
                p,
                Box::new(|q| {
                    reached.push(q);
                    true
                }),
            );
            for q in reached {
                if is_core[q] {
                    if labels[q].is_noise() {
                        labels[q] = PointLabel::Core(cluster);
                        queue.push(q);
                    }
                } else if labels[q].is_noise() {
                    labels[q] = PointLabel::Border(cluster);
                }
            }
        }
        cluster += 1;
    }
    Clustering::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn blobs_with_outliers() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..60 {
            pts.push(vec![(i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1]);
            pts.push(vec![40.0 + (i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1]);
        }
        for j in 0..4 {
            pts.push(vec![500.0 + j as f64 * 300.0, -900.0]);
        }
        pts
    }

    #[test]
    fn matches_original_dbscan_when_well_parameterized() {
        let pts = blobs_with_outliers();
        let ours = dyw_dbscan(&pts, &Euclidean, 0.3, 5, 4, 1.0, 100, 13);
        let reference = crate::original_dbscan(&pts, &Euclidean, 0.3, 5);
        assert_eq!(ours.num_clusters(), reference.num_clusters());
        for i in 0..pts.len() {
            assert_eq!(ours.labels()[i].is_core(), reference.labels()[i].is_core());
            assert_eq!(
                ours.labels()[i].is_noise(),
                reference.labels()[i].is_noise()
            );
        }
    }

    #[test]
    fn stays_exact_even_with_underestimated_z() {
        // z̃ = 0 with a small center budget leaves strays; the stray-list
        // fallback must keep the output exact regardless.
        let pts = blobs_with_outliers();
        let ours = dyw_dbscan(&pts, &Euclidean, 0.3, 5, 0, 1.0, 6, 13);
        let reference = crate::original_dbscan(&pts, &Euclidean, 0.3, 5);
        for i in 0..pts.len() {
            assert_eq!(ours.labels()[i].is_core(), reference.labels()[i].is_core());
            assert_eq!(
                ours.labels()[i].is_noise(),
                reference.labels()[i].is_noise()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = blobs_with_outliers();
        let a = dyw_dbscan(&pts, &Euclidean, 0.3, 5, 4, 1.0, 100, 3);
        let b = dyw_dbscan(&pts, &Euclidean, 0.3, 5, 4, 1.0, 100, 3);
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn empty_input() {
        let pts: Vec<Vec<f64>> = vec![];
        assert!(dyw_dbscan(&pts, &Euclidean, 1.0, 3, 0, 1.0, 10, 1).is_empty());
    }
}
