//! BICO (Fichtenberger, Gillé, Schmidt, Schwiegelshohn, Sohler; ESA 2013):
//! BIRCH-style clustering features maintained as a streaming coreset for
//! k-means, followed by weighted k-means++ on the coreset.
//!
//! Simplification vs. the original (documented in DESIGN.md §3): the
//! original's tree with per-level radii and projection-based
//! nearest-neighbor filtering is flattened to a single CF layer with a
//! global radius threshold that doubles on overflow — the same
//! coreset-quality mechanism (merge cost bounded by the threshold), minus
//! the lookup acceleration. Output quality is equivalent; insertion is
//! somewhat slower, which only *flatters* BICO's quality-per-memory in
//! our tables (it is a competitor).

use mdbscan_core::{Clustering, PointLabel};

use crate::kmeans::{sq_dist, weighted_kmeans};

/// A clustering feature: weight, coordinate sum, and squared-norm sum —
/// enough to merge points exactly for k-means purposes.
#[derive(Debug, Clone)]
struct Feature {
    weight: f64,
    sum: Vec<f64>,
    sumsq: f64,
}

impl Feature {
    fn centroid(&self) -> Vec<f64> {
        self.sum.iter().map(|&s| s / self.weight).collect()
    }
}

/// Streaming BICO coreset builder + offline weighted k-means.
///
/// ```
/// use mdbscan_baselines::Bico;
/// let mut bico = Bico::new(2, 50, 7);
/// for i in 0..500 {
///     let x = if i % 2 == 0 { 0.0 } else { 100.0 };
///     bico.insert(&[x + (i % 7) as f64 * 0.01, 0.0]);
/// }
/// assert!(bico.coreset_len() <= 50);
/// let centers = bico.centers(20);
/// assert_eq!(centers.len(), 2);
/// ```
pub struct Bico {
    k: usize,
    /// Coreset budget `m` (the paper suggests `O(k log n / ε²)`; the
    /// harness uses 200·k).
    budget: usize,
    threshold: f64,
    features: Vec<Feature>,
    seed: u64,
    inserted: u64,
}

impl Bico {
    /// New builder for `k` target clusters with coreset budget `m`.
    pub fn new(k: usize, budget: usize, seed: u64) -> Self {
        assert!(k >= 1 && budget >= k, "budget must be >= k >= 1");
        Self {
            k,
            budget,
            threshold: 0.0,
            features: Vec::new(),
            seed,
            inserted: 0,
        }
    }

    /// Number of clustering features currently held.
    pub fn coreset_len(&self) -> usize {
        self.features.len()
    }

    /// Points consumed so far.
    pub fn len(&self) -> u64 {
        self.inserted
    }

    /// True before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Feeds one point.
    pub fn insert(&mut self, p: &[f64]) {
        self.inserted += 1;
        self.insert_weighted(p, 1.0);
        if self.features.len() > self.budget {
            self.rebuild();
        }
    }

    fn insert_weighted(&mut self, p: &[f64], w: f64) {
        // Nearest CF within the current threshold absorbs the point.
        let mut best: Option<(usize, f64)> = None;
        for (i, f) in self.features.iter().enumerate() {
            let d = sq_dist(p, &f.centroid());
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, d)) if d.sqrt() <= self.threshold => {
                let f = &mut self.features[i];
                f.weight += w;
                for (s, &x) in f.sum.iter_mut().zip(p.iter()) {
                    *s += w * x;
                }
                f.sumsq += w * p.iter().map(|x| x * x).sum::<f64>();
            }
            _ => self.features.push(Feature {
                weight: w,
                sum: p.iter().map(|&x| w * x).collect(),
                sumsq: w * p.iter().map(|x| x * x).sum::<f64>(),
            }),
        }
    }

    /// Overflow: double the radius threshold and re-insert the CF
    /// centroids under the coarser scale.
    fn rebuild(&mut self) {
        if self.threshold == 0.0 {
            // Bootstrap the scale from the data: smallest non-zero
            // centroid spacing among current features.
            let mut min_d = f64::INFINITY;
            for i in 0..self.features.len() {
                for j in (i + 1)..self.features.len() {
                    let d = sq_dist(&self.features[i].centroid(), &self.features[j].centroid());
                    if d > 0.0 && d < min_d {
                        min_d = d;
                    }
                }
            }
            self.threshold = if min_d.is_finite() { min_d.sqrt() } else { 1.0 };
        }
        while self.features.len() > self.budget {
            self.threshold *= 2.0;
            let old = std::mem::take(&mut self.features);
            for f in old {
                let c = f.centroid();
                let mut merged = false;
                for g in self.features.iter_mut() {
                    if sq_dist(&c, &g.centroid()).sqrt() <= self.threshold {
                        g.weight += f.weight;
                        for (s, &x) in g.sum.iter_mut().zip(f.sum.iter()) {
                            *s += x;
                        }
                        g.sumsq += f.sumsq;
                        merged = true;
                        break;
                    }
                }
                if !merged {
                    self.features.push(f);
                }
            }
        }
    }

    /// Offline stage: weighted k-means++ over the coreset; returns the
    /// `k` centers.
    pub fn centers(&self, lloyd_iters: usize) -> Vec<Vec<f64>> {
        let pts: Vec<Vec<f64>> = self.features.iter().map(Feature::centroid).collect();
        let ws: Vec<f64> = self.features.iter().map(|f| f.weight).collect();
        let (centers, _) = weighted_kmeans(&pts, &ws, self.k, lloyd_iters, self.seed);
        centers
    }

    /// Convenience batch API: stream `points` through, then label each by
    /// its nearest center (BICO partitions everything; labels are `Core`).
    pub fn fit(points: &[Vec<f64>], k: usize, budget: usize, seed: u64) -> Clustering {
        if points.is_empty() {
            return Clustering::from_labels(vec![]);
        }
        let mut bico = Self::new(k, budget, seed);
        for p in points {
            bico.insert(p);
        }
        let centers = bico.centers(25);
        let labels: Vec<PointLabel> = points
            .iter()
            .map(|p| {
                let mut best = 0u32;
                let mut best_d = f64::INFINITY;
                for (c, center) in centers.iter().enumerate() {
                    let d = sq_dist(p, center);
                    if d < best_d {
                        best_d = d;
                        best = c as u32;
                    }
                }
                PointLabel::Core(best)
            })
            .collect();
        Clustering::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_respected_under_streaming() {
        let mut bico = Bico::new(3, 40, 1);
        for i in 0..5000 {
            let c = (i % 3) as f64 * 100.0;
            bico.insert(&[c + (i % 11) as f64 * 0.1, (i % 7) as f64 * 0.1]);
        }
        assert!(bico.coreset_len() <= 40);
        assert_eq!(bico.len(), 5000);
        let centers = bico.centers(20);
        assert_eq!(centers.len(), 3);
        // centers land near 0, 100, 200
        let mut xs: Vec<f64> = centers.iter().map(|c| c[0]).collect();
        xs.sort_by(f64::total_cmp);
        assert!((xs[0] - 0.5).abs() < 10.0, "{xs:?}");
        assert!((xs[1] - 100.5).abs() < 10.0, "{xs:?}");
        assert!((xs[2] - 200.5).abs() < 10.0, "{xs:?}");
    }

    #[test]
    fn fit_partitions_blobs() {
        let mut pts = Vec::new();
        for i in 0..200 {
            let c = if i % 2 == 0 { 0.0 } else { 60.0 };
            pts.push(vec![c + (i % 5) as f64 * 0.1]);
        }
        let c = Bico::fit(&pts, 2, 30, 3);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(0), c.cluster_of(2));
        assert_ne!(c.cluster_of(0), c.cluster_of(1));
    }

    #[test]
    fn weight_mass_is_conserved() {
        let mut bico = Bico::new(2, 10, 1);
        for i in 0..1000 {
            bico.insert(&[(i % 100) as f64]);
        }
        let total: f64 = bico.features.iter().map(|f| f.weight).sum();
        assert!((total - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_fit() {
        assert!(Bico::fit(&[], 2, 10, 1).is_empty());
    }

    #[test]
    #[should_panic]
    fn bad_budget_panics() {
        let _ = Bico::new(5, 3, 1);
    }
}
