//! OPTICS (Ankerst, Breunig, Kriegel, Sander; SIGMOD 1999) — the
//! density-*ordering* generalization of DBSCAN cited in the main paper's
//! related work (reference \[2\] there). Instead of one clustering at a fixed ε, OPTICS
//! produces an ordering of the points with *reachability distances*; a
//! DBSCAN-equivalent clustering at any ε' ≤ ε can then be extracted in a
//! single sweep of the ordering (the `ExtractDBSCAN` procedure of the
//! original paper).
//!
//! Works in any metric space; `O(n²)` distance evaluations like the
//! original DBSCAN. Useful here both as a baseline and as a
//! cross-validation oracle: extracting at ε must match DBSCAN at ε.

use mdbscan_core::{Clustering, PointLabel};
use mdbscan_metric::Metric;

/// The OPTICS ordering: points in visit order with their reachability
/// and core distances (`f64::INFINITY` = undefined).
#[derive(Debug, Clone)]
pub struct OpticsOrdering {
    /// Point indices in OPTICS visit order.
    pub order: Vec<usize>,
    /// Reachability distance of each point *in visit order*.
    pub reachability: Vec<f64>,
    /// Core distance of each point *in visit order*.
    pub core_distance: Vec<f64>,
    eps: f64,
    min_pts: usize,
}

/// Computes the OPTICS ordering with generating radius `eps` and density
/// threshold `min_pts`.
pub fn optics<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
) -> OpticsOrdering {
    let n = points.len();
    let mut processed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut reach_out = Vec::with_capacity(n);
    let mut core_out = Vec::with_capacity(n);
    // Global reachability estimates, updated as seeds.
    let mut reach = vec![f64::INFINITY; n];

    // Core distance of p: distance to its MinPts-th neighbor within eps
    // (counting p itself), or ∞ if the ε-neighborhood is too small.
    let core_distance = |p: usize| -> f64 {
        let mut dists: Vec<f64> = (0..n)
            .filter_map(|q| metric.distance_leq(&points[p], &points[q], eps))
            .collect();
        if dists.len() < min_pts {
            return f64::INFINITY;
        }
        dists.sort_by(f64::total_cmp);
        dists[min_pts - 1]
    };

    for start in 0..n {
        if processed[start] {
            continue;
        }
        // Expand a new connected component, priority-first by
        // reachability (linear-scan priority queue: the whole algorithm
        // is Θ(n²) anyway).
        reach[start] = f64::INFINITY;
        let mut frontier: Vec<usize> = vec![start];
        while let Some(pos) = frontier
            .iter()
            .enumerate()
            .min_by(|a, b| reach[*a.1].total_cmp(&reach[*b.1]))
            .map(|(i, _)| i)
        {
            let p = frontier.swap_remove(pos);
            if processed[p] {
                continue;
            }
            processed[p] = true;
            let cd = core_distance(p);
            order.push(p);
            reach_out.push(reach[p]);
            core_out.push(cd);
            if cd.is_finite() {
                for q in 0..n {
                    if processed[q] {
                        continue;
                    }
                    if let Some(d) = metric.distance_leq(&points[p], &points[q], eps) {
                        let new_reach = cd.max(d);
                        if new_reach < reach[q] {
                            if reach[q].is_infinite() {
                                frontier.push(q);
                            }
                            reach[q] = new_reach;
                        }
                    }
                }
            }
        }
    }
    OpticsOrdering {
        order,
        reachability: reach_out,
        core_distance: core_out,
        eps,
        min_pts,
    }
}

impl OpticsOrdering {
    /// `ExtractDBSCAN`: a DBSCAN-equivalent clustering at `eps_prime ≤
    /// eps`, in one sweep over the ordering.
    pub fn extract_dbscan(&self, eps_prime: f64) -> Clustering {
        assert!(
            eps_prime <= self.eps * (1.0 + 1e-12),
            "can only extract at eps' <= the generating eps"
        );
        let n = self.order.len();
        let mut labels = vec![PointLabel::Noise; n];
        let mut cluster: i64 = -1;
        for (i, &p) in self.order.iter().enumerate() {
            if self.reachability[i] > eps_prime {
                if self.core_distance[i] <= eps_prime {
                    cluster += 1;
                    labels[p] = PointLabel::Core(cluster as u32);
                }
                // else: noise (for now — may become border of a later
                // cluster only in DBSCAN's multi-assignment sense; the
                // single-sweep extraction leaves it noise, as in the
                // original paper)
            } else if cluster >= 0 {
                labels[p] = if self.core_distance[i] <= eps_prime {
                    PointLabel::Core(cluster as u32)
                } else {
                    PointLabel::Border(cluster as u32)
                };
            }
        }
        Clustering::from_labels(labels)
    }

    /// Number of points in the ordering.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no points were ordered.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The `(eps, min_pts)` the ordering was generated with.
    pub fn params(&self) -> (f64, usize) {
        (self.eps, self.min_pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..40 {
            pts.push(vec![(i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1]);
            pts.push(vec![30.0 + (i % 8) as f64 * 0.1, (i / 8) as f64 * 0.1]);
        }
        pts.push(vec![15.0, 15.0]);
        pts
    }

    #[test]
    fn ordering_covers_every_point_once() {
        let pts = two_blobs();
        let o = optics(&pts, &Euclidean, 0.5, 5);
        assert_eq!(o.len(), pts.len());
        let mut seen = o.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..pts.len()).collect::<Vec<_>>());
        assert_eq!(o.params(), (0.5, 5));
    }

    #[test]
    fn extraction_matches_dbscan_core_structure() {
        let pts = two_blobs();
        let o = optics(&pts, &Euclidean, 0.5, 5);
        for eps_prime in [0.2, 0.3, 0.5] {
            let extracted = o.extract_dbscan(eps_prime);
            let reference = crate::original_dbscan(&pts, &Euclidean, eps_prime, 5);
            assert_eq!(
                extracted.num_clusters(),
                reference.num_clusters(),
                "eps'={eps_prime}"
            );
            for i in 0..pts.len() {
                assert_eq!(
                    extracted.labels()[i].is_core(),
                    reference.labels()[i].is_core(),
                    "eps'={eps_prime} i={i}"
                );
            }
        }
    }

    #[test]
    fn reachability_valleys_separate_clusters() {
        let pts = two_blobs();
        let o = optics(&pts, &Euclidean, 50.0, 5);
        // within the first blob's visit run, reachability stays small;
        // the jump to the other blob shows as a spike >= blob separation
        let spikes = o
            .reachability
            .iter()
            .filter(|&&r| r.is_finite() && r > 10.0)
            .count();
        assert!(spikes >= 1, "expected a reachability spike between blobs");
        assert!(
            o.reachability
                .iter()
                .filter(|r| r.is_finite() && **r < 1.0)
                .count()
                > 60,
            "most reachabilities are intra-blob"
        );
    }

    #[test]
    fn empty_input() {
        let pts: Vec<Vec<f64>> = vec![];
        let o = optics(&pts, &Euclidean, 1.0, 3);
        assert!(o.is_empty());
        assert!(o.extract_dbscan(1.0).is_empty());
    }

    #[test]
    #[should_panic]
    fn extraction_above_generating_eps_panics() {
        let pts = two_blobs();
        let o = optics(&pts, &Euclidean, 0.5, 5);
        let _ = o.extract_dbscan(1.0);
    }
}
