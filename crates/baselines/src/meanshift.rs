//! Flat-kernel mean shift (Comaniciu & Meer, PAMI 2002): every point
//! hill-climbs to the mode of the kernel density estimate by repeatedly
//! jumping to the mean of its `h`-neighborhood; modes closer than `h/2`
//! merge into one cluster. `O(n² · iterations)` — the slow Table 3
//! baseline (the paper measures it ≥ 5× slower than the DBSCAN family).

use mdbscan_core::{Clustering, PointLabel};

use crate::kmeans::sq_dist;

/// Runs mean shift with bandwidth `h`.
///
/// `max_iters` caps the per-point hill climb (the original iterates to
/// convergence; 50 is far past convergence on real data). All points are
/// assigned (mean shift has no noise notion); points whose neighborhood is
/// only themselves converge in one step and become singleton modes.
pub fn mean_shift(points: &[Vec<f64>], h: f64, max_iters: usize) -> Clustering {
    let n = points.len();
    if n == 0 {
        return Clustering::from_labels(vec![]);
    }
    assert!(h > 0.0, "bandwidth must be positive");
    let d = points[0].len();
    let h2 = h * h;
    let mut modes: Vec<Vec<f64>> = Vec::with_capacity(n);
    for start in points {
        let mut x = start.clone();
        for _ in 0..max_iters.max(1) {
            let mut mean = vec![0.0; d];
            let mut count = 0usize;
            for q in points {
                if sq_dist(&x, q) <= h2 {
                    for (m, &v) in mean.iter_mut().zip(q.iter()) {
                        *m += v;
                    }
                    count += 1;
                }
            }
            if count == 0 {
                break;
            }
            for m in mean.iter_mut() {
                *m /= count as f64;
            }
            let shift = sq_dist(&x, &mean);
            x = mean;
            if shift < 1e-6 * h2 {
                break;
            }
        }
        modes.push(x);
    }
    // Merge modes within h/2 (greedy first-fit, as in common practice).
    let merge2 = (h / 2.0) * (h / 2.0);
    let mut reps: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::with_capacity(n);
    for m in &modes {
        let mut found = None;
        for (c, r) in reps.iter().enumerate() {
            if sq_dist(m, r) <= merge2 {
                found = Some(c as u32);
                break;
            }
        }
        let c = match found {
            Some(c) => c,
            None => {
                reps.push(m.clone());
                (reps.len() - 1) as u32
            }
        };
        labels.push(PointLabel::Core(c));
    }
    Clustering::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_collapse_to_their_modes() {
        let mut pts = Vec::new();
        for c in [0.0, 30.0] {
            for i in 0..25 {
                pts.push(vec![c + (i % 5) as f64 * 0.2, (i / 5) as f64 * 0.2]);
            }
        }
        let c = mean_shift(&pts, 3.0, 50);
        assert_eq!(c.num_clusters(), 2);
        for i in 0..25 {
            assert_eq!(c.cluster_of(i), c.cluster_of(0));
            assert_eq!(c.cluster_of(25 + i), c.cluster_of(25));
        }
    }

    #[test]
    fn isolated_point_is_singleton_mode() {
        let mut pts = vec![vec![1000.0, 1000.0]];
        for i in 0..20 {
            pts.push(vec![(i % 5) as f64 * 0.1, (i / 5) as f64 * 0.1]);
        }
        let c = mean_shift(&pts, 2.0, 30);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(
            c.clusters().iter().map(Vec::len).min().unwrap(),
            1,
            "outlier forms its own mode"
        );
    }

    #[test]
    fn empty_input() {
        assert!(mean_shift(&[], 1.0, 10).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_panics() {
        let _ = mean_shift(&[vec![0.0]], 0.0, 10);
    }
}
