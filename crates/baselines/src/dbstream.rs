//! DBStream (Hahsler & Bolaños, TKDE 2016): streaming density clustering
//! with leader-based micro-clusters and a *shared-density graph*. Each
//! arriving point updates every micro-cluster within radius `r`
//! (exponentially decayed weights, centers nudged toward the point) and
//! strengthens the shared density between pairs of micro-clusters that
//! both absorb it; offline, micro-clusters whose shared density exceeds
//! the intersection factor `α` merge into macro-clusters. A Table 4
//! baseline.

use mdbscan_core::{Clustering, PointLabel, UnionFind};
use std::collections::HashMap;

use crate::kmeans::sq_dist;

struct MicroCluster {
    center: Vec<f64>,
    weight: f64,
    last: u64,
}

/// The DBStream engine.
pub struct DbStream {
    /// Micro-cluster radius `r`.
    pub radius: f64,
    /// Decay factor `λ` (per time step; weight halves every `1/λ` steps
    /// scaled by `ln 2`).
    pub lambda: f64,
    /// Minimum weight for a micro-cluster to survive cleanup.
    pub w_min: f64,
    /// Shared-density threshold `α ∈ (0, 1]` for offline merging.
    pub alpha: f64,
    /// Cleanup period (time steps).
    pub gap: u64,
    mcs: Vec<MicroCluster>,
    shared: HashMap<(u32, u32), (f64, u64)>,
    t: u64,
}

impl DbStream {
    /// Creates an engine with the given knobs.
    pub fn new(radius: f64, lambda: f64, w_min: f64, alpha: f64, gap: u64) -> Self {
        assert!(radius > 0.0 && lambda >= 0.0 && alpha > 0.0);
        Self {
            radius,
            lambda,
            w_min,
            alpha,
            gap: gap.max(1),
            mcs: Vec::new(),
            shared: HashMap::new(),
            t: 0,
        }
    }

    fn decay(&self, w: f64, last: u64) -> f64 {
        w * (-self.lambda * (self.t - last) as f64).exp2()
    }

    /// Number of live micro-clusters.
    pub fn num_micro_clusters(&self) -> usize {
        self.mcs.len()
    }

    /// Feeds one point.
    pub fn insert(&mut self, p: &[f64]) {
        self.t += 1;
        let r2 = self.radius * self.radius;
        // Find all micro-clusters within r.
        let hits: Vec<usize> = self
            .mcs
            .iter()
            .enumerate()
            .filter(|(_, mc)| sq_dist(&mc.center, p) <= r2)
            .map(|(i, _)| i)
            .collect();
        if hits.is_empty() {
            self.mcs.push(MicroCluster {
                center: p.to_vec(),
                weight: 1.0,
                last: self.t,
            });
        } else {
            let (t, lambda) = (self.t, self.lambda);
            for &i in &hits {
                let mc = &mut self.mcs[i];
                mc.weight = mc.weight * (-lambda * (t - mc.last) as f64).exp2() + 1.0;
                mc.last = t;
                // Competitive (leader) update: move the center toward p
                // proportionally to the new point's share of the weight.
                let eta = 1.0 / mc.weight;
                for (c, &x) in mc.center.iter_mut().zip(p.iter()) {
                    *c += eta * (x - *c);
                }
            }
            // Shared density between every pair that absorbed p.
            for a in 0..hits.len() {
                for b in (a + 1)..hits.len() {
                    let key = (hits[a] as u32, hits[b] as u32);
                    let e = self.shared.entry(key).or_insert((0.0, self.t));
                    let decayed = e.0 * (-self.lambda * (self.t - e.1) as f64).exp2();
                    *e = (decayed + 1.0, self.t);
                }
            }
        }
        if self.t.is_multiple_of(self.gap) {
            self.cleanup();
        }
    }

    /// Drops weak micro-clusters and stale shared-density edges,
    /// re-indexing the graph.
    fn cleanup(&mut self) {
        let t = self.t;
        let lambda = self.lambda;
        let w_min = self.w_min;
        let mut keep_map: Vec<Option<u32>> = Vec::with_capacity(self.mcs.len());
        let mut next = 0u32;
        for mc in &self.mcs {
            let w = mc.weight * (-lambda * (t - mc.last) as f64).exp2();
            if w >= w_min {
                keep_map.push(Some(next));
                next += 1;
            } else {
                keep_map.push(None);
            }
        }
        let mut kept = Vec::with_capacity(next as usize);
        for (mc, keep) in self.mcs.drain(..).zip(keep_map.iter()) {
            if keep.is_some() {
                kept.push(mc);
            }
        }
        self.mcs = kept;
        self.shared = self
            .shared
            .drain()
            .filter_map(
                |((a, b), v)| match (keep_map[a as usize], keep_map[b as usize]) {
                    (Some(na), Some(nb)) => Some(((na, nb), v)),
                    _ => None,
                },
            )
            .collect();
    }

    /// Offline macro-clustering: merge micro-clusters whose shared density
    /// relative to their mean weight exceeds `alpha`; returns per-MC
    /// macro-cluster ids.
    fn macro_ids(&self) -> Vec<u32> {
        let k = self.mcs.len();
        let mut uf = UnionFind::new(k);
        for (&(a, b), &(s, last)) in &self.shared {
            let s = s * (-self.lambda * (self.t - last) as f64).exp2();
            let wa = self.decay(self.mcs[a as usize].weight, self.mcs[a as usize].last);
            let wb = self.decay(self.mcs[b as usize].weight, self.mcs[b as usize].last);
            let conn = s / ((wa + wb) / 2.0);
            if conn >= self.alpha {
                uf.union(a as usize, b as usize);
            }
        }
        uf.component_ids()
    }

    /// Labels one point against the current model: the macro-cluster of
    /// the nearest micro-cluster within `r`, else noise.
    pub fn label(&self, p: &[f64], macro_ids: &[u32]) -> PointLabel {
        let r2 = self.radius * self.radius;
        let mut best: Option<(f64, u32)> = None;
        for (i, mc) in self.mcs.iter().enumerate() {
            let d = sq_dist(&mc.center, p);
            if d <= r2 && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, macro_ids[i]));
            }
        }
        match best {
            Some((_, c)) => PointLabel::Border(c),
            None => PointLabel::Noise,
        }
    }

    /// Convenience batch API: stream the data once, then label every point
    /// against the final model (the evaluation protocol of Table 4).
    pub fn fit(points: &[Vec<f64>], radius: f64, lambda: f64, alpha: f64) -> Clustering {
        let mut engine = Self::new(radius, lambda, 0.1, alpha, 1000);
        for p in points {
            engine.insert(p);
        }
        let ids = engine.macro_ids();
        Clustering::from_labels(points.iter().map(|p| engine.label(p, &ids)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interleaved_blobs(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 20.0 };
                vec![c + (i % 7) as f64 * 0.1, (i % 5) as f64 * 0.1]
            })
            .collect()
    }

    #[test]
    fn finds_two_streams() {
        let pts = interleaved_blobs(800);
        let c = DbStream::fit(&pts, 1.5, 0.001, 0.1);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(0), c.cluster_of(2));
        assert_ne!(c.cluster_of(0), c.cluster_of(1));
    }

    #[test]
    fn compresses_to_few_micro_clusters() {
        let pts = interleaved_blobs(2000);
        let mut e = DbStream::new(1.5, 0.001, 0.1, 0.1, 500);
        for p in &pts {
            e.insert(p);
        }
        assert!(
            e.num_micro_clusters() < 60,
            "got {}",
            e.num_micro_clusters()
        );
    }

    #[test]
    fn far_point_is_noise() {
        let pts = interleaved_blobs(400);
        let mut e = DbStream::new(1.5, 0.001, 0.1, 0.1, 500);
        for p in &pts {
            e.insert(p);
        }
        let ids = e.macro_ids();
        assert_eq!(e.label(&[9999.0, 9999.0], &ids), PointLabel::Noise);
    }

    #[test]
    fn decay_prunes_stale_clusters() {
        let mut e = DbStream::new(1.0, 0.05, 0.5, 0.1, 100);
        e.insert(&[0.0, 0.0]);
        // flood a far region so time passes and cleanup fires
        for i in 0..1000 {
            e.insert(&[100.0 + (i % 3) as f64 * 0.1, 0.0]);
        }
        // the stale cluster at the origin decayed away
        let ids = e.macro_ids();
        assert_eq!(e.label(&[0.0, 0.0], &ids), PointLabel::Noise);
    }
}
