//! Property-based cross-validation of the baseline DBSCAN variants
//! against the original algorithm on randomized instances.

use mdbscan_baselines::{
    dbscan_pp, dyw_dbscan, grid_dbscan_exact, optics, original_dbscan, SampleInit,
};
use mdbscan_metric::Euclidean;
use proptest::prelude::*;

fn instances() -> impl Strategy<Value = (Vec<Vec<f64>>, f64, usize)> {
    (
        prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 3..70),
        0.3f64..3.0,
        1usize..6,
    )
}

/// Core flags and noise flags must coincide with the reference; that is
/// the full exactness statement modulo border tie-breaking.
fn assert_core_noise_match(
    tag: &str,
    a: &mdbscan_core::Clustering,
    b: &mdbscan_core::Clustering,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.num_clusters(), b.num_clusters(), "{}: cluster count", tag);
    for i in 0..a.len() {
        prop_assert_eq!(
            a.labels()[i].is_core(),
            b.labels()[i].is_core(),
            "{}: core at {}",
            tag,
            i
        );
        prop_assert_eq!(
            a.labels()[i].is_noise(),
            b.labels()[i].is_noise(),
            "{}: noise at {}",
            tag,
            i
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grid_is_exact((pts, eps, min_pts) in instances()) {
        let reference = original_dbscan(&pts, &Euclidean, eps, min_pts);
        let grid = grid_dbscan_exact(&pts, eps, min_pts);
        assert_core_noise_match("grid", &grid, &reference)?;
    }

    #[test]
    fn dyw_is_exact((pts, eps, min_pts) in instances(), seed in 0u64..100) {
        let reference = original_dbscan(&pts, &Euclidean, eps, min_pts);
        let dyw = dyw_dbscan(&pts, &Euclidean, eps, min_pts, pts.len() / 10, 1.0, pts.len(), seed);
        assert_core_noise_match("dyw", &dyw, &reference)?;
    }

    #[test]
    fn dbscan_pp_at_full_sampling_is_exact((pts, eps, min_pts) in instances(), seed in 0u64..100) {
        let reference = original_dbscan(&pts, &Euclidean, eps, min_pts);
        let pp = dbscan_pp(&pts, &Euclidean, eps, min_pts, 1.0, SampleInit::Uniform, seed);
        assert_core_noise_match("dbscan++", &pp, &reference)?;
    }

    /// OPTICS' single-sweep ExtractDBSCAN agrees with DBSCAN on the core
    /// structure; border points *visited before their cluster's first
    /// core* are left noise (the original paper's documented behavior),
    /// so noise may only ever be a superset on non-core points.
    #[test]
    fn optics_extraction_matches_core_structure((pts, eps, min_pts) in instances()) {
        let reference = original_dbscan(&pts, &Euclidean, eps, min_pts);
        let ordering = optics(&pts, &Euclidean, eps, min_pts);
        let extracted = ordering.extract_dbscan(eps);
        prop_assert_eq!(extracted.num_clusters(), reference.num_clusters());
        for i in 0..pts.len() {
            prop_assert_eq!(
                extracted.labels()[i].is_core(),
                reference.labels()[i].is_core(),
                "core at {}", i
            );
            if reference.labels()[i].is_noise() {
                prop_assert!(extracted.labels()[i].is_noise(), "phantom member at {}", i);
            }
        }
    }
}
