//! Fault-tolerant serving tier for the metric-dbscan engine (PR 6).
//!
//! The paper's index economics — pay `t_dis` once to build the
//! Algorithm-1 net, then answer every `(ε, MinPts)` cheaply — only
//! matter operationally if the process *holding* the net survives the
//! things processes actually die of: panicking user metrics, stalled
//! peers, overload, and crashes mid-save. This crate is that survival
//! layer, std-only (`std::net`, no crates.io):
//!
//! * [`Server`] — a TCP listener + bounded admission queue + worker
//!   pool over one shared [`mdbscan_core::MetricDbscan`], with
//!   per-connection read/write deadlines, per-request panic isolation
//!   (`catch_unwind` → typed [`Response::Internal`]), load shedding
//!   (typed [`Response::Overloaded`]`{retry_after_ms}`), and a
//!   supervisor that resurrects dead workers.
//! * [`Client`] — a typed client with deterministic seeded
//!   retry/backoff (full jitter, retrying only transport errors and
//!   sheds).
//! * [`protocol`] — the length-prefixed binary wire format, specified
//!   field-by-field in the module docs. Floats travel as IEEE-754
//!   bits, so served labels are **byte-identical** to in-process
//!   calls.
//! * [`FaultPlan`] / [`PanicMetric`] — a seeded, deterministic
//!   fault-injection harness: which save gets torn at which byte,
//!   which connection drops or stalls, which query's metric detonates.
//!   Drives `tests/fault_injection.rs` and the serving bench's chaos
//!   mode.
//! * **Observability** — every server counter lives in an
//!   [`mdbscan_obs::Registry`] (shareable with the engine's
//!   [`mdbscan_core::MetricsRecorder`] via
//!   [`Server::spawn_with_registry`]), plus request-latency and
//!   queue-wait histograms. Scrape it via the `Metrics` wire op
//!   ([`Client::metrics`]), [`Server::metrics_exposition`]
//!   (Prometheus-style plaintext), or a hand-rolled HTTP responder
//!   ([`Server::serve_metrics_http`], `GET /metrics`). The `Stats` op
//!   additionally reports p50/p99 summaries of both histograms.
//!   Instrumentation is read-only with respect to clustering output:
//!   served labels stay byte-identical whether or not anything is
//!   recording.
//!
//! # Failure-mode contract (what "fault-tolerant" means here)
//!
//! | fault | response |
//! |-------|----------|
//! | request panics (user metric, solver bug) | worker catches it, answers typed `Internal`, keeps serving |
//! | panic escapes the guard (test-ops `CrashWorker`) | worker dies, supervisor respawns it; the pool never shrinks permanently |
//! | peer stalls or vanishes | read/write deadlines bound the cost to one timeout per worker |
//! | more connections than the queue holds | shed at admission with `Overloaded{retry_after_ms}` — never unbounded latency |
//! | crash mid-save | never observable: saves are atomic (temp + `sync_all` + rename), the previous checkpoint survives intact |
//! | newest checkpoint corrupted externally | `MetricDbscan::load_latest` falls back to the last good numbered checkpoint |
//! | ingest panics mid-mutation | writer is quarantined ([`mdbscan_core::DbscanError::Poisoned`]); queries keep serving the last published epoch |
//!
//! Under all of the above, a client with retries enabled eventually
//! receives either a correct reply or a typed error — never a hang,
//! never wrong labels.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod client;
mod fault;
pub mod protocol;
mod server;

pub use client::{Client, ClientError, RetryPolicy};
pub use fault::{ConnFault, FaultPlan, PanicMetric, PanicSwitch, SaveFault};
pub use mdbscan_obs::{MetricsHttpServer, Registry, RegistrySnapshot};
pub use protocol::{QueryReply, Request, Response, Solver, WireIngestReport, WireStats, MAX_FRAME};
pub use server::{ServeConfig, Server};
