//! Deterministic fault injection: a seeded [`FaultPlan`] schedule plus
//! the [`PanicMetric`] wrapper that detonates a metric mid-solver.
//!
//! Everything here is a pure function of its seed: re-running a chaos
//! test or bench with the same seed replays the identical fault
//! sequence — which byte of which save gets torn, which connection
//! stalls, which query panics. That turns "the server survived chaos"
//! from an anecdote into a reproducible assertion.
//!
//! The plan does not hook the I/O layer; it *decides*, and the harness
//! applies: truncate the artifact the plan says to tear, drop the
//! connection the plan says to drop, arm the [`PanicSwitch`] before
//! the query the plan says should panic. Keeping the decisions out of
//! the product code means zero fault-injection branches in the serving
//! path itself.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mdbscan_metric::{BatchMetric, GridCompatible, Metric, MetricTag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What should happen to the next checkpoint save.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveFault {
    /// Let the save through untouched.
    None,
    /// Fail the save with an I/O error (harness: make the directory
    /// unwritable, or skip the save and report the typed error).
    IoError,
    /// After the save lands, truncate the artifact to this many bytes —
    /// simulating external corruption / a torn copy of the newest
    /// checkpoint that `load_latest` must fall back past. (The atomic
    /// write itself can no longer produce one.)
    TornAt(usize),
}

/// What should happen to the next client connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Behave normally.
    None,
    /// Connect, send garbage or nothing, and drop mid-exchange.
    Drop,
    /// Connect and stall (hold the socket silently) for the duration —
    /// must cost the server at most one read deadline.
    Stall(Duration),
}

/// A seeded, deterministic fault schedule. Rates are percentages
/// (0–100); draws consume the internal RNG in call order, so a plan is
/// replayed by reconstructing it with the same seed and making the
/// same sequence of calls.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: StdRng,
    /// Percent of saves that fault (split evenly between
    /// [`SaveFault::IoError`] and [`SaveFault::TornAt`]).
    pub save_fault_pct: u32,
    /// Percent of connections that fault (split evenly between
    /// [`ConnFault::Drop`] and [`ConnFault::Stall`]).
    pub conn_fault_pct: u32,
    /// Percent of queries that run with an armed [`PanicSwitch`].
    pub query_panic_pct: u32,
    /// Stall duration handed out by [`ConnFault::Stall`].
    pub stall: Duration,
}

impl FaultPlan {
    /// A plan with moderate default rates (20% saves, 25% connections,
    /// 20% queries).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            save_fault_pct: 20,
            conn_fault_pct: 25,
            query_panic_pct: 20,
            stall: Duration::from_millis(50),
        }
    }

    fn roll(&mut self, pct: u32) -> bool {
        self.rng.random_range(0u32..100) < pct.min(100)
    }

    /// Draws the fate of the next save of an artifact that will be
    /// `artifact_len` bytes. Torn offsets land anywhere in
    /// `1..artifact_len`, so headers, section frames, and payload
    /// tails all get hit across a long run.
    pub fn next_save_fault(&mut self, artifact_len: usize) -> SaveFault {
        if !self.roll(self.save_fault_pct) {
            return SaveFault::None;
        }
        if self.rng.random_range(0u32..2) == 0 || artifact_len < 2 {
            SaveFault::IoError
        } else {
            SaveFault::TornAt(self.rng.random_range(1..artifact_len))
        }
    }

    /// Draws the fate of the next client connection.
    pub fn next_conn_fault(&mut self) -> ConnFault {
        if !self.roll(self.conn_fault_pct) {
            return ConnFault::None;
        }
        if self.rng.random_range(0u32..2) == 0 {
            ConnFault::Drop
        } else {
            ConnFault::Stall(self.stall)
        }
    }

    /// Whether the next query should run with the engine's
    /// [`PanicSwitch`] armed, and if so after how many distance
    /// evaluations (1–64) the metric detonates.
    pub fn next_query_panic(&mut self) -> Option<u64> {
        if self.roll(self.query_panic_pct) {
            Some(self.rng.random_range(1u64..=64))
        } else {
            None
        }
    }

    /// A truncation point for `len` bytes, uniform in `1..len` —
    /// exercised directly by the torn-write recovery tests.
    pub fn torn_offset(&mut self, len: usize) -> usize {
        assert!(len >= 2, "nothing to tear in {len} bytes");
        self.rng.random_range(1..len)
    }
}

/// Arms and disarms an associated [`PanicMetric`]. Cloneable and
/// thread-safe: the harness holds the switch, the engine holds the
/// metric.
#[derive(Debug, Clone)]
pub struct PanicSwitch(Arc<AtomicI64>);

const DISARMED: i64 = -1;

impl PanicSwitch {
    /// Panic after `after` more distance evaluations (1 = the very
    /// next one).
    pub fn arm(&self, after: u64) {
        self.0.store(after.max(1) as i64, Ordering::SeqCst);
    }

    /// Stop the countdown; evaluations pass through again.
    pub fn disarm(&self) {
        self.0.store(DISARMED, Ordering::SeqCst);
    }

    /// Whether a countdown is currently running.
    pub fn armed(&self) -> bool {
        self.0.load(Ordering::SeqCst) > 0
    }
}

/// A metric wrapper whose distance evaluations panic on demand: the
/// deterministic stand-in for "the user's metric has a bug" in the
/// fault harness. Disarmed it is a zero-overhead-ish passthrough
/// (one atomic load per evaluation) and produces bit-identical
/// distances.
///
/// The `MetricTag` delegates to the inner metric, so an engine built
/// over `PanicMetric<Euclidean>` saves and loads artifacts
/// interchangeably with a plain `Euclidean` engine.
#[derive(Debug, Clone)]
pub struct PanicMetric<M> {
    inner: M,
    fuse: Arc<AtomicI64>,
}

impl<M> PanicMetric<M> {
    /// Wraps `inner`, returning the metric and its switch (disarmed).
    pub fn new(inner: M) -> (Self, PanicSwitch) {
        let fuse = Arc::new(AtomicI64::new(DISARMED));
        let switch = PanicSwitch(Arc::clone(&fuse));
        (Self { inner, fuse }, switch)
    }

    fn tick(&self) {
        if self.fuse.load(Ordering::SeqCst) <= 0 {
            return;
        }
        if self.fuse.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Disarm before detonating so the panic fires once per arm:
            // recovery paths (worker survives, next query proceeds) stay
            // observable instead of every later evaluation re-panicking.
            self.fuse.store(DISARMED, Ordering::SeqCst);
            panic!("injected metric fault (PanicMetric fuse hit zero)");
        }
    }
}

impl<P, M: Metric<P>> Metric<P> for PanicMetric<M> {
    fn distance(&self, a: &P, b: &P) -> f64 {
        self.tick();
        self.inner.distance(a, b)
    }

    fn distance_leq(&self, a: &P, b: &P, bound: f64) -> Option<f64> {
        self.tick();
        self.inner.distance_leq(a, b, bound)
    }

    fn within(&self, a: &P, b: &P, bound: f64) -> bool {
        self.tick();
        self.inner.within(a, b, bound)
    }
}

/// Forwards the inner metric's coordinate view untouched: extracting
/// coordinates is not a distance evaluation, so the fuse must not tick.
impl<P, M: GridCompatible<P>> GridCompatible<P> for PanicMetric<M> {
    fn grid_coords(&self, points: &[P], out: &mut Vec<f64>) -> Option<usize> {
        self.inner.grid_coords(points, out)
    }
}

// Deliberately the default (per-id loop) BatchMetric: every batched
// evaluation routes through `distance`/`distance_leq` above, so the
// fuse counts each one. The inner metric's batched fast path is
// bypassed — fault injection trades that speed for exact countdowns.
impl<P, M: BatchMetric<P>> BatchMetric<P> for PanicMetric<M> {}

impl<M: MetricTag> MetricTag for PanicMetric<M> {
    const METRIC_TAG: &'static str = M::METRIC_TAG;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    #[test]
    fn plans_replay_bit_identically_per_seed() {
        let draws = |seed: u64| {
            let mut plan = FaultPlan::new(seed);
            let mut out = Vec::new();
            for _ in 0..200 {
                out.push((
                    plan.next_save_fault(1000),
                    plan.next_conn_fault(),
                    plan.next_query_panic(),
                ));
            }
            out
        };
        assert_eq!(draws(42), draws(42));
        assert_ne!(draws(42), draws(43));
        // All fault kinds actually occur at the default rates.
        let all = draws(42);
        assert!(all.iter().any(|(s, _, _)| matches!(s, SaveFault::IoError)));
        assert!(all
            .iter()
            .any(|(s, _, _)| matches!(s, SaveFault::TornAt(_))));
        assert!(all.iter().any(|(_, c, _)| matches!(c, ConnFault::Drop)));
        assert!(all.iter().any(|(_, c, _)| matches!(c, ConnFault::Stall(_))));
        assert!(all.iter().any(|(_, _, q)| q.is_some()));
        for (s, _, _) in &all {
            if let SaveFault::TornAt(off) = s {
                assert!((1..1000).contains(off));
            }
        }
    }

    #[test]
    fn panic_metric_detonates_once_then_passes_through() {
        let (metric, switch) = PanicMetric::new(Euclidean);
        let a = vec![0.0, 0.0];
        let b = vec![3.0, 4.0];
        assert_eq!(metric.distance(&a, &b), 5.0, "disarmed: passthrough");

        switch.arm(3);
        assert!(switch.armed());
        assert_eq!(metric.distance(&a, &b), 5.0);
        assert_eq!(metric.distance(&a, &b), 5.0);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| metric.distance(&a, &b)));
        assert!(caught.is_err(), "third evaluation detonates");
        assert!(!switch.armed(), "fuse disarms after detonating");
        assert_eq!(metric.distance(&a, &b), 5.0, "recovery: passthrough again");
    }
}
