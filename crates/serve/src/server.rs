//! The server: a `std::net` TCP listener, a bounded admission queue,
//! a thread-per-core-style worker pool over one shared engine, and a
//! supervisor that resurrects dead workers.
//!
//! # Failure-mode contract
//!
//! * **Panic isolation** — every request runs under
//!   `catch_unwind`; a panicking user metric (or solver bug) becomes a
//!   typed [`Response::Internal`] and the worker keeps serving. A panic
//!   that *does* escape the guard (only the test-ops `CrashWorker`
//!   opcode does this deliberately) kills one worker thread, which the
//!   supervisor respawns — the pool never shrinks permanently.
//! * **Deadlines** — every accepted connection gets
//!   `set_read_timeout`/`set_write_timeout` from [`ServeConfig`]; a
//!   stalled or dead peer costs a worker at most one deadline, never a
//!   hang.
//! * **Overload** — admission is a bounded queue. When it is full the
//!   acceptor sheds the connection immediately with
//!   [`Response::Overloaded`]`{retry_after_ms}` — a typed signal the
//!   client's backoff understands — instead of letting latency grow
//!   without bound.
//! * **Consistency** — queries snapshot the engine per request, so a
//!   concurrent ingest never tears a reply; labels are bit-identical
//!   to calling the same solver in-process at the same epoch.
//!
//! # Observability
//!
//! Every lifetime counter lives in an [`mdbscan_obs::Registry`] —
//! either one the caller supplies via [`Server::spawn_with_registry`]
//! (sharing it with an engine-side
//! [`mdbscan_core::MetricsRecorder`]) or a private one. On top of the
//! counters the server records two log2-bucket histograms:
//! `serve_request_micros` (read → execute → reply written) and
//! `serve_queue_wait_micros` (accept → a worker dequeues). The
//! registry is scrapeable three ways, all reporting the same numbers:
//! the legacy [`Request::Stats`] op (now with p50/p99 summaries), the
//! [`Request::Metrics`] op carrying the full snapshot, and
//! [`Server::metrics_exposition`] rendered as Prometheus-style
//! plaintext (servable over HTTP via [`Server::serve_metrics_http`]).
//!
//! Snapshot coherence: workers bump `served` **before** `panics`
//! (both sequentially consistent) and readers load `panics` before
//! `served`, so a reply can never report more panics than served
//! requests; `shed` and the queue-depth gauge are updated and read
//! under the admission-queue lock, so they never disagree with each
//! other either.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mdbscan_core::{ApproxParams, DbscanParams, EngineSnapshot, MetricDbscan, PointLabel, Run};
use mdbscan_metric::{BatchMetric, MetricTag, PersistPoint};
use mdbscan_obs::{
    serve_metrics, Counter, Gauge, Histogram, MetricsHttpServer, Registry, RegistrySnapshot,
};

use crate::protocol::{read_frame, write_frame, QueryReply, Request, Response, Solver, WireStats};

/// Tuning knobs for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with
    /// [`Response::Overloaded`].
    pub queue_capacity: usize,
    /// Per-connection read deadline (both frame header and payload).
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Backoff hint sent with every shed connection.
    pub retry_after_ms: u32,
    /// Where [`Request::SaveCheckpoint`] writes numbered checkpoints;
    /// `None` answers save requests with [`Response::BadRequest`].
    pub checkpoint_dir: Option<PathBuf>,
    /// Enables test-only operations (the `CrashWorker` opcode). Never
    /// enable outside a harness.
    pub test_ops: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_after_ms: 25,
            checkpoint_dir: None,
            test_ops: false,
        }
    }
}

/// Lifetime counters, updated lock-free by the acceptor and workers.
/// Each is a pre-resolved handle into the server's [`Registry`], so
/// hot-path increments never touch the registry lock.
struct Counters {
    served: Counter,
    shed: Counter,
    panics: Counter,
    respawned: Counter,
    grid_cells_probed: Counter,
    grid_candidates_emitted: Counter,
    grid_candidates_rejected: Counter,
    rp_projections: Counter,
    rp_candidates_emitted: Counter,
    rp_candidates_rejected: Counter,
    request_micros: Histogram,
    queue_wait_micros: Histogram,
    queue_depth: Gauge,
    engine_epoch: Gauge,
    engine_num_points: Gauge,
    engine_num_centers: Gauge,
}

impl Counters {
    fn new(registry: &Registry) -> Self {
        Self {
            served: registry.counter("serve_requests_served_total"),
            shed: registry.counter("serve_requests_shed_total"),
            panics: registry.counter("serve_request_panics_total"),
            respawned: registry.counter("serve_workers_respawned_total"),
            grid_cells_probed: registry.counter("serve_grid_cells_probed_total"),
            grid_candidates_emitted: registry.counter("serve_grid_candidates_emitted_total"),
            grid_candidates_rejected: registry.counter("serve_grid_candidates_rejected_total"),
            rp_projections: registry.counter("serve_rp_projections_total"),
            rp_candidates_emitted: registry.counter("serve_rp_candidates_emitted_total"),
            rp_candidates_rejected: registry.counter("serve_rp_candidates_rejected_total"),
            request_micros: registry.histogram("serve_request_micros"),
            queue_wait_micros: registry.histogram("serve_queue_wait_micros"),
            queue_depth: registry.gauge("serve_queue_depth"),
            engine_epoch: registry.gauge("engine_epoch"),
            engine_num_points: registry.gauge("engine_num_points"),
            engine_num_centers: registry.gauge("engine_num_centers"),
        }
    }
}

struct Shared<P, M> {
    engine: Arc<MetricDbscan<P, M>>,
    cfg: ServeConfig,
    /// Admitted connections waiting for a worker, each stamped with
    /// its accept time so the dequeue can record queue wait.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    registry: Registry,
    counters: Counters,
}

impl<P, M> Shared<P, M>
where
    P: Clone + Sync,
    M: BatchMetric<P>,
{
    /// Refreshes the engine gauges and snapshots the registry — the
    /// one body behind the `Metrics` wire op, the plaintext
    /// exposition, and the `/metrics` responder.
    fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.counters.engine_epoch.set(self.engine.epoch());
        self.counters
            .engine_num_points
            .set(self.engine.num_points() as u64);
        self.counters
            .engine_num_centers
            .set(self.engine.num_centers() as u64);
        self.registry.snapshot()
    }
}

/// A running server. Dropping the handle **without** calling
/// [`Server::shutdown`] detaches the threads (they keep serving until
/// the process exits); tests should shut down explicitly.
pub struct Server<P, M> {
    shared: Arc<Shared<P, M>>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl<P, M> Server<P, M>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// acceptor, `cfg.workers` workers, and the supervisor, and returns
    /// the handle. The engine is shared — in-process callers may keep
    /// querying and ingesting it concurrently.
    pub fn spawn(
        engine: Arc<MetricDbscan<P, M>>,
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
    ) -> io::Result<Self> {
        Self::spawn_with_registry(engine, addr, cfg, Registry::new())
    }

    /// Like [`Server::spawn`], but records into a caller-supplied
    /// [`Registry`]. Pass the same registry the engine's
    /// [`mdbscan_core::MetricsRecorder`] writes to and one snapshot —
    /// one `Metrics` reply, one `/metrics` scrape — carries both the
    /// serving-tier latencies and the engine's per-phase timings.
    pub fn spawn_with_registry(
        engine: Arc<MetricDbscan<P, M>>,
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        registry: Registry,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let counters = Counters::new(&registry);
        let shared = Arc::new(Shared {
            engine,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            registry,
            counters,
        });

        let workers: Vec<JoinHandle<()>> = (0..shared.cfg.workers.max(1))
            .map(|_| spawn_worker(Arc::clone(&shared)))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervise(shared, workers))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(shared, listener))
        };
        Ok(Self {
            shared,
            local_addr,
            accept: Some(accept),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (the actual port when spawned with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counters, same numbers the wire `Stats` op reports.
    pub fn stats(&self) -> WireStats {
        gather_stats(&self.shared)
    }

    /// The registry this server records into (a shared handle, not a
    /// copy — counters recorded after the call show up in it).
    pub fn registry(&self) -> Registry {
        self.shared.registry.clone()
    }

    /// A point-in-time snapshot of every counter, gauge, and histogram
    /// — identical to what the wire `Metrics` op returns, with the
    /// engine gauges (`engine_epoch`, `engine_num_points`,
    /// `engine_num_centers`) refreshed first.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.shared.metrics_snapshot()
    }

    /// [`Server::metrics_snapshot`] rendered as Prometheus-style
    /// plaintext exposition.
    pub fn metrics_exposition(&self) -> String {
        self.shared.metrics_snapshot().render()
    }

    /// Binds `addr` and serves `GET /metrics` (the plaintext
    /// exposition, freshly snapshotted per scrape) on a background
    /// thread. Shut the returned handle down independently of the
    /// server.
    pub fn serve_metrics_http(&self, addr: impl ToSocketAddrs) -> io::Result<MetricsHttpServer> {
        let shared = Arc::clone(&self.shared);
        serve_metrics(addr, move || shared.metrics_snapshot().render())
    }

    /// Stops accepting, drains nothing further, and joins every thread
    /// (workers finish their in-flight connection first).
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

fn gather_stats<P, M>(shared: &Shared<P, M>) -> WireStats
where
    P: Clone + Sync,
    M: BatchMetric<P>,
{
    // shed and queue_depth move together only under the queue lock
    // (admission sheds or enqueues while holding it), so read both
    // there: one reply never pairs a post-shed counter with a
    // pre-shed depth.
    let (queue_depth, shed) = {
        let queue = shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (queue.len() as u64, shared.counters.shed.get())
    };
    // Workers bump served before panics; reading panics first makes
    // served ≥ panics hold in every reply (both are SeqCst, so the
    // four loads/stores share one total order).
    let panics = shared.counters.panics.get();
    let served = shared.counters.served.get();
    let request_hist = shared.counters.request_micros.snapshot();
    let queue_hist = shared.counters.queue_wait_micros.snapshot();
    WireStats {
        served,
        shed,
        panics,
        workers_respawned: shared.counters.respawned.get(),
        queue_depth,
        epoch: shared.engine.epoch(),
        num_points: shared.engine.num_points() as u64,
        num_centers: shared.engine.num_centers() as u64,
        grid_cells_probed: shared.counters.grid_cells_probed.get(),
        grid_candidates_emitted: shared.counters.grid_candidates_emitted.get(),
        grid_candidates_rejected: shared.counters.grid_candidates_rejected.get(),
        rp_projections: shared.counters.rp_projections.get(),
        rp_candidates_emitted: shared.counters.rp_candidates_emitted.get(),
        rp_candidates_rejected: shared.counters.rp_candidates_rejected.get(),
        query_p50_micros: request_hist.quantile(0.5),
        query_p99_micros: request_hist.quantile(0.99),
        queue_wait_p50_micros: queue_hist.quantile(0.5),
        queue_wait_p99_micros: queue_hist.quantile(0.99),
    }
}

fn accept_loop<P, M>(shared: Arc<Shared<P, M>>, listener: TcpListener)
where
    P: Clone + Sync,
    M: BatchMetric<P>,
{
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => admit(&shared, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Queue the connection, or shed it with a typed `Overloaded` reply
/// written under the write deadline (best-effort: a peer that already
/// vanished just gets the drop).
fn admit<P, M>(shared: &Shared<P, M>, mut stream: TcpStream)
where
    P: Clone + Sync,
    M: BatchMetric<P>,
{
    let mut queue = shared
        .queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if queue.len() >= shared.cfg.queue_capacity {
        // Count the shed while still holding the lock so a stats
        // snapshot never sees a full queue without the shed that full
        // queue just caused (the slow Overloaded write happens after).
        shared.counters.shed.inc();
        drop(queue);
        let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
        let reply = Response::Overloaded {
            retry_after_ms: shared.cfg.retry_after_ms,
        };
        let _ = write_frame(&mut stream, &reply.encode());
        return;
    }
    queue.push_back((stream, Instant::now()));
    shared.counters.queue_depth.set(queue.len() as u64);
    drop(queue);
    shared.work_ready.notify_one();
}

fn spawn_worker<P, M>(shared: Arc<Shared<P, M>>) -> JoinHandle<()>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    std::thread::spawn(move || worker_loop(shared))
}

fn worker_loop<P, M>(shared: Arc<Shared<P, M>>)
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    loop {
        let stream = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some((s, admitted)) = queue.pop_front() {
                    shared.counters.queue_depth.set(queue.len() as u64);
                    shared
                        .counters
                        .queue_wait_micros
                        .record_duration(admitted.elapsed());
                    break s;
                }
                let (guard, _) = shared
                    .work_ready
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
        };
        serve_connection(&shared, stream);
    }
}

/// Serves request→response frames until the peer closes, errors, or
/// misses a deadline. Request handling is panic-isolated; only the
/// deliberate test-ops `CrashWorker` panic escapes (and kills this
/// worker so the supervisor's resurrection path is testable).
fn serve_connection<P, M>(shared: &Shared<P, M>, mut stream: TcpStream)
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        let started = Instant::now();
        let (response, panicked) = handle_payload(shared, &payload);
        // served strictly before panics (the reader loads them in the
        // opposite order), so served ≥ panics in every snapshot.
        shared.counters.served.inc();
        if panicked {
            shared.counters.panics.inc();
        }
        let write_ok = write_frame(&mut stream, &response.encode()).is_ok();
        shared
            .counters
            .request_micros
            .record_duration(started.elapsed());
        if !write_ok {
            return;
        }
    }
}

/// Renders a caught panic payload as text (`&str` and `String`
/// payloads verbatim; anything else a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Decodes and executes one request. Returns the response plus
/// whether the guarded execution panicked — the *caller* counts the
/// panic, after counting the request served, so the counters always
/// snapshot with served ≥ panics.
fn handle_payload<P, M>(shared: &Shared<P, M>, payload: &[u8]) -> (Response, bool)
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    let request = match Request::<P>::decode(payload) {
        Ok(r) => r,
        Err(e) => return (Response::BadRequest(e.to_string()), false),
    };
    if matches!(request, Request::CrashWorker) {
        if shared.cfg.test_ops {
            // Deliberately OUTSIDE the catch_unwind guard: this panic
            // kills the worker thread so the supervisor's resurrection
            // path is exercised end to end.
            panic!("test-ops CrashWorker");
        }
        return (Response::BadRequest("test ops are disabled".into()), false);
    }
    match catch_unwind(AssertUnwindSafe(|| execute(shared, request))) {
        Ok(response) => (response, false),
        Err(panic) => (Response::Internal(panic_message(panic)), true),
    }
}

fn run_solver<P, M>(
    snapshot: &EngineSnapshot<'_, P, M>,
    solver: Solver,
    eps: f64,
    min_pts: usize,
) -> Result<Run, mdbscan_core::DbscanError>
where
    P: PersistPoint + Clone + Sync,
    M: BatchMetric<P>,
{
    match solver {
        Solver::Exact => snapshot.exact(&DbscanParams::new(eps, min_pts)?),
        Solver::CoverTree => snapshot.covertree(&DbscanParams::new(eps, min_pts)?),
        Solver::Approx(rho) => snapshot.approx(&ApproxParams::new(eps, min_pts, rho)?),
        Solver::Streaming(rho) => snapshot.streaming(&ApproxParams::new(eps, min_pts, rho)?),
    }
}

fn execute<P, M>(shared: &Shared<P, M>, request: Request<P>) -> Response
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    match request {
        Request::Query {
            solver,
            eps,
            min_pts,
        } => {
            // Pin one epoch for the whole request: a concurrent ingest
            // can never tear the reply.
            let snapshot = shared.engine.snapshot();
            match run_solver(&snapshot, solver, eps, min_pts) {
                Ok(run) => {
                    let cand = &run.report.candidates;
                    shared.counters.grid_cells_probed.add(cand.cells_probed);
                    shared
                        .counters
                        .grid_candidates_emitted
                        .add(cand.candidates_emitted);
                    shared
                        .counters
                        .grid_candidates_rejected
                        .add(cand.candidates_rejected);
                    let rp = &run.report.rp;
                    shared.counters.rp_projections.add(rp.projections);
                    shared
                        .counters
                        .rp_candidates_emitted
                        .add(rp.candidates_emitted);
                    shared
                        .counters
                        .rp_candidates_rejected
                        .add(rp.candidates_rejected);
                    let labels: Vec<PointLabel> = run.clustering.labels().to_vec();
                    Response::Labels(QueryReply {
                        epoch: run.report.epoch,
                        num_clusters: run.clustering.num_clusters() as u64,
                        labels,
                    })
                }
                Err(e) => Response::EngineError(e.to_string()),
            }
        }
        Request::Ingest(points) => match shared.engine.ingest(points) {
            Ok(report) => Response::Ingested(report.into()),
            Err(e) => Response::EngineError(e.to_string()),
        },
        Request::SaveCheckpoint => match &shared.cfg.checkpoint_dir {
            None => Response::BadRequest("server has no checkpoint directory".into()),
            Some(dir) => match shared.engine.save_checkpoint(dir) {
                Ok(seq) => Response::Saved(seq),
                Err(e) => Response::EngineError(e.to_string()),
            },
        },
        Request::Stats => Response::Stats(gather_stats(shared)),
        Request::Metrics => Response::Metrics(shared.metrics_snapshot()),
        Request::CrashWorker => unreachable!("handled before the panic guard"),
    }
}

/// Respawns any worker that died (a panic escaped the request guard)
/// until shutdown, then joins the final set.
fn supervise<P, M>(shared: Arc<Shared<P, M>>, mut workers: Vec<JoinHandle<()>>)
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    while !shared.shutdown.load(Ordering::SeqCst) {
        for slot in workers.iter_mut() {
            if slot.is_finished() && !shared.shutdown.load(Ordering::SeqCst) {
                let dead = std::mem::replace(slot, spawn_worker(Arc::clone(&shared)));
                let _ = dead.join(); // reaps the panic payload
                shared.counters.respawned.inc();
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    shared.work_ready.notify_all();
    for w in workers {
        let _ = w.join();
    }
}
