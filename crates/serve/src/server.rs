//! The server: a `std::net` TCP listener, a bounded admission queue,
//! a thread-per-core-style worker pool over one shared engine, and a
//! supervisor that resurrects dead workers.
//!
//! # Failure-mode contract
//!
//! * **Panic isolation** — every request runs under
//!   `catch_unwind`; a panicking user metric (or solver bug) becomes a
//!   typed [`Response::Internal`] and the worker keeps serving. A panic
//!   that *does* escape the guard (only the test-ops `CrashWorker`
//!   opcode does this deliberately) kills one worker thread, which the
//!   supervisor respawns — the pool never shrinks permanently.
//! * **Deadlines** — every accepted connection gets
//!   `set_read_timeout`/`set_write_timeout` from [`ServeConfig`]; a
//!   stalled or dead peer costs a worker at most one deadline, never a
//!   hang.
//! * **Overload** — admission is a bounded queue. When it is full the
//!   acceptor sheds the connection immediately with
//!   [`Response::Overloaded`]`{retry_after_ms}` — a typed signal the
//!   client's backoff understands — instead of letting latency grow
//!   without bound.
//! * **Consistency** — queries snapshot the engine per request, so a
//!   concurrent ingest never tears a reply; labels are bit-identical
//!   to calling the same solver in-process at the same epoch.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use mdbscan_core::{ApproxParams, DbscanParams, EngineSnapshot, MetricDbscan, PointLabel, Run};
use mdbscan_metric::{BatchMetric, MetricTag, PersistPoint};

use crate::protocol::{read_frame, write_frame, QueryReply, Request, Response, Solver, WireStats};

/// Tuning knobs for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed with
    /// [`Response::Overloaded`].
    pub queue_capacity: usize,
    /// Per-connection read deadline (both frame header and payload).
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Backoff hint sent with every shed connection.
    pub retry_after_ms: u32,
    /// Where [`Request::SaveCheckpoint`] writes numbered checkpoints;
    /// `None` answers save requests with [`Response::BadRequest`].
    pub checkpoint_dir: Option<PathBuf>,
    /// Enables test-only operations (the `CrashWorker` opcode). Never
    /// enable outside a harness.
    pub test_ops: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_after_ms: 25,
            checkpoint_dir: None,
            test_ops: false,
        }
    }
}

/// Lifetime counters, updated lock-free by the acceptor and workers.
#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    respawned: AtomicU64,
    grid_cells_probed: AtomicU64,
    grid_candidates_emitted: AtomicU64,
    grid_candidates_rejected: AtomicU64,
    rp_projections: AtomicU64,
    rp_candidates_emitted: AtomicU64,
    rp_candidates_rejected: AtomicU64,
}

struct Shared<P, M> {
    engine: Arc<MetricDbscan<P, M>>,
    cfg: ServeConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
}

/// A running server. Dropping the handle **without** calling
/// [`Server::shutdown`] detaches the threads (they keep serving until
/// the process exits); tests should shut down explicitly.
pub struct Server<P, M> {
    shared: Arc<Shared<P, M>>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl<P, M> Server<P, M>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// acceptor, `cfg.workers` workers, and the supervisor, and returns
    /// the handle. The engine is shared — in-process callers may keep
    /// querying and ingesting it concurrently.
    pub fn spawn(
        engine: Arc<MetricDbscan<P, M>>,
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });

        let workers: Vec<JoinHandle<()>> = (0..shared.cfg.workers.max(1))
            .map(|_| spawn_worker(Arc::clone(&shared)))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervise(shared, workers))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(shared, listener))
        };
        Ok(Self {
            shared,
            local_addr,
            accept: Some(accept),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (the actual port when spawned with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counters, same numbers the wire `Stats` op reports.
    pub fn stats(&self) -> WireStats {
        gather_stats(&self.shared)
    }

    /// Stops accepting, drains nothing further, and joins every thread
    /// (workers finish their in-flight connection first).
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

fn gather_stats<P, M>(shared: &Shared<P, M>) -> WireStats
where
    P: Clone + Sync,
    M: BatchMetric<P>,
{
    let queue_depth = shared
        .queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .len() as u64;
    WireStats {
        served: shared.counters.served.load(Ordering::Relaxed),
        shed: shared.counters.shed.load(Ordering::Relaxed),
        panics: shared.counters.panics.load(Ordering::Relaxed),
        workers_respawned: shared.counters.respawned.load(Ordering::Relaxed),
        queue_depth,
        epoch: shared.engine.epoch(),
        num_points: shared.engine.num_points() as u64,
        num_centers: shared.engine.num_centers() as u64,
        grid_cells_probed: shared.counters.grid_cells_probed.load(Ordering::Relaxed),
        grid_candidates_emitted: shared
            .counters
            .grid_candidates_emitted
            .load(Ordering::Relaxed),
        grid_candidates_rejected: shared
            .counters
            .grid_candidates_rejected
            .load(Ordering::Relaxed),
        rp_projections: shared.counters.rp_projections.load(Ordering::Relaxed),
        rp_candidates_emitted: shared
            .counters
            .rp_candidates_emitted
            .load(Ordering::Relaxed),
        rp_candidates_rejected: shared
            .counters
            .rp_candidates_rejected
            .load(Ordering::Relaxed),
    }
}

fn accept_loop<P, M>(shared: Arc<Shared<P, M>>, listener: TcpListener)
where
    P: Clone + Sync,
    M: BatchMetric<P>,
{
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => admit(&shared, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Queue the connection, or shed it with a typed `Overloaded` reply
/// written under the write deadline (best-effort: a peer that already
/// vanished just gets the drop).
fn admit<P, M>(shared: &Shared<P, M>, mut stream: TcpStream)
where
    P: Clone + Sync,
    M: BatchMetric<P>,
{
    let mut queue = shared
        .queue
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if queue.len() >= shared.cfg.queue_capacity {
        drop(queue);
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
        let reply = Response::Overloaded {
            retry_after_ms: shared.cfg.retry_after_ms,
        };
        let _ = write_frame(&mut stream, &reply.encode());
        return;
    }
    queue.push_back(stream);
    drop(queue);
    shared.work_ready.notify_one();
}

fn spawn_worker<P, M>(shared: Arc<Shared<P, M>>) -> JoinHandle<()>
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    std::thread::spawn(move || worker_loop(shared))
}

fn worker_loop<P, M>(shared: Arc<Shared<P, M>>)
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    loop {
        let stream = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                let (guard, _) = shared
                    .work_ready
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
        };
        serve_connection(&shared, stream);
    }
}

/// Serves request→response frames until the peer closes, errors, or
/// misses a deadline. Request handling is panic-isolated; only the
/// deliberate test-ops `CrashWorker` panic escapes (and kills this
/// worker so the supervisor's resurrection path is testable).
fn serve_connection<P, M>(shared: &Shared<P, M>, mut stream: TcpStream)
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        let response = handle_payload(shared, &payload);
        shared.counters.served.fetch_add(1, Ordering::Relaxed);
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Renders a caught panic payload as text (`&str` and `String`
/// payloads verbatim; anything else a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn handle_payload<P, M>(shared: &Shared<P, M>, payload: &[u8]) -> Response
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    let request = match Request::<P>::decode(payload) {
        Ok(r) => r,
        Err(e) => return Response::BadRequest(e.to_string()),
    };
    if matches!(request, Request::CrashWorker) {
        if shared.cfg.test_ops {
            // Deliberately OUTSIDE the catch_unwind guard: this panic
            // kills the worker thread so the supervisor's resurrection
            // path is exercised end to end.
            panic!("test-ops CrashWorker");
        }
        return Response::BadRequest("test ops are disabled".into());
    }
    match catch_unwind(AssertUnwindSafe(|| execute(shared, request))) {
        Ok(response) => response,
        Err(panic) => {
            shared.counters.panics.fetch_add(1, Ordering::Relaxed);
            Response::Internal(panic_message(panic))
        }
    }
}

fn run_solver<P, M>(
    snapshot: &EngineSnapshot<'_, P, M>,
    solver: Solver,
    eps: f64,
    min_pts: usize,
) -> Result<Run, mdbscan_core::DbscanError>
where
    P: PersistPoint + Clone + Sync,
    M: BatchMetric<P>,
{
    match solver {
        Solver::Exact => snapshot.exact(&DbscanParams::new(eps, min_pts)?),
        Solver::CoverTree => snapshot.covertree(&DbscanParams::new(eps, min_pts)?),
        Solver::Approx(rho) => snapshot.approx(&ApproxParams::new(eps, min_pts, rho)?),
        Solver::Streaming(rho) => snapshot.streaming(&ApproxParams::new(eps, min_pts, rho)?),
    }
}

fn execute<P, M>(shared: &Shared<P, M>, request: Request<P>) -> Response
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    match request {
        Request::Query {
            solver,
            eps,
            min_pts,
        } => {
            // Pin one epoch for the whole request: a concurrent ingest
            // can never tear the reply.
            let snapshot = shared.engine.snapshot();
            match run_solver(&snapshot, solver, eps, min_pts) {
                Ok(run) => {
                    let cand = &run.report.candidates;
                    shared
                        .counters
                        .grid_cells_probed
                        .fetch_add(cand.cells_probed, Ordering::Relaxed);
                    shared
                        .counters
                        .grid_candidates_emitted
                        .fetch_add(cand.candidates_emitted, Ordering::Relaxed);
                    shared
                        .counters
                        .grid_candidates_rejected
                        .fetch_add(cand.candidates_rejected, Ordering::Relaxed);
                    let rp = &run.report.rp;
                    shared
                        .counters
                        .rp_projections
                        .fetch_add(rp.projections, Ordering::Relaxed);
                    shared
                        .counters
                        .rp_candidates_emitted
                        .fetch_add(rp.candidates_emitted, Ordering::Relaxed);
                    shared
                        .counters
                        .rp_candidates_rejected
                        .fetch_add(rp.candidates_rejected, Ordering::Relaxed);
                    let labels: Vec<PointLabel> = run.clustering.labels().to_vec();
                    Response::Labels(QueryReply {
                        epoch: run.report.epoch,
                        num_clusters: run.clustering.num_clusters() as u64,
                        labels,
                    })
                }
                Err(e) => Response::EngineError(e.to_string()),
            }
        }
        Request::Ingest(points) => match shared.engine.ingest(points) {
            Ok(report) => Response::Ingested(report.into()),
            Err(e) => Response::EngineError(e.to_string()),
        },
        Request::SaveCheckpoint => match &shared.cfg.checkpoint_dir {
            None => Response::BadRequest("server has no checkpoint directory".into()),
            Some(dir) => match shared.engine.save_checkpoint(dir) {
                Ok(seq) => Response::Saved(seq),
                Err(e) => Response::EngineError(e.to_string()),
            },
        },
        Request::Stats => Response::Stats(gather_stats(shared)),
        Request::CrashWorker => unreachable!("handled before the panic guard"),
    }
}

/// Respawns any worker that died (a panic escaped the request guard)
/// until shutdown, then joins the final set.
fn supervise<P, M>(shared: Arc<Shared<P, M>>, mut workers: Vec<JoinHandle<()>>)
where
    P: PersistPoint + Clone + Send + Sync + 'static,
    M: BatchMetric<P> + MetricTag + Send + Sync + 'static,
{
    while !shared.shutdown.load(Ordering::SeqCst) {
        for slot in workers.iter_mut() {
            if slot.is_finished() && !shared.shutdown.load(Ordering::SeqCst) {
                let dead = std::mem::replace(slot, spawn_worker(Arc::clone(&shared)));
                let _ = dead.join(); // reaps the panic payload
                shared.counters.respawned.fetch_add(1, Ordering::Relaxed);
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    shared.work_ready.notify_all();
    for w in workers {
        let _ = w.join();
    }
}
