//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! # Framing
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! length   u32 little-endian   payload byte count (not counting these 4)
//! payload  [u8; length]
//! ```
//!
//! Frames larger than [`MAX_FRAME`] are rejected on read before any
//! allocation, so a corrupt or hostile length prefix cannot balloon
//! memory. A connection carries any number of request→response frame
//! pairs in order; either side closing the socket between frames is a
//! clean end of conversation.
//!
//! # Payload encoding
//!
//! Payloads reuse the artifact byte codec from `mdbscan_persist`
//! ([`ByteWriter`]/[`ByteReader`]): all integers little-endian, `f64`
//! as IEEE-754 bits (what keeps served labels **bit-identical** to
//! in-process calls — no text round-trip ever touches `ε` or `ρ`).
//! The first payload byte is an opcode (requests) or a status byte
//! (responses); the tables below are the complete protocol.
//!
//! ## Requests
//!
//! | opcode | meaning | body |
//! |--------|---------|------|
//! | `0x01` | Query   | solver `u8` (0 exact, 1 approx, 2 cover-tree, 3 streaming), `ε` `f64`, `MinPts` `u64`, `ρ` `f64` (read only for approx/streaming) |
//! | `0x02` | Ingest  | count `u64`, then each point via `PersistPoint::encode_point` |
//! | `0x03` | Save checkpoint | empty |
//! | `0x04` | Stats   | empty |
//! | `0x05` | Metrics | empty — full registry snapshot, see status `0x04` |
//! | `0xEE` | Crash worker (test ops only) | empty |
//!
//! ## Responses
//!
//! | status | meaning | body |
//! |--------|---------|------|
//! | `0x00` | Labels | epoch `u64`, cluster count `u64`, label count `u64`, then per label: `u8` tag (0 noise, 1 core, 2 border) + `u32` cluster id for tags 1–2 |
//! | `0x01` | Ingested | the seven [`WireIngestReport`] fields |
//! | `0x02` | Saved | checkpoint sequence number `u64` |
//! | `0x03` | Stats | the [`WireStats`] fields |
//! | `0x04` | Metrics | counter count `u64` then per counter name `str` + value `u64`; gauge count `u64` then per gauge name `str` + value `u64`; histogram count `u64` then per histogram name `str` + bucket count `u64` + per-bucket `u64` counts + sum `u64` + observation count `u64` (strings are `u64` byte length + UTF-8 bytes, the `ByteWriter::put_str` form) |
//! | `0xF0` | Overloaded | `retry_after_ms` `u32` — admission queue full, request was shed **before** any work |
//! | `0xF1` | Engine error | display string — a typed [`mdbscan_core::DbscanError`] (bad `ε`, index too coarse, poisoned writer, …) |
//! | `0xF2` | Internal | panic payload rendered as text — the request panicked inside the worker; the worker survived |
//! | `0xF3` | Bad request | reason string — undecodable frame or an op the server has disabled |
//!
//! Unknown opcodes/statuses fail decoding typed; they are never
//! silently skipped.
//!
//! ## `Stats` evolution
//!
//! The `0x03` Stats body is the one payload allowed to **grow**: the
//! fourteen original `u64` fields (through `rp_candidates_rejected`)
//! are followed by four latency-summary `u64`s added later —
//! `query_p50_micros`, `query_p99_micros`, `queue_wait_p50_micros`,
//! `queue_wait_p99_micros`, in that order. Decoders read the original
//! fields, then read each later group **only if bytes remain**
//! (defaulting to zero otherwise), and ignore trailing bytes they do
//! not know — so an old client keeps decoding what it knows from a
//! new server, and a new client decodes an old server's reply with
//! zeroed summaries. Every other payload still rejects trailing bytes.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

use mdbscan_core::{IngestReport, PointLabel};
use mdbscan_metric::PersistPoint;
use mdbscan_obs::{HistogramSnapshot, RegistrySnapshot};
use mdbscan_persist::{ByteReader, ByteWriter, PersistError};

/// Hard ceiling on a single frame's payload, checked before allocating.
pub const MAX_FRAME: usize = 64 << 20;

/// Which solver a query runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Solver {
    /// §3.1 exact DBSCAN over the radius-guided net.
    Exact,
    /// Algorithm 2, ρ-approximate. Carries `ρ`.
    Approx(f64),
    /// §3.2 exact DBSCAN via the cover-tree net.
    CoverTree,
    /// Algorithm 3, 3-pass streaming. Carries `ρ`.
    Streaming(f64),
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request<P> {
    /// Run a solver at `(ε, MinPts)` against the engine's current epoch.
    Query {
        /// The solver (and its `ρ`, where applicable).
        solver: Solver,
        /// Query radius `ε`.
        eps: f64,
        /// Density threshold `MinPts`.
        min_pts: usize,
    },
    /// Append a batch of points (one new epoch).
    Ingest(Vec<P>),
    /// Write the next numbered checkpoint to the server's directory.
    SaveCheckpoint,
    /// Server counters.
    Stats,
    /// Full observability registry snapshot — every counter, gauge,
    /// and latency histogram the replica has recorded.
    Metrics,
    /// Kill this worker thread (panic outside the request guard) —
    /// only honored when the server enables test ops; exercises the
    /// supervisor's worker resurrection deterministically.
    CrashWorker,
}

const OP_QUERY: u8 = 0x01;
const OP_INGEST: u8 = 0x02;
const OP_SAVE: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_METRICS: u8 = 0x05;
const OP_CRASH_WORKER: u8 = 0xEE;

/// [`IngestReport`] as it travels on the wire (identical fields; kept
/// separate so the wire format never drifts silently under a core
/// refactor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireIngestReport {
    /// Epoch published by the batch.
    pub epoch: u64,
    /// Points inserted.
    pub added_points: u64,
    /// Centers created.
    pub new_centers: u64,
    /// Cover sets that gained members.
    pub dirty_balls: u64,
    /// Total points after the call.
    pub num_points: u64,
    /// Total centers after the call.
    pub num_centers: u64,
    /// Whether the net still covers every point.
    pub covered: bool,
}

impl From<IngestReport> for WireIngestReport {
    fn from(r: IngestReport) -> Self {
        Self {
            epoch: r.epoch,
            added_points: r.added_points as u64,
            new_centers: r.new_centers as u64,
            dirty_balls: r.dirty_balls as u64,
            num_points: r.num_points as u64,
            num_centers: r.num_centers as u64,
            covered: r.covered,
        }
    }
}

/// Server counters returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Requests answered (any status except shed).
    pub served: u64,
    /// Connections shed with `Overloaded` at admission.
    pub shed: u64,
    /// Requests that panicked and were isolated to an `Internal` reply.
    pub panics: u64,
    /// Worker threads the supervisor resurrected.
    pub workers_respawned: u64,
    /// Connections waiting in the admission queue right now.
    pub queue_depth: u64,
    /// The engine's current epoch.
    pub epoch: u64,
    /// Points in the engine.
    pub num_points: u64,
    /// Centers in the engine's net.
    pub num_centers: u64,
    /// Grid cells probed by queries served through the grid candidate
    /// index ([`mdbscan_core::CandidateIndex::Grid`]); zero when the
    /// engine runs the generic path.
    pub grid_cells_probed: u64,
    /// Candidate points those cells emitted to the metric.
    pub grid_candidates_emitted: u64,
    /// Candidate points rejected by cell lower bounds without a
    /// distance evaluation.
    pub grid_candidates_rejected: u64,
    /// Projection lists probed by queries served through the
    /// random-projection candidate index
    /// ([`mdbscan_core::CandidateIndex::RandomProjection`]); zero when
    /// the engine runs the generic or grid path.
    pub rp_projections: u64,
    /// Candidate points those lists emitted to the metric.
    pub rp_candidates_emitted: u64,
    /// Candidate list entries dropped before evaluation (duplicates
    /// across probed lists, plus labeling candidates outside the
    /// summary).
    pub rp_candidates_rejected: u64,
    /// Median end-to-end request handling latency in microseconds
    /// (read → execute → reply written), estimated from the server's
    /// log2-bucket histogram. Zero until the first request completes,
    /// and zero when talking to a server predating this field.
    pub query_p50_micros: u64,
    /// 99th-percentile end-to-end request latency in microseconds.
    pub query_p99_micros: u64,
    /// Median admission-queue wait in microseconds (accept → a worker
    /// dequeues the connection).
    pub queue_wait_p50_micros: u64,
    /// 99th-percentile admission-queue wait in microseconds.
    pub queue_wait_p99_micros: u64,
}

/// A query answer: the epoch it was computed at plus per-point labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// Epoch the labels describe.
    pub epoch: u64,
    /// Dense cluster count.
    pub num_clusters: u64,
    /// One label per point, index-aligned with the engine's point
    /// order — byte-identical to the in-process
    /// [`mdbscan_core::Clustering::labels`].
    pub labels: Vec<PointLabel>,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Query succeeded.
    Labels(QueryReply),
    /// Ingest succeeded.
    Ingested(WireIngestReport),
    /// Checkpoint written; carries its sequence number.
    Saved(u64),
    /// Counters.
    Stats(WireStats),
    /// Full registry snapshot.
    Metrics(RegistrySnapshot),
    /// Shed at admission; retry after the given hint.
    Overloaded {
        /// Client backoff hint in milliseconds.
        retry_after_ms: u32,
    },
    /// The engine refused the request with a typed error.
    EngineError(String),
    /// The request panicked; the worker caught it and survived.
    Internal(String),
    /// Undecodable or disabled request.
    BadRequest(String),
}

const ST_LABELS: u8 = 0x00;
const ST_INGESTED: u8 = 0x01;
const ST_SAVED: u8 = 0x02;
const ST_STATS: u8 = 0x03;
const ST_METRICS: u8 = 0x04;
const ST_OVERLOADED: u8 = 0xF0;
const ST_ENGINE_ERROR: u8 = 0xF1;
const ST_INTERNAL: u8 = 0xF2;
const ST_BAD_REQUEST: u8 = 0xF3;

impl<P: PersistPoint> Request<P> {
    /// Serializes the request payload (no frame prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::Query {
                solver,
                eps,
                min_pts,
            } => {
                w.put_u8(OP_QUERY);
                let (code, rho) = match solver {
                    Solver::Exact => (0u8, 0.0),
                    Solver::Approx(rho) => (1, *rho),
                    Solver::CoverTree => (2, 0.0),
                    Solver::Streaming(rho) => (3, *rho),
                };
                w.put_u8(code);
                w.put_f64(*eps);
                w.put_u64(*min_pts as u64);
                w.put_f64(rho);
            }
            Request::Ingest(points) => {
                w.put_u8(OP_INGEST);
                w.put_u64(points.len() as u64);
                for p in points {
                    p.encode_point(&mut w);
                }
            }
            Request::SaveCheckpoint => w.put_u8(OP_SAVE),
            Request::Stats => w.put_u8(OP_STATS),
            Request::Metrics => w.put_u8(OP_METRICS),
            Request::CrashWorker => w.put_u8(OP_CRASH_WORKER),
        }
        w.into_bytes()
    }

    /// Decodes a request payload. Any malformation — unknown opcode,
    /// truncation, trailing bytes — is a typed [`PersistError`] the
    /// server answers with [`Response::BadRequest`].
    pub fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut r = ByteReader::new("request", payload);
        let op = r.get_u8()?;
        let req = match op {
            OP_QUERY => {
                let code = r.get_u8()?;
                let eps = r.get_f64()?;
                let min_pts = r.get_u64()? as usize;
                let rho = r.get_f64()?;
                let solver = match code {
                    0 => Solver::Exact,
                    1 => Solver::Approx(rho),
                    2 => Solver::CoverTree,
                    3 => Solver::Streaming(rho),
                    b => return Err(r.err(format!("unknown solver {b}"))),
                };
                Request::Query {
                    solver,
                    eps,
                    min_pts,
                }
            }
            OP_INGEST => {
                let n = r.get_u64()? as usize;
                let mut points = Vec::with_capacity(n.min(r.remaining() + 1));
                for _ in 0..n {
                    points.push(P::decode_point(&mut r)?);
                }
                Request::Ingest(points)
            }
            OP_SAVE => Request::SaveCheckpoint,
            OP_STATS => Request::Stats,
            OP_METRICS => Request::Metrics,
            OP_CRASH_WORKER => Request::CrashWorker,
            b => return Err(r.err(format!("unknown request opcode {b:#04x}"))),
        };
        if !r.finished() {
            return Err(r.err(format!("{} trailing bytes", r.remaining())));
        }
        Ok(req)
    }
}

fn encode_label(w: &mut ByteWriter, label: &PointLabel) {
    match label {
        PointLabel::Noise => w.put_u8(0),
        PointLabel::Core(c) => {
            w.put_u8(1);
            w.put_u32(*c);
        }
        PointLabel::Border(c) => {
            w.put_u8(2);
            w.put_u32(*c);
        }
    }
}

fn decode_label(r: &mut ByteReader<'_>) -> Result<PointLabel, PersistError> {
    Ok(match r.get_u8()? {
        0 => PointLabel::Noise,
        1 => PointLabel::Core(r.get_u32()?),
        2 => PointLabel::Border(r.get_u32()?),
        b => return Err(r.err(format!("unknown label tag {b}"))),
    })
}

fn encode_scalar_map(w: &mut ByteWriter, map: &BTreeMap<String, u64>) {
    w.put_u64(map.len() as u64);
    for (name, value) in map {
        w.put_str(name);
        w.put_u64(*value);
    }
}

fn decode_scalar_map(r: &mut ByteReader<'_>) -> Result<BTreeMap<String, u64>, PersistError> {
    let n = r.get_u64()? as usize;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let name = r.get_str()?;
        map.insert(name, r.get_u64()?);
    }
    Ok(map)
}

fn encode_registry(w: &mut ByteWriter, snap: &RegistrySnapshot) {
    encode_scalar_map(w, &snap.counters);
    encode_scalar_map(w, &snap.gauges);
    w.put_u64(snap.histograms.len() as u64);
    for (name, h) in &snap.histograms {
        w.put_str(name);
        w.put_u64(h.buckets.len() as u64);
        for b in &h.buckets {
            w.put_u64(*b);
        }
        w.put_u64(h.sum);
        w.put_u64(h.count);
    }
}

fn decode_registry(r: &mut ByteReader<'_>) -> Result<RegistrySnapshot, PersistError> {
    let counters = decode_scalar_map(r)?;
    let gauges = decode_scalar_map(r)?;
    let n = r.get_u64()? as usize;
    let mut histograms = BTreeMap::new();
    for _ in 0..n {
        let name = r.get_str()?;
        let len = r.get_u64()? as usize;
        let mut buckets = Vec::with_capacity(len.min(r.remaining() + 1));
        for _ in 0..len {
            buckets.push(r.get_u64()?);
        }
        let sum = r.get_u64()?;
        let count = r.get_u64()?;
        histograms.insert(
            name,
            HistogramSnapshot {
                buckets,
                sum,
                count,
            },
        );
    }
    Ok(RegistrySnapshot {
        counters,
        gauges,
        histograms,
    })
}

impl Response {
    /// Serializes the response payload (no frame prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Labels(reply) => {
                w.put_u8(ST_LABELS);
                w.put_u64(reply.epoch);
                w.put_u64(reply.num_clusters);
                w.put_u64(reply.labels.len() as u64);
                for label in &reply.labels {
                    encode_label(&mut w, label);
                }
            }
            Response::Ingested(rep) => {
                w.put_u8(ST_INGESTED);
                w.put_u64(rep.epoch);
                w.put_u64(rep.added_points);
                w.put_u64(rep.new_centers);
                w.put_u64(rep.dirty_balls);
                w.put_u64(rep.num_points);
                w.put_u64(rep.num_centers);
                w.put_bool(rep.covered);
            }
            Response::Saved(seq) => {
                w.put_u8(ST_SAVED);
                w.put_u64(*seq);
            }
            Response::Stats(s) => {
                w.put_u8(ST_STATS);
                w.put_u64(s.served);
                w.put_u64(s.shed);
                w.put_u64(s.panics);
                w.put_u64(s.workers_respawned);
                w.put_u64(s.queue_depth);
                w.put_u64(s.epoch);
                w.put_u64(s.num_points);
                w.put_u64(s.num_centers);
                w.put_u64(s.grid_cells_probed);
                w.put_u64(s.grid_candidates_emitted);
                w.put_u64(s.grid_candidates_rejected);
                w.put_u64(s.rp_projections);
                w.put_u64(s.rp_candidates_emitted);
                w.put_u64(s.rp_candidates_rejected);
                // Additive tail (see "Stats evolution" above): old
                // decoders stop before these, new decoders read them
                // only when present.
                w.put_u64(s.query_p50_micros);
                w.put_u64(s.query_p99_micros);
                w.put_u64(s.queue_wait_p50_micros);
                w.put_u64(s.queue_wait_p99_micros);
            }
            Response::Metrics(snap) => {
                w.put_u8(ST_METRICS);
                encode_registry(&mut w, snap);
            }
            Response::Overloaded { retry_after_ms } => {
                w.put_u8(ST_OVERLOADED);
                w.put_u32(*retry_after_ms);
            }
            Response::EngineError(msg) => {
                w.put_u8(ST_ENGINE_ERROR);
                w.put_str(msg);
            }
            Response::Internal(msg) => {
                w.put_u8(ST_INTERNAL);
                w.put_str(msg);
            }
            Response::BadRequest(msg) => {
                w.put_u8(ST_BAD_REQUEST);
                w.put_str(msg);
            }
        }
        w.into_bytes()
    }

    /// Decodes a response payload.
    pub fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut r = ByteReader::new("response", payload);
        let st = r.get_u8()?;
        let resp = match st {
            ST_LABELS => {
                let epoch = r.get_u64()?;
                let num_clusters = r.get_u64()?;
                let n = r.get_u64()? as usize;
                let mut labels = Vec::with_capacity(n.min(r.remaining() + 1));
                for _ in 0..n {
                    labels.push(decode_label(&mut r)?);
                }
                Response::Labels(QueryReply {
                    epoch,
                    num_clusters,
                    labels,
                })
            }
            ST_INGESTED => Response::Ingested(WireIngestReport {
                epoch: r.get_u64()?,
                added_points: r.get_u64()?,
                new_centers: r.get_u64()?,
                dirty_balls: r.get_u64()?,
                num_points: r.get_u64()?,
                num_centers: r.get_u64()?,
                covered: r.get_bool()?,
            }),
            ST_SAVED => Response::Saved(r.get_u64()?),
            ST_STATS => {
                let mut s = WireStats {
                    served: r.get_u64()?,
                    shed: r.get_u64()?,
                    panics: r.get_u64()?,
                    workers_respawned: r.get_u64()?,
                    queue_depth: r.get_u64()?,
                    epoch: r.get_u64()?,
                    num_points: r.get_u64()?,
                    num_centers: r.get_u64()?,
                    grid_cells_probed: r.get_u64()?,
                    grid_candidates_emitted: r.get_u64()?,
                    grid_candidates_rejected: r.get_u64()?,
                    rp_projections: r.get_u64()?,
                    rp_candidates_emitted: r.get_u64()?,
                    rp_candidates_rejected: r.get_u64()?,
                    ..WireStats::default()
                };
                if !r.finished() {
                    s.query_p50_micros = r.get_u64()?;
                    s.query_p99_micros = r.get_u64()?;
                    s.queue_wait_p50_micros = r.get_u64()?;
                    s.queue_wait_p99_micros = r.get_u64()?;
                }
                // Tolerate fields newer than this decoder: a Stats
                // reply never rejects trailing bytes.
                return Ok(Response::Stats(s));
            }
            ST_METRICS => Response::Metrics(decode_registry(&mut r)?),
            ST_OVERLOADED => Response::Overloaded {
                retry_after_ms: r.get_u32()?,
            },
            ST_ENGINE_ERROR => Response::EngineError(r.get_str()?),
            ST_INTERNAL => Response::Internal(r.get_str()?),
            ST_BAD_REQUEST => Response::BadRequest(r.get_str()?),
            b => return Err(r.err(format!("unknown response status {b:#04x}"))),
        };
        if !r.finished() {
            return Err(r.err(format!("{} trailing bytes", r.remaining())));
        }
        Ok(resp)
    }
}

/// Writes one frame: `u32` little-endian payload length, then the
/// payload, then a flush.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one frame, or `Ok(None)` on a clean close (EOF **between**
/// frames). EOF or a timeout mid-frame is an error; a length prefix
/// beyond [`MAX_FRAME`] is rejected before any allocation.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request<Vec<f64>>) {
        let bytes = req.encode();
        assert_eq!(Request::<Vec<f64>>::decode(&bytes).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Query {
            solver: Solver::Exact,
            eps: 1.5,
            min_pts: 5,
        });
        round_trip_request(Request::Query {
            solver: Solver::Approx(0.25),
            eps: 2.0,
            min_pts: 10,
        });
        round_trip_request(Request::Query {
            solver: Solver::Streaming(0.5),
            eps: 0.75,
            min_pts: 3,
        });
        round_trip_request(Request::Ingest(vec![vec![1.0, 2.0], vec![3.0, 4.0]]));
        round_trip_request(Request::SaveCheckpoint);
        round_trip_request(Request::Stats);
        round_trip_request(Request::Metrics);
        round_trip_request(Request::CrashWorker);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Labels(QueryReply {
            epoch: 7,
            num_clusters: 2,
            labels: vec![
                PointLabel::Core(0),
                PointLabel::Border(1),
                PointLabel::Noise,
            ],
        }));
        round_trip_response(Response::Ingested(WireIngestReport {
            epoch: 3,
            added_points: 10,
            new_centers: 2,
            dirty_balls: 4,
            num_points: 110,
            num_centers: 12,
            covered: true,
        }));
        round_trip_response(Response::Saved(42));
        round_trip_response(Response::Stats(WireStats {
            served: 1,
            shed: 2,
            panics: 3,
            workers_respawned: 4,
            queue_depth: 5,
            epoch: 6,
            num_points: 7,
            num_centers: 8,
            grid_cells_probed: 9,
            grid_candidates_emitted: 10,
            grid_candidates_rejected: 11,
            rp_projections: 12,
            rp_candidates_emitted: 13,
            rp_candidates_rejected: 14,
            query_p50_micros: 150,
            query_p99_micros: 9_000,
            queue_wait_p50_micros: 12,
            queue_wait_p99_micros: 480,
        }));
        round_trip_response(Response::Overloaded { retry_after_ms: 25 });
        round_trip_response(Response::EngineError("index too coarse".into()));
        round_trip_response(Response::Internal("metric exploded".into()));
        round_trip_response(Response::BadRequest("unknown opcode".into()));
    }

    #[test]
    fn metrics_round_trip() {
        let registry = mdbscan_obs::Registry::new();
        registry.counter("serve_requests_served_total").add(41);
        registry.gauge("engine_epoch").set(7);
        let hist = registry.histogram("serve_request_micros");
        for v in [0, 1, 5, 1000, u64::MAX] {
            hist.record(v);
        }
        round_trip_response(Response::Metrics(registry.snapshot()));
        // An empty registry is a valid (if boring) reply.
        round_trip_response(Response::Metrics(RegistrySnapshot::default()));
    }

    #[test]
    fn stats_decode_is_forward_and_backward_tolerant() {
        let stats = WireStats {
            served: 5,
            panics: 1,
            query_p50_micros: 200,
            queue_wait_p99_micros: 999,
            ..WireStats::default()
        };
        let full = Response::Stats(stats).encode();

        // A truncated (pre-latency-summary) body still decodes, with
        // the new fields defaulting to zero — what an old server sends.
        let old_len = full.len() - 4 * 8;
        let old = &full[..old_len];
        match Response::decode(old).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.served, 5);
                assert_eq!(s.panics, 1);
                assert_eq!(s.query_p50_micros, 0);
                assert_eq!(s.queue_wait_p99_micros, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }

        // Bytes beyond what this decoder knows are ignored — what a
        // future server may send.
        let mut future = full.clone();
        future.extend_from_slice(&7u64.to_le_bytes());
        match Response::decode(&future).unwrap() {
            Response::Stats(s) => assert_eq!(s.query_p50_micros, 200),
            other => panic!("expected stats, got {other:?}"),
        }

        // Every other status still rejects trailing bytes.
        let mut saved = Response::Saved(3).encode();
        saved.push(0);
        assert!(Response::decode(&saved).is_err());
    }

    #[test]
    fn unknown_opcode_and_trailing_bytes_fail_typed() {
        assert!(Request::<Vec<f64>>::decode(&[0x77]).is_err());
        let mut bytes = Request::<Vec<f64>>::encode(&Request::Stats);
        bytes.push(0);
        assert!(Request::<Vec<f64>>::decode(&bytes).is_err());
        assert!(Response::decode(&[0x99]).is_err());
    }

    #[test]
    fn frames_round_trip_and_bound_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());

        // A hostile length prefix is rejected before allocation.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut cursor = std::io::Cursor::new(huge.to_vec());
        assert!(read_frame(&mut cursor).is_err());

        // EOF mid-frame is an error, not a clean close.
        let mut partial = 10u32.to_le_bytes().to_vec();
        partial.extend_from_slice(b"abc");
        let mut cursor = std::io::Cursor::new(partial);
        assert!(read_frame(&mut cursor).is_err());
    }
}
