//! `mdbscan-serve`: stand up a query server over a synthetic-blob (or
//! checkpoint-restored) engine.
//!
//! ```text
//! mdbscan-serve [--addr 127.0.0.1:7878] [--workers N] [--queue N]
//!               [--n 2000] [--dim 8] [--rbar 0.5] [--seed 42]
//!               [--checkpoint-dir DIR] [--test-ops]
//! ```
//!
//! With `--checkpoint-dir`, the engine warm-starts from the newest
//! readable checkpoint in the directory (`load_latest`) when one
//! exists — falling back past torn or corrupt files — and the wire
//! `SaveCheckpoint` op writes new numbered checkpoints there.

use std::sync::Arc;

use mdbscan_core::MetricDbscan;
use mdbscan_datagen::{blobs, BlobSpec};
use mdbscan_metric::Euclidean;
use mdbscan_serve::{ServeConfig, Server};

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    n: usize,
    dim: usize,
    rbar: f64,
    seed: u64,
    checkpoint_dir: Option<String>,
    test_ops: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: "127.0.0.1:7878".into(),
        workers: ServeConfig::default().workers,
        queue: 64,
        n: 2000,
        dim: 8,
        rbar: 0.5,
        seed: 42,
        checkpoint_dir: None,
        test_ops: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                out.addr.clone_from(&args[i]);
            }
            "--checkpoint-dir" => {
                i += 1;
                out.checkpoint_dir = Some(args[i].clone());
            }
            "--workers" => {
                i += 1;
                out.workers = args[i].parse().expect("--workers takes a usize");
            }
            "--queue" => {
                i += 1;
                out.queue = args[i].parse().expect("--queue takes a usize");
            }
            "--n" => {
                i += 1;
                out.n = args[i].parse().expect("--n takes a usize");
            }
            "--dim" => {
                i += 1;
                out.dim = args[i].parse().expect("--dim takes a usize");
            }
            "--rbar" => {
                i += 1;
                out.rbar = args[i].parse().expect("--rbar takes a float");
            }
            "--seed" => {
                i += 1;
                out.seed = args[i].parse().expect("--seed takes a u64");
            }
            "--test-ops" => out.test_ops = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --addr HOST:PORT --workers N --queue N --n N --dim N \
                     --rbar F --seed U64 --checkpoint-dir DIR --test-ops"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    out
}

fn main() {
    let args = parse_args();

    let engine = match &args.checkpoint_dir {
        Some(dir) => match MetricDbscan::<Vec<f64>, Euclidean>::load_latest(dir, Euclidean) {
            Ok((engine, seq)) => {
                eprintln!(
                    "warm start: checkpoint {seq} from {dir} ({} points, epoch {})",
                    engine.num_points(),
                    engine.epoch()
                );
                if let Some(stats) = engine.load_stats() {
                    eprintln!(
                        "warm start copied {} of {} payload bytes (points {}/{}, metric {}/{})",
                        stats.bytes_copied(),
                        stats.point_payload_bytes + stats.metric_payload_bytes,
                        stats.point_bytes_copied,
                        stats.point_payload_bytes,
                        stats.metric_bytes_copied,
                        stats.metric_payload_bytes,
                    );
                }
                engine
            }
            Err(e) => {
                eprintln!("cold start ({e}); building from synthetic blobs");
                build_fresh(&args)
            }
        },
        None => build_fresh(&args),
    };

    let cfg = ServeConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        checkpoint_dir: args.checkpoint_dir.clone().map(Into::into),
        test_ops: args.test_ops,
        ..ServeConfig::default()
    };
    let server = Server::spawn(Arc::new(engine), args.addr.as_str(), cfg)
        .expect("failed to bind the listener");
    // Line-oriented so harnesses can scrape the bound (possibly
    // ephemeral) port.
    println!("listening {}", server.local_addr());
    // Serve until killed; the supervisor keeps the worker pool alive.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn build_fresh(args: &Args) -> MetricDbscan<Vec<f64>, Euclidean> {
    let dataset = blobs(
        &BlobSpec {
            n: args.n,
            dim: args.dim,
            ..BlobSpec::default()
        },
        args.seed,
    );
    MetricDbscan::builder(dataset.points().to_vec(), Euclidean)
        .rbar(args.rbar)
        .build()
        .expect("engine build failed")
}
