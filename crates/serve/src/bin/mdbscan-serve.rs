//! `mdbscan-serve`: stand up a query server over a synthetic-blob (or
//! checkpoint-restored) engine.
//!
//! ```text
//! mdbscan-serve [--addr 127.0.0.1:7878] [--workers N] [--queue N]
//!               [--n 2000] [--dim 8] [--rbar 0.5] [--seed 42]
//!               [--checkpoint-dir DIR] [--metrics-addr HOST:PORT]
//!               [--log-level LEVEL] [--test-ops]
//! ```
//!
//! With `--checkpoint-dir`, the engine warm-starts from the newest
//! readable checkpoint in the directory (`load_latest`) when one
//! exists — falling back past torn or corrupt files — and the wire
//! `SaveCheckpoint` op writes new numbered checkpoints there.
//!
//! With `--metrics-addr`, a second listener answers `GET /metrics`
//! with the Prometheus-style plaintext exposition of the shared
//! registry: serving-tier latencies *and* the engine's per-phase
//! timings, one scrape.
//!
//! All output is structured `key=value` lines on stderr (leveled,
//! monotonic-timestamped) — including the `event=listening` line
//! harnesses scrape for the bound (possibly ephemeral) port.

use std::sync::Arc;
use std::time::Duration;

use mdbscan_core::{MetricDbscan, MetricsRecorder};
use mdbscan_datagen::{blobs, BlobSpec};
use mdbscan_metric::Euclidean;
use mdbscan_obs::{Level, Logger, Registry};
use mdbscan_serve::{ServeConfig, Server};

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    n: usize,
    dim: usize,
    rbar: f64,
    seed: u64,
    checkpoint_dir: Option<String>,
    metrics_addr: Option<String>,
    log_level: Level,
    summary_secs: u64,
    test_ops: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: "127.0.0.1:7878".into(),
        workers: ServeConfig::default().workers,
        queue: 64,
        n: 2000,
        dim: 8,
        rbar: 0.5,
        seed: 42,
        checkpoint_dir: None,
        metrics_addr: None,
        log_level: Level::Info,
        summary_secs: 60,
        test_ops: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                out.addr.clone_from(&args[i]);
            }
            "--checkpoint-dir" => {
                i += 1;
                out.checkpoint_dir = Some(args[i].clone());
            }
            "--metrics-addr" => {
                i += 1;
                out.metrics_addr = Some(args[i].clone());
            }
            "--log-level" => {
                i += 1;
                out.log_level = match args[i].as_str() {
                    "debug" => Level::Debug,
                    "info" => Level::Info,
                    "warn" => Level::Warn,
                    "error" => Level::Error,
                    other => panic!("--log-level takes debug|info|warn|error, not {other}"),
                };
            }
            "--summary-secs" => {
                i += 1;
                out.summary_secs = args[i].parse().expect("--summary-secs takes a u64");
            }
            "--workers" => {
                i += 1;
                out.workers = args[i].parse().expect("--workers takes a usize");
            }
            "--queue" => {
                i += 1;
                out.queue = args[i].parse().expect("--queue takes a usize");
            }
            "--n" => {
                i += 1;
                out.n = args[i].parse().expect("--n takes a usize");
            }
            "--dim" => {
                i += 1;
                out.dim = args[i].parse().expect("--dim takes a usize");
            }
            "--rbar" => {
                i += 1;
                out.rbar = args[i].parse().expect("--rbar takes a float");
            }
            "--seed" => {
                i += 1;
                out.seed = args[i].parse().expect("--seed takes a u64");
            }
            "--test-ops" => out.test_ops = true,
            "--help" | "-h" => {
                // A bootstrap logger: --log-level may not be parsed yet.
                Logger::stderr(Level::Info).info(
                    "usage",
                    &[(
                        "flags",
                        "--addr HOST:PORT --workers N --queue N --n N --dim N \
                         --rbar F --seed U64 --checkpoint-dir DIR --metrics-addr HOST:PORT \
                         --log-level debug|info|warn|error --summary-secs U64 --test-ops"
                            .into(),
                    )],
                );
                std::process::exit(0);
            }
            other => {
                Logger::stderr(Level::Error).error(
                    "unknown_flag",
                    &[("flag", other.into()), ("hint", "try --help".into())],
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    out
}

fn main() {
    let args = parse_args();
    let log = Logger::stderr(args.log_level);
    let registry = Registry::new();
    let recorder = MetricsRecorder::shared(&registry);

    let engine = match &args.checkpoint_dir {
        Some(dir) => match MetricDbscan::<Vec<f64>, Euclidean>::load_latest(dir, Euclidean) {
            Ok((engine, seq)) => {
                log.info(
                    "warm_start",
                    &[
                        ("checkpoint", seq.to_string()),
                        ("dir", dir.clone()),
                        ("points", engine.num_points().to_string()),
                        ("epoch", engine.epoch().to_string()),
                    ],
                );
                if let Some(stats) = engine.load_stats() {
                    log.info(
                        "warm_start_load_stats",
                        &[
                            ("bytes_copied", stats.bytes_copied().to_string()),
                            (
                                "payload_bytes",
                                (stats.point_payload_bytes + stats.metric_payload_bytes)
                                    .to_string(),
                            ),
                            ("point_bytes_copied", stats.point_bytes_copied.to_string()),
                            ("point_payload_bytes", stats.point_payload_bytes.to_string()),
                            ("metric_bytes_copied", stats.metric_bytes_copied.to_string()),
                            (
                                "metric_payload_bytes",
                                stats.metric_payload_bytes.to_string(),
                            ),
                        ],
                    );
                }
                engine.with_recorder(Arc::clone(&recorder))
            }
            Err(e) => {
                log.warn(
                    "cold_start",
                    &[
                        ("error", e.to_string()),
                        ("fallback", "synthetic blobs".into()),
                    ],
                );
                build_fresh(&args, &registry)
            }
        },
        None => build_fresh(&args, &registry),
    };

    let cfg = ServeConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        checkpoint_dir: args.checkpoint_dir.clone().map(Into::into),
        test_ops: args.test_ops,
        ..ServeConfig::default()
    };
    let server = Server::spawn_with_registry(Arc::new(engine), args.addr.as_str(), cfg, registry)
        .expect("failed to bind the listener");
    // Harnesses scrape this line for the bound (possibly ephemeral)
    // port; the key=value form is stable.
    log.info("listening", &[("addr", server.local_addr().to_string())]);

    let _metrics_http = args.metrics_addr.as_deref().map(|addr| {
        let http = server
            .serve_metrics_http(addr)
            .expect("failed to bind the metrics listener");
        log.info(
            "metrics_listening",
            &[("addr", http.local_addr().to_string())],
        );
        http
    });

    // Serve until killed; the supervisor keeps the worker pool alive,
    // and this thread periodically logs a registry summary.
    loop {
        std::thread::sleep(Duration::from_secs(args.summary_secs.max(1)));
        let stats = server.stats();
        log.info(
            "summary",
            &[
                ("served", stats.served.to_string()),
                ("shed", stats.shed.to_string()),
                ("panics", stats.panics.to_string()),
                ("workers_respawned", stats.workers_respawned.to_string()),
                ("queue_depth", stats.queue_depth.to_string()),
                ("epoch", stats.epoch.to_string()),
                ("num_points", stats.num_points.to_string()),
                ("query_p50_micros", stats.query_p50_micros.to_string()),
                ("query_p99_micros", stats.query_p99_micros.to_string()),
                (
                    "queue_wait_p99_micros",
                    stats.queue_wait_p99_micros.to_string(),
                ),
            ],
        );
    }
}

fn build_fresh(args: &Args, registry: &Registry) -> MetricDbscan<Vec<f64>, Euclidean> {
    let dataset = blobs(
        &BlobSpec {
            n: args.n,
            dim: args.dim,
            ..BlobSpec::default()
        },
        args.seed,
    );
    MetricDbscan::builder(dataset.points().to_vec(), Euclidean)
        .rbar(args.rbar)
        .recorder(MetricsRecorder::shared(registry))
        .build()
        .expect("engine build failed")
}
