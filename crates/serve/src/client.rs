//! Client library: one connection attempt per request, deterministic
//! seeded retry with full-jitter exponential backoff.
//!
//! Retries fire **only** on transport errors and typed
//! [`Response::Overloaded`] sheds — the two failure classes where the
//! request provably did not (or may not have) run. Engine errors,
//! panics isolated to [`Response::Internal`], and bad requests are
//! returned immediately: retrying a deterministic failure is just load.
//!
//! The backoff schedule is a pure function of the [`RetryPolicy`] seed
//! (full jitter drawn from the shim `rand::rngs::StdRng`), so a test or
//! bench re-running with the same seed replays byte-identical sleeps —
//! the fault-injection harness depends on that.

use std::marker::PhantomData;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use mdbscan_metric::PersistPoint;
use mdbscan_obs::RegistrySnapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{
    read_frame, write_frame, QueryReply, Request, Response, Solver, WireIngestReport, WireStats,
};

/// Retry/backoff knobs. The defaults suit a loopback harness; raise
/// the timeouts for a real network.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 1 disables retries.
    pub max_attempts: u32,
    /// Backoff cap doubles from this base per retry (full jitter:
    /// each sleep is uniform in `[0, cap]`).
    pub base_backoff: Duration,
    /// Upper bound on any single sleep.
    pub max_backoff: Duration,
    /// Per-connection read/write deadline.
    pub timeout: Duration,
    /// Seed for the jitter stream; same seed → same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(250),
            timeout: Duration::from_secs(5),
            seed: 0xC11E47,
        }
    }
}

/// A client failure after retries are exhausted (or on a non-retryable
/// response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transport failure on the final attempt (connect, read, write,
    /// or deadline).
    Io(String),
    /// Every attempt was shed; carries the server's last backoff hint.
    Overloaded {
        /// The last `retry_after_ms` hint received.
        retry_after_ms: u32,
    },
    /// The engine refused the request with a typed error.
    Engine(String),
    /// The request panicked server-side (isolated; the server is fine).
    Internal(String),
    /// The server rejected the request as malformed or disabled.
    BadRequest(String),
    /// The server answered with bytes that do not decode, or with a
    /// response kind that does not match the request.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed: {e}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded (retry after {retry_after_ms}ms)")
            }
            ClientError::Engine(e) => write!(f, "engine error: {e}"),
            ClientError::Internal(e) => write!(f, "server-side panic (isolated): {e}"),
            ClientError::BadRequest(e) => write!(f, "bad request: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A typed client for one server address. Generic over the engine's
/// point type `P` (what [`Client::ingest`] sends).
#[derive(Debug)]
pub struct Client<P> {
    addr: SocketAddr,
    policy: RetryPolicy,
    rng: StdRng,
    _point: PhantomData<fn(P)>,
}

impl<P: PersistPoint> Client<P> {
    /// A client with the default [`RetryPolicy`].
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_policy(addr, RetryPolicy::default())
    }

    /// A client with an explicit policy (tests pin the seed).
    pub fn with_policy(addr: SocketAddr, policy: RetryPolicy) -> Self {
        let rng = StdRng::seed_from_u64(policy.seed);
        Self {
            addr,
            policy,
            rng,
            _point: PhantomData,
        }
    }

    /// Runs a solver; the reply's labels are byte-identical to calling
    /// the same solver on the engine in-process at the reply's epoch.
    pub fn query(
        &mut self,
        solver: Solver,
        eps: f64,
        min_pts: usize,
    ) -> Result<QueryReply, ClientError> {
        match self.call(&Request::Query {
            solver,
            eps,
            min_pts,
        })? {
            Response::Labels(reply) => Ok(reply),
            other => Err(unexpected(other)),
        }
    }

    /// Appends a batch of points.
    pub fn ingest(&mut self, points: Vec<P>) -> Result<WireIngestReport, ClientError> {
        match self.call(&Request::Ingest(points))? {
            Response::Ingested(report) => Ok(report),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to write its next numbered checkpoint; returns
    /// the sequence number.
    pub fn save_checkpoint(&mut self) -> Result<u64, ClientError> {
        match self.call(&Request::SaveCheckpoint)? {
            Response::Saved(seq) => Ok(seq),
            other => Err(unexpected(other)),
        }
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// The server's full observability registry snapshot — every
    /// counter, gauge, and latency histogram, same numbers the
    /// `/metrics` exposition renders.
    pub fn metrics(&mut self) -> Result<RegistrySnapshot, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Err(unexpected(other)),
        }
    }

    /// Test ops: asks the server to kill the serving worker (no reply
    /// ever arrives — expect [`ClientError::Io`] unless the server has
    /// test ops disabled). Never retries.
    pub fn crash_worker(&mut self) -> Result<Response, ClientError> {
        self.attempt(&Request::CrashWorker)
    }

    /// One connect→send→receive round trip under the policy deadline.
    fn attempt(&mut self, request: &Request<P>) -> Result<Response, ClientError> {
        let io = |e: std::io::Error| ClientError::Io(e.to_string());
        let mut stream = TcpStream::connect(self.addr).map_err(io)?;
        stream
            .set_read_timeout(Some(self.policy.timeout))
            .map_err(io)?;
        stream
            .set_write_timeout(Some(self.policy.timeout))
            .map_err(io)?;
        let _ = stream.set_nodelay(true);
        write_frame(&mut stream, &request.encode()).map_err(io)?;
        let payload = read_frame(&mut stream)
            .map_err(io)?
            .ok_or_else(|| ClientError::Io("server closed before replying".into()))?;
        Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// The retry loop: transport errors and `Overloaded` sheds back
    /// off and retry; everything else returns immediately.
    fn call(&mut self, request: &Request<P>) -> Result<Response, ClientError> {
        let mut last = ClientError::Io("no attempt made".into());
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                let hint = match &last {
                    ClientError::Overloaded { retry_after_ms } => {
                        Duration::from_millis(u64::from(*retry_after_ms))
                    }
                    _ => Duration::ZERO,
                };
                std::thread::sleep(self.backoff(attempt).max(hint));
            }
            match self.attempt(request) {
                Ok(Response::Overloaded { retry_after_ms }) => {
                    last = ClientError::Overloaded { retry_after_ms };
                }
                Ok(response) => return Ok(response),
                Err(e @ ClientError::Io(_)) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Full jitter: uniform in `[0, min(max, base·2^(attempt−1))]`.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let cap = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.policy.max_backoff);
        let nanos = cap.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.rng.random_range(0..=nanos))
    }
}

fn unexpected(response: Response) -> ClientError {
    match response {
        Response::EngineError(e) => ClientError::Engine(e),
        Response::Internal(e) => ClientError::Internal(e),
        Response::BadRequest(e) => ClientError::BadRequest(e),
        Response::Overloaded { retry_after_ms } => ClientError::Overloaded { retry_after_ms },
        other => ClientError::Protocol(format!("response does not match request: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed_and_bounded() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let policy = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        let mut a = Client::<Vec<f64>>::with_policy(addr, policy.clone());
        let mut b = Client::<Vec<f64>>::with_policy(addr, policy.clone());
        for attempt in 1..6 {
            let da = a.backoff(attempt);
            assert_eq!(da, b.backoff(attempt), "attempt {attempt}");
            assert!(da <= policy.max_backoff);
        }
        let mut c = Client::<Vec<f64>>::with_policy(
            addr,
            RetryPolicy {
                seed: 8,
                ..policy.clone()
            },
        );
        let differs = (1..6).any(|i| {
            Client::<Vec<f64>>::with_policy(addr, policy.clone()).backoff(i) != c.backoff(i)
        });
        assert!(differs, "different seeds should jitter differently");
    }

    #[test]
    fn connecting_nowhere_is_a_typed_io_error() {
        // Port 1 on loopback is essentially never listening.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut client = Client::<Vec<f64>>::with_policy(
            addr,
            RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_micros(10),
                max_backoff: Duration::from_micros(20),
                ..RetryPolicy::default()
            },
        );
        match client.stats() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
