//! Metrics on strings.
//!
//! The paper's non-Euclidean experiments cluster text corpora (COLA,
//! AG News, MRPC, MNLI) under **edit distance** (Levenshtein). Edit distance
//! is the canonical example of a metric that (a) satisfies the triangle
//! inequality, (b) has no coordinate structure to grid or hash, and (c) is
//! expensive — `O(|a|·|b|)` per evaluation — so reducing the *number* of
//! distance calls (the whole point of the paper) dominates runtime.

use crate::metric::Metric;

/// Levenshtein edit distance (unit-cost insert/delete/substitute), operating
/// on Unicode scalar values.
///
/// [`Metric::distance_leq`] runs the banded variant (Ukkonen's cutoff): only
/// the diagonal band of width `2·bound + 1` of the DP matrix is evaluated,
/// giving `O(bound · max(|a|, |b|))` time and an immediate `None` when
/// `||a| − |b|| > bound`. DBSCAN only ever asks threshold queries, so in
/// practice the full quadratic DP is rarely executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Levenshtein;

/// Hamming distance on equal-length strings (number of differing positions).
///
/// Panics in debug builds if the strings have different character counts;
/// in release the excess tail counts as mismatches, matching the common
/// "pad with sentinels" convention.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hamming;

fn levenshtein_full(a: &[char], b: &[char]) -> usize {
    let mut prev = Vec::new();
    let mut cur = Vec::new();
    levenshtein_full_with(a, b, &mut prev, &mut cur)
}

/// As [`levenshtein_full`], reusing caller-provided DP rows — the batched
/// kernel ([`crate::BatchMetric`]) runs many candidates against one query
/// and amortizes the row allocations across the whole batch.
pub(crate) fn levenshtein_full_with(
    a: &[char],
    b: &[char],
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // One-row DP.
    prev.clear();
    prev.extend(0..=b.len());
    cur.clear();
    cur.resize(b.len() + 1, 0);
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(prev, cur);
    }
    prev[b.len()]
}

/// Banded Levenshtein: returns `Some(d)` iff `d <= k`.
fn levenshtein_banded(a: &[char], b: &[char], k: usize) -> Option<usize> {
    let mut prev = Vec::new();
    let mut cur = Vec::new();
    levenshtein_banded_with(a, b, k, &mut prev, &mut cur)
}

/// As [`levenshtein_banded`], reusing caller-provided DP rows (see
/// [`levenshtein_full_with`]).
pub(crate) fn levenshtein_banded_with(
    a: &[char],
    b: &[char],
    k: usize,
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > k {
        return None;
    }
    if n == 0 {
        return Some(m); // m <= k by the check above
    }
    if m == 0 {
        return Some(n);
    }
    const BIG: usize = usize::MAX / 2;
    // prev[j] = edit distance of a[..i] vs b[..j] restricted to the band
    // |i - j| <= k; entries outside the band hold BIG.
    prev.clear();
    prev.resize(m + 1, BIG);
    cur.clear();
    cur.resize(m + 1, BIG);
    for (j, p) in prev.iter_mut().enumerate().take(k.min(m) + 1) {
        *p = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(k).max(1);
        let hi = (i + k).min(m);
        if lo > hi {
            return None;
        }
        // Column 0 (D(i,0) = i) is inside the band while i <= k; past that
        // it is provably > k and acts as a BIG sentinel.
        cur[lo - 1] = if lo == 1 && i <= k { i } else { BIG };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let sub = prev[j - 1].saturating_add(usize::from(a[i - 1] != b[j - 1]));
            let del = prev[j].saturating_add(1);
            let ins = cur[j - 1].saturating_add(1);
            let v = sub.min(del).min(ins);
            cur[j] = v;
            row_min = row_min.min(v);
        }
        if hi < m {
            cur[hi + 1] = BIG;
        }
        if row_min > k {
            return None;
        }
        std::mem::swap(prev, cur);
    }
    let d = prev[m];
    (d <= k).then_some(d)
}

impl Metric<str> for Levenshtein {
    fn distance(&self, a: &str, b: &str) -> f64 {
        if a == b {
            return 0.0;
        }
        let ca: Vec<char> = a.chars().collect();
        let cb: Vec<char> = b.chars().collect();
        levenshtein_full(&ca, &cb) as f64
    }

    fn distance_leq(&self, a: &str, b: &str, bound: f64) -> Option<f64> {
        if bound < 0.0 {
            return None;
        }
        if a == b {
            return Some(0.0);
        }
        let k = bound.floor() as usize;
        let ca: Vec<char> = a.chars().collect();
        let cb: Vec<char> = b.chars().collect();
        levenshtein_banded(&ca, &cb, k).map(|d| d as f64)
    }
}

impl Metric<str> for Hamming {
    fn distance(&self, a: &str, b: &str) -> f64 {
        debug_assert_eq!(
            a.chars().count(),
            b.chars().count(),
            "Hamming distance requires equal-length strings"
        );
        let mut ia = a.chars();
        let mut ib = b.chars();
        let mut d = 0usize;
        loop {
            match (ia.next(), ib.next()) {
                (Some(x), Some(y)) => d += usize::from(x != y),
                (None, None) => break,
                _ => d += 1,
            }
        }
        d as f64
    }
}

/// Forwards a `Metric<str>` impl to owned `String` points.
macro_rules! forward_string {
    ($($m:ty),*) => {$(
        impl Metric<String> for $m {
            #[inline]
            fn distance(&self, a: &String, b: &String) -> f64 {
                Metric::<str>::distance(self, a.as_str(), b.as_str())
            }
            #[inline]
            fn distance_leq(&self, a: &String, b: &String, bound: f64) -> Option<f64> {
                Metric::<str>::distance_leq(self, a.as_str(), b.as_str(), bound)
            }
        }
    )*};
}

forward_string!(Levenshtein, Hamming);

#[cfg(test)]
mod tests {
    use super::*;

    fn lev(a: &str, b: &str) -> f64 {
        Metric::<str>::distance(&Levenshtein, a, b)
    }

    fn lev_leq(a: &str, b: &str, k: f64) -> Option<f64> {
        Metric::<str>::distance_leq(&Levenshtein, a, b, k)
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(lev("kitten", "sitting"), 3.0);
        assert_eq!(lev("flaw", "lawn"), 2.0);
        assert_eq!(lev("", "abc"), 3.0);
        assert_eq!(lev("abc", ""), 3.0);
        assert_eq!(lev("same", "same"), 0.0);
        assert_eq!(lev("a", "b"), 1.0);
    }

    #[test]
    fn levenshtein_unicode() {
        assert_eq!(lev("héllo", "hello"), 1.0);
        assert_eq!(lev("日本語", "日本"), 1.0);
    }

    #[test]
    fn banded_agrees_with_full() {
        let words = [
            "",
            "a",
            "ab",
            "abc",
            "abcd",
            "kitten",
            "sitting",
            "industry",
            "interest",
            "density",
            "destiny",
            "clustering",
            "clattering",
        ];
        for a in &words {
            for b in &words {
                let d = lev(a, b);
                for k in 0..12 {
                    let got = lev_leq(a, b, k as f64);
                    if d <= k as f64 {
                        assert_eq!(got, Some(d), "a={a} b={b} k={k}");
                    } else {
                        assert_eq!(got, None, "a={a} b={b} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn banded_length_gap_shortcut() {
        assert_eq!(lev_leq("short", "muchlongerstring", 3.0), None);
        assert_eq!(lev_leq("x", "x", -1.0), None);
    }

    #[test]
    fn hamming_basics() {
        assert_eq!(Metric::<str>::distance(&Hamming, "karolin", "kathrin"), 3.0);
        assert_eq!(Metric::<str>::distance(&Hamming, "", ""), 0.0);
        let a = String::from("abcd");
        let b = String::from("abcf");
        assert_eq!(Hamming.distance(&a, &b), 1.0);
    }

    #[test]
    fn string_forwarding() {
        let a = String::from("kitten");
        let b = String::from("sitting");
        assert_eq!(Levenshtein.distance(&a, &b), 3.0);
        assert_eq!(Levenshtein.distance_leq(&a, &b, 3.0), Some(3.0));
        assert_eq!(Levenshtein.distance_leq(&a, &b, 2.0), None);
    }
}
