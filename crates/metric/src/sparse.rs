//! Sparse vectors and their metrics.
//!
//! Bag-of-words text, TF-IDF rows, and one-hot interaction data — the
//! kinds of high-dimensional inputs the paper's metric setting targets —
//! are almost always *sparse*. [`SparseVector`] stores only the non-zero
//! coordinates (sorted by index), and the metrics below run in
//! `O(nnz(a) + nnz(b))` instead of `O(d)`, with the ambient dimension
//! never materialized.

use crate::metric::Metric;

/// An immutable sparse vector: parallel `(indices, values)` arrays with
/// strictly increasing indices and non-zero values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector {
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVector {
    /// Builds from `(index, value)` pairs; entries are sorted, duplicate
    /// indices summed, exact zeros dropped.
    ///
    /// Panics on non-finite values.
    pub fn new(mut entries: Vec<(u32, f64)>) -> Self {
        entries.sort_unstable_by_key(|e| e.0);
        let mut indices = Vec::with_capacity(entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            assert!(v.is_finite(), "sparse value at index {i} is not finite");
            if let Some(last) = indices.last() {
                if *last == i {
                    *values.last_mut().expect("parallel arrays") += v;
                    continue;
                }
            }
            indices.push(i);
            values.push(v);
        }
        // drop entries that cancelled to zero
        let mut keep_i = Vec::with_capacity(indices.len());
        let mut keep_v = Vec::with_capacity(values.len());
        for (i, v) in indices.into_iter().zip(values) {
            if v != 0.0 {
                keep_i.push(i);
                keep_v.push(v);
            }
        }
        Self {
            indices: keep_i,
            values: keep_v,
        }
    }

    /// Builds from a dense slice, dropping zeros.
    pub fn from_dense(dense: &[f64]) -> Self {
        Self::new(
            dense
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0.0)
                .map(|(i, &v)| (i as u32, v))
                .collect(),
        )
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True when every coordinate is zero.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterates `(index, value)` in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// The squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Merge-joins two sparse vectors, calling `f(a_i, b_i)` for every
    /// index present in either (absent side passed as 0.0).
    fn merge_join(&self, other: &Self, mut f: impl FnMut(f64, f64)) {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => {
                    f(self.values[i], 0.0);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    f(0.0, other.values[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    f(self.values[i], other.values[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < self.indices.len() {
            f(self.values[i], 0.0);
            i += 1;
        }
        while j < other.indices.len() {
            f(0.0, other.values[j]);
            j += 1;
        }
    }
}

/// Euclidean distance on sparse vectors, `O(nnz)` per call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseEuclidean;

impl Metric<SparseVector> for SparseEuclidean {
    fn distance(&self, a: &SparseVector, b: &SparseVector) -> f64 {
        let mut s = 0.0;
        a.merge_join(b, |x, y| {
            let d = x - y;
            s += d * d;
        });
        s.sqrt()
    }
}

/// Angular distance on sparse vectors (`arccos(cos)/π`, a true metric on
/// rays; zero vectors are at distance 1 from everything except other
/// zero vectors).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseAngular;

impl Metric<SparseVector> for SparseAngular {
    fn distance(&self, a: &SparseVector, b: &SparseVector) -> f64 {
        if a.is_empty() || b.is_empty() {
            return if a.is_empty() == b.is_empty() {
                0.0
            } else {
                1.0
            };
        }
        let mut dot = 0.0;
        a.merge_join(b, |x, y| dot += x * y);
        let cos = (dot / (a.norm_sq().sqrt() * b.norm_sq().sqrt())).clamp(-1.0, 1.0);
        cos.acos() / std::f64::consts::PI
    }
}

/// Generalized Jaccard distance on non-negative sparse vectors:
/// `1 − Σ min(a_i, b_i) / Σ max(a_i, b_i)` — a metric (Charikar 2002);
/// reduces to the set Jaccard distance on 0/1 vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseJaccard;

impl Metric<SparseVector> for SparseJaccard {
    fn distance(&self, a: &SparseVector, b: &SparseVector) -> f64 {
        let mut min_sum = 0.0;
        let mut max_sum = 0.0;
        a.merge_join(b, |x, y| {
            debug_assert!(x >= 0.0 && y >= 0.0, "Jaccard requires non-negative values");
            min_sum += x.min(y);
            max_sum += x.max(y);
        });
        if max_sum == 0.0 {
            return 0.0; // both empty
        }
        1.0 - min_sum / max_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(entries: &[(u32, f64)]) -> SparseVector {
        SparseVector::new(entries.to_vec())
    }

    #[test]
    fn construction_normalizes() {
        let v = SparseVector::new(vec![(5, 1.0), (2, 3.0), (5, 2.0), (7, 0.0)]);
        assert_eq!(v.nnz(), 2);
        let entries: Vec<(u32, f64)> = v.iter().collect();
        assert_eq!(entries, vec![(2, 3.0), (5, 3.0)]);
        // cancellation drops the entry
        let z = SparseVector::new(vec![(1, 2.0), (1, -2.0)]);
        assert!(z.is_empty());
    }

    #[test]
    fn from_dense_round_trip() {
        let dense = [0.0, 1.5, 0.0, -2.0, 0.0];
        let v = SparseVector::from_dense(&dense);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![(1, 1.5), (3, -2.0)]);
    }

    #[test]
    fn sparse_euclidean_matches_dense() {
        use crate::vector::Euclidean;
        let da = [1.0, 0.0, 2.0, 0.0, 3.0];
        let db = [0.0, 4.0, 2.0, 0.0, 1.0];
        let sa = SparseVector::from_dense(&da);
        let sb = SparseVector::from_dense(&db);
        let dense_d = Euclidean.distance(&da[..], &db[..]);
        assert!((SparseEuclidean.distance(&sa, &sb) - dense_d).abs() < 1e-12);
    }

    #[test]
    fn sparse_angular_matches_dense() {
        use crate::vector::Angular;
        let da = [1.0, 0.0, 2.0];
        let db = [0.5, 3.0, 0.0];
        let sa = SparseVector::from_dense(&da);
        let sb = SparseVector::from_dense(&db);
        let dense_d = Angular.distance(&da[..], &db[..]);
        assert!((SparseAngular.distance(&sa, &sb) - dense_d).abs() < 1e-12);
        // zero vector conventions
        let z = SparseVector::from_dense(&[0.0, 0.0]);
        assert_eq!(SparseAngular.distance(&z, &z), 0.0);
        assert_eq!(SparseAngular.distance(&z, &sa), 1.0);
    }

    #[test]
    fn jaccard_on_sets_and_bags() {
        // sets {1,2,3} vs {2,3,4}: |∩|=2, |∪|=4 → distance 0.5
        let a = sv(&[(1, 1.0), (2, 1.0), (3, 1.0)]);
        let b = sv(&[(2, 1.0), (3, 1.0), (4, 1.0)]);
        assert!((SparseJaccard.distance(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(SparseJaccard.distance(&a, &a), 0.0);
        let empty = sv(&[]);
        assert_eq!(SparseJaccard.distance(&empty, &empty), 0.0);
        assert_eq!(SparseJaccard.distance(&a, &empty), 1.0);
        // weighted bags
        let c = sv(&[(0, 2.0), (1, 1.0)]);
        let d = sv(&[(0, 1.0), (1, 3.0)]);
        // min-sum = 1+1 = 2, max-sum = 2+3 = 5
        assert!((SparseJaccard.distance(&c, &d) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let vs = [
            sv(&[(0, 1.0), (3, 2.0)]),
            sv(&[(1, 1.0), (3, 1.0)]),
            sv(&[(0, 2.0), (1, 2.0), (2, 1.0)]),
            sv(&[]),
        ];
        for m in [
            &SparseEuclidean as &dyn Metric<SparseVector>,
            &SparseJaccard,
        ] {
            for a in &vs {
                for b in &vs {
                    for c in &vs {
                        let ab = m.distance(a, b);
                        let bc = m.distance(b, c);
                        let ac = m.distance(a, c);
                        assert!(ac <= ab + bc + 1e-12);
                    }
                }
            }
        }
    }
}
