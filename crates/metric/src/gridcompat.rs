//! The coordinate-view gate for grid candidate generation.
//!
//! The `mdbscan_grid` index bins *coordinates*; a general metric has
//! none. [`GridCompatible`] is the opt-in bridge: a metric that can
//! expose its points as rows in `R^d` — whose Euclidean distance equals
//! the metric's own distance — overrides [`GridCompatible::grid_coords`]
//! and becomes eligible for the grid path; everything else keeps the
//! default body (`None`) and the engines silently stay on the generic
//! net-anchored path. The trait is a supertrait of
//! [`crate::BatchMetric`], so opting a custom metric into the solvers
//! remains two empty one-liners.

use crate::counting::CountingMetric;
use crate::metric::FnMetric;
use crate::sparse::{SparseAngular, SparseEuclidean, SparseJaccard, SparseVector};
use crate::string::{Hamming, Levenshtein};
use crate::vector::{Angular, Chebyshev, Euclidean, Manhattan, Minkowski};

/// Optional low-dimensional Euclidean coordinate view of a point type,
/// the auto-gate for the grid candidate index.
///
/// # Contract
///
/// An override must guarantee that for any two points `a`, `b` the
/// metric's `distance(a, b)` equals the Euclidean distance between
/// their coordinate rows up to ordinary floating-point rounding — the
/// grid only *generates candidates* from the coordinates (with a guard
/// band absorbing rounding; see the `mdbscan_grid` crate docs), while
/// every accepted pair is still evaluated by the metric itself, so a
/// faithful view changes which pairs are examined, never any label.
/// Extracting coordinates is **not** a distance evaluation and must not
/// be counted as one.
///
/// The default body reports no view, which is the correct answer for
/// every non-Euclidean or coordinate-free metric.
pub trait GridCompatible<P> {
    /// Appends the row-major `f64` coordinates of `points` to `out`
    /// and returns the ambient dimension, or `None` when this metric
    /// has no Euclidean coordinate view. Probing with an empty slice
    /// is the cheap gate check: it appends nothing but still reports
    /// the dimension.
    fn grid_coords(&self, points: &[P], out: &mut Vec<f64>) -> Option<usize> {
        let _ = (points, out);
        None
    }
}

/// Forward through references, like the [`crate::Metric`] blanket impl.
impl<P, M: GridCompatible<P> + ?Sized> GridCompatible<P> for &M {
    fn grid_coords(&self, points: &[P], out: &mut Vec<f64>) -> Option<usize> {
        (**self).grid_coords(points, out)
    }
}

/// Forwards the view **without counting**: coordinate extraction is not
/// a distance evaluation (`t_dis` counts metric calls only).
impl<P, M: GridCompatible<P>> GridCompatible<P> for CountingMetric<M> {
    fn grid_coords(&self, points: &[P], out: &mut Vec<f64>) -> Option<usize> {
        self.inner().grid_coords(points, out)
    }
}

// Coordinate-free (or non-Euclidean-geometry) metrics: the default
// `None` body is the correct gate answer. `Euclidean` over scattered
// `Vec<f64>` rows deliberately stays generic too — the grid pays off
// with the contiguous `crate::VectorBlock` representation, which is
// where the override lives.
impl GridCompatible<Vec<f64>> for Euclidean {}
impl GridCompatible<Vec<f64>> for Manhattan {}
impl GridCompatible<Vec<f64>> for Chebyshev {}
impl GridCompatible<Vec<f64>> for Minkowski {}
impl GridCompatible<Vec<f64>> for Angular {}
impl GridCompatible<SparseVector> for SparseEuclidean {}
impl GridCompatible<SparseVector> for SparseAngular {}
impl GridCompatible<SparseVector> for SparseJaccard {}
impl GridCompatible<String> for Hamming {}
impl GridCompatible<String> for Levenshtein {}

/// Closure metrics cannot prove a coordinate view: no view.
impl<P, F> GridCompatible<P> for FnMetric<F> where F: Fn(&P, &P) -> f64 + Send + Sync {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::VectorBlock;

    #[test]
    fn default_gate_reports_no_view() {
        let mut out = Vec::new();
        assert_eq!(Euclidean.grid_coords(&[vec![1.0, 2.0]], &mut out), None);
        assert!(out.is_empty());
        assert_eq!(Levenshtein.grid_coords(&["a".into()], &mut out), None);
    }

    #[test]
    fn references_and_counting_forward_the_view() {
        let block = VectorBlock::<f64>::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut out = Vec::new();
        // Through the `&M` blanket impl, spelled explicitly so the
        // reference impl (not auto-deref) is what's exercised.
        assert_eq!(
            GridCompatible::grid_coords(&&block, &[1u32, 0], &mut out),
            Some(2)
        );
        assert_eq!(out, vec![3.0, 4.0, 1.0, 2.0]);

        let counting = CountingMetric::new(block);
        out.clear();
        assert_eq!(counting.grid_coords(&[0u32], &mut out), Some(2));
        assert_eq!(out, vec![1.0, 2.0]);
        assert_eq!(
            counting.count(),
            0,
            "coordinate extraction must not count as a distance evaluation"
        );
    }

    #[test]
    fn empty_slice_probes_the_dimension() {
        let block = VectorBlock::<f32>::from_rows(&[vec![0.5, 1.5, 2.5]]);
        let mut out = Vec::new();
        assert_eq!(block.grid_coords(&[], &mut out), Some(3));
        assert!(out.is_empty());
    }
}
