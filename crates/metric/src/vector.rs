//! Metrics on dense `f64` vectors.
//!
//! Each metric is implemented for `[f64]` and, via a forwarding macro, for
//! `Vec<f64>` so callers can store owned points. Dimensions are checked with
//! `debug_assert!`; use [`crate::validate_vectors`] to validate untrusted
//! data eagerly.

use crate::metric::Metric;

/// Euclidean (L2) distance.
///
/// `distance_leq` abandons the accumulation as soon as the running sum of
/// squares exceeds `bound²`, which matters for the paper's high-dimensional
/// workloads (d up to 3072) where most candidate pairs are far apart.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

/// Manhattan (L1) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

/// Chebyshev (L∞) distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

/// Minkowski (Lp) distance for `p >= 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minkowski {
    p: f64,
}

impl Minkowski {
    /// Creates the Lp metric. Panics if `p < 1` (not a metric below 1).
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0, "Minkowski requires p >= 1, got {p}");
        Self { p }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

/// Angular distance: `arccos(cos_similarity) / π`, normalized to `[0, 1]`.
///
/// Unlike raw cosine *dissimilarity* (`1 − cos`), the angle is a true metric
/// on the unit sphere, so the triangle-inequality-based pruning in the
/// DBSCAN algorithms remains sound. Zero vectors are treated as distance 1
/// from everything except other zero vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Angular;

#[inline]
fn check_dims(a: &[f64], b: &[f64]) {
    debug_assert_eq!(
        a.len(),
        b.len(),
        "vector metric applied to mismatched dimensions {} vs {}",
        a.len(),
        b.len()
    );
}

impl Metric<[f64]> for Euclidean {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        check_dims(a, b);
        let mut sum = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            let d = x - y;
            sum += d * d;
        }
        sum.sqrt()
    }

    #[inline]
    fn distance_leq(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        check_dims(a, b);
        if bound < 0.0 {
            return None;
        }
        let bound_sq = bound * bound;
        let mut sum = 0.0;
        // Accumulate in chunks so the early-exit branch runs once every 8
        // lanes instead of every lane; keeps the loop vectorizable.
        let mut it_a = a.chunks_exact(8);
        let mut it_b = b.chunks_exact(8);
        for (ca, cb) in (&mut it_a).zip(&mut it_b) {
            let mut local = 0.0;
            for (x, y) in ca.iter().zip(cb.iter()) {
                let d = x - y;
                local += d * d;
            }
            sum += local;
            if sum > bound_sq {
                return None;
            }
        }
        for (x, y) in it_a.remainder().iter().zip(it_b.remainder().iter()) {
            let d = x - y;
            sum += d * d;
        }
        if sum <= bound_sq {
            Some(sum.sqrt())
        } else {
            None
        }
    }
}

impl Metric<[f64]> for Manhattan {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        check_dims(a, b);
        a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
    }

    #[inline]
    fn distance_leq(&self, a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
        check_dims(a, b);
        let mut sum = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            sum += (x - y).abs();
            if sum > bound {
                return None;
            }
        }
        Some(sum)
    }
}

impl Metric<[f64]> for Chebyshev {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        check_dims(a, b);
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

impl Metric<[f64]> for Minkowski {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        check_dims(a, b);
        let s: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs().powf(self.p))
            .sum();
        s.powf(1.0 / self.p)
    }
}

impl Metric<[f64]> for Angular {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        check_dims(a, b);
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            return if na == nb { 0.0 } else { 1.0 };
        }
        let cos = (dot / (na.sqrt() * nb.sqrt())).clamp(-1.0, 1.0);
        cos.acos() / std::f64::consts::PI
    }
}

/// Forwards a `Metric<[f64]>` impl to `Vec<f64>` points.
macro_rules! forward_vec {
    ($($m:ty),*) => {$(
        impl Metric<Vec<f64>> for $m {
            #[inline]
            fn distance(&self, a: &Vec<f64>, b: &Vec<f64>) -> f64 {
                Metric::<[f64]>::distance(self, a.as_slice(), b.as_slice())
            }
            #[inline]
            fn distance_leq(&self, a: &Vec<f64>, b: &Vec<f64>, bound: f64) -> Option<f64> {
                Metric::<[f64]>::distance_leq(self, a.as_slice(), b.as_slice(), bound)
            }
        }
    )*};
}

forward_vec!(Euclidean, Manhattan, Chebyshev, Minkowski, Angular);

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: &[f64]) -> Vec<f64> {
        x.to_vec()
    }

    #[test]
    fn euclidean_basics() {
        assert_eq!(Euclidean.distance(&v(&[0.0, 0.0]), &v(&[3.0, 4.0])), 5.0);
        assert_eq!(Euclidean.distance(&v(&[1.0]), &v(&[1.0])), 0.0);
    }

    #[test]
    fn euclidean_early_abandon_matches_full() {
        // 20-dim vectors exercise both the chunked and remainder paths.
        let a: Vec<f64> = (0..20).map(|i| i as f64 * 0.7).collect();
        let b: Vec<f64> = (0..20).map(|i| (i as f64).sin() * 3.0).collect();
        let d = Euclidean.distance(&a, &b);
        assert!((Euclidean.distance_leq(&a, &b, d + 1e-9).unwrap() - d).abs() < 1e-12);
        assert_eq!(Euclidean.distance_leq(&a, &b, d - 1e-6), None);
        assert_eq!(Euclidean.distance_leq(&a, &b, -1.0), None);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        let a = v(&[1.0, 2.0, 3.0]);
        let b = v(&[4.0, 0.0, 3.5]);
        assert_eq!(Manhattan.distance(&a, &b), 3.0 + 2.0 + 0.5);
        assert_eq!(Chebyshev.distance(&a, &b), 3.0);
        assert_eq!(Manhattan.distance_leq(&a, &b, 5.0), None);
        assert_eq!(Manhattan.distance_leq(&a, &b, 5.5), Some(5.5));
    }

    #[test]
    fn minkowski_interpolates() {
        let a = v(&[0.0, 0.0]);
        let b = v(&[3.0, 4.0]);
        assert!((Minkowski::new(2.0).distance(&a, &b) - 5.0).abs() < 1e-12);
        assert!((Minkowski::new(1.0).distance(&a, &b) - 7.0).abs() < 1e-12);
        assert!(Minkowski::new(3.0).p() == 3.0);
    }

    #[test]
    #[should_panic]
    fn minkowski_rejects_p_below_one() {
        let _ = Minkowski::new(0.5);
    }

    #[test]
    fn angular_range_and_extremes() {
        let x = v(&[1.0, 0.0]);
        let y = v(&[0.0, 1.0]);
        let nx = v(&[-1.0, 0.0]);
        assert!((Angular.distance(&x, &y) - 0.5).abs() < 1e-12);
        assert!((Angular.distance(&x, &nx) - 1.0).abs() < 1e-12);
        assert!(Angular.distance(&x, &x).abs() < 1e-12);
        // zero vectors
        let z = v(&[0.0, 0.0]);
        assert_eq!(Angular.distance(&z, &z), 0.0);
        assert_eq!(Angular.distance(&z, &x), 1.0);
    }

    #[test]
    fn angular_scale_invariance() {
        let a = v(&[0.3, 0.7, -0.1]);
        let b = v(&[-0.2, 0.5, 0.9]);
        let a2: Vec<f64> = a.iter().map(|x| x * 7.5).collect();
        assert!((Angular.distance(&a, &b) - Angular.distance(&a2, &b)).abs() < 1e-12);
    }
}
