//! Point and metric identity for on-disk artifacts: the
//! [`PersistPoint`] point codec and the [`MetricTag`] name recorded in
//! every artifact header.
//!
//! The engine's on-disk format (see the `mdbscan_persist` crate docs)
//! stores the *points* verbatim — they are the one input the net's
//! recorded `dis(p, c_p)` anchors refer to — but never the metric: a
//! metric is code, so the loader passes it back in and the header only
//! records a **tag** to reject obviously mismatched loads (a Euclidean
//! artifact opened as Levenshtein must fail typed, not cluster
//! garbage).

use crate::block::VectorBlock;
use crate::counting::CountingMetric;
use crate::sparse::{SparseAngular, SparseEuclidean, SparseJaccard};
use crate::string::{Hamming, Levenshtein};
use crate::vector::{Angular, Chebyshev, Euclidean, Manhattan, Minkowski};
use mdbscan_persist::{ByteReader, ByteWriter, PersistError};

/// A point type the engine can persist: a stable type tag for the
/// artifact header plus a byte codec for the point payload.
///
/// The decode must reproduce the encoded point **exactly** — the loaded
/// engine's determinism contract (bit-identical labels, bit-identical
/// evaluation counts) rides on every stored coordinate and character
/// surviving the round trip bit-for-bit. The provided impls cover the
/// workspace's point families:
///
/// | type | tag | payload |
/// |---|---|---|
/// | `Vec<f64>` | `vec-f64` | `u64` dim + IEEE-754 bits |
/// | `Vec<f32>` | `vec-f32` | `u64` dim + `f32` bits |
/// | `String` | `string` | `u32` byte len + UTF-8 |
/// | `u32` | `u32` | the id (a [`VectorBlock`] row) |
///
/// [`VectorBlock`] workloads persist their row *ids* (the engine's
/// points are `u32` row indices); the block itself is the metric and is
/// passed back at load time, like every other metric.
pub trait PersistPoint: Sized {
    /// Stable tag recorded in the artifact header; a load whose `P` has
    /// a different tag fails with a typed format error.
    const TYPE_TAG: &'static str;

    /// Appends this point's payload to `out`.
    fn encode_point(&self, out: &mut ByteWriter);

    /// Reads one point payload back.
    fn decode_point(r: &mut ByteReader<'_>) -> Result<Self, PersistError>;
}

impl PersistPoint for Vec<f64> {
    const TYPE_TAG: &'static str = "vec-f64";

    fn encode_point(&self, out: &mut ByteWriter) {
        out.put_f64s(self);
    }

    fn decode_point(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        r.get_f64s()
    }
}

impl PersistPoint for Vec<f32> {
    const TYPE_TAG: &'static str = "vec-f32";

    fn encode_point(&self, out: &mut ByteWriter) {
        out.put_usize(self.len());
        for &v in self {
            out.put_u32(v.to_bits());
        }
    }

    fn decode_point(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let bits = r.get_u32s()?;
        Ok(bits.into_iter().map(f32::from_bits).collect())
    }
}

impl PersistPoint for String {
    const TYPE_TAG: &'static str = "string";

    fn encode_point(&self, out: &mut ByteWriter) {
        out.put_str(self);
    }

    fn decode_point(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        r.get_str()
    }
}

/// [`VectorBlock`] row ids: the block rows themselves live in the
/// metric, so the persisted point is just the index.
impl PersistPoint for u32 {
    const TYPE_TAG: &'static str = "u32";

    fn encode_point(&self, out: &mut ByteWriter) {
        out.put_u32(*self);
    }

    fn decode_point(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        r.get_u32()
    }
}

/// The stable metric name recorded in artifact headers.
///
/// Tags identify the metric *family*, not its parameters: a
/// [`Minkowski`] artifact records `"minkowski"` whatever its exponent,
/// and a [`VectorBlock`] records its scalar width but not its rows —
/// handing a differently-parameterized (or differently-populated)
/// metric to the loader is the caller's responsibility, exactly as it
/// is for every query against a live engine. Wrappers that do not
/// change distances are transparent: [`CountingMetric<M>`] reports
/// `M`'s tag, so an artifact saved through a counting wrapper loads
/// under the bare metric and vice versa.
///
/// Custom metrics opt in with one line:
///
/// ```
/// use mdbscan_metric::{Metric, MetricTag};
///
/// struct Discrete;
/// impl Metric<u8> for Discrete {
///     fn distance(&self, a: &u8, b: &u8) -> f64 {
///         f64::from(a != b)
///     }
/// }
/// impl MetricTag for Discrete {
///     const METRIC_TAG: &'static str = "discrete";
/// }
/// assert_eq!(Discrete::METRIC_TAG, "discrete");
/// ```
pub trait MetricTag {
    /// Stable name recorded in the artifact header; a load whose metric
    /// has a different tag fails with a typed format error.
    const METRIC_TAG: &'static str;
}

impl MetricTag for Euclidean {
    const METRIC_TAG: &'static str = "euclidean";
}

impl MetricTag for Manhattan {
    const METRIC_TAG: &'static str = "manhattan";
}

impl MetricTag for Chebyshev {
    const METRIC_TAG: &'static str = "chebyshev";
}

impl MetricTag for Minkowski {
    const METRIC_TAG: &'static str = "minkowski";
}

impl MetricTag for Angular {
    const METRIC_TAG: &'static str = "angular";
}

impl MetricTag for Levenshtein {
    const METRIC_TAG: &'static str = "levenshtein";
}

impl MetricTag for Hamming {
    const METRIC_TAG: &'static str = "hamming";
}

impl MetricTag for SparseEuclidean {
    const METRIC_TAG: &'static str = "sparse-euclidean";
}

impl MetricTag for SparseAngular {
    const METRIC_TAG: &'static str = "sparse-angular";
}

impl MetricTag for SparseJaccard {
    const METRIC_TAG: &'static str = "sparse-jaccard";
}

impl MetricTag for VectorBlock<f64> {
    const METRIC_TAG: &'static str = "vector-block-f64";
}

impl MetricTag for VectorBlock<f32> {
    const METRIC_TAG: &'static str = "vector-block-f32";
}

/// Counting is observational: the wrapped metric's identity is the
/// artifact's identity.
impl<M: MetricTag> MetricTag for CountingMetric<M> {
    const METRIC_TAG: &'static str = M::METRIC_TAG;
}

impl<M: MetricTag> MetricTag for &M {
    const METRIC_TAG: &'static str = M::METRIC_TAG;
}

impl crate::prune::PruneStats {
    /// Appends the four counters.
    pub fn encode(&self, out: &mut ByteWriter) {
        out.put_u64(self.bound_accepts);
        out.put_u64(self.bound_rejects);
        out.put_u64(self.probe_rejects);
        out.put_u64(self.anchor_evals);
    }

    /// Reads counters written by [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            bound_accepts: r.get_u64()?,
            bound_rejects: r.get_u64()?,
            probe_rejects: r.get_u64()?,
            anchor_evals: r.get_u64()?,
        })
    }
}

impl crate::prune::PruningConfig {
    /// Appends the policy knobs.
    pub fn encode(&self, out: &mut ByteWriter) {
        out.put_bool(self.enabled);
        out.put_usize(self.min_anchor_group);
    }

    /// Reads a policy written by [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            enabled: r.get_bool()?,
            min_anchor_group: r.get_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::{PruneStats, PruningConfig};

    #[test]
    fn point_codecs_round_trip() {
        let mut w = ByteWriter::new();
        vec![1.5f64, -0.0, f64::MAX].encode_point(&mut w);
        vec![0.5f32, -3.25].encode_point(&mut w);
        "héllo".to_owned().encode_point(&mut w);
        7u32.encode_point(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("points", &bytes);
        let v64 = Vec::<f64>::decode_point(&mut r).unwrap();
        assert_eq!(v64.len(), 3);
        assert_eq!(v64[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(v64[2], f64::MAX);
        assert_eq!(Vec::<f32>::decode_point(&mut r).unwrap(), vec![0.5, -3.25]);
        assert_eq!(String::decode_point(&mut r).unwrap(), "héllo");
        assert_eq!(u32::decode_point(&mut r).unwrap(), 7);
        assert!(r.finished());
    }

    #[test]
    fn tags_distinguish_families_and_see_through_counting() {
        assert_ne!(Euclidean::METRIC_TAG, Levenshtein::METRIC_TAG);
        assert_eq!(
            <CountingMetric<Euclidean>>::METRIC_TAG,
            Euclidean::METRIC_TAG
        );
        assert_eq!(<&Euclidean>::METRIC_TAG, Euclidean::METRIC_TAG);
        assert_ne!(
            <VectorBlock<f32>>::METRIC_TAG,
            <VectorBlock<f64>>::METRIC_TAG
        );
    }

    #[test]
    fn prune_codecs_round_trip() {
        let stats = PruneStats {
            bound_accepts: 10,
            bound_rejects: 20,
            probe_rejects: 5,
            anchor_evals: 3,
        };
        let cfg = PruningConfig::off();
        let mut w = ByteWriter::new();
        stats.encode(&mut w);
        cfg.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("prune", &bytes);
        assert_eq!(PruneStats::decode(&mut r).unwrap(), stats);
        let back = PruningConfig::decode(&mut r).unwrap();
        assert_eq!(back.enabled, cfg.enabled);
        assert_eq!(back.min_anchor_group, cfg.min_anchor_group);
    }
}
