//! Point and metric identity for on-disk artifacts: the
//! [`PersistPoint`] point codec and the [`MetricTag`] name recorded in
//! every artifact header.
//!
//! The engine's on-disk format (see the `mdbscan_persist` crate docs)
//! stores the *points* verbatim — they are the one input the net's
//! recorded `dis(p, c_p)` anchors refer to — but never the metric: a
//! metric is code, so the loader passes it back in and the header only
//! records a **tag** to reject obviously mismatched loads (a Euclidean
//! artifact opened as Levenshtein must fail typed, not cluster
//! garbage).

use crate::block::{BlockScalar, VectorBlock};
use crate::counting::CountingMetric;
use crate::sparse::{SparseAngular, SparseEuclidean, SparseJaccard};
use crate::string::{Hamming, Levenshtein};
use crate::vector::{Angular, Chebyshev, Euclidean, Manhattan, Minkowski};
use mdbscan_persist::{
    read_shared_array, write_raw_array, ByteReader, ByteWriter, MaybeShared, PersistError,
    SharedBytes,
};
use std::sync::Arc;

/// A point type the engine can persist: a stable type tag for the
/// artifact header plus a byte codec for the point payload.
///
/// The decode must reproduce the encoded point **exactly** — the loaded
/// engine's determinism contract (bit-identical labels, bit-identical
/// evaluation counts) rides on every stored coordinate and character
/// surviving the round trip bit-for-bit. The provided impls cover the
/// workspace's point families:
///
/// | type | tag | payload |
/// |---|---|---|
/// | `Vec<f64>` | `vec-f64` | `u64` dim + IEEE-754 bits |
/// | `Vec<f32>` | `vec-f32` | `u64` dim + `f32` bits |
/// | `String` | `string` | `u32` byte len + UTF-8 |
/// | `u32` | `u32` | the id (a [`VectorBlock`] row) |
///
/// [`VectorBlock`] workloads persist their row *ids* (the engine's
/// points are `u32` row indices); the block itself is the metric and is
/// passed back at load time, like every other metric.
pub trait PersistPoint: Sized {
    /// Stable tag recorded in the artifact header; a load whose `P` has
    /// a different tag fails with a typed format error.
    const TYPE_TAG: &'static str;

    /// Appends this point's payload to `out`.
    fn encode_point(&self, out: &mut ByteWriter);

    /// Reads one point payload back.
    fn decode_point(r: &mut ByteReader<'_>) -> Result<Self, PersistError>;

    /// Decodes `n` consecutive point payloads in bulk. The default
    /// loops [`PersistPoint::decode_point`] into an owned `Vec`; point
    /// types whose payloads form a contiguous plain-scalar array (the
    /// `u32` row ids of a `VectorBlock` workload) override this to
    /// return a view **aliasing** `src` — the loaded artifact's buffer
    /// — so a replica boot copies O(1) point bytes instead of O(n).
    /// Decoded values are bit-identical on either path; `src` is
    /// `None` when the caller does not hold the artifact in a shared
    /// buffer.
    fn decode_points(
        r: &mut ByteReader<'_>,
        n: usize,
        src: Option<&Arc<SharedBytes>>,
    ) -> Result<MaybeShared<Self>, PersistError> {
        let _ = src;
        // Each point payload is at least one byte, so `remaining` caps
        // the pre-allocation against corrupt length claims.
        let mut points = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            points.push(Self::decode_point(r)?);
        }
        Ok(MaybeShared::Owned(points))
    }
}

impl PersistPoint for Vec<f64> {
    const TYPE_TAG: &'static str = "vec-f64";

    fn encode_point(&self, out: &mut ByteWriter) {
        out.put_f64s(self);
    }

    fn decode_point(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        r.get_f64s()
    }
}

impl PersistPoint for Vec<f32> {
    const TYPE_TAG: &'static str = "vec-f32";

    fn encode_point(&self, out: &mut ByteWriter) {
        out.put_usize(self.len());
        for &v in self {
            out.put_u32(v.to_bits());
        }
    }

    fn decode_point(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let bits = r.get_u32s()?;
        Ok(bits.into_iter().map(f32::from_bits).collect())
    }
}

impl PersistPoint for String {
    const TYPE_TAG: &'static str = "string";

    fn encode_point(&self, out: &mut ByteWriter) {
        out.put_str(self);
    }

    fn decode_point(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        r.get_str()
    }
}

/// [`VectorBlock`] row ids: the block rows themselves live in the
/// metric, so the persisted point is just the index.
impl PersistPoint for u32 {
    const TYPE_TAG: &'static str = "u32";

    fn encode_point(&self, out: &mut ByteWriter) {
        out.put_u32(*self);
    }

    fn decode_point(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        r.get_u32()
    }

    /// Row ids are a contiguous little-endian `u32` array on disk:
    /// when the points section is aligned, the loaded ids alias the
    /// artifact buffer and nothing is copied.
    fn decode_points(
        r: &mut ByteReader<'_>,
        n: usize,
        src: Option<&Arc<SharedBytes>>,
    ) -> Result<MaybeShared<Self>, PersistError> {
        read_shared_array::<u32>(src, r, n)
    }
}

/// The stable metric name recorded in artifact headers.
///
/// Tags identify the metric *family*, not its parameters: a
/// [`Minkowski`] artifact records `"minkowski"` whatever its exponent,
/// and a [`VectorBlock`] records its scalar width but not its rows —
/// handing a differently-parameterized (or differently-populated)
/// metric to the loader is the caller's responsibility, exactly as it
/// is for every query against a live engine. Wrappers that do not
/// change distances are transparent: [`CountingMetric<M>`] reports
/// `M`'s tag, so an artifact saved through a counting wrapper loads
/// under the bare metric and vice versa.
///
/// Custom metrics opt in with one line:
///
/// ```
/// use mdbscan_metric::{Metric, MetricTag};
///
/// struct Discrete;
/// impl Metric<u8> for Discrete {
///     fn distance(&self, a: &u8, b: &u8) -> f64 {
///         f64::from(a != b)
///     }
/// }
/// impl MetricTag for Discrete {
///     const METRIC_TAG: &'static str = "discrete";
/// }
/// assert_eq!(Discrete::METRIC_TAG, "discrete");
/// ```
pub trait MetricTag {
    /// Stable name recorded in the artifact header; a load whose metric
    /// has a different tag fails with a typed format error.
    const METRIC_TAG: &'static str;
}

impl MetricTag for Euclidean {
    const METRIC_TAG: &'static str = "euclidean";
}

impl MetricTag for Manhattan {
    const METRIC_TAG: &'static str = "manhattan";
}

impl MetricTag for Chebyshev {
    const METRIC_TAG: &'static str = "chebyshev";
}

impl MetricTag for Minkowski {
    const METRIC_TAG: &'static str = "minkowski";
}

impl MetricTag for Angular {
    const METRIC_TAG: &'static str = "angular";
}

impl MetricTag for Levenshtein {
    const METRIC_TAG: &'static str = "levenshtein";
}

impl MetricTag for Hamming {
    const METRIC_TAG: &'static str = "hamming";
}

impl MetricTag for SparseEuclidean {
    const METRIC_TAG: &'static str = "sparse-euclidean";
}

impl MetricTag for SparseAngular {
    const METRIC_TAG: &'static str = "sparse-angular";
}

impl MetricTag for SparseJaccard {
    const METRIC_TAG: &'static str = "sparse-jaccard";
}

impl MetricTag for VectorBlock<f64> {
    const METRIC_TAG: &'static str = "vector-block-f64";
}

impl MetricTag for VectorBlock<f32> {
    const METRIC_TAG: &'static str = "vector-block-f32";
}

/// Counting is observational: the wrapped metric's identity is the
/// artifact's identity.
impl<M: MetricTag> MetricTag for CountingMetric<M> {
    const METRIC_TAG: &'static str = M::METRIC_TAG;
}

impl<M: MetricTag> MetricTag for &M {
    const METRIC_TAG: &'static str = M::METRIC_TAG;
}

/// A metric whose *state* can travel inside the artifact, making the
/// artifact self-contained: `MetricDbscan::save_self_contained` writes
/// the metric into its own section and the matching load rebuilds it
/// from the file instead of requiring the caller to pass it back in.
///
/// Most metrics are stateless code and don't need this — the plain
/// `save`/`load` flow (metric passed back in, header tag checked)
/// remains the general path. The canonical stateful implementor is
/// [`VectorBlock`]: its rows *are* the dataset, and its codec stores
/// the dimension-major coordinates and cached norms as raw aligned
/// arrays so the decode can alias the artifact buffer (zero-copy; see
/// `mdbscan_persist`'s crate docs).
///
/// The decode must reproduce the encoded metric **exactly** — same
/// distances to the bit — under the same round-trip contract as
/// [`PersistPoint`].
pub trait PersistMetric: MetricTag + Sized {
    /// Appends the metric's state to `out`. Codecs that want the
    /// zero-copy decode must write raw arrays at 8-byte-aligned
    /// payload offsets (the engine writes this section via
    /// `ArtifactWriter::aligned_section`).
    fn encode_metric(&self, out: &mut ByteWriter);

    /// Rebuilds the metric, aliasing `src` where alignment allows.
    fn decode_metric(
        r: &mut ByteReader<'_>,
        src: Option<&Arc<SharedBytes>>,
    ) -> Result<Self, PersistError>;

    /// Bytes of this metric's decoded state that alias the artifact
    /// buffer instead of owned heap memory — the loader's copied-bytes
    /// accounting subtracts this from the section payload. Defaults to
    /// 0 (fully owned).
    fn shared_state_bytes(&self) -> usize {
        0
    }
}

/// Layout: `u64` rows + `u64` dim + `rows` raw norm `f64`s + the
/// `dim * rows` dimension-major coordinate scalars. With the section
/// payload 8-aligned, both arrays start 8-aligned (16-byte prefix,
/// 8-byte norm elements), so both load zero-copy.
impl<T: BlockScalar> PersistMetric for VectorBlock<T>
where
    VectorBlock<T>: MetricTag,
{
    fn encode_metric(&self, out: &mut ByteWriter) {
        out.put_usize(self.len());
        out.put_usize(self.dim());
        write_raw_array::<f64>(out, self.norms_data());
        write_raw_array::<T>(out, self.soa_data());
    }

    fn decode_metric(
        r: &mut ByteReader<'_>,
        src: Option<&Arc<SharedBytes>>,
    ) -> Result<Self, PersistError> {
        let rows = r.get_usize()?;
        let dim = r.get_usize()?;
        let count = dim
            .checked_mul(rows)
            .ok_or_else(|| r.err(format!("block claims {dim} x {rows} elements (overflow)")))?;
        let norms = read_shared_array::<f64>(src, r, rows)?;
        let data = read_shared_array::<T>(src, r, count)?;
        Ok(VectorBlock::from_soa_parts(dim, rows, data, norms))
    }

    fn shared_state_bytes(&self) -> usize {
        if self.is_zero_copy() {
            std::mem::size_of_val(self.norms_data()) + std::mem::size_of_val(self.soa_data())
        } else {
            0
        }
    }
}

/// Counting is observational: the wrapper costs nothing on disk and a
/// decoded metric starts with a zeroed counter — exactly the
/// "zero distance evaluations on load" contract.
impl<M: PersistMetric> PersistMetric for CountingMetric<M> {
    fn encode_metric(&self, out: &mut ByteWriter) {
        self.inner().encode_metric(out);
    }

    fn decode_metric(
        r: &mut ByteReader<'_>,
        src: Option<&Arc<SharedBytes>>,
    ) -> Result<Self, PersistError> {
        Ok(CountingMetric::new(M::decode_metric(r, src)?))
    }

    fn shared_state_bytes(&self) -> usize {
        self.inner().shared_state_bytes()
    }
}

impl crate::prune::PruneStats {
    /// Appends the four counters.
    pub fn encode(&self, out: &mut ByteWriter) {
        out.put_u64(self.bound_accepts);
        out.put_u64(self.bound_rejects);
        out.put_u64(self.probe_rejects);
        out.put_u64(self.anchor_evals);
    }

    /// Reads counters written by [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            bound_accepts: r.get_u64()?,
            bound_rejects: r.get_u64()?,
            probe_rejects: r.get_u64()?,
            anchor_evals: r.get_u64()?,
        })
    }
}

impl crate::prune::PruningConfig {
    /// Appends the policy knobs.
    pub fn encode(&self, out: &mut ByteWriter) {
        out.put_bool(self.enabled);
        out.put_usize(self.min_anchor_group);
    }

    /// Reads a policy written by [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            enabled: r.get_bool()?,
            min_anchor_group: r.get_usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::{PruneStats, PruningConfig};

    #[test]
    fn point_codecs_round_trip() {
        let mut w = ByteWriter::new();
        vec![1.5f64, -0.0, f64::MAX].encode_point(&mut w);
        vec![0.5f32, -3.25].encode_point(&mut w);
        "héllo".to_owned().encode_point(&mut w);
        7u32.encode_point(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("points", &bytes);
        let v64 = Vec::<f64>::decode_point(&mut r).unwrap();
        assert_eq!(v64.len(), 3);
        assert_eq!(v64[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(v64[2], f64::MAX);
        assert_eq!(Vec::<f32>::decode_point(&mut r).unwrap(), vec![0.5, -3.25]);
        assert_eq!(String::decode_point(&mut r).unwrap(), "héllo");
        assert_eq!(u32::decode_point(&mut r).unwrap(), 7);
        assert!(r.finished());
    }

    #[test]
    fn tags_distinguish_families_and_see_through_counting() {
        assert_ne!(Euclidean::METRIC_TAG, Levenshtein::METRIC_TAG);
        assert_eq!(
            <CountingMetric<Euclidean>>::METRIC_TAG,
            Euclidean::METRIC_TAG
        );
        assert_eq!(<&Euclidean>::METRIC_TAG, Euclidean::METRIC_TAG);
        assert_ne!(
            <VectorBlock<f32>>::METRIC_TAG,
            <VectorBlock<f64>>::METRIC_TAG
        );
    }

    #[test]
    fn u32_bulk_decode_aliases_an_aligned_buffer() {
        let mut w = ByteWriter::new();
        w.put_usize(3);
        write_raw_array::<u32>(&mut w, &[5, 6, 7]);
        let buf = Arc::new(SharedBytes::from_vec(w.into_bytes()));
        let mut r = ByteReader::new_at("points", buf.as_slice(), 0);
        let n = r.get_usize().unwrap();
        let pts = u32::decode_points(&mut r, n, Some(&buf)).unwrap();
        assert!(pts.is_shared());
        assert_eq!(pts.as_slice(), &[5, 6, 7]);
        // Without a shared buffer the same bytes decode owned.
        let mut r = ByteReader::new_at("points", buf.as_slice(), 0);
        let n = r.get_usize().unwrap();
        let pts = u32::decode_points(&mut r, n, None).unwrap();
        assert!(!pts.is_shared());
        assert_eq!(pts.as_slice(), &[5, 6, 7]);
    }

    #[test]
    fn block_codec_round_trips_zero_copy() {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![i as f64 * 0.5, (i as f64).cos(), -(i as f64)])
            .collect();
        let block = VectorBlock::<f64>::from_rows(&rows);
        let mut w = ByteWriter::new();
        block.encode_metric(&mut w);
        let buf = Arc::new(SharedBytes::from_vec(w.into_bytes()));
        let mut r = ByteReader::new_at("metric", buf.as_slice(), 0);
        let loaded = VectorBlock::<f64>::decode_metric(&mut r, Some(&buf)).unwrap();
        assert!(r.finished());
        assert!(
            loaded.is_zero_copy(),
            "aligned decode must alias the buffer"
        );
        // The decoded storage literally points into the artifact bytes.
        let range = buf.as_slice().as_ptr_range();
        let p = loaded.soa_data().as_ptr() as *const u8;
        assert!(range.contains(&p), "coordinates must alias the buffer");
        let p = loaded.norms_data().as_ptr() as *const u8;
        assert!(range.contains(&p), "norms must alias the buffer");
        // And the metric answers identically.
        use crate::metric::Metric;
        for a in 0..rows.len() as u32 {
            for b in 0..rows.len() as u32 {
                assert_eq!(block.distance(&a, &b), loaded.distance(&a, &b));
            }
        }
        // Owned fallback (no shared buffer): same values, copied.
        let mut w = ByteWriter::new();
        block.encode_metric(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("metric", &bytes);
        let owned = VectorBlock::<f64>::decode_metric(&mut r, None).unwrap();
        assert!(!owned.is_zero_copy());
        assert_eq!(owned.soa_data(), loaded.soa_data());
        assert_eq!(owned.norms_data(), loaded.norms_data());
    }

    #[test]
    fn counting_metric_decodes_with_zeroed_counter() {
        let block = VectorBlock::<f32>::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let counting = CountingMetric::new(block);
        use crate::metric::Metric;
        counting.distance(&0, &1); // dirty the counter before saving
        let mut w = ByteWriter::new();
        counting.encode_metric(&mut w);
        let buf = Arc::new(SharedBytes::from_vec(w.into_bytes()));
        let mut r = ByteReader::new_at("metric", buf.as_slice(), 0);
        let loaded = CountingMetric::<VectorBlock<f32>>::decode_metric(&mut r, Some(&buf)).unwrap();
        assert_eq!(loaded.count(), 0, "loads must not inherit eval counts");
        assert_eq!(loaded.distance(&0, &1), counting.distance(&0, &1));
    }

    #[test]
    fn prune_codecs_round_trip() {
        let stats = PruneStats {
            bound_accepts: 10,
            bound_rejects: 20,
            probe_rejects: 5,
            anchor_evals: 3,
        };
        let cfg = PruningConfig::off();
        let mut w = ByteWriter::new();
        stats.encode(&mut w);
        cfg.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("prune", &bytes);
        assert_eq!(PruneStats::decode(&mut r).unwrap(), stats);
        let back = PruningConfig::decode(&mut r).unwrap();
        assert_eq!(back.enabled, cfg.enabled);
        assert_eq!(back.min_anchor_group, cfg.min_anchor_group);
    }
}
