//! Dataset container and input validation.

use crate::error::MetricError;
use crate::metric::Metric;

/// Validates a slice of dense vectors: non-empty, uniform dimensionality,
/// all coordinates finite.
///
/// The DBSCAN algorithms assume a well-formed metric space; NaNs would
/// silently break every pruning bound, so reject them eagerly.
pub fn validate_vectors(points: &[Vec<f64>]) -> Result<(), MetricError> {
    let first = points.first().ok_or(MetricError::Empty)?;
    let expected = first.len();
    for (i, p) in points.iter().enumerate() {
        if p.len() != expected {
            return Err(MetricError::DimensionMismatch {
                point: i,
                got: p.len(),
                expected,
            });
        }
        for (j, v) in p.iter().enumerate() {
            if !v.is_finite() {
                return Err(MetricError::NonFinite {
                    point: i,
                    coordinate: j,
                });
            }
        }
    }
    Ok(())
}

/// A point set bundled with convenience diagnostics.
///
/// All workspace algorithms take `(&[P], &impl Metric<P>)` directly, so this
/// container is optional sugar; it exists for the experiment harness, which
/// wants aspect-ratio and spread estimates (`Δ`, `δ`, `Φ = Δ/δ` in the
/// paper's notation) to pick sensible `ε` sweeps per dataset.
#[derive(Debug, Clone)]
pub struct Dataset<P> {
    points: Vec<P>,
    /// Optional ground-truth labels (cluster id per point, `-1` = noise);
    /// used by the quality experiments (ARI/AMI).
    labels: Option<Vec<i32>>,
    /// Human-readable name used in reports.
    name: String,
}

impl<P> Dataset<P> {
    /// Creates an unlabeled dataset.
    pub fn new(name: impl Into<String>, points: Vec<P>) -> Self {
        Self {
            points,
            labels: None,
            name: name.into(),
        }
    }

    /// Creates a dataset with ground-truth labels (`-1` = noise).
    ///
    /// Panics if `labels.len() != points.len()`.
    pub fn with_labels(name: impl Into<String>, points: Vec<P>, labels: Vec<i32>) -> Self {
        assert_eq!(points.len(), labels.len(), "labels must match points");
        Self {
            points,
            labels: Some(labels),
            name: name.into(),
        }
    }

    /// The points.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Ground-truth labels, if any.
    pub fn labels(&self) -> Option<&[i32]> {
        self.labels.as_deref()
    }

    /// Dataset name for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Consumes the dataset, returning `(points, labels)`.
    pub fn into_parts(self) -> (Vec<P>, Option<Vec<i32>>) {
        (self.points, self.labels)
    }

    /// Estimates the maximum pairwise distance `Δ` by the standard
    /// 2-approximation: max distance from an arbitrary anchor, doubled is an
    /// upper bound; the anchor max itself is a lower bound. Returns the
    /// anchor max (use `* 2.0` for a safe upper bound).
    pub fn spread_estimate<M: Metric<P>>(&self, metric: &M) -> f64 {
        let Some(anchor) = self.points.first() else {
            return 0.0;
        };
        self.points
            .iter()
            .map(|p| metric.distance(anchor, p))
            .fold(0.0, f64::max)
    }

    /// Samples `pairs` random-ish pairwise distances (deterministic stride,
    /// no RNG needed) and returns `(min_nonzero, max)` — a cheap probe of
    /// `(δ, Δ)` for choosing ε sweeps.
    pub fn distance_probe<M: Metric<P>>(&self, metric: &M, pairs: usize) -> (f64, f64) {
        let n = self.points.len();
        if n < 2 {
            return (0.0, 0.0);
        }
        let mut min_nz = f64::INFINITY;
        let mut max = 0.0f64;
        let stride = (n * (n - 1) / 2 / pairs.max(1)).max(1);
        let mut k = 0usize;
        let mut taken = 0usize;
        'outer: for i in 0..n {
            for j in (i + 1)..n {
                if k.is_multiple_of(stride) {
                    let d = metric.distance(&self.points[i], &self.points[j]);
                    if d > 0.0 && d < min_nz {
                        min_nz = d;
                    }
                    if d > max {
                        max = d;
                    }
                    taken += 1;
                    if taken >= pairs {
                        break 'outer;
                    }
                }
                k += 1;
            }
        }
        if min_nz.is_infinite() {
            min_nz = 0.0;
        }
        (min_nz, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Euclidean;

    #[test]
    fn validate_accepts_good_input() {
        let pts = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        assert!(validate_vectors(&pts).is_ok());
    }

    #[test]
    fn validate_rejects_bad_input() {
        assert_eq!(validate_vectors(&[]), Err(MetricError::Empty));
        let nan = vec![vec![0.0], vec![f64::NAN]];
        assert_eq!(
            validate_vectors(&nan),
            Err(MetricError::NonFinite {
                point: 1,
                coordinate: 0
            })
        );
        let mismatch = vec![vec![0.0, 1.0], vec![2.0]];
        assert_eq!(
            validate_vectors(&mismatch),
            Err(MetricError::DimensionMismatch {
                point: 1,
                got: 1,
                expected: 2
            })
        );
        let inf = vec![vec![f64::INFINITY]];
        assert!(matches!(
            validate_vectors(&inf),
            Err(MetricError::NonFinite { .. })
        ));
    }

    #[test]
    fn dataset_accessors() {
        let ds = Dataset::with_labels(
            "toy",
            vec![vec![0.0], vec![1.0], vec![10.0]],
            vec![0, 0, -1],
        );
        assert_eq!(ds.name(), "toy");
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        assert_eq!(ds.labels().unwrap()[2], -1);
        let spread = ds.spread_estimate(&Euclidean);
        assert_eq!(spread, 10.0);
        let (lo, hi) = ds.distance_probe(&Euclidean, 16);
        assert!(lo > 0.0 && hi >= lo);
        let (pts, labels) = ds.into_parts();
        assert_eq!(pts.len(), 3);
        assert!(labels.is_some());
    }

    #[test]
    fn empty_and_tiny_probes() {
        let ds: Dataset<Vec<f64>> = Dataset::new("empty", vec![]);
        assert!(ds.is_empty());
        assert_eq!(ds.spread_estimate(&Euclidean), 0.0);
        assert_eq!(ds.distance_probe(&Euclidean, 4), (0.0, 0.0));
        let one = Dataset::new("one", vec![vec![1.0]]);
        assert_eq!(one.distance_probe(&Euclidean, 4), (0.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn mismatched_labels_panic() {
        let _ = Dataset::with_labels("bad", vec![vec![0.0]], vec![0, 1]);
    }
}
