//! Empirical doubling-dimension estimation.
//!
//! Definition 3 of the paper: the doubling dimension of `(X, dis)` is
//! `⌈log₂ Λ⌉` where `Λ` is the smallest integer such that every ball
//! `B(p, 2r)` can be covered by `Λ` balls of radius `r`. Computing it
//! exactly is itself NP-hard, but a greedy `r`-net gives a constant-factor
//! witness that is plenty for diagnostics: the experiment harness uses this
//! probe to report the *effective* intrinsic dimension of each synthetic
//! dataset, confirming that the generators actually realize the paper's
//! "low doubling dimension inliers" assumption.

use crate::metric::Metric;

/// Result of [`estimate_doubling_dimension`].
#[derive(Debug, Clone, PartialEq)]
pub struct DoublingEstimate {
    /// The estimated doubling dimension `log₂(max net-size ratio)`.
    pub dimension: f64,
    /// The largest observed `|net(r)| / |net(2r)|` ratio underlying the
    /// estimate.
    pub worst_ratio: f64,
    /// Number of scales probed.
    pub scales: usize,
}

/// Greedy `r`-net of `points` (indices): every point is within `r` of some
/// net point and net points are pairwise `> r` apart.
fn greedy_net<P, M: Metric<P>>(points: &[P], metric: &M, r: f64) -> Vec<usize> {
    let mut net: Vec<usize> = Vec::new();
    'outer: for i in 0..points.len() {
        for &c in &net {
            if metric.within(&points[c], &points[i], r) {
                continue 'outer;
            }
        }
        net.push(i);
    }
    net
}

/// Estimates the doubling dimension of `points` by comparing greedy net
/// sizes at geometrically decreasing scales.
///
/// The estimator computes `r`-nets for `r = spread / 2^i`, `i = 1..=scales`,
/// and reports `max_i log₂(|net(r_i)| / |net(2 r_i)|)`. For a set with
/// doubling dimension `D`, each halving of `r` multiplies net size by at
/// most `2^D` (Proposition 1 of the paper), so the estimate lower-bounds a
/// constant-factor witness of `D`. Runtime is `O(scales · n · |net|)`, so
/// cap `n` (the harness samples 2 000 points).
pub fn estimate_doubling_dimension<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    scales: usize,
) -> DoublingEstimate {
    if points.len() < 2 || scales == 0 {
        return DoublingEstimate {
            dimension: 0.0,
            worst_ratio: 1.0,
            scales: 0,
        };
    }
    // Anchor-based spread estimate (2-approximation of Δ).
    let spread = points
        .iter()
        .map(|p| metric.distance(&points[0], p))
        .fold(0.0, f64::max);
    if spread == 0.0 {
        return DoublingEstimate {
            dimension: 0.0,
            worst_ratio: 1.0,
            scales: 0,
        };
    }
    let mut prev_size = 1usize; // net at r = spread is a single ball
    let mut worst_ratio = 1.0f64;
    let mut used = 0usize;
    for i in 1..=scales {
        let r = spread / (1u64 << i) as f64;
        let net = greedy_net(points, metric, r);
        let ratio = net.len() as f64 / prev_size as f64;
        if ratio > worst_ratio {
            worst_ratio = ratio;
        }
        used = i;
        // Stop once nets stop growing (hit the resolution of the data).
        if net.len() == points.len() {
            break;
        }
        prev_size = net.len().max(1);
    }
    DoublingEstimate {
        dimension: worst_ratio.log2().max(0.0),
        worst_ratio,
        scales: used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Euclidean;

    fn grid_2d(side: usize) -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..side {
            for j in 0..side {
                v.push(vec![i as f64, j as f64]);
            }
        }
        v
    }

    #[test]
    fn line_has_low_dimension() {
        let pts: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let est = estimate_doubling_dimension(&pts, &Euclidean, 6);
        assert!(
            est.dimension <= 2.5,
            "1-D line should have tiny doubling dim, got {}",
            est.dimension
        );
    }

    #[test]
    fn plane_has_higher_dimension_than_line() {
        let line: Vec<Vec<f64>> = (0..225).map(|i| vec![i as f64, 0.0]).collect();
        let grid = grid_2d(15);
        let dl = estimate_doubling_dimension(&line, &Euclidean, 5).dimension;
        let dg = estimate_doubling_dimension(&grid, &Euclidean, 5).dimension;
        assert!(dg > dl, "grid {dg} should exceed line {dl}");
    }

    #[test]
    fn degenerate_inputs() {
        let est = estimate_doubling_dimension::<Vec<f64>, _>(&[], &Euclidean, 4);
        assert_eq!(est.dimension, 0.0);
        let same = vec![vec![1.0, 1.0]; 10];
        let est = estimate_doubling_dimension(&same, &Euclidean, 4);
        assert_eq!(est.dimension, 0.0);
        let two = vec![vec![0.0], vec![1.0]];
        let est = estimate_doubling_dimension(&two, &Euclidean, 0);
        assert_eq!(est.scales, 0);
    }

    #[test]
    fn greedy_net_is_packing_and_covering() {
        let pts = grid_2d(8);
        let r = 2.5;
        let net = greedy_net(&pts, &Euclidean, r);
        // covering
        for p in &pts {
            assert!(net.iter().any(|&c| Euclidean.distance(&pts[c], p) <= r));
        }
        // packing
        for (a, &i) in net.iter().enumerate() {
            for &j in net.iter().skip(a + 1) {
                assert!(Euclidean.distance(&pts[i], &pts[j]) > r);
            }
        }
    }
}
