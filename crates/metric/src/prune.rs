//! Triangle-inequality pruning: the policy knob and the work counters
//! shared by every solver in the workspace.
//!
//! The paper states every complexity bound in units of `t_dis`; the
//! cheapest distance evaluation is the one never performed. All the
//! pruning in this workspace derives from one fact recorded by the
//! Algorithm-1 net: each point `p` knows `dis(p, c_p)` to its center.
//! For a query `q` whose distance `dis(q, c_p)` to that center is known
//! (an *anchor* evaluation), the triangle inequality sandwiches the
//! pair distance without evaluating it:
//!
//! ```text
//! |dis(q, c_p) − dis(p, c_p)|  ≤  dis(q, p)  ≤  dis(q, c_p) + dis(p, c_p)
//! ```
//!
//! When the lower bound already exceeds the threshold the pair is
//! rejected for free ([`PruneStats::bound_rejects`]); when the upper
//! bound is already inside it the pair is accepted for free
//! ([`PruneStats::bound_accepts`]) — the distance-free counterpart of
//! the paper's dense-ball shortcut. Both decisions agree with what the
//! evaluated predicate would have returned, so cluster labels are
//! **bit-identical** with pruning on or off; only the number of
//! evaluations changes.
//!
//! # Floating-point caveat
//!
//! The soundness argument holds for the metric's *computed* values
//! whenever they satisfy the triangle inequality. Integer-valued
//! metrics (edit distance, Hamming) satisfy it exactly. Floating-point
//! metrics carry rounding of a few ulps, so a pair whose distance lands
//! **within an ulp of the query threshold** could in principle be
//! decided differently by the bound than by the evaluation. No such
//! flip has been observed (the equivalence property tests sweep four
//! solvers × thread counts × metric families), but workloads engineered
//! to place pair distances exactly on thresholds should disable pruning
//! for certainty.

/// Policy knob for the net-anchored triangle-inequality pruning layer.
///
/// Defaults to enabled — pruning never changes results, only the number
/// of distance evaluations. Disable it (e.g. via [`PruningConfig::off`])
/// for ablation runs that want the textbook evaluation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruningConfig {
    /// Master switch. When false, every candidate pair is evaluated
    /// exactly as the unpruned pipeline would.
    pub enabled: bool,
    /// Minimum candidate-group size (cover set, fragment, summary row)
    /// for which an anchor distance is worth paying: anchoring a group
    /// of one trades one evaluation for at most one, so tiny groups are
    /// scanned directly. Affects evaluation counts only, never labels.
    pub min_anchor_group: usize,
}

impl PruningConfig {
    /// Pruning disabled: the pipeline evaluates every candidate pair.
    pub fn off() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

impl Default for PruningConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            min_anchor_group: 4,
        }
    }
}

/// Counters for the pruning layer, in units of `t_dis` (one distance
/// evaluation each). Cheap to maintain (plain integers, reduced
/// per-worker) and always on when pruning is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Candidate pairs accepted without evaluation: the triangle upper
    /// bound was already within the threshold.
    pub bound_accepts: u64,
    /// Candidate pairs rejected without evaluation: the triangle lower
    /// bound already exceeded the threshold.
    pub bound_rejects: u64,
    /// Step-2 probe points skipped without a fragment tree query: the
    /// probe's cached `dis(p, c_p)` anchored against the host fragment's
    /// center-pair lower bound proved no host member can be within the
    /// threshold. Entirely free — both ingredients were already on
    /// record, so no anchor evaluation is charged for these.
    pub probe_rejects: u64,
    /// Anchor distances evaluated to obtain the bounds (the overhead
    /// side of the ledger).
    pub anchor_evals: u64,
}

impl PruneStats {
    /// Net distance evaluations avoided: pairs decided for free (each
    /// skipped probe saves at least the one evaluation its tree query
    /// would open with) minus the anchors paid for the bounds
    /// (saturating at zero — a run where anchoring did not pay off
    /// reports 0, not a negative).
    pub fn distance_evals_saved(&self) -> u64 {
        (self.bound_accepts + self.bound_rejects + self.probe_rejects)
            .saturating_sub(self.anchor_evals)
    }

    /// Folds another counter set into this one (per-worker reduction).
    pub fn merge(&mut self, other: &PruneStats) {
        self.bound_accepts += other.bound_accepts;
        self.bound_rejects += other.bound_rejects;
        self.probe_rejects += other.probe_rejects;
        self.anchor_evals += other.anchor_evals;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_off() {
        let on = PruningConfig::default();
        assert!(on.enabled);
        assert!(on.min_anchor_group >= 1);
        let off = PruningConfig::off();
        assert!(!off.enabled);
        assert_eq!(off.min_anchor_group, on.min_anchor_group);
    }

    #[test]
    fn saved_saturates() {
        let mut s = PruneStats {
            bound_accepts: 3,
            bound_rejects: 4,
            anchor_evals: 10,
            ..PruneStats::default()
        };
        assert_eq!(s.distance_evals_saved(), 0);
        s.merge(&PruneStats {
            bound_accepts: 10,
            bound_rejects: 0,
            probe_rejects: 2,
            anchor_evals: 1,
        });
        assert_eq!(s.bound_accepts, 13);
        assert_eq!(s.anchor_evals, 11);
        assert_eq!(s.probe_rejects, 2);
        assert_eq!(s.distance_evals_saved(), 8);
    }
}
