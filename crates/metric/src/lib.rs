//! Metric-space substrate for the `metric-dbscan` workspace.
//!
//! The algorithms of *Towards Metric DBSCAN* (Mo, Song, Ding; SIGMOD 2024)
//! operate in an abstract metric space `(X, dis)`: they never inspect
//! coordinates, only pairwise distances. This crate provides that
//! abstraction:
//!
//! * [`Metric`] — the distance-function trait, with an optional
//!   early-abandoning entry point ([`Metric::distance_leq`]) that lets
//!   expensive metrics (edit distance, high-dimensional Euclidean) stop as
//!   soon as a threshold is provably exceeded;
//! * vector metrics ([`Euclidean`], [`Manhattan`], [`Chebyshev`],
//!   [`Minkowski`], [`Angular`]) over `[f64]` / `Vec<f64>`;
//! * string metrics ([`Levenshtein`], [`Hamming`]) over `str` / `String` —
//!   the paper clusters text corpora under edit distance;
//! * sparse vectors ([`SparseVector`]) with `O(nnz)` metrics
//!   ([`SparseEuclidean`], [`SparseAngular`], [`SparseJaccard`]) for
//!   bag-of-words / TF-IDF inputs;
//! * [`CountingMetric`] — a transparent wrapper counting distance
//!   evaluations, the hardware-independent cost unit (`t_dis`) used in the
//!   paper's complexity statements and in our experiment reports;
//! * [`Dataset`] — a thin container bundling points with diagnostics
//!   (aspect-ratio estimation, empirical doubling-dimension probes).
//!
//! # Example
//!
//! ```
//! use mdbscan_metric::{Euclidean, Metric};
//!
//! let a = vec![0.0, 0.0];
//! let b = vec![3.0, 4.0];
//! assert_eq!(Euclidean.distance(&a, &b), 5.0);
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod counting;
mod dataset;
mod doubling;
mod error;
mod metric;
mod sparse;
mod string;
mod vector;

pub use counting::CountingMetric;
pub use dataset::{validate_vectors, Dataset};
pub use doubling::{estimate_doubling_dimension, DoublingEstimate};
pub use error::MetricError;
pub use metric::{FnMetric, Metric};
pub use sparse::{SparseAngular, SparseEuclidean, SparseJaccard, SparseVector};
pub use string::{Hamming, Levenshtein};
pub use vector::{Angular, Chebyshev, Euclidean, Manhattan, Minkowski};
