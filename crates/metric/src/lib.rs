//! Metric-space substrate for the `metric-dbscan` workspace.
//!
//! The algorithms of *Towards Metric DBSCAN* (Mo, Song, Ding; SIGMOD 2024)
//! operate in an abstract metric space `(X, dis)`: they never inspect
//! coordinates, only pairwise distances. This crate provides that
//! abstraction:
//!
//! * [`Metric`] — the distance-function trait, with an optional
//!   early-abandoning entry point ([`Metric::distance_leq`]) that lets
//!   expensive metrics (edit distance, high-dimensional Euclidean) stop as
//!   soon as a threshold is provably exceeded;
//! * vector metrics ([`Euclidean`], [`Manhattan`], [`Chebyshev`],
//!   [`Minkowski`], [`Angular`]) over `[f64]` / `Vec<f64>`;
//! * string metrics ([`Levenshtein`], [`Hamming`]) over `str` / `String` —
//!   the paper clusters text corpora under edit distance;
//! * sparse vectors ([`SparseVector`]) with `O(nnz)` metrics
//!   ([`SparseEuclidean`], [`SparseAngular`], [`SparseJaccard`]) for
//!   bag-of-words / TF-IDF inputs;
//! * [`CountingMetric`] — a transparent wrapper counting distance
//!   evaluations, the hardware-independent cost unit (`t_dis`) used in the
//!   paper's complexity statements and in our experiment reports;
//! * [`Dataset`] — a thin container bundling points with diagnostics
//!   (aspect-ratio estimation, empirical doubling-dimension probes).
//!
//! # The distance-evaluation minimization layer
//!
//! Beyond evaluating distances, this crate hosts the two tools the
//! pipeline uses to **avoid** evaluating them:
//!
//! * [`BatchMetric`] — batched evaluation (`dist_many`,
//!   `dist_many_within`): one query against a list of candidate ids, so
//!   metrics can amortize per-call setup (decoded strings, scratch
//!   buffers, cached norms) across the batch. **Contract:** an override
//!   must return bit-for-bit the values the scalar
//!   [`Metric::distance`] / [`Metric::distance_leq`] loop would — the
//!   solvers' determinism guarantee compares runs that take the batched
//!   path in one configuration and the scalar path in another. The
//!   provided methods are correct loop defaults, so opting a custom
//!   metric in is one line — `impl BatchMetric<MyPoint> for MyMetric {}`
//!   — which the solver crates now **require** (their entry points
//!   bound on `BatchMetric`, since a blanket impl would forbid the
//!   specialized kernels). [`Levenshtein`] (length-bucketed, query
//!   decoded once) and [`VectorBlock`] (flat contiguous rows, cached
//!   norms) override it; see the `batch` module docs for when
//!   overriding is appropriate.
//! * [`PruningConfig`] / [`PruneStats`] — the policy knob and counters
//!   for net-anchored triangle-inequality pruning: once `dis(p, c_p)`
//!   to a net center is known, `|dis(q, c_p) − dis(p, c_p)|` and
//!   `dis(q, c_p) + dis(p, c_p)` sandwich `dis(p, q)`, deciding most
//!   threshold queries without evaluating them. Pruning never changes
//!   results — labels are bit-identical with it on or off.
//!
//! # Kernel layout & bit-exactness
//!
//! The batched kernels are allowed to be *fast* but never *different*:
//! every override returns bit-for-bit the values of the scalar
//! reference loop, because the workspace's determinism contract
//! (identical labels across thread counts, pruning, caching, and
//! save/load) diffs runs that mix batched and scalar paths. Floating
//! point makes that a statement about **operation order**, not just
//! arithmetic: `f64` addition is not associative, so a kernel may
//! reorganize *which memory it reads* but must combine each result's
//! terms in the reference order.
//!
//! [`VectorBlock`] is the worked example. Its storage is
//! **dimension-major** (true SoA: one contiguous stripe per
//! dimension), so [`BatchMetric::dist_many`] loops dimensions outer /
//! candidates inner — the inner loop is independent arithmetic across
//! candidates, which autovectorizes, while each candidate still
//! accumulates its squared distance dimension-by-dimension **in
//! ascending order** into its own `f64` accumulator, followed by one
//! `sqrt`: the exact operation sequence of the scalar
//! `sum += d·d`-then-`sqrt` reference (and of [`Euclidean`] over
//! `Vec<f64>` rows). A row-major layout cannot vectorize that loop —
//! its inner reduction is a serial FP dependency chain the compiler
//! must not reorder. Fixed-d kernels (d ∈ {2, 3}, the grid workloads)
//! and the strip-blocked generic path (embedding dims 128–768) differ
//! only in bookkeeping, never in accumulation order; see the
//! `block` module docs for the layout details and the `batch` module
//! docs for the per-metric contract.
//!
//! # Example
//!
//! ```
//! use mdbscan_metric::{Euclidean, Metric};
//!
//! let a = vec![0.0, 0.0];
//! let b = vec![3.0, 4.0];
//! assert_eq!(Euclidean.distance(&a, &b), 5.0);
//! ```
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod batch;
mod block;
mod counting;
mod dataset;
mod doubling;
mod error;
mod gridcompat;
mod metric;
mod persist;
mod prune;
mod sparse;
mod string;
mod vector;

pub use batch::BatchMetric;
pub use block::{BlockScalar, VectorBlock};
pub use counting::CountingMetric;
pub use dataset::{validate_vectors, Dataset};
pub use doubling::{estimate_doubling_dimension, DoublingEstimate};
pub use error::MetricError;
pub use gridcompat::GridCompatible;
pub use metric::{FnMetric, Metric};
pub use persist::{MetricTag, PersistMetric, PersistPoint};
pub use prune::{PruneStats, PruningConfig};
pub use sparse::{SparseAngular, SparseEuclidean, SparseJaccard, SparseVector};
pub use string::{Hamming, Levenshtein};
pub use vector::{Angular, Chebyshev, Euclidean, Manhattan, Minkowski};
