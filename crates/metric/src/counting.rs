//! Distance-evaluation counting.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metric::Metric;

/// Wraps a metric and counts how many distance evaluations pass through it.
///
/// The paper states every complexity bound in units of `t_dis` (one distance
/// evaluation), so the number of calls is the hardware-independent cost of a
/// run. The experiment harness reports this count next to wall time; it is
/// what makes the reproduced "shape" of Figure 3 comparable to the paper's
/// even though the machines differ.
///
/// The counter is a relaxed atomic: exact under single-threaded use, and a
/// faithful total under the scoped-thread sweeps in Algorithm 1.
///
/// ```
/// use mdbscan_metric::{CountingMetric, Euclidean, Metric};
/// let m = CountingMetric::new(Euclidean);
/// let a = vec![0.0]; let b = vec![2.0];
/// m.distance(&a, &b);
/// m.within(&a, &b, 1.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct CountingMetric<M> {
    inner: M,
    calls: AtomicU64,
}

impl<M> CountingMetric<M> {
    /// Wraps `inner` with a fresh counter.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            calls: AtomicU64::new(0),
        }
    }

    /// Number of distance evaluations so far.
    pub fn count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.calls.swap(0, Ordering::Relaxed)
    }

    /// Adds `n` evaluations in one shot (used by the batched entry
    /// points, which count a whole batch with a single atomic add).
    pub(crate) fn add(&self, n: u64) {
        self.calls.fetch_add(n, Ordering::Relaxed);
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwraps, discarding the counter.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<P: ?Sized, M: Metric<P>> Metric<P> for CountingMetric<M> {
    #[inline]
    fn distance(&self, a: &P, b: &P) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.distance(a, b)
    }

    #[inline]
    fn distance_leq(&self, a: &P, b: &P, bound: f64) -> Option<f64> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.inner.distance_leq(a, b, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Euclidean;

    #[test]
    fn counts_and_resets() {
        let m = CountingMetric::new(Euclidean);
        let a = vec![0.0, 0.0];
        let b = vec![1.0, 0.0];
        assert_eq!(m.count(), 0);
        let _ = m.distance(&a, &b);
        let _ = m.distance_leq(&a, &b, 0.5);
        let _ = m.within(&a, &b, 2.0);
        assert_eq!(m.count(), 3);
        assert_eq!(m.reset(), 3);
        assert_eq!(m.count(), 0);
        assert_eq!(m.inner(), &Euclidean);
    }

    #[test]
    fn counting_preserves_semantics() {
        let m = CountingMetric::new(Euclidean);
        let a = vec![0.0, 0.0];
        let b = vec![3.0, 4.0];
        assert_eq!(m.distance(&a, &b), 5.0);
        assert_eq!(m.distance_leq(&a, &b, 4.0), None);
        assert_eq!(m.distance_leq(&a, &b, 5.0), Some(5.0));
        assert_eq!(m.into_inner(), Euclidean);
    }

    #[test]
    fn counter_is_shared_across_threads() {
        let m = CountingMetric::new(Euclidean);
        let a = vec![0.0];
        let b = vec![1.0];
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let _ = m.distance(&a, &b);
                    }
                });
            }
        });
        assert_eq!(m.count(), 400);
    }
}
