//! The [`Metric`] trait and generic adapters.

/// A distance function on points of type `P`.
///
/// Implementations must satisfy the metric axioms on the data they are used
/// with — the correctness proofs of every algorithm in this workspace
/// (neighbor-ball pruning, cover-tree search, summary merging) rely on the
/// triangle inequality:
///
/// 1. `distance(a, b) >= 0`, and `distance(a, a) == 0`;
/// 2. symmetry: `distance(a, b) == distance(b, a)`;
/// 3. triangle inequality: `distance(a, c) <= distance(a, b) + distance(b, c)`.
///
/// Distances must also be finite (no NaN/∞) for the inputs supplied;
/// [`crate::validate_vectors`] can be used to reject malformed vector data
/// up front.
pub trait Metric<P: ?Sized>: Send + Sync {
    /// The distance between `a` and `b`.
    fn distance(&self, a: &P, b: &P) -> f64;

    /// Early-abandoning distance: returns `Some(d)` with the exact distance
    /// when `d <= bound`, and `None` when the distance provably exceeds
    /// `bound`.
    ///
    /// The default implementation just computes the full distance. Expensive
    /// metrics (e.g. [`crate::Levenshtein`], which can band its dynamic
    /// program) override this to stop early; every threshold query in the
    /// workspace (`|B(p, ε)|` counting, BCP-≤-ε tests, summary merging) is
    /// routed through this entry point.
    fn distance_leq(&self, a: &P, b: &P, bound: f64) -> Option<f64> {
        let d = self.distance(a, b);
        if d <= bound {
            Some(d)
        } else {
            None
        }
    }

    /// Convenience predicate: is `distance(a, b) <= bound`?
    fn within(&self, a: &P, b: &P, bound: f64) -> bool {
        self.distance_leq(a, b, bound).is_some()
    }
}

/// Forward through references so `&M` can be passed where `impl Metric<P>`
/// is expected without cloning the metric.
impl<P: ?Sized, M: Metric<P> + ?Sized> Metric<P> for &M {
    fn distance(&self, a: &P, b: &P) -> f64 {
        (**self).distance(a, b)
    }
    fn distance_leq(&self, a: &P, b: &P, bound: f64) -> Option<f64> {
        (**self).distance_leq(a, b, bound)
    }
}

/// A metric defined by a closure, handy for tests and one-off user metrics.
///
/// ```
/// use mdbscan_metric::{FnMetric, Metric};
/// let line = FnMetric::new(|a: &f64, b: &f64| (a - b).abs());
/// assert_eq!(line.distance(&1.0, &4.0), 3.0);
/// ```
pub struct FnMetric<F> {
    f: F,
}

impl<F> FnMetric<F> {
    /// Wraps `f` as a [`Metric`].
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<P: ?Sized, F> Metric<P> for FnMetric<F>
where
    F: Fn(&P, &P) -> f64 + Send + Sync,
{
    fn distance(&self, a: &P, b: &P) -> f64 {
        (self.f)(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_metric_wraps_closure() {
        let m = FnMetric::new(|a: &i32, b: &i32| (a - b).abs() as f64);
        assert_eq!(m.distance(&3, &8), 5.0);
        assert_eq!(m.distance_leq(&3, &8, 5.0), Some(5.0));
        assert_eq!(m.distance_leq(&3, &8, 4.9), None);
        assert!(m.within(&0, &1, 1.0));
        assert!(!m.within(&0, &2, 1.0));
    }

    #[test]
    fn reference_forwarding() {
        let m = FnMetric::new(|a: &i32, b: &i32| (a - b).abs() as f64);
        let r = &m;
        assert_eq!(Metric::distance(&r, &1, &4), 3.0);
        assert_eq!(Metric::distance_leq(&r, &1, &4, 10.0), Some(3.0));
    }
}
