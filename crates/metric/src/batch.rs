//! Batched distance evaluation: the [`BatchMetric`] extension trait.
//!
//! The hot loops of the DBSCAN pipeline rarely ask for one distance:
//! they ask for the distances from one query point to a *list* of
//! candidates (a center-adjacency row, the anchors of a neighbor-ball
//! scan, a pivot row). [`BatchMetric`] gives metrics a single entry
//! point for that shape so they can amortize per-call setup across the
//! batch — without changing a single result.
//!
//! # Contract
//!
//! An override of [`BatchMetric::dist_many`] /
//! [`BatchMetric::dist_many_within`] **must return exactly the values**
//! the corresponding [`Metric::distance`] / [`Metric::distance_leq`]
//! loop would produce — same floating-point results, bit for bit, not
//! merely mathematically equal values. The pipeline's determinism
//! guarantee ("labels identical across thread counts, cache hits, and
//! pruning settings") compares runs that may take the batched path in
//! one configuration and the scalar path in another; any divergence
//! between the two paths would surface as label differences. Overriding
//! is therefore only appropriate when the batch kernel reuses *setup*
//! (decoded queries, scratch buffers, cached norms), never when it
//! reorders the arithmetic of an individual distance.
//!
//! The default implementations are plain loops over the scalar entry
//! points, so every metric satisfies the contract for free; the
//! workspace overrides it where setup dominates:
//!
//! * [`crate::Levenshtein`] decodes the query's `char`s once and reuses
//!   its DP rows across the batch, with candidates processed in
//!   length-sorted buckets so the bounded variant rejects whole buckets
//!   by the length gap alone;
//! * [`crate::VectorBlock`] (flat contiguous storage) walks adjacent
//!   rows and uses its cached norms for evaluation-free rejection in
//!   the bounded variant.

use crate::counting::CountingMetric;
use crate::gridcompat::GridCompatible;
use crate::metric::{FnMetric, Metric};
use crate::sparse::{SparseAngular, SparseEuclidean, SparseJaccard, SparseVector};
use crate::string::{levenshtein_full_with, Hamming, Levenshtein};
use crate::vector::{Angular, Chebyshev, Euclidean, Manhattan, Minkowski};

/// Batched distance evaluation against an indexed point slice. See the
/// crate-level docs for the exactness contract overrides must obey.
///
/// `ids` index into `points`; results land in `out` (cleared first), in
/// the same order as `ids`.
///
/// [`GridCompatible`] is a supertrait with an all-default body, so the
/// one-line opt-in for a custom metric becomes two:
/// `impl GridCompatible<MyPoint> for MyMetric {}` plus
/// `impl BatchMetric<MyPoint> for MyMetric {}` — the former gates the
/// grid candidate index (coordinate metrics only), the latter the
/// batched kernels.
pub trait BatchMetric<P>: Metric<P> + GridCompatible<P> {
    /// The distances from `query` to each `points[ids[i]]`, in order.
    ///
    /// Default: one [`Metric::distance`] call per id.
    fn dist_many(&self, points: &[P], query: &P, ids: &[u32], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            ids.iter()
                .map(|&i| self.distance(query, &points[i as usize])),
        );
    }

    /// The bounded variant: `out[i]` is the distance to `points[ids[i]]`
    /// when it is `≤ bound`, and `f64::INFINITY` otherwise.
    ///
    /// Default: one [`Metric::distance_leq`] call per id, so
    /// early-abandoning metrics keep their per-pair cutoff.
    fn dist_many_within(
        &self,
        points: &[P],
        query: &P,
        ids: &[u32],
        bound: f64,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(ids.iter().map(|&i| {
            self.distance_leq(query, &points[i as usize], bound)
                .unwrap_or(f64::INFINITY)
        }));
    }
}

/// Forward through references, like the [`Metric`] blanket impl.
impl<P, M: BatchMetric<P> + ?Sized> BatchMetric<P> for &M {
    fn dist_many(&self, points: &[P], query: &P, ids: &[u32], out: &mut Vec<f64>) {
        (**self).dist_many(points, query, ids, out)
    }
    fn dist_many_within(
        &self,
        points: &[P],
        query: &P,
        ids: &[u32],
        bound: f64,
        out: &mut Vec<f64>,
    ) {
        (**self).dist_many_within(points, query, ids, bound, out)
    }
}

/// Counts the whole batch with one atomic add, then delegates to the
/// inner metric's (possibly specialized) kernel.
impl<P, M: BatchMetric<P>> BatchMetric<P> for CountingMetric<M> {
    fn dist_many(&self, points: &[P], query: &P, ids: &[u32], out: &mut Vec<f64>) {
        self.add(ids.len() as u64);
        self.inner().dist_many(points, query, ids, out)
    }
    fn dist_many_within(
        &self,
        points: &[P],
        query: &P,
        ids: &[u32],
        bound: f64,
        out: &mut Vec<f64>,
    ) {
        self.add(ids.len() as u64);
        self.inner()
            .dist_many_within(points, query, ids, bound, out)
    }
}

// Vector metrics over owned points: the default loops are already
// optimal for scattered `Vec<f64>` rows (no setup to amortize) — the
// specialized vector kernel lives on `crate::VectorBlock`, whose
// contiguous storage is what makes a better kernel possible.
impl BatchMetric<Vec<f64>> for Euclidean {}
impl BatchMetric<Vec<f64>> for Manhattan {}
impl BatchMetric<Vec<f64>> for Chebyshev {}
impl BatchMetric<Vec<f64>> for Minkowski {}
impl BatchMetric<Vec<f64>> for Angular {}

impl BatchMetric<SparseVector> for SparseEuclidean {}
impl BatchMetric<SparseVector> for SparseAngular {}
impl BatchMetric<SparseVector> for SparseJaccard {}

impl BatchMetric<String> for Hamming {}

/// Closure metrics get the default loops.
impl<P, F> BatchMetric<P> for FnMetric<F> where F: Fn(&P, &P) -> f64 + Send + Sync {}

/// Length-bucketed batch kernel for edit distance.
///
/// Per batch, the query is decoded to `char`s **once** and the DP rows
/// are allocated **once** (the scalar path re-does both per pair —
/// `O(|q|)` and two allocations every call). Candidates are processed
/// in order of length; in the bounded variant the length gap
/// `||a| − |b|| > ⌊bound⌋` rejects candidates before decoding them.
impl BatchMetric<String> for Levenshtein {
    fn dist_many(&self, points: &[String], query: &String, ids: &[u32], out: &mut Vec<f64>) {
        out.clear();
        out.resize(ids.len(), 0.0);
        let qc: Vec<char> = query.chars().collect();
        let mut cc: Vec<char> = Vec::new();
        let (mut prev, mut cur) = (Vec::new(), Vec::new());
        // Process in ascending candidate length: the DP rows are sized
        // by the candidate, so buckets of equal length reuse rows
        // without regrowth. Results are written back by position, so the
        // output order is unaffected.
        let mut order: Vec<u32> = (0..ids.len() as u32).collect();
        order.sort_by_key(|&k| points[ids[k as usize] as usize].len());
        for k in order {
            let cand = &points[ids[k as usize] as usize];
            out[k as usize] = if query == cand {
                0.0
            } else {
                cc.clear();
                cc.extend(cand.chars());
                levenshtein_full_with(&qc, &cc, &mut prev, &mut cur) as f64
            };
        }
    }

    fn dist_many_within(
        &self,
        points: &[String],
        query: &String,
        ids: &[u32],
        bound: f64,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(ids.len(), f64::INFINITY);
        if bound < 0.0 {
            return;
        }
        let k_max = bound.floor() as usize;
        let qc: Vec<char> = query.chars().collect();
        let query_ascii = query.is_ascii();
        let mut cc: Vec<char> = Vec::new();
        let (mut prev, mut cur) = (Vec::new(), Vec::new());
        let mut order: Vec<u32> = (0..ids.len() as u32).collect();
        order.sort_by_key(|&k| points[ids[k as usize] as usize].len());
        for k in order {
            let cand = &points[ids[k as usize] as usize];
            if query == cand {
                out[k as usize] = 0.0;
                continue;
            }
            // Pre-reject on the byte-length gap when both sides are
            // ASCII (then bytes == chars): the banded DP would reject on
            // the same gap after decoding, so this only skips the decode.
            if query_ascii && cand.is_ascii() && query.len().abs_diff(cand.len()) > k_max {
                continue;
            }
            cc.clear();
            cc.extend(cand.chars());
            if let Some(d) =
                crate::string::levenshtein_banded_with(&qc, &cc, k_max, &mut prev, &mut cur)
            {
                out[k as usize] = d as f64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn default_batch_matches_scalar_loop() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64 * 0.7, (i as f64).sin()])
            .collect();
        let q = vec![3.3, 0.2];
        let mut out = Vec::new();
        Euclidean.dist_many(&pts, &q, &ids(30), &mut out);
        for (i, &d) in out.iter().enumerate() {
            assert_eq!(d, Euclidean.distance(&q, &pts[i]), "i={i}");
        }
        Euclidean.dist_many_within(&pts, &q, &ids(30), 5.0, &mut out);
        for (i, &d) in out.iter().enumerate() {
            match Euclidean.distance_leq(&q, &pts[i], 5.0) {
                Some(want) => assert_eq!(d, want, "i={i}"),
                None => assert_eq!(d, f64::INFINITY, "i={i}"),
            }
        }
    }

    #[test]
    fn levenshtein_batch_matches_scalar_loop() {
        let words: Vec<String> = [
            "cluster",
            "clusters",
            "cloister",
            "",
            "a",
            "banana",
            "bandana",
            "dbscan",
            "clattering",
            "日本語",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let q = "clustering".to_string();
        let mut out = Vec::new();
        Levenshtein.dist_many(&words, &q, &ids(words.len()), &mut out);
        for (i, &d) in out.iter().enumerate() {
            assert_eq!(d, Levenshtein.distance(&q, &words[i]), "i={i}");
        }
        for bound in [-1.0, 0.0, 1.0, 3.0, 10.0] {
            Levenshtein.dist_many_within(&words, &q, &ids(words.len()), bound, &mut out);
            for (i, &d) in out.iter().enumerate() {
                match Levenshtein.distance_leq(&q, &words[i], bound) {
                    Some(want) => assert_eq!(d, want, "i={i} bound={bound}"),
                    None => assert_eq!(d, f64::INFINITY, "i={i} bound={bound}"),
                }
            }
        }
    }

    #[test]
    fn counting_metric_counts_batches() {
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let m = CountingMetric::new(Euclidean);
        let mut out = Vec::new();
        m.dist_many(&pts, &vec![0.5], &ids(10), &mut out);
        assert_eq!(m.count(), 10);
        m.dist_many_within(&pts, &vec![0.5], &ids(4), 1.0, &mut out);
        assert_eq!(m.count(), 14);
    }

    #[test]
    fn reference_forwarding_reaches_the_kernel() {
        let words: Vec<String> = vec!["abc".into(), "abd".into()];
        let q = "abc".to_string();
        let r = &Levenshtein;
        let mut out = Vec::new();
        BatchMetric::dist_many(&r, &words, &q, &ids(2), &mut out);
        assert_eq!(out, vec![0.0, 1.0]);
    }
}
