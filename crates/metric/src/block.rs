//! Flat contiguous vector storage with cached norms: the specialized
//! batch kernel for Euclidean workloads.
//!
//! `Vec<Vec<f64>>` scatters every row behind its own allocation — the
//! batched inner loops chase a pointer per candidate. [`VectorBlock`]
//! stores all rows in **one** buffer (`f32` or `f64` via
//! [`BlockScalar`]) and caches each row's L2 norm at construction. The
//! *points* handed to the clustering engine are then just the row
//! indices (`u32`), and the block itself is the metric:
//!
//! ```
//! use mdbscan_metric::{Metric, VectorBlock};
//!
//! let block = VectorBlock::<f64>::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
//! let ids = block.ids(); // [0, 1] — these are the engine's "points"
//! assert_eq!(block.distance(&ids[0], &ids[1]), 5.0);
//! ```
//!
//! # Layout: dimension-major (SoA)
//!
//! Coordinates are stored **dimension-major**: coordinate `a` of row
//! `i` lives at `data[a * rows + i]`, i.e. one contiguous *stripe* per
//! dimension. The batch kernels ([`crate::BatchMetric`]) loop
//! dimensions on the outside and candidates on the inside, so the
//! inner loop reads one stripe with unit-ish stride and writes one
//! per-candidate accumulator — independent arithmetic across
//! candidates that the compiler autovectorizes. A row-major layout
//! cannot get there: its inner loop is the *within-row* reduction,
//! a serial floating-point dependency chain that strict FP semantics
//! forbid the compiler to reorder into vector lanes.
//!
//! On top of the layout, [`VectorBlock::dist_many`] processes
//! candidates in fixed-size strips (bounded stack accumulators), with
//! dedicated kernels for d ∈ {2, 3} (grid workloads) and a
//! four-stripe-fused generic path for embedding dimensions (128–768).
//!
//! # Bit-exactness
//!
//! Every kernel accumulates each candidate's squared distance
//! **dimension-by-dimension in ascending order** in `f64` and takes
//! one final `sqrt` — the exact operation sequence of the scalar
//! reference (`sum += d·d` per dimension, then `sqrt`), which is
//! itself the accumulation order of [`crate::Euclidean`] over
//! `Vec<f64>` rows. Re-laying the storage moves *where* coordinates
//! live, never the order they are combined, so an `f64` block yields
//! bit-identical distances (and therefore clusterings) to the
//! scattered representation, and the batch entry points satisfy the
//! [`crate::BatchMetric`] bit-exactness contract by construction.
//! What the layout buys on top of batching:
//!
//! * cached norms give the bounded variant a coordinate-free reject
//!   (`|‖a‖ − ‖b‖| ≤ dis(a, b)`, the reverse triangle inequality)
//!   before any coordinate is read;
//! * **`f32` storage** halves memory traffic for bandwidth-bound
//!   high-dimensional sweeps; accumulation stays in `f64`.
//!
//! A block can also be **decoded zero-copy** from an on-disk engine
//! artifact: [`VectorBlock::from_soa_parts`] accepts storage that
//! aliases the artifact's buffer (`mdbscan_persist::MaybeShared`), so
//! a serving replica's coordinates are the file bytes themselves.

use crate::batch::BatchMetric;
use crate::gridcompat::GridCompatible;
use crate::metric::Metric;
use mdbscan_persist::MaybeShared;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Element type of a [`VectorBlock`]: `f32` (half the memory traffic)
/// or `f64` (bit-compatible with [`crate::Euclidean`] on `Vec<f64>`).
/// The `Pod` supertrait is what lets block storage alias artifact
/// bytes on load.
pub trait BlockScalar: sealed::Sealed + mdbscan_persist::Pod {
    /// Widens to `f64` for accumulation.
    fn to_f64(self) -> f64;
    /// Narrows from `f64` at construction time.
    fn from_f64(v: f64) -> Self;
}

impl BlockScalar for f32 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

impl BlockScalar for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> Self {
        v
    }
}

/// Strip width for the batched kernels: candidates are processed in
/// bounded chunks so the per-candidate accumulators live on the stack.
const STRIP: usize = 64;

/// Dimension-major (SoA) contiguous vector storage acting as a
/// **Euclidean metric over row indices** (`Metric<u32>`), with per-row
/// L2 norms cached for the batched bounded kernel. See the module docs
/// for the layout and the bit-exactness argument.
#[derive(Debug, Clone)]
pub struct VectorBlock<T = f64> {
    dim: usize,
    rows: usize,
    /// Dimension-major: coordinate `a` of row `i` at `a * rows + i`.
    data: MaybeShared<T>,
    norms: MaybeShared<f64>,
}

impl<T: BlockScalar> VectorBlock<T> {
    /// Packs `rows` into one dimension-major buffer and caches their
    /// norms.
    ///
    /// Panics if the rows are ragged (unequal lengths) or contain
    /// non-finite values — the same inputs [`crate::validate_vectors`]
    /// rejects. Validation runs as a bulk pass per row *before*
    /// packing, so the pack loop itself carries only debug asserts and
    /// million-row construction is copy-bound, not assert-bound.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let n = rows.len();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                dim,
                "ragged input: row {i} has {} dims, row 0 has {dim}",
                row.len()
            );
            assert!(
                row.iter().all(|v| v.is_finite()),
                "non-finite value in row {i}"
            );
        }
        let mut data = vec![T::from_f64(0.0); n * dim];
        let mut norms = Vec::with_capacity(n);
        for (i, row) in rows.iter().enumerate() {
            debug_assert_eq!(row.len(), dim);
            let mut sum = 0.0;
            for (a, &v) in row.iter().enumerate() {
                let t = T::from_f64(v);
                data[a * n + i] = t;
                // The norm is over the *stored* (possibly f32-rounded)
                // values — the geometry the metric actually measures.
                let x = t.to_f64();
                sum += x * x;
            }
            norms.push(sum.sqrt());
        }
        Self {
            dim,
            rows: n,
            data: MaybeShared::Owned(data),
            norms: MaybeShared::Owned(norms),
        }
    }

    /// Packs an already-flat **row-major** buffer (`data.len()` must be
    /// a multiple of `dim`; with `dim == 0` the buffer must be empty
    /// and the block holds zero points). The buffer is transposed into
    /// the internal dimension-major layout.
    pub fn from_flat(dim: usize, data: Vec<T>) -> Self {
        let rows = if dim == 0 {
            assert!(data.is_empty(), "dim 0 with non-empty data");
            0
        } else {
            assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
            data.len() / dim
        };
        let mut soa = vec![T::from_f64(0.0); data.len()];
        let mut norms = Vec::with_capacity(rows);
        for i in 0..rows {
            let row = &data[i * dim..(i + 1) * dim];
            let mut sum = 0.0;
            for (a, &v) in row.iter().enumerate() {
                soa[a * rows + i] = v;
                let x = v.to_f64();
                sum += x * x;
            }
            norms.push(sum.sqrt());
        }
        Self {
            dim,
            rows,
            data: MaybeShared::Owned(soa),
            norms: MaybeShared::Owned(norms),
        }
    }

    /// Assembles a block from already-dimension-major storage — the
    /// artifact decode path, where `data` and `norms` may alias the
    /// loaded file's buffer (zero-copy). `data` must hold
    /// `dim * rows` elements laid out `a * rows + i` and `norms` the
    /// `rows` cached L2 norms exactly as a constructor computed them;
    /// both are trusted verbatim so a save/load round trip is
    /// bit-identical by construction.
    ///
    /// Panics if the lengths disagree with `dim`/`rows`.
    pub fn from_soa_parts(
        dim: usize,
        rows: usize,
        data: MaybeShared<T>,
        norms: MaybeShared<f64>,
    ) -> Self {
        assert_eq!(data.len(), dim * rows, "SoA data length != dim * rows");
        assert_eq!(norms.len(), rows, "norms length != rows");
        Self {
            dim,
            rows,
            data,
            norms,
        }
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinate `a` of row `i`.
    pub fn coord(&self, i: usize, a: usize) -> T {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        self.data.as_slice()[a * self.rows + i]
    }

    /// The contiguous stripe of dimension `a`: element `i` is row `i`'s
    /// `a`-th coordinate.
    pub fn stripe(&self, a: usize) -> &[T] {
        &self.data.as_slice()[a * self.rows..(a + 1) * self.rows]
    }

    /// The raw dimension-major storage (`dim * rows` elements) — the
    /// persistence codec's view, also used by tests asserting the
    /// zero-copy load path.
    pub fn soa_data(&self) -> &[T] {
        self.data.as_slice()
    }

    /// The cached per-row L2 norms.
    pub fn norms_data(&self) -> &[f64] {
        self.norms.as_slice()
    }

    /// True when both coordinates and norms alias a loaded artifact
    /// buffer rather than owning copies.
    pub fn is_zero_copy(&self) -> bool {
        self.data.is_shared() && self.norms.is_shared()
    }

    /// The cached L2 norm of row `i`.
    pub fn norm(&self, i: usize) -> f64 {
        self.norms.as_slice()[i]
    }

    /// The point set to hand to a clustering engine: the row indices
    /// `[0, 1, …, len − 1]`.
    pub fn ids(&self) -> Vec<u32> {
        (0..self.rows as u32).collect()
    }

    #[inline]
    fn row_distance(&self, a: usize, b: usize) -> f64 {
        let data = self.data.as_slice();
        let rows = self.rows;
        assert!(a < rows || self.dim == 0, "row {a} out of bounds");
        assert!(b < rows || self.dim == 0, "row {b} out of bounds");
        let mut sum = 0.0;
        let mut base = 0;
        for _ in 0..self.dim {
            let d = data[base + a].to_f64() - data[base + b].to_f64();
            sum += d * d;
            base += rows;
        }
        sum.sqrt()
    }

    /// Squared-distance accumulation for one strip of candidate rows.
    /// `acc[j]` accumulates row `rid[j]`'s squared distance to row `q`,
    /// dimension-by-dimension in ascending order (the bit-exactness
    /// contract). Dimensions are fused four stripes at a time purely to
    /// amortize loop overhead — each candidate's adds stay serial and
    /// in order.
    ///
    /// When the strip's rows form a contiguous ascending run (full-range
    /// sweeps — Step-3 labeling, Algorithm-2 core tests over all points
    /// — land here constantly), the per-stripe loads become slice reads
    /// instead of gathers, which is what lets the compiler vectorize
    /// across candidates. Both paths perform the identical operation
    /// sequence per candidate, so the dispatch is invisible in the
    /// output bits.
    #[inline]
    fn accumulate_strip(
        data: &[T],
        rows: usize,
        dim: usize,
        q: usize,
        rid: &[usize],
        acc: &mut [f64],
    ) {
        debug_assert_eq!(rid.len(), acc.len());
        let c = rid.len();
        if c == 0 {
            return;
        }
        let r0 = rid[0];
        if rid.iter().enumerate().all(|(j, &r)| r == r0 + j) {
            let mut a = 0;
            while a + 4 <= dim {
                let s0 = &data[a * rows..(a + 1) * rows];
                let s1 = &data[(a + 1) * rows..(a + 2) * rows];
                let s2 = &data[(a + 2) * rows..(a + 3) * rows];
                let s3 = &data[(a + 3) * rows..(a + 4) * rows];
                let q0 = s0[q].to_f64();
                let q1 = s1[q].to_f64();
                let q2 = s2[q].to_f64();
                let q3 = s3[q].to_f64();
                let (c0, c1) = (&s0[r0..r0 + c], &s1[r0..r0 + c]);
                let (c2, c3) = (&s2[r0..r0 + c], &s3[r0..r0 + c]);
                for j in 0..c {
                    let mut s = acc[j];
                    let d0 = q0 - c0[j].to_f64();
                    s += d0 * d0;
                    let d1 = q1 - c1[j].to_f64();
                    s += d1 * d1;
                    let d2 = q2 - c2[j].to_f64();
                    s += d2 * d2;
                    let d3 = q3 - c3[j].to_f64();
                    s += d3 * d3;
                    acc[j] = s;
                }
                a += 4;
            }
            while a < dim {
                let s0 = &data[a * rows..(a + 1) * rows];
                let q0 = s0[q].to_f64();
                let c0 = &s0[r0..r0 + c];
                for j in 0..c {
                    let d = q0 - c0[j].to_f64();
                    acc[j] += d * d;
                }
                a += 1;
            }
            return;
        }
        let mut a = 0;
        while a + 4 <= dim {
            let s0 = &data[a * rows..(a + 1) * rows];
            let s1 = &data[(a + 1) * rows..(a + 2) * rows];
            let s2 = &data[(a + 2) * rows..(a + 3) * rows];
            let s3 = &data[(a + 3) * rows..(a + 4) * rows];
            let q0 = s0[q].to_f64();
            let q1 = s1[q].to_f64();
            let q2 = s2[q].to_f64();
            let q3 = s3[q].to_f64();
            for (j, &r) in rid.iter().enumerate() {
                let mut s = acc[j];
                let d0 = q0 - s0[r].to_f64();
                s += d0 * d0;
                let d1 = q1 - s1[r].to_f64();
                s += d1 * d1;
                let d2 = q2 - s2[r].to_f64();
                s += d2 * d2;
                let d3 = q3 - s3[r].to_f64();
                s += d3 * d3;
                acc[j] = s;
            }
            a += 4;
        }
        while a < dim {
            let s0 = &data[a * rows..(a + 1) * rows];
            let q0 = s0[q].to_f64();
            for (j, &r) in rid.iter().enumerate() {
                let d = q0 - s0[r].to_f64();
                acc[j] += d * d;
            }
            a += 1;
        }
    }
}

impl<T: BlockScalar> Metric<u32> for VectorBlock<T> {
    #[inline]
    fn distance(&self, a: &u32, b: &u32) -> f64 {
        self.row_distance(*a as usize, *b as usize)
    }

    #[inline]
    fn distance_leq(&self, a: &u32, b: &u32, bound: f64) -> Option<f64> {
        if bound < 0.0 {
            return None;
        }
        // Reverse triangle inequality on the cached norms: a free reject
        // before any coordinate is touched.
        let norms = self.norms.as_slice();
        if (norms[*a as usize] - norms[*b as usize]).abs() > bound {
            return None;
        }
        let d = self.row_distance(*a as usize, *b as usize);
        (d <= bound).then_some(d)
    }
}

/// The block *is* coordinate data: expose the stored rows (widened to
/// `f64`, exactly the values the distance kernel consumes) so the grid
/// candidate index can bin them. For `f32` blocks the view is
/// the rounded stored values — the geometry the metric actually
/// measures — so the grid's candidate decisions agree with the metric
/// for both scalar types.
impl<T: BlockScalar> GridCompatible<u32> for VectorBlock<T> {
    fn grid_coords(&self, points: &[u32], out: &mut Vec<f64>) -> Option<usize> {
        if self.dim == 0 {
            return None;
        }
        let data = self.data.as_slice();
        let rows = self.rows;
        out.reserve(points.len() * self.dim);
        for &id in points {
            let i = id as usize;
            assert!(i < rows, "row {i} out of bounds ({rows} rows)");
            out.extend((0..self.dim).map(|a| data[a * rows + i].to_f64()));
        }
        Some(self.dim)
    }
}

impl<T: BlockScalar> BatchMetric<u32> for VectorBlock<T> {
    /// Strip-blocked SoA kernel: dimensions outer, candidates inner,
    /// per-candidate stack accumulators — autovectorizes across
    /// candidates while keeping each candidate's accumulation order
    /// identical to the scalar reference. `points` is the id slice the
    /// engine owns; each id addresses a row of this block.
    fn dist_many(&self, points: &[u32], query: &u32, ids: &[u32], out: &mut Vec<f64>) {
        let q = *query as usize;
        out.clear();
        out.reserve(ids.len());
        let data = self.data.as_slice();
        let rows = self.rows;
        match self.dim {
            0 => out.resize(ids.len(), 0.0),
            2 => {
                let s0 = &data[..rows];
                let s1 = &data[rows..2 * rows];
                let q0 = s0[q].to_f64();
                let q1 = s1[q].to_f64();
                out.extend(ids.iter().map(|&i| {
                    let r = points[i as usize] as usize;
                    let d0 = q0 - s0[r].to_f64();
                    let d1 = q1 - s1[r].to_f64();
                    (d0 * d0 + d1 * d1).sqrt()
                }));
            }
            3 => {
                let s0 = &data[..rows];
                let s1 = &data[rows..2 * rows];
                let s2 = &data[2 * rows..3 * rows];
                let q0 = s0[q].to_f64();
                let q1 = s1[q].to_f64();
                let q2 = s2[q].to_f64();
                out.extend(ids.iter().map(|&i| {
                    let r = points[i as usize] as usize;
                    let d0 = q0 - s0[r].to_f64();
                    let d1 = q1 - s1[r].to_f64();
                    let d2 = q2 - s2[r].to_f64();
                    (d0 * d0 + d1 * d1 + d2 * d2).sqrt()
                }));
            }
            dim => {
                let mut rid = [0usize; STRIP];
                let mut acc = [0f64; STRIP];
                let mut start = 0;
                while start < ids.len() {
                    let c = (ids.len() - start).min(STRIP);
                    for j in 0..c {
                        rid[j] = points[ids[start + j] as usize] as usize;
                    }
                    acc[..c].fill(0.0);
                    Self::accumulate_strip(data, rows, dim, q, &rid[..c], &mut acc[..c]);
                    out.extend(acc[..c].iter().map(|s| s.sqrt()));
                    start += c;
                }
            }
        }
    }

    /// Norm-screened bounded batch: rows whose cached-norm gap already
    /// exceeds `bound` are rejected without reading a coordinate;
    /// survivors are compacted per strip and run through the same SoA
    /// accumulation as [`VectorBlock::dist_many`], so accepted
    /// distances are bit-identical to the scalar reference.
    fn dist_many_within(
        &self,
        points: &[u32],
        query: &u32,
        ids: &[u32],
        bound: f64,
        out: &mut Vec<f64>,
    ) {
        let q = *query as usize;
        out.clear();
        if bound < 0.0 {
            out.resize(ids.len(), f64::INFINITY);
            return;
        }
        let data = self.data.as_slice();
        let norms = self.norms.as_slice();
        let rows = self.rows;
        let nq = norms[q];
        out.resize(ids.len(), f64::INFINITY);
        let mut rid = [0usize; STRIP];
        let mut slot = [0usize; STRIP];
        let mut acc = [0f64; STRIP];
        let mut start = 0;
        while start < ids.len() {
            let c = (ids.len() - start).min(STRIP);
            let mut m = 0;
            for j in 0..c {
                let r = points[ids[start + j] as usize] as usize;
                if (nq - norms[r]).abs() <= bound {
                    rid[m] = r;
                    slot[m] = start + j;
                    m += 1;
                }
            }
            acc[..m].fill(0.0);
            Self::accumulate_strip(data, rows, self.dim, q, &rid[..m], &mut acc[..m]);
            for j in 0..m {
                let d = acc[j].sqrt();
                if d <= bound {
                    out[slot[j]] = d;
                }
            }
            start += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Euclidean;

    fn rows() -> Vec<Vec<f64>> {
        (0..40)
            .map(|i| {
                vec![
                    (i as f64 * 0.37).sin() * 3.0,
                    (i % 7) as f64,
                    i as f64 * 0.01,
                ]
            })
            .collect()
    }

    #[test]
    fn f64_block_matches_euclidean_bitwise() {
        let rows = rows();
        let block = VectorBlock::<f64>::from_rows(&rows);
        assert_eq!(block.len(), 40);
        assert_eq!(block.dim(), 3);
        for a in 0..rows.len() {
            for b in 0..rows.len() {
                let want = Euclidean.distance(&rows[a], &rows[b]);
                assert_eq!(block.distance(&(a as u32), &(b as u32)), want);
                match block.distance_leq(&(a as u32), &(b as u32), 2.5) {
                    Some(d) => assert!(d <= 2.5 && d == want),
                    None => assert!(want > 2.5),
                }
            }
        }
    }

    #[test]
    fn f32_block_is_a_metric() {
        let rows = rows();
        let block = VectorBlock::<f32>::from_rows(&rows);
        for a in 0..rows.len() {
            assert_eq!(block.distance(&(a as u32), &(a as u32)), 0.0);
            for b in 0..rows.len() {
                let d = block.distance(&(a as u32), &(b as u32));
                let want = Euclidean.distance(&rows[a], &rows[b]);
                assert!((d - want).abs() < 1e-3, "f32 distance off: {d} vs {want}");
                assert_eq!(d, block.distance(&(b as u32), &(a as u32)));
            }
        }
    }

    #[test]
    fn batch_matches_scalar() {
        let rows = rows();
        let block = VectorBlock::<f64>::from_rows(&rows);
        let pts = block.ids();
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let mut out = Vec::new();
        block.dist_many(&pts, &pts[3], &ids, &mut out);
        for (i, &d) in out.iter().enumerate() {
            assert_eq!(d, block.distance(&pts[3], &pts[i]));
        }
        block.dist_many_within(&pts, &pts[3], &ids, 2.0, &mut out);
        for (i, &d) in out.iter().enumerate() {
            match block.distance_leq(&pts[3], &pts[i], 2.0) {
                Some(want) => assert_eq!(d, want),
                None => assert_eq!(d, f64::INFINITY),
            }
        }
    }

    #[test]
    fn empty_and_flat_constructors() {
        let empty = VectorBlock::<f64>::from_rows(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.ids(), Vec::<u32>::new());
        let flat = VectorBlock::<f64>::from_flat(2, vec![0.0, 0.0, 3.0, 4.0]);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.norm(1), 5.0);
        assert_eq!(flat.coord(1, 0), 3.0);
        assert_eq!(flat.coord(1, 1), 4.0);
        assert_eq!(flat.stripe(0), &[0.0, 3.0]);
        assert_eq!(flat.stripe(1), &[0.0, 4.0]);
        assert!(!flat.is_zero_copy());
    }

    #[test]
    fn soa_layout_is_dimension_major() {
        let block = VectorBlock::<f64>::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(block.soa_data(), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(block.norms_data().len(), 2);
        let same = VectorBlock::<f64>::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(same.soa_data(), block.soa_data());
        assert_eq!(same.norms_data(), block.norms_data());
    }

    #[test]
    fn from_soa_parts_round_trips() {
        let block = VectorBlock::<f32>::from_rows(&rows());
        let rebuilt = VectorBlock::<f32>::from_soa_parts(
            block.dim(),
            block.len(),
            MaybeShared::Owned(block.soa_data().to_vec()),
            MaybeShared::Owned(block.norms_data().to_vec()),
        );
        for a in 0..block.len() as u32 {
            for b in 0..block.len() as u32 {
                assert_eq!(block.distance(&a, &b), rebuilt.distance(&a, &b));
            }
        }
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = VectorBlock::<f64>::from_rows(&[vec![0.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic]
    fn non_finite_rows_panic() {
        let _ = VectorBlock::<f64>::from_rows(&[vec![0.0, f64::NAN]]);
    }

    #[test]
    #[should_panic]
    fn misaligned_flat_panics() {
        let _ = VectorBlock::<f64>::from_flat(3, vec![0.0; 4]);
    }
}
