//! Flat contiguous vector storage with cached norms: the specialized
//! batch kernel for Euclidean workloads.
//!
//! `Vec<Vec<f64>>` scatters every row behind its own allocation — the
//! batched inner loops chase a pointer per candidate. [`VectorBlock`]
//! stores all rows in **one** buffer (row-major, `f32` or `f64` via
//! [`BlockScalar`]) and caches each row's L2 norm at construction. The
//! *points* handed to the clustering engine are then just the row
//! indices (`u32`), and the block itself is the metric:
//!
//! ```
//! use mdbscan_metric::{Metric, VectorBlock};
//!
//! let block = VectorBlock::<f64>::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
//! let ids = block.ids(); // [0, 1] — these are the engine's "points"
//! assert_eq!(block.distance(&ids[0], &ids[1]), 5.0);
//! ```
//!
//! What the layout buys:
//!
//! * **batching** ([`crate::BatchMetric`]): candidate rows stream from
//!   one allocation, and the cached norms give the bounded variant a
//!   coordinate-free reject (`|‖a‖ − ‖b‖| ≤ dis(a, b)`, the reverse
//!   triangle inequality) before any coordinate is read;
//! * **`f32` storage** halves memory traffic for bandwidth-bound
//!   high-dimensional sweeps; accumulation stays in `f64`.
//!
//! Distances are computed with the same accumulation order as
//! [`crate::Euclidean`] over `Vec<f64>` rows, so an `f64` block yields
//! bit-identical clusterings to the scattered representation.

use crate::batch::BatchMetric;
use crate::gridcompat::GridCompatible;
use crate::metric::Metric;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Element type of a [`VectorBlock`]: `f32` (half the memory traffic)
/// or `f64` (bit-compatible with [`crate::Euclidean`] on `Vec<f64>`).
pub trait BlockScalar: sealed::Sealed + Copy + Send + Sync + 'static {
    /// Widens to `f64` for accumulation.
    fn to_f64(self) -> f64;
    /// Narrows from `f64` at construction time.
    fn from_f64(v: f64) -> Self;
}

impl BlockScalar for f32 {
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
}

impl BlockScalar for f64 {
    fn to_f64(self) -> f64 {
        self
    }
    fn from_f64(v: f64) -> Self {
        v
    }
}

/// Row-major contiguous vector storage acting as a **Euclidean metric
/// over row indices** (`Metric<u32>`), with per-row L2 norms cached for
/// the batched bounded kernel.
#[derive(Debug, Clone)]
pub struct VectorBlock<T = f64> {
    dim: usize,
    rows: usize,
    data: Vec<T>,
    norms: Vec<f64>,
}

impl<T: BlockScalar> VectorBlock<T> {
    /// Packs `rows` into one flat buffer and caches their norms.
    ///
    /// Panics if the rows are ragged (unequal lengths) or contain
    /// non-finite values — the same inputs [`crate::validate_vectors`]
    /// rejects.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * dim);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                dim,
                "ragged input: row {i} has {} dims, row 0 has {dim}",
                row.len()
            );
            for &v in row {
                assert!(v.is_finite(), "non-finite value in row {i}");
                data.push(T::from_f64(v));
            }
        }
        Self::from_flat(dim, data)
    }

    /// Wraps an already-flat row-major buffer (`data.len()` must be a
    /// multiple of `dim`; with `dim == 0` the buffer must be empty and
    /// the block holds zero points).
    pub fn from_flat(dim: usize, data: Vec<T>) -> Self {
        let rows = if dim == 0 {
            assert!(data.is_empty(), "dim 0 with non-empty data");
            0
        } else {
            assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
            data.len() / dim
        };
        let norms = (0..rows)
            .map(|r| {
                data[r * dim..(r + 1) * dim]
                    .iter()
                    .map(|v| {
                        let x = v.to_f64();
                        x * x
                    })
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        Self {
            dim,
            rows,
            data,
            norms,
        }
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a scalar slice.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The cached L2 norm of row `i`.
    pub fn norm(&self, i: usize) -> f64 {
        self.norms[i]
    }

    /// The point set to hand to a clustering engine: the row indices
    /// `[0, 1, …, len − 1]`.
    pub fn ids(&self) -> Vec<u32> {
        (0..self.rows as u32).collect()
    }

    #[inline]
    fn row_distance(&self, a: usize, b: usize) -> f64 {
        let (ra, rb) = (self.row(a), self.row(b));
        let mut sum = 0.0;
        for (x, y) in ra.iter().zip(rb.iter()) {
            let d = x.to_f64() - y.to_f64();
            sum += d * d;
        }
        sum.sqrt()
    }
}

impl<T: BlockScalar> Metric<u32> for VectorBlock<T> {
    #[inline]
    fn distance(&self, a: &u32, b: &u32) -> f64 {
        self.row_distance(*a as usize, *b as usize)
    }

    #[inline]
    fn distance_leq(&self, a: &u32, b: &u32, bound: f64) -> Option<f64> {
        if bound < 0.0 {
            return None;
        }
        // Reverse triangle inequality on the cached norms: a free reject
        // before any coordinate is touched.
        if (self.norms[*a as usize] - self.norms[*b as usize]).abs() > bound {
            return None;
        }
        let d = self.row_distance(*a as usize, *b as usize);
        (d <= bound).then_some(d)
    }
}

/// The block *is* coordinate data: expose the stored rows (widened to
/// `f64`, exactly the values the distance kernel consumes) so the grid
/// candidate index can bin them. For `f32` blocks the view is
/// the rounded stored values — the geometry the metric actually
/// measures — so the grid's candidate decisions agree with the metric
/// for both scalar types.
impl<T: BlockScalar> GridCompatible<u32> for VectorBlock<T> {
    fn grid_coords(&self, points: &[u32], out: &mut Vec<f64>) -> Option<usize> {
        if self.dim == 0 {
            return None;
        }
        out.reserve(points.len() * self.dim);
        for &id in points {
            out.extend(self.row(id as usize).iter().map(|v| v.to_f64()));
        }
        Some(self.dim)
    }
}

impl<T: BlockScalar> BatchMetric<u32> for VectorBlock<T> {
    /// Streams candidate rows out of the flat buffer. `points` is the
    /// id slice the engine owns; each id addresses a row of this block.
    fn dist_many(&self, points: &[u32], query: &u32, ids: &[u32], out: &mut Vec<f64>) {
        let q = *query as usize;
        out.clear();
        out.extend(
            ids.iter()
                .map(|&i| self.row_distance(q, points[i as usize] as usize)),
        );
    }

    /// Norm-screened bounded batch: rows whose cached-norm gap already
    /// exceeds `bound` are rejected without reading a coordinate.
    fn dist_many_within(
        &self,
        points: &[u32],
        query: &u32,
        ids: &[u32],
        bound: f64,
        out: &mut Vec<f64>,
    ) {
        let q = *query as usize;
        out.clear();
        if bound < 0.0 {
            out.resize(ids.len(), f64::INFINITY);
            return;
        }
        let nq = self.norms[q];
        out.extend(ids.iter().map(|&i| {
            let r = points[i as usize] as usize;
            if (nq - self.norms[r]).abs() > bound {
                return f64::INFINITY;
            }
            let d = self.row_distance(q, r);
            if d <= bound {
                d
            } else {
                f64::INFINITY
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Euclidean;

    fn rows() -> Vec<Vec<f64>> {
        (0..40)
            .map(|i| {
                vec![
                    (i as f64 * 0.37).sin() * 3.0,
                    (i % 7) as f64,
                    i as f64 * 0.01,
                ]
            })
            .collect()
    }

    #[test]
    fn f64_block_matches_euclidean_bitwise() {
        let rows = rows();
        let block = VectorBlock::<f64>::from_rows(&rows);
        assert_eq!(block.len(), 40);
        assert_eq!(block.dim(), 3);
        for a in 0..rows.len() {
            for b in 0..rows.len() {
                let want = Euclidean.distance(&rows[a], &rows[b]);
                assert_eq!(block.distance(&(a as u32), &(b as u32)), want);
                match block.distance_leq(&(a as u32), &(b as u32), 2.5) {
                    Some(d) => assert!(d <= 2.5 && d == want),
                    None => assert!(want > 2.5),
                }
            }
        }
    }

    #[test]
    fn f32_block_is_a_metric() {
        let rows = rows();
        let block = VectorBlock::<f32>::from_rows(&rows);
        for a in 0..rows.len() {
            assert_eq!(block.distance(&(a as u32), &(a as u32)), 0.0);
            for b in 0..rows.len() {
                let d = block.distance(&(a as u32), &(b as u32));
                let want = Euclidean.distance(&rows[a], &rows[b]);
                assert!((d - want).abs() < 1e-3, "f32 distance off: {d} vs {want}");
                assert_eq!(d, block.distance(&(b as u32), &(a as u32)));
            }
        }
    }

    #[test]
    fn batch_matches_scalar() {
        let rows = rows();
        let block = VectorBlock::<f64>::from_rows(&rows);
        let pts = block.ids();
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let mut out = Vec::new();
        block.dist_many(&pts, &pts[3], &ids, &mut out);
        for (i, &d) in out.iter().enumerate() {
            assert_eq!(d, block.distance(&pts[3], &pts[i]));
        }
        block.dist_many_within(&pts, &pts[3], &ids, 2.0, &mut out);
        for (i, &d) in out.iter().enumerate() {
            match block.distance_leq(&pts[3], &pts[i], 2.0) {
                Some(want) => assert_eq!(d, want),
                None => assert_eq!(d, f64::INFINITY),
            }
        }
    }

    #[test]
    fn empty_and_flat_constructors() {
        let empty = VectorBlock::<f64>::from_rows(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.ids(), Vec::<u32>::new());
        let flat = VectorBlock::<f64>::from_flat(2, vec![0.0, 0.0, 3.0, 4.0]);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat.norm(1), 5.0);
        assert_eq!(flat.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_panic() {
        let _ = VectorBlock::<f64>::from_rows(&[vec![0.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic]
    fn misaligned_flat_panics() {
        let _ = VectorBlock::<f64>::from_flat(3, vec![0.0; 4]);
    }
}
