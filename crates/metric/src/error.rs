//! Error type shared by the substrate.

use std::fmt;

/// Errors produced while validating metric-space inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// A vector contained NaN or an infinity at the given (point, coordinate).
    NonFinite {
        /// Index of the offending point in the input slice.
        point: usize,
        /// Offending coordinate index.
        coordinate: usize,
    },
    /// Two points disagreed on dimensionality.
    DimensionMismatch {
        /// Index of the offending point.
        point: usize,
        /// Dimensionality of the offending point.
        got: usize,
        /// Dimensionality of the first point.
        expected: usize,
    },
    /// The input was empty where at least one point is required.
    Empty,
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::NonFinite { point, coordinate } => write!(
                f,
                "point {point} has a non-finite value at coordinate {coordinate}"
            ),
            MetricError::DimensionMismatch {
                point,
                got,
                expected,
            } => write!(f, "point {point} has dimension {got}, expected {expected}"),
            MetricError::Empty => write!(f, "input point set is empty"),
        }
    }
}

impl std::error::Error for MetricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MetricError::Empty.to_string().contains("empty"));
        assert!(MetricError::NonFinite {
            point: 3,
            coordinate: 1
        }
        .to_string()
        .contains("point 3"));
        assert!(MetricError::DimensionMismatch {
            point: 2,
            got: 4,
            expected: 8
        }
        .to_string()
        .contains("dimension 4"));
    }
}
