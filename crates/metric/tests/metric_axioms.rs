//! Property-based tests: every shipped metric satisfies the metric axioms
//! on randomized inputs, and `distance_leq` is consistent with `distance`.

use mdbscan_metric::{
    Angular, Chebyshev, Euclidean, Hamming, Levenshtein, Manhattan, Metric, Minkowski,
};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

fn vec3() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 3)
}

fn small_string() -> impl Strategy<Value = String> {
    "[a-d]{0,8}"
}

macro_rules! axiom_tests {
    ($name:ident, $metric:expr, $strategy:expr, $tol:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #[test]
                fn identity(a in $strategy) {
                    let m = $metric;
                    prop_assert!(m.distance(&a, &a).abs() <= $tol);
                }

                #[test]
                fn symmetry(a in $strategy, b in $strategy) {
                    let m = $metric;
                    prop_assert!((m.distance(&a, &b) - m.distance(&b, &a)).abs() <= $tol);
                }

                #[test]
                fn non_negative(a in $strategy, b in $strategy) {
                    let m = $metric;
                    prop_assert!(m.distance(&a, &b) >= -$tol);
                }

                #[test]
                fn triangle(a in $strategy, b in $strategy, c in $strategy) {
                    let m = $metric;
                    let ab = m.distance(&a, &b);
                    let bc = m.distance(&b, &c);
                    let ac = m.distance(&a, &c);
                    prop_assert!(ac <= ab + bc + $tol,
                        "triangle violated: d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
                }

                #[test]
                fn leq_consistent(a in $strategy, b in $strategy, bound in 0.0f64..50.0) {
                    let m = $metric;
                    let d = m.distance(&a, &b);
                    match m.distance_leq(&a, &b, bound) {
                        Some(got) => {
                            prop_assert!(d <= bound + $tol);
                            prop_assert!((got - d).abs() <= $tol);
                        }
                        None => prop_assert!(d > bound - $tol),
                    }
                }
            }
        }
    };
}

axiom_tests!(euclidean, Euclidean, vec3(), EPS);
axiom_tests!(manhattan, Manhattan, vec3(), EPS);
axiom_tests!(chebyshev, Chebyshev, vec3(), EPS);
axiom_tests!(minkowski3, Minkowski::new(3.0), vec3(), 1e-6);
axiom_tests!(levenshtein, Levenshtein, small_string(), 0.0);

proptest! {
    /// Angular distance is a metric on nonzero vectors.
    #[test]
    fn angular_triangle(
        a in vec3().prop_filter("nonzero", |v| v.iter().any(|x| x.abs() > 1e-3)),
        b in vec3().prop_filter("nonzero", |v| v.iter().any(|x| x.abs() > 1e-3)),
        c in vec3().prop_filter("nonzero", |v| v.iter().any(|x| x.abs() > 1e-3)),
    ) {
        let ab = Angular.distance(&a, &b);
        let bc = Angular.distance(&b, &c);
        let ac = Angular.distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-7);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ac));
    }

    /// Hamming on equal-length strings is a metric.
    #[test]
    fn hamming_axioms(a in "[ab]{6}", b in "[ab]{6}", c in "[ab]{6}") {
        let m = Hamming;
        prop_assert_eq!(m.distance(&a, &a), 0.0);
        prop_assert_eq!(m.distance(&a, &b), m.distance(&b, &a));
        prop_assert!(m.distance(&a, &c) <= m.distance(&a, &b) + m.distance(&b, &c));
    }

    /// Levenshtein distance_leq agrees with the full DP at every bound.
    #[test]
    fn levenshtein_band_agreement(a in small_string(), b in small_string(), k in 0usize..10) {
        let d = Metric::<str>::distance(&Levenshtein, &a, &b);
        let got = Metric::<str>::distance_leq(&Levenshtein, &a, &b, k as f64);
        if d <= k as f64 {
            prop_assert_eq!(got, Some(d));
        } else {
            prop_assert_eq!(got, None);
        }
    }
}
