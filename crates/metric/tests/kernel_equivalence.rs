//! Property tests for the SoA batch kernels: `VectorBlock`'s
//! `dist_many` / `dist_many_within` (strip-blocked, fixed-d
//! specializations at d ∈ {2, 3}, fused generic path) must return
//! **bit-for-bit** the values of the scalar `Metric` reference loop —
//! the `BatchMetric` contract the solvers' determinism rides on —
//! for f32 and f64 storage across d ∈ {1, 2, 3, 5, 128}, including
//! empty and single-candidate batches, permuted id indirection, and
//! bound tightness at realized distances.

use mdbscan_metric::{BatchMetric, BlockScalar, Euclidean, Metric, VectorBlock};
use proptest::prelude::*;

fn rows_strategy(dim: usize, max_rows: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(-100.0f64..100.0, dim),
        1..max_rows.max(2),
    )
}

/// Candidate-list shapes worth exercising: everything, nothing, one,
/// duplicates, and reversed order.
fn candidate_lists(n: u32) -> Vec<Vec<u32>> {
    let all: Vec<u32> = (0..n).collect();
    let rev: Vec<u32> = (0..n).rev().collect();
    let mut dups = all.clone();
    dups.extend_from_slice(&all[..(n as usize).min(3)]);
    vec![all, rev, dups, vec![0], vec![n - 1], vec![]]
}

/// Asserts the batch kernels equal the scalar reference loop exactly,
/// for identity and permuted `points` indirection.
fn assert_batch_matches_scalar<T: BlockScalar>(rows: &[Vec<f64>], bound: f64) {
    let block = VectorBlock::<T>::from_rows(rows);
    let n = block.len() as u32;
    let identity = block.ids();
    let permuted: Vec<u32> = (0..n).rev().collect();
    let mut out = Vec::new();
    for points in [&identity, &permuted] {
        for ids in candidate_lists(points.len() as u32) {
            for &q in &[0, n / 2, n - 1] {
                block.dist_many(points, &q, &ids, &mut out);
                assert_eq!(out.len(), ids.len());
                for (j, &i) in ids.iter().enumerate() {
                    let want = block.distance(&q, &points[i as usize]);
                    assert_eq!(
                        out[j].to_bits(),
                        want.to_bits(),
                        "dist_many diverged from scalar at q={q} candidate {i}"
                    );
                }
                block.dist_many_within(points, &q, &ids, bound, &mut out);
                assert_eq!(out.len(), ids.len());
                for (j, &i) in ids.iter().enumerate() {
                    let want = block
                        .distance_leq(&q, &points[i as usize], bound)
                        .unwrap_or(f64::INFINITY);
                    assert_eq!(
                        out[j].to_bits(),
                        want.to_bits(),
                        "dist_many_within diverged from scalar at q={q} candidate {i} bound {bound}"
                    );
                }
            }
        }
    }
}

macro_rules! kernel_equivalence_tests {
    ($name:ident, $dim:expr, $max_rows:expr, $cases:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases($cases))]
                #[test]
                fn f64_kernels_match_scalar(
                    rows in rows_strategy($dim, $max_rows),
                    bound in -1.0f64..200.0,
                ) {
                    assert_batch_matches_scalar::<f64>(&rows, bound);
                }

                #[test]
                fn f32_kernels_match_scalar(
                    rows in rows_strategy($dim, $max_rows),
                    bound in -1.0f64..200.0,
                ) {
                    assert_batch_matches_scalar::<f32>(&rows, bound);
                }
            }
        }
    };
}

kernel_equivalence_tests!(d1, 1, 40, 24);
kernel_equivalence_tests!(d2, 2, 40, 24);
kernel_equivalence_tests!(d3, 3, 40, 24);
kernel_equivalence_tests!(d5, 5, 40, 24);
kernel_equivalence_tests!(d128, 128, 12, 8);

proptest! {
    /// The f64 SoA layout agrees bit-for-bit with `Euclidean` over the
    /// scattered `Vec<f64>` rows — the cross-representation guarantee
    /// the grid and persistence suites rely on.
    #[test]
    fn f64_block_matches_scattered_euclidean(rows in rows_strategy(3, 40)) {
        let block = VectorBlock::<f64>::from_rows(&rows);
        let pts = block.ids();
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let mut out = Vec::new();
        for q in 0..pts.len() as u32 {
            block.dist_many(&pts, &q, &ids, &mut out);
            for (j, d) in out.iter().enumerate() {
                let want = Euclidean.distance(&rows[q as usize], &rows[j]);
                prop_assert_eq!(d.to_bits(), want.to_bits());
            }
        }
    }

    /// `dist_many_within` is tight at realized distances: a bound equal
    /// to an actual pairwise distance behaves exactly like the scalar
    /// `distance_leq` (inclusive `<=`), and a bound one ulp below it
    /// excludes the pair.
    #[test]
    fn within_bound_is_tight_at_realized_distances(
        rows in rows_strategy(3, 30),
        pick in 0usize..1000,
    ) {
        let block = VectorBlock::<f64>::from_rows(&rows);
        let pts = block.ids();
        let n = pts.len();
        let (a, b) = ((pick % n) as u32, ((pick / n.max(1)) % n) as u32);
        let d = block.distance(&a, &b);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut out = Vec::new();

        block.dist_many_within(&pts, &a, &ids, d, &mut out);
        match block.distance_leq(&a, &b, d) {
            Some(w) => {
                prop_assert_eq!(w.to_bits(), d.to_bits(), "<= must include the bound itself");
                prop_assert_eq!(out[b as usize].to_bits(), d.to_bits());
            }
            // Only reachable when the norm screen's rounding rejects
            // the exact bound; the batch path must agree with it.
            None => prop_assert!(out[b as usize].is_infinite()),
        }

        if d > 0.0 && d.is_finite() {
            let below = f64::from_bits(d.to_bits() - 1);
            block.dist_many_within(&pts, &a, &ids, below, &mut out);
            prop_assert!(
                out[b as usize].is_infinite(),
                "bound one ulp below a realized distance must exclude it"
            );
            prop_assert!(block.distance_leq(&a, &b, below).is_none());
        }
    }

    /// Empty blocks and empty candidate lists stay well-defined.
    #[test]
    fn empty_edges(_x in 0u32..1) {
        let empty = VectorBlock::<f64>::from_rows(&[]);
        let mut out = vec![1.0];
        empty.dist_many(&[], &0, &[], &mut out);
        prop_assert!(out.is_empty());
        let one = VectorBlock::<f64>::from_rows(&[vec![1.0, 2.0]]);
        let pts = one.ids();
        one.dist_many_within(&pts, &0, &[], 1.0, &mut out);
        prop_assert!(out.is_empty());
        one.dist_many(&pts, &0, &[], &mut out);
        prop_assert!(out.is_empty());
    }
}
