//! On-disk persistence format for the metric-dbscan engine (PR 5).
//!
//! The paper's whole economy is the separation of the expensive
//! one-time structures — the Algorithm-1 `r̄`-net with its `dis(p, c_p)`
//! anchors and the §3.2 cover tree — from the cheap per-`(ε, MinPts)`
//! queries they serve. This crate makes those structures a first-class
//! **artifact**: a versioned, checksummed, little-endian binary file
//! that round-trips the full engine state with **zero distance
//! evaluations on load**, so a restarted (or replicated) process never
//! re-pays the `t_dis` build bill.
//!
//! This crate owns only the *byte-level* format: framing, header,
//! checksums, and the typed error every failure maps to. The codecs for
//! the actual structures live with the crates that own them (private
//! fields stay private):
//!
//! * `mdbscan_parallel` — `Csr` / `ChunkedCsr`;
//! * `mdbscan_covertree` — `CoverTreeSkeleton`;
//! * `mdbscan_kcenter` — `RadiusGuidedNet`, `CenterAdjacency`;
//! * `mdbscan_metric` — the `PersistPoint` point codec and the
//!   `MetricTag` identity recorded in the header;
//! * `mdbscan_core` — the engine sections and the public
//!   `MetricDbscan::save` / `MetricDbscan::load` entry points.
//!
//! # File layout (format version 1)
//!
//! All integers and floats are **little-endian**; `f64` is stored as
//! its IEEE-754 bit pattern (`to_bits`), which is what makes a loaded
//! engine answer *bit-identically* — no text round-trip ever touches a
//! distance or a radius.
//!
//! ```text
//! magic           8 bytes   b"MDBSCAN\0"
//! version         u32       1
//! artifact kind   u8        0 = full engine, 1 = read-only snapshot
//! point tag       str       e.g. "vec-f64" (PersistPoint::TYPE_TAG)
//! metric tag      str       e.g. "euclidean" (MetricTag::metric_tag)
//! section count   u32
//! header crc      u32       CRC-32/IEEE over every header byte above
//! then, per section, in order:
//!   name          str
//!   payload len   u64
//!   section crc   u32       CRC-32/IEEE of the frame (name + payload
//!                           len) and the payload — a corrupted name
//!                           or length fails typed instead of silently
//!                           dropping an optional section
//!   payload       [u8]
//! ```
//!
//! `str` is a `u32` byte length followed by UTF-8 bytes. Sections are
//! looked up **by name**, so a reader skips sections it does not know —
//! additive extensions need no version bump. A snapshot artifact is
//! simply an engine artifact without the cache/writer sections.
//!
//! # Section alignment and zero-copy loads
//!
//! A section written via [`ArtifactWriter::aligned_section`] has its
//! payload start at an **8-byte file offset**. Alignment is achieved
//! without touching the header layout: the writer inserts a reserved
//! [`PAD_SECTION`] (`"pad"`, 0–7 zero bytes, normally framed and
//! checksummed) immediately before the aligned section when needed.
//! Because sections are looked up by name and `"pad"` is never looked
//! up, artifacts written before padding existed (including
//! `tests/fixtures/golden_v1.mdb`) and padded artifacts parse through
//! the identical code path — `FORMAT_VERSION` stays 1.
//!
//! Alignment is what makes loads cheap: a file read once into the
//! 8-aligned [`SharedBytes`] buffer can hand out typed
//! [`SharedSlice`] views of raw `u32`/`f32`/`f64` arrays inside
//! aligned sections ([`read_shared_array`]) instead of decoding
//! element-by-element — the engine's point rows and `VectorBlock`
//! coordinates then *alias* the artifact buffer and a serving replica
//! boots with O(1) copied point bytes. Every zero-copy precondition
//! (element type, alignment, bounds, little-endian host, buffer
//! identity) is checked at decode time with a bit-identical owned
//! fallback, so the fast path is an optimization, never a format
//! requirement.
//!
//! # Versioning policy
//!
//! * The version is bumped only for *incompatible* layout changes
//!   (reordered or re-typed fields inside an existing section). Readers
//!   reject any version greater than the one they were built for.
//! * New state travels in **new named sections**; old readers ignore
//!   them, new readers treat their absence as "engine saved before the
//!   feature existed".
//! * `tests/fixtures/golden_v1.mdb` pins version 1: CI loads it and
//!   asserts labels, so a change that breaks old files cannot land
//!   silently.
//!
//! # Integrity
//!
//! Every failure is typed, never garbage clusters: a missing file or
//! I/O error is [`PersistError::Io`]; a bad magic, an unsupported
//! version, a tag mismatch, a truncated file, or a checksum mismatch is
//! [`PersistError::Format`] naming the section that failed.
//!
//! # Crash consistency
//!
//! Artifact writes are **atomic**: [`ArtifactWriter::write_file`] (and
//! the lower-level [`write_atomic`]) goes through write-temp →
//! `sync_all` → `rename`, so a crash — `kill -9` included — at any
//! instant leaves the destination holding either the previous complete
//! artifact or the new one, never a torn prefix. For processes that
//! save periodically, the checkpoint helpers ([`checkpoint_path`],
//! [`list_checkpoints`], [`next_checkpoint_seq`]) lay saves out as a
//! numbered sequence `ckpt-<seq:016x>.mdb`, and
//! `mdbscan_core::MetricDbscan::load_latest` walks that sequence newest
//! first, falling back past any corrupt or torn file to the last good
//! checkpoint — an external corruption of the newest artifact degrades
//! a warm start, it never prevents one.
// `deny` rather than the workspace-wide `forbid`: the `shared` module
// holds the workspace's only `unsafe` (two audited slice
// reinterpretations behind checked alignment/endianness/bounds) under
// a scoped allow. Everything else in this crate remains unsafe-free.
#![deny(unsafe_code)]
#![deny(missing_docs)]

mod artifact;
mod atomic;
mod bytes;
mod crc32;
mod shared;

pub use artifact::{
    read_file, ArtifactKind, ArtifactReader, ArtifactWriter, FORMAT_VERSION, PAD_SECTION,
};
pub use atomic::{checkpoint_path, list_checkpoints, next_checkpoint_seq, write_atomic};
pub use bytes::{ByteReader, ByteWriter};
pub use crc32::{crc32, Crc32};
pub use shared::{read_shared_array, write_raw_array, MaybeShared, Pod, SharedBytes, SharedSlice};

use std::fmt;

/// A persistence failure: every load error is one of these two, so
/// corrupt, truncated, or mismatched artifacts fail loudly and typed
/// instead of producing garbage clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The underlying file operation failed (missing file, permissions,
    /// short write). Carries the OS error rendered as text.
    Io(String),
    /// The bytes were read but do not describe a valid artifact:
    /// truncation, checksum mismatch, unknown version, or a
    /// point-type/metric tag that does not match the requested load.
    Format {
        /// The section (or `"header"`) where decoding failed.
        section: String,
        /// What was wrong.
        reason: String,
    },
}

impl PersistError {
    /// Convenience constructor for a [`PersistError::Format`].
    pub fn format(section: impl Into<String>, reason: impl Into<String>) -> Self {
        PersistError::Format {
            section: section.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "artifact i/o failed: {e}"),
            PersistError::Format { section, reason } => {
                write!(f, "invalid artifact (section `{section}`): {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}
