//! Little-endian byte-buffer primitives shared by every codec.

use crate::PersistError;

/// An append-only little-endian byte buffer. Every codec in the
/// workspace writes through these primitives, so the wire layout is
/// uniform: integers little-endian, `f64` as IEEE-754 bits, slices as a
/// `u64` element count followed by the elements, strings as a `u32`
/// byte length followed by UTF-8, and `bool` slices bit-packed.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The written bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i32`, little-endian.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit regardless of
    /// the host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern — the exact bits,
    /// which is what makes loaded radii/distances answer bit-identically.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a string as `u32` byte length + UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a `u32` slice as `u64` count + elements.
    pub fn put_u32s(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Appends a `usize` slice as `u64` count + `u64` elements.
    pub fn put_usizes(&mut self, vs: &[usize]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v as u64);
        }
    }

    /// Appends an `f64` slice as `u64` count + bit patterns.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a `bool` slice bit-packed: `u64` count + `⌈count/8⌉`
    /// bytes, LSB-first within each byte.
    pub fn put_bools(&mut self, vs: &[bool]) {
        self.put_u64(vs.len() as u64);
        let mut byte = 0u8;
        for (i, &v) in vs.iter().enumerate() {
            if v {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !vs.len().is_multiple_of(8) {
            self.buf.push(byte);
        }
    }
}

/// A bounds-checked little-endian reader over one section's payload.
/// Every failure (truncation, over-long length claims, invalid UTF-8)
/// becomes a [`PersistError::Format`] naming the section, so a corrupt
/// file reports *where* it broke.
#[derive(Debug)]
pub struct ByteReader<'a> {
    section: &'a str,
    data: &'a [u8],
    pos: usize,
    base: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `data`, attributing errors to `section`.
    pub fn new(section: &'a str, data: &'a [u8]) -> Self {
        Self::new_at(section, data, 0)
    }

    /// As [`ByteReader::new`], recording that `data` starts at
    /// absolute byte `base` of the underlying file — this is what lets
    /// [`crate::read_shared_array`] check alignment against the file,
    /// not the section.
    pub fn new_at(section: &'a str, data: &'a [u8], base: usize) -> Self {
        Self {
            section,
            data,
            pos: 0,
            base,
        }
    }

    /// The section name errors are attributed to.
    pub fn section(&self) -> &str {
        self.section
    }

    /// The absolute file offset of the next unread byte (`base` +
    /// consumed), used by zero-copy decodes to verify alignment.
    pub fn file_pos(&self) -> usize {
        self.base + self.pos
    }

    /// The not-yet-consumed bytes, without consuming them.
    pub(crate) fn peek_remaining(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every byte was consumed.
    pub fn finished(&self) -> bool {
        self.remaining() == 0
    }

    /// A [`PersistError::Format`] attributed to this reader's section.
    pub fn err(&self, reason: impl Into<String>) -> PersistError {
        PersistError::format(self.section, reason)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "truncated: wanted {n} bytes at offset {}, only {} left",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Skips `n` bytes (used to step over section payloads).
    pub fn skip(&mut self, n: usize) -> Result<(), PersistError> {
        self.take(n).map(|_| ())
    }

    /// Consumes and returns `n` raw bytes (the bulk-decode primitive
    /// behind [`crate::read_shared_array`]'s owned fallback).
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        self.take(n)
    }

    /// Reads a `bool` byte; anything other than 0/1 is a format error.
    pub fn get_bool(&mut self) -> Result<bool, PersistError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.err(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `i32`.
    pub fn get_i32(&mut self) -> Result<i32, PersistError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and narrows it to the host `usize`.
    pub fn get_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| self.err(format!("value {v} exceeds host usize")))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-claimed element count, rejecting claims that
    /// provably exceed the remaining payload (`elem_bytes` per element)
    /// before any allocation happens.
    fn get_count(&mut self, elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.get_usize()?;
        if n.checked_mul(elem_bytes)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(self.err(format!(
                "length claim {n} x {elem_bytes}B exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a string (`u32` length + UTF-8).
    pub fn get_str(&mut self) -> Result<String, PersistError> {
        let n = self.get_u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| self.err(format!("invalid UTF-8: {e}")))
    }

    /// Reads a `u32` slice written by [`ByteWriter::put_u32s`].
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, PersistError> {
        let n = self.get_count(4)?;
        (0..n).map(|_| self.get_u32()).collect()
    }

    /// Reads a `usize` slice written by [`ByteWriter::put_usizes`].
    pub fn get_usizes(&mut self) -> Result<Vec<usize>, PersistError> {
        let n = self.get_count(8)?;
        (0..n).map(|_| self.get_usize()).collect()
    }

    /// Reads an `f64` slice written by [`ByteWriter::put_f64s`].
    pub fn get_f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.get_count(8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Reads a bit-packed `bool` slice written by
    /// [`ByteWriter::put_bools`].
    pub fn get_bools(&mut self) -> Result<Vec<bool>, PersistError> {
        let n = self.get_usize()?;
        let bytes_needed = n.div_ceil(8);
        let bytes = self.take(bytes_needed)?;
        Ok((0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_i32(-42);
        w.put_u64(u64::MAX - 1);
        w.put_usize(123_456);
        w.put_f64(-0.0); // signed zero must survive bit-exactly
        w.put_str("nets & trees");
        w.put_u32s(&[1, 2, 3]);
        w.put_usizes(&[0, 9, 81]);
        w.put_f64s(&[f64::MIN_POSITIVE, 1.5]);
        w.put_bools(&[true, false, true, true, false, false, false, true, true]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new("test", &bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32().unwrap(), -42);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_usize().unwrap(), 123_456);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_str().unwrap(), "nets & trees");
        assert_eq!(r.get_u32s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_usizes().unwrap(), vec![0, 9, 81]);
        assert_eq!(r.get_f64s().unwrap(), vec![f64::MIN_POSITIVE, 1.5]);
        assert_eq!(
            r.get_bools().unwrap(),
            vec![true, false, true, true, false, false, false, true, true]
        );
        assert!(r.finished());
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = ByteWriter::new();
        w.put_u32(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("sec", &bytes[..2]);
        let err = r.get_u32().unwrap_err();
        assert!(matches!(err, PersistError::Format { ref section, .. } if section == "sec"));
    }

    #[test]
    fn oversized_length_claim_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX / 2); // absurd element count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("sec", &bytes);
        assert!(r.get_f64s().is_err());
    }
}
