//! Artifact framing: the versioned header and the named, checksummed
//! sections. See the crate docs for the full byte layout.

use std::path::Path;

use crate::bytes::{ByteReader, ByteWriter};
use crate::crc32::{crc32, Crc32};
use crate::PersistError;

/// The current (and only) format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// The reserved name of alignment-padding sections. A pad is an
/// ordinary checksummed section of 0–7 zero bytes that
/// [`ArtifactWriter::to_bytes`] inserts before a section requested via
/// [`ArtifactWriter::aligned_section`] so that section's *payload*
/// starts at an 8-byte file offset. Readers look sections up by name
/// and never ask for `"pad"`, so pre-alignment artifacts (no pads) and
/// padded artifacts parse identically — no version bump.
pub const PAD_SECTION: &str = "pad";

const MAGIC: &[u8; 8] = b"MDBSCAN\0";

/// What an artifact file contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A full engine: points, net, writer state, delta history, and
    /// every cache — loading resumes exactly where the saver stopped,
    /// ingest included.
    Engine,
    /// A read-only epoch snapshot: points and net only. Loading yields
    /// an engine serving that epoch with cold caches — the shape a
    /// read-replica fleet fans out.
    Snapshot,
}

impl ArtifactKind {
    fn to_byte(self) -> u8 {
        match self {
            ArtifactKind::Engine => 0,
            ArtifactKind::Snapshot => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ArtifactKind::Engine),
            1 => Some(ArtifactKind::Snapshot),
            _ => None,
        }
    }
}

/// Builds an artifact: header fields plus named sections appended in
/// order. Checksums are computed at [`ArtifactWriter::to_bytes`] time.
#[derive(Debug)]
pub struct ArtifactWriter {
    kind: ArtifactKind,
    point_tag: String,
    metric_tag: String,
    sections: Vec<(String, ByteWriter, bool)>,
}

impl ArtifactWriter {
    /// Starts an artifact with the identity header every load
    /// validates: the artifact kind, the point-type tag
    /// (`PersistPoint::TYPE_TAG` in `mdbscan_metric`), and the metric
    /// tag.
    pub fn new(kind: ArtifactKind, point_tag: &str, metric_tag: &str) -> Self {
        Self {
            kind,
            point_tag: point_tag.to_owned(),
            metric_tag: metric_tag.to_owned(),
            sections: Vec::new(),
        }
    }

    /// Appends a new named section and returns its payload writer.
    pub fn section(&mut self, name: &str) -> &mut ByteWriter {
        self.sections
            .push((name.to_owned(), ByteWriter::new(), false));
        &mut self.sections.last_mut().expect("just pushed").1
    }

    /// As [`ArtifactWriter::section`], but guarantees the section's
    /// payload starts at an 8-byte file offset (by inserting a
    /// [`PAD_SECTION`] before it when needed), so raw `u32`/`f32`/`f64`
    /// arrays inside it can be loaded zero-copy via
    /// [`crate::read_shared_array`].
    pub fn aligned_section(&mut self, name: &str) -> &mut ByteWriter {
        self.sections
            .push((name.to_owned(), ByteWriter::new(), true));
        &mut self.sections.last_mut().expect("just pushed").1
    }

    /// Serializes the artifact: header (with its own CRC) followed by
    /// each section framed as name + length + CRC + payload, with pad
    /// sections interleaved so aligned sections land on 8-byte payload
    /// offsets.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Frame sizes are fully determined up front, so the pad layout
        // (and therefore the section count in the header) can be
        // computed before anything is written. `str` costs 4 + bytes.
        let frame_len = |name: &str| 4 + name.len() + 8 + 4; // name + u64 len + u32 crc
        let header_len =
            MAGIC.len() + 4 + 1 + 4 + self.point_tag.len() + 4 + self.metric_tag.len() + 4;
        let mut emitted: Vec<(&str, std::borrow::Cow<'_, [u8]>)> = Vec::new();
        let mut off = header_len + 4; // the header CRC precedes the first frame
        for (name, payload, aligned) in &self.sections {
            if *aligned && !(off + frame_len(name)).is_multiple_of(8) {
                let pad = (8 - (off + frame_len(PAD_SECTION) + frame_len(name)) % 8) % 8;
                emitted.push((PAD_SECTION, std::borrow::Cow::Owned(vec![0u8; pad])));
                off += frame_len(PAD_SECTION) + pad;
            }
            emitted.push((name, std::borrow::Cow::Borrowed(payload.as_slice())));
            off += frame_len(name) + payload.len();
        }

        let mut header = ByteWriter::new();
        header.put_bytes(MAGIC);
        header.put_u32(FORMAT_VERSION);
        header.put_u8(self.kind.to_byte());
        header.put_str(&self.point_tag);
        header.put_str(&self.metric_tag);
        header.put_u32(emitted.len() as u32);
        debug_assert_eq!(header.len(), header_len);
        let header_crc = crc32(header.as_slice());

        let mut out = header.into_bytes();
        let mut w = ByteWriter::new();
        w.put_u32(header_crc);
        for (name, payload) in &emitted {
            // The section CRC covers the frame (name + length) *and*
            // the payload, so a corrupted name or length fails typed
            // instead of silently dropping an optional section.
            let mut frame = ByteWriter::new();
            frame.put_str(name);
            frame.put_u64(payload.len() as u64);
            let mut crc = Crc32::new();
            crc.update(frame.as_slice());
            crc.update(payload);
            w.put_bytes(frame.as_slice());
            w.put_u32(crc.finish());
            w.put_bytes(payload);
        }
        out.extend_from_slice(w.as_slice());
        out
    }

    /// Serializes and writes the artifact to `path` crash-consistently
    /// (temp file + `sync_all` + atomic rename — see
    /// [`crate::write_atomic`]): after a crash at any point, `path`
    /// holds either the previous complete artifact or the new one,
    /// never a torn prefix.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        crate::write_atomic(path, &self.to_bytes())
    }
}

/// Reads an entire artifact file into memory.
pub fn read_file(path: impl AsRef<Path>) -> Result<Vec<u8>, PersistError> {
    std::fs::read(path).map_err(PersistError::from)
}

/// A parsed artifact: the validated header plus the named sections,
/// each already checksum-verified. Borrows the file bytes.
#[derive(Debug)]
pub struct ArtifactReader<'a> {
    kind: ArtifactKind,
    point_tag: String,
    metric_tag: String,
    /// `(name, payload, absolute payload offset in the parsed bytes)`.
    sections: Vec<(String, &'a [u8], usize)>,
}

impl<'a> ArtifactReader<'a> {
    /// Parses and validates `bytes`: magic, version, header CRC, and
    /// every section's length and CRC. Any mismatch is a
    /// [`PersistError::Format`]; no section payload is interpreted yet.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<Self, PersistError> {
        let mut r = ByteReader::new("header", bytes);
        let magic_err = |r: &ByteReader<'_>| r.err("not a metric-dbscan artifact (bad magic)");
        let mut magic = [0u8; 8];
        for m in &mut magic {
            *m = r.get_u8().map_err(|_| magic_err(&r))?;
        }
        if &magic != MAGIC {
            return Err(magic_err(&r));
        }
        let version = r.get_u32()?;
        if version == 0 || version > FORMAT_VERSION {
            return Err(r.err(format!(
                "format version {version} not supported (this build reads <= {FORMAT_VERSION})"
            )));
        }
        let kind_byte = r.get_u8()?;
        let kind = ArtifactKind::from_byte(kind_byte)
            .ok_or_else(|| r.err(format!("unknown artifact kind {kind_byte}")))?;
        let point_tag = r.get_str()?;
        let metric_tag = r.get_str()?;
        let num_sections = r.get_u32()? as usize;
        let header_len = bytes.len() - r.remaining();
        let stored_crc = r.get_u32()?;
        let actual_crc = crc32(&bytes[..header_len]);
        if stored_crc != actual_crc {
            return Err(r.err(format!(
                "header checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            )));
        }

        let mut sections = Vec::with_capacity(num_sections);
        for _ in 0..num_sections {
            let frame_start = bytes.len() - r.remaining();
            let name = r.get_str()?;
            let len = r.get_usize()?;
            let frame = &bytes[frame_start..bytes.len() - r.remaining()];
            let stored = r.get_u32()?;
            if r.remaining() < len {
                return Err(PersistError::format(
                    &name,
                    format!(
                        "truncated: section claims {len} bytes, file has {} left",
                        r.remaining()
                    ),
                ));
            }
            let start = bytes.len() - r.remaining();
            let payload = &bytes[start..start + len];
            r.skip(len)?;
            let mut crc = Crc32::new();
            crc.update(frame);
            crc.update(payload);
            let actual = crc.finish();
            if stored != actual {
                return Err(PersistError::format(
                    &name,
                    format!("checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"),
                ));
            }
            sections.push((name, payload, start));
        }
        if !r.finished() {
            return Err(r.err(format!(
                "{} trailing bytes after the last section",
                r.remaining()
            )));
        }
        Ok(Self {
            kind,
            point_tag,
            metric_tag,
            sections,
        })
    }

    /// The artifact kind recorded in the header.
    pub fn kind(&self) -> ArtifactKind {
        self.kind
    }

    /// The point-type tag recorded in the header.
    pub fn point_tag(&self) -> &str {
        &self.point_tag
    }

    /// The metric tag recorded in the header.
    pub fn metric_tag(&self) -> &str {
        &self.metric_tag
    }

    /// A reader over the named section's payload, or `None` when the
    /// artifact does not carry it (absent sections are how older or
    /// slimmer artifacts — e.g. snapshots — stay loadable). The reader
    /// carries the payload's absolute offset into the parsed bytes, so
    /// zero-copy decodes can verify file alignment
    /// ([`ByteReader::file_pos`]).
    pub fn section(&self, name: &'a str) -> Option<ByteReader<'a>> {
        self.sections
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, payload, off)| ByteReader::new_at(name, payload, *off))
    }

    /// As [`ArtifactReader::section`], but a missing section is a
    /// [`PersistError::Format`].
    pub fn require_section(&self, name: &'a str) -> Result<ByteReader<'a>, PersistError> {
        self.section(name)
            .ok_or_else(|| PersistError::format(name, "required section missing"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ArtifactWriter::new(ArtifactKind::Engine, "vec-f64", "euclidean");
        let s = w.section("alpha");
        s.put_u32(11);
        s.put_f64s(&[1.0, 2.5]);
        let s = w.section("beta");
        s.put_str("payload");
        w.to_bytes()
    }

    #[test]
    fn round_trips_header_and_sections() {
        let bytes = sample();
        let art = ArtifactReader::from_bytes(&bytes).unwrap();
        assert_eq!(art.kind(), ArtifactKind::Engine);
        assert_eq!(art.point_tag(), "vec-f64");
        assert_eq!(art.metric_tag(), "euclidean");
        let mut a = art.require_section("alpha").unwrap();
        assert_eq!(a.get_u32().unwrap(), 11);
        assert_eq!(a.get_f64s().unwrap(), vec![1.0, 2.5]);
        assert!(a.finished());
        let mut b = art.require_section("beta").unwrap();
        assert_eq!(b.get_str().unwrap(), "payload");
        assert!(art.section("gamma").is_none());
        assert!(art.require_section("gamma").is_err());
    }

    #[test]
    fn aligned_sections_land_on_eight_byte_payload_offsets() {
        use crate::shared::{read_shared_array, write_raw_array, SharedBytes};
        use std::sync::Arc;

        let mut w = ArtifactWriter::new(ArtifactKind::Engine, "u32", "vector-block-f64");
        w.section("meta").put_u32(7); // odd-length prefix forces padding
        let s = w.aligned_section("points");
        s.put_u64(3);
        write_raw_array::<u32>(s, &[10, 20, 30]);
        let s = w.aligned_section("norms");
        s.put_u64(2);
        write_raw_array::<f64>(s, &[1.5, 2.5]);
        let bytes = w.to_bytes();

        let buf = Arc::new(SharedBytes::from_vec(bytes.clone()));
        let art = ArtifactReader::from_bytes(buf.as_slice()).unwrap();
        for name in ["points", "norms"] {
            let r = art.require_section(name).unwrap();
            assert_eq!(r.file_pos() % 8, 0, "section `{name}` payload misaligned");
        }
        // And the arrays really do alias the buffer.
        let mut r = art.require_section("points").unwrap();
        let n = r.get_usize().unwrap();
        let ids = read_shared_array::<u32>(Some(&buf), &mut r, n).unwrap();
        assert!(ids.is_shared());
        assert_eq!(ids.as_slice(), &[10, 20, 30]);
        let mut r = art.require_section("norms").unwrap();
        let n = r.get_usize().unwrap();
        let norms = read_shared_array::<f64>(Some(&buf), &mut r, n).unwrap();
        assert!(norms.is_shared());
        assert_eq!(norms.as_slice(), &[1.5, 2.5]);
        // Plain sections (and files written before padding existed)
        // still parse; pads are just unqueried named sections.
        let mut m = art.require_section("meta").unwrap();
        assert_eq!(m.get_u32().unwrap(), 7);
        // Determinism: same writer contents, same bytes.
        let mut w2 = ArtifactWriter::new(ArtifactKind::Engine, "u32", "vector-block-f64");
        w2.section("meta").put_u32(7);
        let s = w2.aligned_section("points");
        s.put_u64(3);
        write_raw_array::<u32>(s, &[10, 20, 30]);
        let s = w2.aligned_section("norms");
        s.put_u64(2);
        write_raw_array::<f64>(s, &[1.5, 2.5]);
        assert_eq!(bytes, w2.to_bytes());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample();
        bytes[0] ^= 0xFF;
        let err = ArtifactReader::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, PersistError::Format { ref section, .. } if section == "header"));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = sample();
        bytes[8] = 99; // version lives right after the 8-byte magic
        let err = ArtifactReader::from_bytes(&bytes).unwrap_err();
        let PersistError::Format { section, reason } = err else {
            panic!("expected Format");
        };
        assert_eq!(section, "header");
        assert!(reason.contains("version"));
    }

    #[test]
    fn payload_corruption_is_caught_by_the_section_crc() {
        let mut bytes = sample();
        let last = bytes.len() - 1; // inside the beta payload
        bytes[last] ^= 0x01;
        let err = ArtifactReader::from_bytes(&bytes).unwrap_err();
        let PersistError::Format { section, reason } = err else {
            panic!("expected Format");
        };
        assert_eq!(section, "beta");
        assert!(reason.contains("checksum"));
    }

    #[test]
    fn truncation_names_the_failing_section() {
        let bytes = sample();
        let err = ArtifactReader::from_bytes(&bytes[..bytes.len() - 4]).unwrap_err();
        assert!(matches!(err, PersistError::Format { .. }));
    }

    #[test]
    fn corrupted_section_name_fails_typed_instead_of_dropping_the_section() {
        let mut bytes = sample();
        // Flip one byte inside the stored name "beta" (the section CRC
        // covers the frame, so this must fail, not lose the section).
        let pos = bytes
            .windows(4)
            .position(|w| w == b"beta")
            .expect("name present");
        bytes[pos] ^= 0x01;
        let err = ArtifactReader::from_bytes(&bytes).unwrap_err();
        let PersistError::Format { reason, .. } = err else {
            panic!("expected Format");
        };
        assert!(reason.contains("checksum"), "got: {reason}");
    }
}
