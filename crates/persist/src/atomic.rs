//! Crash-consistent file writes and the numbered-checkpoint directory
//! layout `load_latest`-style recovery walks.
//!
//! # Atomic writes
//!
//! A bare `std::fs::write` over an existing artifact is a torn-write
//! machine: a crash (or `kill -9`) between the truncate and the last
//! byte leaves a file that *exists* but fails its checksums — and the
//! previous good artifact is already gone. [`write_atomic`] closes that
//! window with the classic sequence:
//!
//! 1. write the full payload to a fresh temp file **in the same
//!    directory** (same filesystem, so the rename below is atomic);
//! 2. `sync_all` the temp file, so the bytes are durable before the
//!    name flip;
//! 3. atomically `rename` it over the destination;
//! 4. best-effort `sync` the directory, so the rename itself survives
//!    power loss.
//!
//! At every instant the destination path holds either the complete old
//! bytes or the complete new bytes — never a prefix.
//!
//! # Checkpoint directories
//!
//! A serving process that saves periodically should never overwrite its
//! only artifact in place: even an atomic write can persist a *logically*
//! bad state (e.g. an artifact saved mid-incident). The checkpoint
//! helpers give saves a monotone sequence number —
//! `ckpt-<seq, 16 hex digits>.mdb` — so the newest artifact is simply
//! the lexicographically largest name, and a loader can fall back past
//! a corrupt newest file to the last good one
//! (`mdbscan_core::MetricDbscan::load_latest`).

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::PersistError;

/// Filename prefix of numbered checkpoint artifacts.
const CKPT_PREFIX: &str = "ckpt-";
/// Filename suffix of numbered checkpoint artifacts.
const CKPT_SUFFIX: &str = ".mdb";

/// Writes `bytes` to `path` crash-consistently: temp file in the same
/// directory → `sync_all` → atomic `rename` → directory sync. After a
/// crash at any point, `path` holds either its previous complete
/// contents or the new complete contents, never a torn prefix.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), PersistError> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| PersistError::Io(format!("{} has no file name", path.display())))?;
    // Unique per process: concurrent savers in one process serialize on
    // the engine's writer lock; across processes the pid disambiguates.
    let tmp = dir.join(format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let write_tmp = || -> std::io::Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    };
    if let Err(e) = write_tmp() {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    // The rename is in the page cache until the directory itself is
    // synced; failures here are ignored (some filesystems reject
    // directory fsync) — the data file is already durable.
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// The path of checkpoint number `seq` inside `dir`
/// (`dir/ckpt-<seq:016x>.mdb`; zero-padded hex so lexicographic order
/// is numeric order).
pub fn checkpoint_path(dir: impl AsRef<Path>, seq: u64) -> PathBuf {
    dir.as_ref()
        .join(format!("{CKPT_PREFIX}{seq:016x}{CKPT_SUFFIX}"))
}

/// Parses a checkpoint file name back to its sequence number, or `None`
/// for any other file.
fn parse_checkpoint_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix(CKPT_PREFIX)?.strip_suffix(CKPT_SUFFIX)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Every checkpoint in `dir`, sorted ascending by sequence number.
/// Files that do not match the `ckpt-<seq:016x>.mdb` pattern (temp
/// files, foreign artifacts) are ignored. A missing directory is an
/// empty list, not an error — a cold replica starts with no checkpoints.
pub fn list_checkpoints(dir: impl AsRef<Path>) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let dir = dir.as_ref();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// The sequence number the next checkpoint in `dir` should use (one
/// past the largest present; 0 for an empty or missing directory).
pub fn next_checkpoint_seq(dir: impl AsRef<Path>) -> Result<u64, PersistError> {
    Ok(list_checkpoints(dir)?
        .last()
        .map(|(seq, _)| seq + 1)
        .unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let mut d = std::env::temp_dir();
        d.push(format!("mdbscan_atomic_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let d = tmp_dir("replace");
        let p = d.join("artifact.mdb");
        write_atomic(&p, b"first version").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"first version");
        write_atomic(&p, b"second").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"second");
        // No temp droppings left behind.
        assert_eq!(fs::read_dir(&d).unwrap().count(), 1);
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn atomic_write_into_missing_directory_fails_typed() {
        let d = tmp_dir("missing");
        let p = d.join("no-such-subdir").join("artifact.mdb");
        assert!(matches!(
            write_atomic(&p, b"x").unwrap_err(),
            PersistError::Io(_)
        ));
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn checkpoint_names_sort_numerically_and_ignore_strangers() {
        let d = tmp_dir("ckpt");
        assert_eq!(next_checkpoint_seq(&d).unwrap(), 0);
        for seq in [2u64, 0, 10, 1] {
            write_atomic(checkpoint_path(&d, seq), b"x").unwrap();
        }
        fs::write(d.join("notes.txt"), b"ignore me").unwrap();
        fs::write(d.join("ckpt-zzz.mdb"), b"ignore me too").unwrap();
        let listed = list_checkpoints(&d).unwrap();
        let seqs: Vec<u64> = listed.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 10]);
        assert_eq!(next_checkpoint_seq(&d).unwrap(), 11);
        assert_eq!(
            listed.last().unwrap().1.file_name().unwrap().to_str(),
            Some("ckpt-000000000000000a.mdb")
        );
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn missing_directory_lists_empty() {
        let mut d = std::env::temp_dir();
        d.push("mdbscan_atomic_never_created");
        assert!(list_checkpoints(&d).unwrap().is_empty());
    }
}
