//! CRC-32/IEEE (the zlib/PNG polynomial), table-driven.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// CRC-32/IEEE of `data` (reflected, init `0xFFFF_FFFF`, final xor
/// `0xFFFF_FFFF` — the classic zlib checksum).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// Streaming CRC-32/IEEE: feed any number of chunks, then
/// [`Crc32::finish`]. `crc32(a ++ b) == new().update(a).update(b)` —
/// used to checksum a section's frame and payload without
/// concatenating them.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum state.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }
}
