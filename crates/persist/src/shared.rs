//! Zero-copy section views: an 8-byte-aligned owned file buffer
//! ([`SharedBytes`]) and typed slices that alias it ([`SharedSlice`]).
//!
//! The PR-5 load path decoded every point and every block coordinate
//! element-by-element into fresh `Vec`s — an O(n)-copy cold start. The
//! types here let a codec *reinterpret* an aligned section payload as
//! `&[u32]` / `&[f32]` / `&[f64]` instead: the engine then holds an
//! `Arc<SharedBytes>` of the raw file plus typed windows into it, and
//! boot copies O(1) point bytes regardless of n.
//!
//! Three invariants make the reinterpretation sound, and all three are
//! *checked*, falling back to an owned copy (never failing) when any
//! does not hold:
//!
//! 1. **Element types are plain-old-data** — the sealed [`Pod`] trait
//!    admits only fixed-width scalars for which every bit pattern is a
//!    valid value and which contain no padding.
//! 2. **Alignment** — [`SharedBytes`] is backed by a `u64` allocation,
//!    so byte offset 0 is 8-aligned; [`SharedSlice::new`] additionally
//!    requires the byte offset to be a multiple of `align_of::<T>()`.
//!    Artifact sections opt into 8-aligned payloads via
//!    `ArtifactWriter::aligned_section` (see the crate docs on pad
//!    sections).
//! 3. **Endianness** — the format is little-endian; on a big-endian
//!    host every zero-copy constructor reports "no view" and callers
//!    take the byte-swapping owned path.
//!
//! This module is the one place in the workspace that uses `unsafe`
//! (the crate is `deny(unsafe_code)` with a scoped allow here, and
//! every other crate stays `forbid`): two `slice::from_raw_parts`
//! calls whose preconditions are exactly the checked invariants above,
//! plus the mirrored `_mut` view used only while the buffer is being
//! filled from the file.
#![allow(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

use crate::bytes::{ByteReader, ByteWriter};
use crate::PersistError;

/// An immutable, heap-owned byte buffer whose first byte is 8-aligned,
/// shared via `Arc` between an artifact reader and every
/// [`SharedSlice`] decoded from it.
///
/// Alignment is guaranteed by construction: the storage is a
/// `Vec<u64>`, so the base pointer satisfies the alignment of every
/// [`Pod`] scalar (all have `align_of <= 8`).
pub struct SharedBytes {
    words: Vec<u64>,
    len: usize,
}

impl SharedBytes {
    /// Copies `bytes` into a fresh 8-aligned buffer.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        let mut sb = SharedBytes {
            words: vec![0u64; bytes.len().div_ceil(8)],
            len: bytes.len(),
        };
        sb.as_mut_slice().copy_from_slice(&bytes);
        sb
    }

    /// Reads an entire file directly into an 8-aligned buffer — one
    /// copy, disk to buffer, with no intermediate `Vec<u8>`.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Arc<Self>, PersistError> {
        use std::io::Read;
        let mut f = std::fs::File::open(path)?;
        let len = usize::try_from(f.metadata()?.len())
            .map_err(|_| PersistError::Io("file exceeds host usize".into()))?;
        let mut sb = SharedBytes {
            words: vec![0u64; len.div_ceil(8)],
            len,
        };
        f.read_exact(sb.as_mut_slice())?;
        Ok(Arc::new(sb))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer as bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `words` owns at least `len.div_ceil(8) * 8 >= len`
        // initialized bytes; u8 has alignment 1; the lifetime is tied
        // to `&self`.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as `as_slice`, plus exclusive access via `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }
}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBytes")
            .field("len", &self.len)
            .finish()
    }
}

mod sealed {
    pub trait Sealed {}
}

/// Plain-old-data scalars that may alias artifact bytes: fixed width,
/// no padding, every bit pattern valid. Sealed — the soundness of
/// [`SharedSlice`] depends on this list staying exactly these scalars.
pub trait Pod: sealed::Sealed + Copy + Send + Sync + 'static {
    /// Decodes one element from its little-endian bytes
    /// (`size_of::<Self>()` of them).
    fn from_le(bytes: &[u8]) -> Self;
    /// Appends this element's little-endian bytes to `out`.
    fn put_le(self, out: &mut Vec<u8>);
}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl sealed::Sealed for $t {}
        impl Pod for $t {
            fn from_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("exact-width chunk"))
            }
            fn put_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
    )*};
}

impl_pod!(u8, u32, u64);

// f32/f64 go through their bit patterns so the byte layout matches the
// `put_f64` convention exactly.
impl sealed::Sealed for f32 {}
impl Pod for f32 {
    fn from_le(bytes: &[u8]) -> Self {
        f32::from_bits(u32::from_le_bytes(bytes.try_into().expect("4-byte chunk")))
    }
    fn put_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}
impl sealed::Sealed for f64 {}
impl Pod for f64 {
    fn from_le(bytes: &[u8]) -> Self {
        f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8-byte chunk")))
    }
    fn put_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

/// A typed immutable window into an [`SharedBytes`] buffer: `count`
/// elements of `T` starting at a checked, aligned byte offset. Cloning
/// is an `Arc` bump; the buffer stays alive as long as any slice does.
pub struct SharedSlice<T> {
    buf: Arc<SharedBytes>,
    offset: usize,
    count: usize,
    _elem: PhantomData<T>,
}

impl<T: Pod> SharedSlice<T> {
    /// A view of `count` elements at byte `offset` into `buf`, or
    /// `None` when the offset is misaligned for `T`, the range is out
    /// of bounds, or the host is big-endian (the file bytes are
    /// little-endian and cannot alias directly).
    pub fn new(buf: &Arc<SharedBytes>, offset: usize, count: usize) -> Option<Self> {
        if !cfg!(target_endian = "little") {
            return None;
        }
        let bytes = count.checked_mul(std::mem::size_of::<T>())?;
        if !offset.is_multiple_of(std::mem::align_of::<T>())
            || offset.checked_add(bytes)? > buf.len()
        {
            return None;
        }
        Some(Self {
            buf: Arc::clone(buf),
            offset,
            count,
            _elem: PhantomData,
        })
    }
}

impl<T> SharedSlice<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The viewed elements.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `SharedSlice<T>` is only constructible through
        // `new`, whose `T: Pod` bound and checks establish that the
        // range is in bounds, the pointer is aligned for `T`, every
        // bit pattern is a valid `T`, and the host is little-endian.
        // The buffer is immutable and kept alive by our `Arc`.
        unsafe {
            std::slice::from_raw_parts(
                self.buf.as_slice().as_ptr().add(self.offset) as *const T,
                self.count,
            )
        }
    }

    /// The buffer this view aliases (for identity tests and
    /// diagnostics).
    pub fn buffer(&self) -> &Arc<SharedBytes> {
        &self.buf
    }
}

impl<T> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        Self {
            buf: Arc::clone(&self.buf),
            offset: self.offset,
            count: self.count,
            _elem: PhantomData,
        }
    }
}

impl<T> Deref for SharedSlice<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> std::fmt::Debug for SharedSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSlice")
            .field("offset", &self.offset)
            .field("count", &self.count)
            .finish()
    }
}

/// Element storage that is either owned or a zero-copy view of an
/// artifact buffer. Codecs return this from bulk decodes: the caller
/// treats both variants as a `&[T]` and can ask [`MaybeShared::is_shared`]
/// when accounting copied bytes.
pub enum MaybeShared<T> {
    /// Elements copied out of the artifact (the safe fallback:
    /// misaligned section, big-endian host, or a codec with no bulk
    /// layout).
    Owned(Vec<T>),
    /// Elements aliasing the artifact buffer — zero bytes copied.
    Shared(SharedSlice<T>),
}

impl<T> MaybeShared<T> {
    /// The elements, whichever variant holds them.
    pub fn as_slice(&self) -> &[T] {
        match self {
            MaybeShared::Owned(v) => v,
            MaybeShared::Shared(s) => s.as_slice(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when no elements are held.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// True when the elements alias the artifact buffer (no copy).
    pub fn is_shared(&self) -> bool {
        matches!(self, MaybeShared::Shared(_))
    }
}

impl<T> Deref for MaybeShared<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Clone> Clone for MaybeShared<T> {
    fn clone(&self) -> Self {
        match self {
            MaybeShared::Owned(v) => MaybeShared::Owned(v.clone()),
            MaybeShared::Shared(s) => MaybeShared::Shared(s.clone()),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MaybeShared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaybeShared::Owned(v) => write!(f, "Owned({v:?})"),
            MaybeShared::Shared(s) => write!(f, "Shared(len {})", s.len()),
        }
    }
}

/// Reads `count` raw little-endian `T` elements from `r`, aliasing the
/// artifact buffer when possible and copying otherwise.
///
/// The zero-copy path engages only when `src` is provided, the reader's
/// current position is `T`-aligned **in the file**, the reader is
/// actually windowing into `src` (verified by pointer identity, so a
/// mismatched buffer can never be silently misread), and the host is
/// little-endian. In every other case the elements are decoded into an
/// owned `Vec` — the result is bit-identical either way. Truncation is
/// a typed [`PersistError`] as usual.
pub fn read_shared_array<T: Pod>(
    src: Option<&Arc<SharedBytes>>,
    r: &mut ByteReader<'_>,
    count: usize,
) -> Result<MaybeShared<T>, PersistError> {
    let size = std::mem::size_of::<T>();
    let bytes = count
        .checked_mul(size)
        .ok_or_else(|| r.err(format!("length claim {count} x {size}B overflows")))?;
    if let Some(buf) = src {
        let pos = r.file_pos();
        // The reader must be positioned over this exact buffer: its
        // remaining window has to start at `buf[pos]`.
        let expected = buf.as_slice().as_ptr().wrapping_add(pos);
        if expected == r.peek_remaining().as_ptr() {
            if let Some(view) = SharedSlice::new(buf, pos, count) {
                r.skip(bytes)?;
                return Ok(MaybeShared::Shared(view));
            }
        }
    }
    let raw = r.take_bytes(bytes)?;
    Ok(MaybeShared::Owned(
        raw.chunks_exact(size).map(T::from_le).collect(),
    ))
}

/// Appends a raw little-endian `T` array (elements only — callers
/// write any count themselves). The byte layout matches
/// [`read_shared_array`] and, for `f64`, the `put_f64` bit-pattern
/// convention.
pub fn write_raw_array<T: Pod>(w: &mut ByteWriter, vs: &[T]) {
    let mut bytes = Vec::with_capacity(std::mem::size_of_val(vs));
    for &v in vs {
        v.put_le(&mut bytes);
    }
    w.put_bytes(&bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_bytes_is_eight_aligned() {
        for n in [0usize, 1, 7, 8, 9, 4096] {
            let sb = SharedBytes::from_vec(vec![0xAB; n]);
            assert_eq!(sb.len(), n);
            assert_eq!(sb.as_slice().as_ptr() as usize % 8, 0);
            assert!(sb.as_slice().iter().all(|&b| b == 0xAB));
        }
    }

    #[test]
    fn shared_slice_aliases_without_copy() {
        let mut w = ByteWriter::new();
        write_raw_array::<f64>(&mut w, &[1.5, -0.0, f64::MIN_POSITIVE]);
        let buf = Arc::new(SharedBytes::from_vec(w.into_bytes()));
        let view = SharedSlice::<f64>::new(&buf, 0, 3).expect("aligned view");
        assert_eq!(view.len(), 3);
        assert_eq!(view[0], 1.5);
        assert_eq!(view[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(view[2], f64::MIN_POSITIVE);
        let base = buf.as_slice().as_ptr() as usize;
        let p = view.as_slice().as_ptr() as usize;
        assert_eq!(p, base, "view must point into the buffer");
    }

    #[test]
    fn misaligned_or_oob_views_are_refused() {
        let buf = Arc::new(SharedBytes::from_vec(vec![0u8; 32]));
        assert!(SharedSlice::<f64>::new(&buf, 4, 1).is_none(), "misaligned");
        assert!(SharedSlice::<f64>::new(&buf, 0, 5).is_none(), "oob");
        assert!(SharedSlice::<u32>::new(&buf, 30, 1).is_none(), "oob tail");
        assert!(SharedSlice::<u32>::new(&buf, 28, 1).is_some());
    }

    #[test]
    fn read_shared_array_zero_copy_when_aligned() {
        let mut w = ByteWriter::new();
        w.put_u64(4); // 8 bytes of prefix keeps the array 8-aligned
        write_raw_array::<u32>(&mut w, &[7, 8, 9, 10]);
        let buf = Arc::new(SharedBytes::from_vec(w.into_bytes()));
        let mut r = ByteReader::new_at("sec", buf.as_slice(), 0);
        assert_eq!(r.get_u64().unwrap(), 4);
        let arr = read_shared_array::<u32>(Some(&buf), &mut r, 4).unwrap();
        assert!(arr.is_shared());
        assert_eq!(arr.as_slice(), &[7, 8, 9, 10]);
        assert!(r.finished());
    }

    #[test]
    fn read_shared_array_copies_when_misaligned_or_foreign() {
        // Misaligned start for f64 (4-byte prefix).
        let mut w = ByteWriter::new();
        w.put_u32(1);
        write_raw_array::<f64>(&mut w, &[2.25]);
        let buf = Arc::new(SharedBytes::from_vec(w.into_bytes()));
        let mut r = ByteReader::new_at("sec", buf.as_slice(), 0);
        r.get_u32().unwrap();
        let arr = read_shared_array::<f64>(Some(&buf), &mut r, 1).unwrap();
        assert!(!arr.is_shared());
        assert_eq!(arr.as_slice(), &[2.25]);

        // A reader over bytes that are not the claimed buffer must
        // fall back to copying, never alias the wrong memory.
        let mut w = ByteWriter::new();
        write_raw_array::<u32>(&mut w, &[1, 2]);
        let other = w.into_bytes();
        let mut r = ByteReader::new_at("sec", &other, 0);
        let arr = read_shared_array::<u32>(Some(&buf), &mut r, 2).unwrap();
        assert!(!arr.is_shared());
        assert_eq!(arr.as_slice(), &[1, 2]);
    }

    #[test]
    fn truncation_stays_typed() {
        let buf = Arc::new(SharedBytes::from_vec(vec![0u8; 8]));
        let mut r = ByteReader::new_at("sec", buf.as_slice(), 0);
        assert!(read_shared_array::<f64>(Some(&buf), &mut r, 2).is_err());
    }

    #[test]
    fn file_round_trip_is_aligned() {
        let mut path = std::env::temp_dir();
        path.push(format!("mdbscan_sharedbytes_{}.bin", std::process::id()));
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        let sb = SharedBytes::read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(sb.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(sb.as_slice().as_ptr() as usize % 8, 0);
    }
}
