//! Property-based certification of the three solvers on arbitrary inputs.

use mdbscan_core::{approx_dbscan, exact_dbscan, ApproxParams, StreamingApproxDbscan};
use mdbscan_metric::{Euclidean, Metric};
use proptest::prelude::*;

fn instances() -> impl Strategy<Value = (Vec<Vec<f64>>, f64, usize)> {
    (
        prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 2), 2..80),
        0.2f64..2.0,
        1usize..6,
    )
}

/// Brute-force core test.
fn brute_core(pts: &[Vec<f64>], eps: f64, min_pts: usize) -> Vec<bool> {
    (0..pts.len())
        .map(|i| {
            pts.iter()
                .filter(|q| Euclidean.distance(&pts[i], q) <= eps)
                .count()
                >= min_pts
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact solver: core set matches brute force; every core is clustered;
    /// every border has a witness core within ε; noise has no core within ε.
    #[test]
    fn exact_labels_are_sound((pts, eps, min_pts) in instances()) {
        let c = exact_dbscan(&pts, &Euclidean, eps, min_pts).unwrap();
        let cores = brute_core(&pts, eps, min_pts);
        for i in 0..pts.len() {
            prop_assert_eq!(c.labels()[i].is_core(), cores[i], "core mismatch at {}", i);
            match c.labels()[i] {
                mdbscan_core::PointLabel::Core(_) => {}
                mdbscan_core::PointLabel::Border(cl) => {
                    let ok = (0..pts.len()).any(|j| cores[j]
                        && c.cluster_of(j) == Some(cl)
                        && Euclidean.distance(&pts[i], &pts[j]) <= eps);
                    prop_assert!(ok, "border {} lacks witness", i);
                }
                mdbscan_core::PointLabel::Noise => {
                    let near_core = (0..pts.len()).any(|j| cores[j]
                        && Euclidean.distance(&pts[i], &pts[j]) <= eps);
                    prop_assert!(!near_core, "noise {} is actually border", i);
                }
            }
        }
        // Directly ε-connected cores share a cluster.
        for i in 0..pts.len() {
            for j in (i+1)..pts.len() {
                if cores[i] && cores[j] && Euclidean.distance(&pts[i], &pts[j]) <= eps {
                    prop_assert_eq!(c.cluster_of(i), c.cluster_of(j));
                }
            }
        }
    }

    /// Approx solver: sandwich between exact(ε) and exact((1+ρ)ε) on cores.
    #[test]
    fn approx_is_sandwiched((pts, eps, min_pts) in instances(), rho in 0.1f64..2.0) {
        let lower = exact_dbscan(&pts, &Euclidean, eps, min_pts).unwrap();
        let upper = exact_dbscan(&pts, &Euclidean, (1.0 + rho) * eps, min_pts).unwrap();
        let mid = approx_dbscan(&pts, &Euclidean, eps, min_pts, rho).unwrap();
        for i in 0..pts.len() {
            if lower.labels()[i].is_core() {
                prop_assert!(mid.cluster_of(i).is_some(), "exact core {} unassigned", i);
            }
        }
        for i in 0..pts.len() {
            for j in (i+1)..pts.len() {
                let low_pair = lower.labels()[i].is_core() && lower.labels()[j].is_core()
                    && lower.cluster_of(i) == lower.cluster_of(j);
                if low_pair {
                    prop_assert_eq!(mid.cluster_of(i), mid.cluster_of(j),
                        "exact pair ({},{}) split by approx", i, j);
                }
                let mid_pair = mid.labels()[i].is_core() && mid.labels()[j].is_core()
                    && mid.cluster_of(i) == mid.cluster_of(j);
                if mid_pair {
                    prop_assert_eq!(upper.cluster_of(i), upper.cluster_of(j),
                        "approx pair ({},{}) split by exact((1+rho)eps)", i, j);
                }
            }
        }
    }

    /// Streaming solver: same sandwich property, plus the memory bound
    /// |M| < MinPts·|E|.
    #[test]
    fn streaming_is_sandwiched((pts, eps, min_pts) in instances(), rho in 0.1f64..2.0) {
        let params = ApproxParams::new(eps, min_pts, rho).unwrap();
        let (mid, engine) =
            StreamingApproxDbscan::run(&Euclidean, &params, || pts.iter().cloned()).unwrap();
        let lower = exact_dbscan(&pts, &Euclidean, eps, min_pts).unwrap();
        let upper = exact_dbscan(&pts, &Euclidean, (1.0 + rho) * eps, min_pts).unwrap();
        let fp = engine.footprint();
        prop_assert!(fp.parked <= min_pts * fp.centers.max(1));
        for i in 0..pts.len() {
            if lower.labels()[i].is_core() {
                prop_assert!(mid.cluster_of(i).is_some());
            }
        }
        for i in 0..pts.len() {
            for j in (i+1)..pts.len() {
                let low_pair = lower.labels()[i].is_core() && lower.labels()[j].is_core()
                    && lower.cluster_of(i) == lower.cluster_of(j);
                if low_pair {
                    prop_assert_eq!(mid.cluster_of(i), mid.cluster_of(j));
                }
                let mid_pair = mid.labels()[i].is_core() && mid.labels()[j].is_core()
                    && mid.cluster_of(i) == mid.cluster_of(j);
                if mid_pair {
                    prop_assert_eq!(upper.cluster_of(i), upper.cluster_of(j));
                }
            }
        }
    }
}
