//! Determinism contract of [`CandidateIndex::RandomProjection`]: for a
//! fixed seed the RP-backed approximate and streaming solvers are pure
//! functions of the point sequence — bit-identical labels across thread
//! counts, ingest-vs-fresh builds, and artifact save/load round trips,
//! at both f32 and f64 block precision. Plus the fallback half of the
//! contract: metrics without a coordinate view and Grid-configured
//! engines never touch the RP machinery (zero RP counters, labels
//! identical to the generic path).

use mdbscan_core::{ApproxParams, CandidateIndex, MetricDbscan, ParallelConfig, RpConfig};
use mdbscan_metric::{BlockScalar, Euclidean, Levenshtein, VectorBlock};

const EPS: f64 = 0.9;
const MIN_PTS: usize = 8;
const RHO: f64 = 1.0;
const RBAR: f64 = 0.45;

/// Deterministic xorshift — the test owns its data, no RNG dependency.
struct Xs(u64);

impl Xs {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Box–Muller-free symmetric jitter in [-s, s].
    fn jitter(&mut self, s: f64) -> f64 {
        (self.next_f64() * 2.0 - 1.0) * s
    }
}

/// Three well-separated clusters plus scattered outliers in dimension
/// `dim`: enough structure that labels are non-trivial (cores, borders,
/// and noise all occur) at the fixed parameters above.
fn rows(dim: usize) -> Vec<Vec<f64>> {
    let mut rng = Xs(0x9e37_79b9_7f4a_7c15);
    let mut out = Vec::new();
    for c in 0..3usize {
        for _ in 0..110 {
            let mut p = vec![0.0; dim];
            // cluster centers at 6·e_c
            p[c] = 6.0;
            for x in p.iter_mut() {
                *x += rng.jitter(0.45);
            }
            out.push(p);
        }
    }
    for _ in 0..30 {
        let p: Vec<f64> = (0..dim).map(|_| rng.jitter(12.0)).collect();
        out.push(p);
    }
    out
}

fn rp_cfg() -> RpConfig {
    RpConfig::new(0xd15c_0b33)
        .projections(48)
        .top_m(96)
        .probes(3)
}

fn params() -> ApproxParams {
    ApproxParams::new(EPS, MIN_PTS, RHO).expect("params")
}

fn build<T: BlockScalar>(
    block: &VectorBlock<T>,
    ids: Vec<u32>,
    threads: usize,
    index: CandidateIndex,
) -> MetricDbscan<u32, VectorBlock<T>>
where
    VectorBlock<T>: mdbscan_metric::BatchMetric<u32>,
{
    MetricDbscan::builder(ids, block.clone())
        .rbar(RBAR)
        .parallel(ParallelConfig::new(threads))
        .candidate_index(index)
        .build()
        .expect("engine")
}

/// Labels from the approximate and streaming solvers, in that order.
fn both_solvers<T: BlockScalar>(engine: &MetricDbscan<u32, VectorBlock<T>>) -> (Vec<i32>, Vec<i32>)
where
    VectorBlock<T>: mdbscan_metric::BatchMetric<u32>,
{
    let a = engine.approx(&params()).expect("approx");
    let s = engine.streaming(&params()).expect("streaming");
    (a.clustering.assignments(), s.clustering.assignments())
}

/// The full determinism matrix at one block precision: fresh/1-thread
/// is the reference; 4 threads, half-ingest, and a save/load round trip
/// must each reproduce it bit-for-bit, for approx and streaming alike.
fn assert_bit_identical<T: BlockScalar>()
where
    VectorBlock<T>: mdbscan_metric::BatchMetric<u32>
        + mdbscan_metric::PersistMetric
        + mdbscan_metric::GridCompatible<u32>,
{
    let data = rows(24);
    let block = VectorBlock::<T>::from_rows(&data);
    let ids = block.ids();
    let idx = CandidateIndex::RandomProjection(rp_cfg());

    let reference = both_solvers(&build(&block, ids.clone(), 1, idx));
    // RP must actually engage on this workload, or the test is vacuous.
    let probe = build(&block, ids.clone(), 1, idx)
        .approx(&params())
        .expect("approx");
    assert!(
        probe.report.rp.candidates_emitted > 0,
        "RP index did not engage"
    );

    // Thread count.
    let threaded = both_solvers(&build(&block, ids.clone(), 4, idx));
    assert_eq!(reference, threaded, "4-thread run diverged");

    // Ingest-vs-fresh: seed with the first half, ingest the rest.
    let half = ids.len() / 2;
    let grown = build(&block, ids[..half].to_vec(), 1, idx);
    grown
        .ingest(ids[half..].iter().copied())
        .expect("ingest second half");
    let grown_labels = both_solvers(&grown);
    assert_eq!(reference, grown_labels, "ingest-vs-fresh diverged");

    // Artifact round trip.
    let mut path = std::env::temp_dir();
    path.push(format!(
        "mdbscan_rp_determinism_{}_{}.mdb",
        std::process::id(),
        std::any::type_name::<T>().replace(':', "_")
    ));
    let saver = build(&block, ids.clone(), 1, idx);
    saver.approx(&params()).expect("approx before save");
    saver.save(&path).expect("save artifact");
    let loaded =
        MetricDbscan::<u32, VectorBlock<T>>::load(&path, block.clone()).expect("load artifact");
    let loaded_labels = both_solvers(&loaded);
    std::fs::remove_file(&path).ok();
    assert_eq!(reference, loaded_labels, "artifact round trip diverged");
}

#[test]
fn rp_runs_bit_identical_f64() {
    assert_bit_identical::<f64>();
}

#[test]
fn rp_runs_bit_identical_f32() {
    assert_bit_identical::<f32>();
}

/// A metric with no coordinate view (edit distance) silently stays on
/// the generic path: zero RP counters, labels identical to an engine
/// that never asked for RP.
#[test]
fn rp_falls_back_for_non_vector_metrics() {
    let mut words: Vec<String> = Vec::new();
    for stem in ["cluster", "cluttered", "metric", "metrical"] {
        for i in 0..12 {
            words.push(format!("{stem}{}", "x".repeat(i % 3)));
        }
    }
    let build = |index: CandidateIndex| {
        MetricDbscan::builder(words.clone(), Levenshtein)
            .rbar(1.0)
            .candidate_index(index)
            .build()
            .expect("engine")
    };
    let p = ApproxParams::new(2.0, 4, 1.0).expect("params");
    let rp = build(CandidateIndex::RandomProjection(rp_cfg()))
        .approx(&p)
        .expect("approx");
    let generic = build(CandidateIndex::Generic).approx(&p).expect("approx");
    assert_eq!(rp.report.rp.candidates_emitted, 0, "RP engaged on strings");
    assert_eq!(rp.report.rp.projections, 0);
    assert_eq!(
        rp.clustering.assignments(),
        generic.clustering.assignments(),
        "fallback labels differ from the generic path"
    );
}

/// Plain `Vec<f64>` points under [`Euclidean`] expose no coordinate
/// view either — same silent fallback.
#[test]
fn rp_falls_back_for_vec_points() {
    let data = rows(6);
    let build = |index: CandidateIndex| {
        MetricDbscan::builder(data.clone(), Euclidean)
            .rbar(RBAR)
            .candidate_index(index)
            .build()
            .expect("engine")
    };
    let rp = build(CandidateIndex::RandomProjection(rp_cfg()))
        .approx(&params())
        .expect("approx");
    let generic = build(CandidateIndex::Generic)
        .approx(&params())
        .expect("approx");
    assert_eq!(rp.report.rp.candidates_emitted, 0);
    assert_eq!(
        rp.clustering.assignments(),
        generic.clustering.assignments()
    );
}

/// A Grid-configured engine on a low-dimensional block is untouched by
/// the RP subsystem: its RP counters stay zero and its labels are
/// unchanged.
#[test]
fn grid_workloads_report_zero_rp_counters() {
    let data: Vec<Vec<f64>> = rows(24).into_iter().map(|r| r[..2].to_vec()).collect();
    let block = VectorBlock::<f64>::from_rows(&data);
    let ids = block.ids();
    let grid = build(&block, ids.clone(), 1, CandidateIndex::Grid)
        .approx(&params())
        .expect("approx");
    assert_eq!(grid.report.rp.candidates_emitted, 0);
    assert_eq!(grid.report.rp.projections, 0);
}
