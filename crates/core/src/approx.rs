//! Algorithm 2: ρ-approximate metric DBSCAN via a core-point summary.
//!
//! With `r̄ = ρε/2`, the summary `S*` keeps, per ball `C_e`:
//! * just the center `e` when `e` is itself a core point (it represents
//!   every core point of its ball within `r̄`), or
//! * all core points of `C_e` otherwise — and Lemma 8 shows a non-core
//!   center's ball has fewer than `MinPts` points, so this adds `< MinPts`
//!   entries.
//!
//! `|S*| = O((Δ/ρε)^D) + z` (Lemma 9). Merging runs *inside the summary
//! only*, at threshold `(1+ρ)ε`; every other point is labeled against the
//! summary at threshold `(ρ/2+1)ε`. Theorem 2 proves the result is a valid
//! ρ-approximate DBSCAN clustering (Gan–Tao semantics), and the sandwich
//! theorem places it between exact(ε) and exact((1+ρ)ε).

use std::time::Instant;

use mdbscan_kcenter::CenterAdjacency;
use mdbscan_metric::Metric;
use mdbscan_parallel::{par_map_range, ParallelConfig};

use crate::labels::PointLabel;
use crate::netview::NetView;
use crate::params::ApproxParams;
use crate::parmerge::{batch_size, union_rounds};
use crate::steps::count_neighbors_capped;
use crate::unionfind::UnionFind;

/// Work items per worker below which the summary / labeling loops stay
/// sequential.
const APPROX_MIN_PER_THREAD: usize = 512;

/// Statistics of one Algorithm-2 run (Fig. 6 uses the summary/memory
/// numbers; the ablations use the timings).
#[derive(Debug, Clone, Copy, Default)]
pub struct ApproxStats {
    /// Centers in the net (`|E|`).
    pub n_centers: usize,
    /// Summary size `|S*|`.
    pub summary_size: usize,
    /// Mean neighbor-ball degree.
    pub mean_adjacency_degree: f64,
    /// Seconds computing the adjacency.
    pub adjacency_secs: f64,
    /// Seconds constructing `S*` (core tests included).
    pub summary_secs: f64,
    /// Seconds merging inside `S*`.
    pub merge_secs: f64,
    /// Seconds labeling the remaining points.
    pub label_secs: f64,
    /// Summary pairs whose distance was tested during the merge.
    pub merge_pairs_tested: u64,
}

/// Runs Algorithm 2 over a prepared net (`net.rbar ≤ ρε/2` — checked by
/// the caller). Parallel over the phase's natural unit — centers for
/// the core tests, summary pairs (round-batched) for the merge, points
/// for the labeling — with labels identical for every thread count.
pub(crate) fn run_approx<P: Sync, M: Metric<P> + Sync>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    params: &ApproxParams,
    parallel: &ParallelConfig,
) -> (Vec<PointLabel>, ApproxStats) {
    debug_assert!(net.rbar <= params.rbar() * (1.0 + 1e-9));
    let eps = params.eps();
    let min_pts = params.min_pts();
    let k = net.num_centers();
    let n = net.num_points();
    let threads = parallel.threads();
    let mut stats = ApproxStats {
        n_centers: k,
        ..Default::default()
    };

    // Adjacency threshold (definition (13) generalized to r̄ ≤ ρε/2): it
    // must cover both the merge radius (centers of summary points within
    // (1+ρ)ε are ≤ (1+ρ)ε + 2r̄ apart) and the ε-ball containment of
    // Lemma 2 (needs ≥ 2r̄ + ε). With r̄ = ρε/2 this equals the paper's
    // 4r̄ + ε.
    let t = Instant::now();
    let threshold = (params.merge_radius() + 2.0 * net.rbar).max(2.0 * net.rbar + eps);
    let adj = CenterAdjacency::build_with(points, metric, net.centers, threshold, parallel);
    stats.adjacency_secs = t.elapsed().as_secs_f64();
    stats.mean_adjacency_degree = adj.mean_degree();

    // ---- Summary construction ----
    let t = Instant::now();
    // Which centers are core points (|B(e, ε)| ≥ MinPts)? Parallel over
    // centers; each test is independent.
    let center_core: Vec<bool> = par_map_range(k, threads, 64, |e| {
        count_neighbors_capped(points, metric, net, &adj, e, net.centers[e], eps, min_pts)
            >= min_pts
    });
    // Points of non-core-center balls need individual core tests
    // (Lemma 8 bounds each such ball below MinPts points, so this stays
    // amortized-linear — Lemma 10). Collect them, test in parallel.
    let sparse_points: Vec<u32> = (0..k)
        .filter(|&e| !center_core[e])
        .flat_map(|e| net.cover_sets.row(e).iter().copied())
        .collect();
    let sparse_core: Vec<bool> =
        par_map_range(sparse_points.len(), threads, APPROX_MIN_PER_THREAD, |i| {
            let pi = sparse_points[i] as usize;
            let e = net.assignment[pi] as usize;
            count_neighbors_capped(points, metric, net, &adj, e, pi, eps, min_pts) >= min_pts
        });
    // S* as point indices, plus per-center membership lists (positions
    // into `summary`), plus each center's own summary position —
    // assembled sequentially in center order, exactly as the sequential
    // algorithm would.
    let mut summary: Vec<usize> = Vec::new();
    let mut summary_by_center: Vec<Vec<u32>> = vec![Vec::new(); k];
    let mut sparse_cursor = 0usize;
    for e in 0..k {
        if center_core[e] {
            let pos = summary.len() as u32;
            summary.push(net.centers[e]);
            summary_by_center[e].push(pos);
        } else {
            for &p in net.cover_sets.row(e) {
                debug_assert_eq!(sparse_points[sparse_cursor], p);
                let core = sparse_core[sparse_cursor];
                sparse_cursor += 1;
                if core {
                    let pos = summary.len() as u32;
                    summary.push(p as usize);
                    summary_by_center[e].push(pos);
                }
            }
        }
    }
    stats.summary_size = summary.len();
    stats.summary_secs = t.elapsed().as_secs_f64();

    // ---- Merge inside S* at (1+ρ)ε ----
    let t = Instant::now();
    let merge_r = params.merge_radius();
    let mut uf = UnionFind::new(summary.len());
    if threads <= 1 {
        for (i, &sp) in summary.iter().enumerate() {
            let cs = net.assignment[sp] as usize;
            for &e2 in &adj.neighbors[cs] {
                for &jpos in &summary_by_center[e2 as usize] {
                    let j = jpos as usize;
                    if j <= i || uf.connected(i, j) {
                        continue;
                    }
                    stats.merge_pairs_tested += 1;
                    if metric.within(&points[sp], &points[summary[j]], merge_r) {
                        uf.union(i, j);
                    }
                }
            }
        }
    } else {
        // Round-batched: same candidate order, parallel distance tests;
        // the final components (and so the labels) are identical.
        let batch = batch_size(threads);
        let mut i_cursor = 0usize;
        let mut pending: std::collections::VecDeque<(u32, u32)> = std::collections::VecDeque::new();
        let (tested, _) = union_rounds(
            &mut uf,
            threads,
            |uf| {
                let mut out = Vec::new();
                loop {
                    while out.len() < batch {
                        match pending.pop_front() {
                            Some((i, j)) => {
                                if uf.root(i as usize) != uf.root(j as usize) {
                                    out.push((i, j));
                                }
                            }
                            None => break,
                        }
                    }
                    if out.len() >= batch || i_cursor >= summary.len() {
                        return out;
                    }
                    let i = i_cursor;
                    i_cursor += 1;
                    let cs = net.assignment[summary[i]] as usize;
                    for &e2 in &adj.neighbors[cs] {
                        for &jpos in &summary_by_center[e2 as usize] {
                            if (jpos as usize) > i {
                                pending.push_back((i as u32, jpos));
                            }
                        }
                    }
                }
            },
            |i, j| metric.within(&points[summary[i]], &points[summary[j]], merge_r),
        );
        stats.merge_pairs_tested = tested;
    }
    let summary_cluster = uf.component_ids();
    stats.merge_secs = t.elapsed().as_secs_f64();

    // ---- Label everything, parallel over points ----
    let t = Instant::now();
    let label_r = params.label_radius();
    // Summary position of each point (u32::MAX = not in S*) and of each
    // core center.
    let mut summary_pos_of_point = vec![u32::MAX; n];
    for (i, &sp) in summary.iter().enumerate() {
        summary_pos_of_point[sp] = i as u32;
    }
    let center_summary_pos: Vec<Option<u32>> = (0..k)
        .map(|e| center_core[e].then(|| summary_by_center[e][0]))
        .collect();
    let labels: Vec<PointLabel> = par_map_range(n, threads, APPROX_MIN_PER_THREAD, |p| {
        // Summary members are certified core points.
        let pos = summary_pos_of_point[p];
        if pos != u32::MAX {
            return PointLabel::Core(summary_cluster[pos as usize]);
        }
        let cp = net.assignment[p] as usize;
        if let Some(pos) = center_summary_pos[cp] {
            // p is within r̄ ≤ ε of the core center c_p: at least a border
            // point of that cluster (individual core-ness not certified —
            // see PointLabel::Border docs).
            return PointLabel::Border(summary_cluster[pos as usize]);
        }
        // Nearest summary point within (ρ/2+1)ε among neighbor balls.
        let mut best: Option<(f64, u32)> = None;
        for &e2 in &adj.neighbors[cp] {
            for &jpos in &summary_by_center[e2 as usize] {
                let bound = best.map_or(label_r, |(d, _)| d);
                if let Some(d) =
                    metric.distance_leq(&points[p], &points[summary[jpos as usize]], bound)
                {
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, jpos));
                    }
                }
            }
        }
        match best {
            Some((_, jpos)) => PointLabel::Border(summary_cluster[jpos as usize]),
            None => PointLabel::Noise,
        }
    });
    stats.label_secs = t.elapsed().as_secs_f64();

    (labels, stats)
}

#[cfg(test)]
mod tests {
    use crate::{approx_dbscan, exact_dbscan, ApproxParams, MetricDbscan};
    use mdbscan_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(seed: u64, per_blob: usize) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [[0.0, 0.0], [20.0, 0.0], [0.0, 20.0]];
        let mut pts = Vec::new();
        for c in centers {
            for _ in 0..per_blob {
                pts.push(vec![
                    c[0] + rng.random_range(-1.0..1.0),
                    c[1] + rng.random_range(-1.0..1.0),
                ]);
            }
        }
        for _ in 0..per_blob / 10 {
            pts.push(vec![
                rng.random_range(-100.0..100.0),
                rng.random_range(100.0..200.0),
            ]);
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let pts = blobs(5, 120);
        let c = approx_dbscan(&pts, &Euclidean, 0.8, 8, 0.5).unwrap();
        assert_eq!(c.num_clusters(), 3, "three blobs");
        // the far-away noise stays noise
        assert!(c.num_noise() >= 6);
    }

    /// Sandwich theorem (Gan–Tao): points together in exact(ε) stay
    /// together in approx; points together in approx stay together in
    /// exact((1+ρ)ε). Checked on core points (border assignment is
    /// tie-broken freely in all three).
    #[test]
    fn sandwich_property() {
        for seed in [1u64, 2, 3] {
            let pts = blobs(seed, 60);
            let eps = 0.9;
            let rho = 0.5;
            let lower = exact_dbscan(&pts, &Euclidean, eps, 6).unwrap();
            let upper = exact_dbscan(&pts, &Euclidean, (1.0 + rho) * eps, 6).unwrap();
            let mid = approx_dbscan(&pts, &Euclidean, eps, 6, rho).unwrap();
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let together_lower = lower.labels()[i].is_core()
                        && lower.labels()[j].is_core()
                        && lower.cluster_of(i) == lower.cluster_of(j);
                    let together_mid = mid.labels()[i].is_core()
                        && mid.labels()[j].is_core()
                        && mid.cluster_of(i) == mid.cluster_of(j);
                    if together_lower {
                        // exact(ε)-cores are approx-assigned (maybe as
                        // border reps); require same approx cluster.
                        assert!(
                            mid.cluster_of(i).is_some(),
                            "seed {seed}: exact core {i} unassigned in approx"
                        );
                        assert_eq!(
                            mid.cluster_of(i),
                            mid.cluster_of(j),
                            "seed {seed}: exact(ε) pair ({i},{j}) split by approx"
                        );
                    }
                    if together_mid {
                        assert_eq!(
                            upper.cluster_of(i),
                            upper.cluster_of(j),
                            "seed {seed}: approx pair ({i},{j}) split by exact((1+ρ)ε)"
                        );
                    }
                }
            }
        }
    }

    /// Every exact core point must be assigned to some approx cluster
    /// (Definition 2: each core point belongs to exactly one cluster).
    #[test]
    fn exact_cores_are_always_assigned() {
        for seed in [7u64, 8, 9] {
            let pts = blobs(seed, 50);
            let exact = exact_dbscan(&pts, &Euclidean, 1.0, 5).unwrap();
            let approx = approx_dbscan(&pts, &Euclidean, 1.0, 5, 1.0).unwrap();
            for i in 0..pts.len() {
                if exact.labels()[i].is_core() {
                    assert!(
                        approx.cluster_of(i).is_some(),
                        "seed {seed}: core {i} dropped"
                    );
                }
            }
        }
    }

    #[test]
    fn summary_is_small_on_dense_data() {
        let pts = blobs(11, 400);
        let n = pts.len();
        let params = ApproxParams::new(1.0, 10, 0.5).unwrap();
        let engine = MetricDbscan::builder(pts, Euclidean)
            .rbar(params.rbar())
            .build()
            .unwrap();
        let run = engine.approx(&params).unwrap();
        let stats = run.report.approx_stats().expect("approx run");
        assert!(
            stats.summary_size < n / 5,
            "summary {} should compress {} points",
            stats.summary_size,
            n
        );
        assert!(stats.summary_size >= 3, "at least one rep per blob");
    }

    #[test]
    fn rho_zero_rejected_rho_two_accepted() {
        let pts = blobs(1, 30);
        assert!(approx_dbscan(&pts, &Euclidean, 1.0, 5, 0.0).is_err());
        assert!(approx_dbscan(&pts, &Euclidean, 1.0, 5, 2.0).is_ok());
    }

    #[test]
    fn duplicates_and_tiny_inputs() {
        let dup = vec![vec![0.0, 0.0]; 12];
        let c = approx_dbscan(&dup, &Euclidean, 1.0, 4, 0.5).unwrap();
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.num_noise(), 0);
        let two = vec![vec![0.0], vec![100.0]];
        let c = approx_dbscan(&two, &Euclidean, 1.0, 2, 0.5).unwrap();
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.num_noise(), 2);
    }
}
