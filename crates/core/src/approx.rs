//! Algorithm 2: ρ-approximate metric DBSCAN via a core-point summary.
//!
//! With `r̄ = ρε/2`, the summary `S*` keeps, per ball `C_e`:
//! * just the center `e` when `e` is itself a core point (it represents
//!   every core point of its ball within `r̄`), or
//! * all core points of `C_e` otherwise — and Lemma 8 shows a non-core
//!   center's ball has fewer than `MinPts` points, so this adds `< MinPts`
//!   entries.
//!
//! `|S*| = O((Δ/ρε)^D) + z` (Lemma 9). Merging runs *inside the summary
//! only*, at threshold `(1+ρ)ε`; every other point is labeled against the
//! summary at threshold `(ρ/2+1)ε`. Theorem 2 proves the result is a valid
//! ρ-approximate DBSCAN clustering (Gan–Tao semantics), and the sandwich
//! theorem places it between exact(ε) and exact((1+ρ)ε).
//!
//! Like the exact steps, every phase exploits the net's recorded
//! distances for triangle-inequality pruning
//! ([`mdbscan_metric::PruningConfig`]): summary pairs whose center-pair
//! bounds already decide the `(1+ρ)ε` test merge (or are discarded)
//! without an evaluation, and the labeling scan anchors each neighbor
//! ball once. Labels are bit-identical with pruning on or off.

use std::sync::Arc;
use std::time::Instant;

use mdbscan_grid::{CandidateStats, GridIndex};
use mdbscan_kcenter::CenterAdjacency;
use mdbscan_metric::{BatchMetric, CountingMetric, Metric, PruneStats};
use mdbscan_parallel::{par_map_ranges, split_even, worker_count, Csr, ParallelConfig};
use mdbscan_rp::{RpIndex, RpStats};

use crate::labels::PointLabel;
use crate::netview::NetView;
use crate::params::ApproxParams;
use crate::parmerge::{batch_size, union_rounds};
use crate::steps::{count_neighbors_capped, AnchorScratch};
use crate::unionfind::UnionFind;

/// Work items per worker below which the summary / labeling loops stay
/// sequential.
const APPROX_MIN_PER_THREAD: usize = 512;

/// Statistics of one Algorithm-2 run (Fig. 6 uses the summary/memory
/// numbers; the ablations use the timings).
#[derive(Debug, Clone, Copy, Default)]
pub struct ApproxStats {
    /// Centers in the net (`|E|`).
    pub n_centers: usize,
    /// Summary size `|S*|`.
    pub summary_size: usize,
    /// Mean neighbor-ball degree.
    pub mean_adjacency_degree: f64,
    /// Seconds computing the adjacency.
    pub adjacency_secs: f64,
    /// Seconds constructing `S*` (core tests included).
    pub summary_secs: f64,
    /// Seconds merging inside `S*`.
    pub merge_secs: f64,
    /// Seconds labeling the remaining points.
    pub label_secs: f64,
    /// Summary pairs whose distance was tested during the merge
    /// (distance-free accepts are not tests; see `pruning`).
    pub merge_pairs_tested: u64,
    /// Triangle-inequality pruning ledger (adjacency + summary + merge +
    /// labeling). Work counters: thread count and cache hits may shift
    /// them while labels stay identical.
    pub pruning: PruneStats,
    /// Grid candidate-generation ledger across the adjacency build, the
    /// core tests, and the labeling scan — all zeros on the generic
    /// path. Labels are bit-identical with the grid on or off.
    pub candidates: CandidateStats,
    /// Random-projection candidate ledger across the core tests and the
    /// labeling scan — all zeros unless the engine was configured with
    /// `CandidateIndex::RandomProjection`. Unlike the grid, RP changes
    /// which candidates are *seen* (a quality/evaluation trade-off), so
    /// RP labels are deterministic for a fixed seed but not identical to
    /// the generic path's.
    pub rp: RpStats,
    /// Distance evaluations spent building the adjacency (0 on a cache
    /// replay).
    pub adjacency_evals: u64,
    /// Distance evaluations spent on the Step-1 core tests (0 when the
    /// summary was replayed from cache).
    pub summary_evals: u64,
    /// Distance evaluations spent merging inside `S*`.
    pub merge_evals: u64,
    /// Distance evaluations spent labeling.
    pub label_evals: u64,
}

impl ApproxStats {
    /// Total distance evaluations across all four phases.
    pub fn distance_evals(&self) -> u64 {
        self.adjacency_evals + self.summary_evals + self.merge_evals + self.label_evals
    }
}

/// The `(ε, MinPts, ρ)`-dependent intermediates of Algorithm 2 that an
/// engine may cache: the per-center core flags, the summary `S*`, its
/// per-center membership rows, and the merged summary clusters.
///
/// All are deterministic functions of `(net, ε, MinPts, ρ)` —
/// independent of thread count and pruning — so replaying them yields
/// bit-identical labels while skipping the summary construction *and*
/// the merge.
pub(crate) struct ApproxArtifacts {
    pub(crate) center_core: Vec<bool>,
    /// Summary point ids, in construction order.
    pub(crate) summary: Vec<u32>,
    /// Per center, the summary positions of its members.
    pub(crate) summary_by_center: Csr,
    /// Cluster id per summary position (post-merge components).
    pub(crate) summary_cluster: Vec<u32>,
}

impl ApproxArtifacts {
    /// Approximate heap footprint, for cache accounting.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.center_core.len()
            + (self.summary.len() + self.summary_cluster.len()) * std::mem::size_of::<u32>()
            + self.summary_by_center.total_len() * std::mem::size_of::<u32>()
    }
}

/// Cached inputs a caller may replay into [`run_approx`], mirroring
/// [`crate::steps::StepsReuse`].
#[derive(Default)]
pub(crate) struct ApproxReuse<'a> {
    pub(crate) artifacts: Option<&'a ApproxArtifacts>,
    pub(crate) adjacency: Option<Arc<CenterAdjacency>>,
    /// ε-aligned grid over the current epoch's points (cell side
    /// `ε/√d`); when present, candidate generation for the adjacency,
    /// the core tests, and the labeling scan comes from ring cells —
    /// bit-identical labels, fewer distance evaluations.
    pub(crate) grid: Option<Arc<GridIndex>>,
    /// Seeded random-projection index over the current epoch's points;
    /// when present, the core tests and the labeling scan draw their
    /// candidates from its per-projection lists instead of scanning
    /// neighbor balls. Deterministic for a fixed seed; candidate misses
    /// are a quality trade-off, not nondeterminism. Mutually exclusive
    /// with `grid` (the engine resolves at most one).
    pub(crate) rp: Option<Arc<RpIndex>>,
}

/// Everything one Algorithm-2 run produces.
pub(crate) struct ApproxOutcome {
    pub(crate) labels: Vec<PointLabel>,
    pub(crate) stats: ApproxStats,
    /// Fresh artifacts for the caller to cache (`Some` only when nothing
    /// was reused).
    pub(crate) fresh_artifacts: Option<ApproxArtifacts>,
    /// The adjacency this run used (freshly built or replayed).
    pub(crate) adjacency: Arc<CenterAdjacency>,
}

/// Runs Algorithm 2 over a prepared net (`net.rbar ≤ ρε/2` — checked by
/// the caller). Parallel over the phase's natural unit — centers for
/// the core tests, summary pairs (round-batched) for the merge, points
/// for the labeling — with labels identical for every thread count.
pub(crate) fn run_approx<P: Sync, M: BatchMetric<P> + Sync>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    params: &ApproxParams,
    parallel: &ParallelConfig,
    pruning: &mdbscan_metric::PruningConfig,
    reuse: ApproxReuse<'_>,
) -> ApproxOutcome {
    debug_assert!(net.rbar <= params.rbar() * (1.0 + 1e-9));
    let eps = params.eps();
    let min_pts = params.min_pts();
    let k = net.num_centers();
    let n = net.num_points();
    let threads = parallel.threads();
    let mut stats = ApproxStats {
        n_centers: k,
        ..Default::default()
    };
    // Per-phase evaluation counters ride on a counting wrapper; the
    // relaxed atomic is cheap next to the evaluations it counts.
    let counting = CountingMetric::new(metric);
    let metric = &counting;

    // Adjacency threshold (definition (13) generalized to r̄ ≤ ρε/2): it
    // must cover both the merge radius (centers of summary points within
    // (1+ρ)ε are ≤ (1+ρ)ε + 2r̄ apart) and the ε-ball containment of
    // Lemma 2 (needs ≥ 2r̄ + ε). With r̄ = ρε/2 this equals the paper's
    // 4r̄ + ε.
    let grid: Option<&GridIndex> = reuse.grid.as_deref();
    let rp: Option<&RpIndex> = reuse.rp.as_deref();
    debug_assert!(
        grid.is_none() || rp.is_none(),
        "at most one candidate index per run"
    );
    let t = Instant::now();
    let threshold = approx_threshold(net.rbar, params);
    let adj: Arc<CenterAdjacency> = match reuse.adjacency {
        Some(adj) => {
            debug_assert_eq!(adj.threshold, threshold, "adjacency cache mixup");
            adj
        }
        None => match grid {
            Some(g) => {
                let dim = g.dim();
                let mut coords = Vec::with_capacity(net.centers.len() * dim);
                for &c in net.centers {
                    coords.extend_from_slice(g.point_coords(c));
                }
                let (built, cand) = CenterAdjacency::build_grid(
                    points,
                    metric,
                    net.centers,
                    threshold,
                    parallel,
                    dim,
                    coords,
                );
                stats.candidates.merge(&cand);
                Arc::new(built)
            }
            None => {
                let built = CenterAdjacency::build_pruned(
                    points,
                    metric,
                    net.centers,
                    threshold,
                    parallel,
                    pruning,
                );
                stats.pruning.merge(&built.pruning);
                Arc::new(built)
            }
        },
    };
    stats.adjacency_secs = t.elapsed().as_secs_f64();
    stats.adjacency_evals = metric.count();
    stats.mean_adjacency_degree = adj.mean_degree();

    // ---- Summary construction + merge (replayed wholesale on a hit) ----
    let fresh: Option<ApproxArtifacts> = if reuse.artifacts.is_some() {
        None
    } else {
        // Which centers are core points (|B(e, ε)| ≥ MinPts)? Parallel
        // over centers; each test is independent.
        let t = Instant::now();
        // The `≥ MinPts` test: either the generic neighbor-cover-set
        // scan or (grid mode) a capped ring-cell count — both see the
        // same ε-ball, so the flag is identical.
        let is_core_test = |p: usize,
                            e: usize,
                            ps: &mut PruneStats,
                            cs: &mut CandidateStats,
                            rps: &mut RpStats,
                            cells: &mut Vec<u32>| {
            if let Some(r) = rp {
                // RP mode: count only inside the candidate set, capped
                // at MinPts. A candidate miss can undercount (quality),
                // never overcount.
                r.candidates_for(p as u32, cells, rps);
                let mut count = 0usize;
                for &q in cells.iter() {
                    if metric.within(&points[p], &points[q as usize], eps) {
                        count += 1;
                        if count >= min_pts {
                            break;
                        }
                    }
                }
                return count >= min_pts;
            }
            match grid {
                Some(g) => {
                    g.count_within_capped(g.point_coords(p), eps, min_pts, cells, cs, |q| {
                        metric.within(&points[p], &points[q as usize], eps)
                    }) >= min_pts
                }
                None => {
                    count_neighbors_capped(
                        points, metric, net, &adj, e, p, eps, min_pts, pruning, ps,
                    ) >= min_pts
                }
            }
        };
        let w = worker_count(threads, k, 64);
        let chunks = par_map_ranges(split_even(k, w), |r| {
            let mut ps = PruneStats::default();
            let mut cs = CandidateStats::default();
            let mut rps = RpStats::default();
            let mut cells: Vec<u32> = Vec::new();
            let flags: Vec<bool> = r
                .map(|e| is_core_test(net.centers[e], e, &mut ps, &mut cs, &mut rps, &mut cells))
                .collect();
            (flags, ps, cs, rps)
        });
        let mut center_core = Vec::with_capacity(k);
        for (chunk, ps, cs, rps) in chunks {
            center_core.extend(chunk);
            stats.pruning.merge(&ps);
            stats.candidates.merge(&cs);
            stats.rp.merge(&rps);
        }
        // Points of non-core-center balls need individual core tests
        // (Lemma 8 bounds each such ball below MinPts points, so this
        // stays amortized-linear — Lemma 10). Collect them, test in
        // parallel.
        let sparse_points: Vec<u32> = (0..k)
            .filter(|&e| !center_core[e])
            .flat_map(|e| net.cover_sets.row(e).iter().copied())
            .collect();
        let w = worker_count(threads, sparse_points.len(), APPROX_MIN_PER_THREAD);
        let chunks = par_map_ranges(split_even(sparse_points.len(), w), |r| {
            let mut ps = PruneStats::default();
            let mut cs = CandidateStats::default();
            let mut rps = RpStats::default();
            let mut cells: Vec<u32> = Vec::new();
            let flags: Vec<bool> = r
                .map(|i| {
                    let pi = sparse_points[i] as usize;
                    let e = net.assignment[pi] as usize;
                    is_core_test(pi, e, &mut ps, &mut cs, &mut rps, &mut cells)
                })
                .collect();
            (flags, ps, cs, rps)
        });
        let mut sparse_core = Vec::with_capacity(sparse_points.len());
        for (chunk, ps, cs, rps) in chunks {
            sparse_core.extend(chunk);
            stats.pruning.merge(&ps);
            stats.candidates.merge(&cs);
            stats.rp.merge(&rps);
        }
        // S* as point indices, plus per-center membership rows (positions
        // into `summary`) — assembled sequentially in center order,
        // exactly as the sequential algorithm would.
        let mut summary: Vec<u32> = Vec::new();
        let mut by_center_offsets = vec![0usize; k + 1];
        let mut by_center_values: Vec<u32> = Vec::new();
        let mut sparse_cursor = 0usize;
        for e in 0..k {
            if center_core[e] {
                by_center_values.push(summary.len() as u32);
                summary.push(net.centers[e] as u32);
            } else {
                for &p in net.cover_sets.row(e) {
                    debug_assert_eq!(sparse_points[sparse_cursor], p);
                    let core = sparse_core[sparse_cursor];
                    sparse_cursor += 1;
                    if core {
                        by_center_values.push(summary.len() as u32);
                        summary.push(p);
                    }
                }
            }
            by_center_offsets[e + 1] = by_center_values.len();
        }
        let summary_by_center = Csr::from_parts(by_center_offsets, by_center_values);
        stats.summary_secs = t.elapsed().as_secs_f64();
        stats.summary_evals = metric.count() - stats.adjacency_evals;

        // ---- Merge inside S* at (1+ρ)ε ----
        let t = Instant::now();
        let merge_r = params.merge_radius();
        let mut uf = UnionFind::new(summary.len());
        // Per summary pair (i, j): centers cs_i, cs_j with adjacency
        // bounds [lb, ub] on dis(cs_i, cs_j), and recorded anchor
        // distances dq_i = dis(sp_i, cs_i), dq_j. Then
        //   dis(sp_i, sp_j) ∈ [lb − dq_i − dq_j, ub + dq_i + dq_j]
        // decides most pairs against (1+ρ)ε without an evaluation.
        let dq = |sp: u32| net.center_dist_ub(sp as usize);
        // (candidate pair, verdict): Some(true) = free merge,
        // Some(false) = free discard (handled at generation), None = test.
        let gen_pairs = |i: usize,
                         pending: &mut std::collections::VecDeque<(u32, u32)>,
                         uf: &mut UnionFind,
                         stats: &mut ApproxStats| {
            let cs = net.assignment[summary[i] as usize] as usize;
            let row = adj.neighbors.row(cs);
            let lbs = adj.lbound_row(cs);
            let ubs = adj.ubound_row(cs);
            for ((&e2, &lb), &ub) in row.iter().zip(lbs).zip(ubs) {
                for &jpos in summary_by_center.row(e2 as usize) {
                    let j = jpos as usize;
                    if j <= i {
                        continue;
                    }
                    if pruning.enabled {
                        let slack = dq(summary[i]) + dq(summary[j]);
                        if lb - slack > merge_r {
                            stats.pruning.bound_rejects += 1;
                            continue;
                        }
                        if ub + slack <= merge_r {
                            if uf.root(i) != uf.root(j) {
                                stats.pruning.bound_accepts += 1;
                                uf.union(i, j);
                            }
                            continue;
                        }
                    }
                    pending.push_back((i as u32, jpos));
                }
            }
        };
        if threads <= 1 {
            let mut pending = std::collections::VecDeque::new();
            for i in 0..summary.len() {
                gen_pairs(i, &mut pending, &mut uf, &mut stats);
                while let Some((a, b)) = pending.pop_front() {
                    let (a, b) = (a as usize, b as usize);
                    if uf.connected(a, b) {
                        continue;
                    }
                    stats.merge_pairs_tested += 1;
                    if metric.within(
                        &points[summary[a] as usize],
                        &points[summary[b] as usize],
                        merge_r,
                    ) {
                        uf.union(a, b);
                    }
                }
            }
        } else {
            // Round-batched: same candidate order, parallel distance
            // tests; the final components (and so the labels) are
            // identical.
            let batch = batch_size(threads);
            let mut i_cursor = 0usize;
            let mut pending: std::collections::VecDeque<(u32, u32)> =
                std::collections::VecDeque::new();
            let mut local = ApproxStats::default();
            let (tested, _) = union_rounds(
                &mut uf,
                threads,
                |uf| {
                    let mut out = Vec::new();
                    loop {
                        while out.len() < batch {
                            match pending.pop_front() {
                                Some((i, j)) => {
                                    if uf.root(i as usize) != uf.root(j as usize) {
                                        out.push((i, j));
                                    }
                                }
                                None => break,
                            }
                        }
                        if out.len() >= batch || i_cursor >= summary.len() {
                            return out;
                        }
                        let i = i_cursor;
                        i_cursor += 1;
                        gen_pairs(i, &mut pending, uf, &mut local);
                    }
                },
                |i, j| {
                    metric.within(
                        &points[summary[i] as usize],
                        &points[summary[j] as usize],
                        merge_r,
                    )
                },
            );
            stats.merge_pairs_tested = tested;
            stats.pruning.merge(&local.pruning);
        }
        let summary_cluster = uf.component_ids();
        stats.merge_secs = t.elapsed().as_secs_f64();
        stats.merge_evals = metric.count() - stats.adjacency_evals - stats.summary_evals;

        Some(ApproxArtifacts {
            center_core,
            summary,
            summary_by_center,
            summary_cluster,
        })
    };
    let art: &ApproxArtifacts = match reuse.artifacts {
        Some(a) => a,
        None => fresh.as_ref().expect("computed above"),
    };
    stats.summary_size = art.summary.len();

    // ---- Label everything, parallel over points ----
    let t = Instant::now();
    let label_r = params.label_radius();
    // Summary position of each point (u32::MAX = not in S*) and of each
    // core center.
    let mut summary_pos_of_point = vec![u32::MAX; n];
    for (i, &sp) in art.summary.iter().enumerate() {
        summary_pos_of_point[sp as usize] = i as u32;
    }
    let center_summary_pos: Vec<Option<u32>> = (0..k)
        .map(|e| art.center_core[e].then(|| art.summary_by_center.row(e)[0]))
        .collect();
    let w = worker_count(threads, n, APPROX_MIN_PER_THREAD);
    let chunks = par_map_ranges(split_even(n, w), |r| {
        let mut ps = PruneStats::default();
        let mut cs = CandidateStats::default();
        let mut rps = RpStats::default();
        let mut scratch = AnchorScratch::default();
        let mut cand: Vec<u32> = Vec::new();
        let labels: Vec<PointLabel> = r
            .map(|p| {
                if let Some(rpi) = rp {
                    return label_point_rp(
                        points,
                        metric,
                        net,
                        rpi,
                        art,
                        &summary_pos_of_point,
                        &center_summary_pos,
                        p,
                        label_r,
                        &mut cand,
                        &mut rps,
                    );
                }
                match grid {
                    Some(g) => label_point_grid(
                        points,
                        metric,
                        net,
                        g,
                        art,
                        &summary_pos_of_point,
                        &center_summary_pos,
                        p,
                        label_r,
                        &mut cs,
                    ),
                    None => label_point(
                        points,
                        metric,
                        net,
                        &adj,
                        art,
                        &summary_pos_of_point,
                        &center_summary_pos,
                        p,
                        label_r,
                        pruning,
                        &mut scratch,
                        &mut ps,
                    ),
                }
            })
            .collect();
        (labels, ps, cs, rps)
    });
    let mut labels = Vec::with_capacity(n);
    for (chunk, ps, cs, rps) in chunks {
        labels.extend(chunk);
        stats.pruning.merge(&ps);
        stats.candidates.merge(&cs);
        stats.rp.merge(&rps);
    }
    stats.label_secs = t.elapsed().as_secs_f64();
    stats.label_evals =
        metric.count() - stats.adjacency_evals - stats.summary_evals - stats.merge_evals;

    ApproxOutcome {
        labels,
        stats,
        fresh_artifacts: fresh,
        adjacency: adj,
    }
}

/// The adjacency threshold Algorithm 2 needs at a given net radius.
pub(crate) fn approx_threshold(rbar: f64, params: &ApproxParams) -> f64 {
    (params.merge_radius() + 2.0 * rbar).max(2.0 * rbar + params.eps())
}

/// Labels one point against the merged summary (Algorithm 2's final
/// phase), with the neighbor-ball scan anchored per center like Step 3.
#[allow(clippy::too_many_arguments)] // mirrors the labeling signature
fn label_point<P, M: BatchMetric<P>>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    adj: &CenterAdjacency,
    art: &ApproxArtifacts,
    summary_pos_of_point: &[u32],
    center_summary_pos: &[Option<u32>],
    p: usize,
    label_r: f64,
    pruning: &mdbscan_metric::PruningConfig,
    scratch: &mut AnchorScratch,
    ps: &mut PruneStats,
) -> PointLabel {
    // Summary members are certified core points.
    let pos = summary_pos_of_point[p];
    if pos != u32::MAX {
        return PointLabel::Core(art.summary_cluster[pos as usize]);
    }
    let cp = net.assignment[p] as usize;
    if let Some(pos) = center_summary_pos[cp] {
        // p is within r̄ ≤ ε of the core center c_p: at least a border
        // point of that cluster (individual core-ness not certified —
        // see PointLabel::Border docs).
        return PointLabel::Border(art.summary_cluster[pos as usize]);
    }
    // Nearest summary point within (ρ/2+1)ε among neighbor balls,
    // anchored per neighbor center when its summary row is big enough.
    let row = adj.neighbors.row(cp);
    let own = net.dist_to_center.map(|d2c| (cp as u32, d2c[p]));
    scratch.anchor_rows(
        points,
        metric,
        net,
        row,
        |e2| art.summary_by_center.row_len(e2),
        p,
        own,
        pruning,
        ps,
    );
    let mut cursor = 0usize;
    let mut best: Option<(f64, u32)> = None;
    for &e2 in row {
        let e2 = e2 as usize;
        let members = art.summary_by_center.row(e2);
        let anchor = if pruning.enabled && members.len() >= pruning.min_anchor_group {
            let a = scratch.anchors[cursor];
            cursor += 1;
            Some(a)
        } else {
            None
        };
        for &jpos in members {
            let bound = best.map_or(label_r, |(d, _)| d);
            let sp = art.summary[jpos as usize] as usize;
            if let Some(a) = anchor {
                let dq = net.center_dist_ub(sp);
                if a - dq > bound || (net.dist_to_center.is_some() && dq - a > bound) {
                    ps.bound_rejects += 1;
                    continue;
                }
            }
            if let Some(d) = metric.distance_leq(&points[p], &points[sp], bound) {
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, jpos));
                }
            }
        }
    }
    match best {
        Some((_, jpos)) => PointLabel::Border(art.summary_cluster[jpos as usize]),
        None => PointLabel::Noise,
    }
}

/// Grid variant of [`label_point`]: same early-outs, then the nearest
/// summary point among the ring-cell candidates, minimizing
/// `(distance, summary position)` lexicographically. That is exactly
/// the optimum the generic scan converges to — its adjacency rows are
/// visited in ascending center order and summary positions are
/// assigned in center order, so positions arrive globally ascending
/// and the strict `<` keeps the first (smallest-position) minimum.
/// Every distance comes from the same metric arithmetic, so the label
/// matches bit-for-bit.
#[allow(clippy::too_many_arguments)] // mirrors label_point
fn label_point_grid<P, M: BatchMetric<P>>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    grid: &GridIndex,
    art: &ApproxArtifacts,
    summary_pos_of_point: &[u32],
    center_summary_pos: &[Option<u32>],
    p: usize,
    label_r: f64,
    cs: &mut CandidateStats,
) -> PointLabel {
    let pos = summary_pos_of_point[p];
    if pos != u32::MAX {
        return PointLabel::Core(art.summary_cluster[pos as usize]);
    }
    let cp = net.assignment[p] as usize;
    if let Some(pos) = center_summary_pos[cp] {
        return PointLabel::Border(art.summary_cluster[pos as usize]);
    }
    let mut best: Option<(f64, u32)> = None;
    let mut walk = CandidateStats::default();
    let (mut emitted, mut rejected) = (0u64, 0u64);
    grid.for_each_candidate_cell(
        grid.point_coords(p),
        label_r,
        &mut walk,
        |members, cell_lb, _| {
            if best.is_some_and(|(d, _)| cell_lb > d) {
                rejected += members.len() as u64;
                return;
            }
            for &q in members {
                let jpos = summary_pos_of_point[q as usize];
                if jpos == u32::MAX {
                    continue;
                }
                emitted += 1;
                let bound = best.map_or(label_r, |(d, _)| d);
                if let Some(d) = metric.distance_leq(&points[p], &points[q as usize], bound) {
                    if best.is_none_or(|(bd, bj)| d < bd || (d == bd && jpos < bj)) {
                        best = Some((d, jpos));
                    }
                }
            }
        },
    );
    cs.merge(&walk);
    cs.candidates_emitted += emitted;
    cs.candidates_rejected += rejected;
    match best {
        Some((_, jpos)) => PointLabel::Border(art.summary_cluster[jpos as usize]),
        None => PointLabel::Noise,
    }
}

/// Random-projection variant of [`label_point`]: same early-outs, then
/// the nearest summary point among the RP candidates, minimizing
/// `(distance, summary position)` lexicographically. Candidates that
/// are not summary members are filtered without an evaluation and
/// charged to [`RpStats::candidates_rejected`]. Deterministic for a
/// fixed seed (the candidate set is a pure function of the index);
/// summary members the candidate set misses are a quality trade-off.
#[allow(clippy::too_many_arguments)] // mirrors label_point
fn label_point_rp<P, M: BatchMetric<P>>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    rp: &RpIndex,
    art: &ApproxArtifacts,
    summary_pos_of_point: &[u32],
    center_summary_pos: &[Option<u32>],
    p: usize,
    label_r: f64,
    cand: &mut Vec<u32>,
    rps: &mut RpStats,
) -> PointLabel {
    let pos = summary_pos_of_point[p];
    if pos != u32::MAX {
        return PointLabel::Core(art.summary_cluster[pos as usize]);
    }
    let cp = net.assignment[p] as usize;
    if let Some(pos) = center_summary_pos[cp] {
        return PointLabel::Border(art.summary_cluster[pos as usize]);
    }
    rp.candidates_for(p as u32, cand, rps);
    let mut best: Option<(f64, u32)> = None;
    for &q in cand.iter() {
        let jpos = summary_pos_of_point[q as usize];
        if jpos == u32::MAX {
            rps.candidates_rejected += 1;
            continue;
        }
        let bound = best.map_or(label_r, |(d, _)| d);
        if let Some(d) = metric.distance_leq(&points[p], &points[q as usize], bound) {
            if best.is_none_or(|(bd, bj)| d < bd || (d == bd && jpos < bj)) {
                best = Some((d, jpos));
            }
        }
    }
    match best {
        Some((_, jpos)) => PointLabel::Border(art.summary_cluster[jpos as usize]),
        None => PointLabel::Noise,
    }
}

#[cfg(test)]
mod tests {
    use crate::{approx_dbscan, exact_dbscan, ApproxParams, MetricDbscan};
    use mdbscan_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(seed: u64, per_blob: usize) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [[0.0, 0.0], [20.0, 0.0], [0.0, 20.0]];
        let mut pts = Vec::new();
        for c in centers {
            for _ in 0..per_blob {
                pts.push(vec![
                    c[0] + rng.random_range(-1.0..1.0),
                    c[1] + rng.random_range(-1.0..1.0),
                ]);
            }
        }
        for _ in 0..per_blob / 10 {
            pts.push(vec![
                rng.random_range(-100.0..100.0),
                rng.random_range(100.0..200.0),
            ]);
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let pts = blobs(5, 120);
        let c = approx_dbscan(&pts, &Euclidean, 0.8, 8, 0.5).unwrap();
        assert_eq!(c.num_clusters(), 3, "three blobs");
        // the far-away noise stays noise
        assert!(c.num_noise() >= 6);
    }

    /// Sandwich theorem (Gan–Tao): points together in exact(ε) stay
    /// together in approx; points together in approx stay together in
    /// exact((1+ρ)ε). Checked on core points (border assignment is
    /// tie-broken freely in all three).
    #[test]
    fn sandwich_property() {
        for seed in [1u64, 2, 3] {
            let pts = blobs(seed, 60);
            let eps = 0.9;
            let rho = 0.5;
            let lower = exact_dbscan(&pts, &Euclidean, eps, 6).unwrap();
            let upper = exact_dbscan(&pts, &Euclidean, (1.0 + rho) * eps, 6).unwrap();
            let mid = approx_dbscan(&pts, &Euclidean, eps, 6, rho).unwrap();
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let together_lower = lower.labels()[i].is_core()
                        && lower.labels()[j].is_core()
                        && lower.cluster_of(i) == lower.cluster_of(j);
                    let together_mid = mid.labels()[i].is_core()
                        && mid.labels()[j].is_core()
                        && mid.cluster_of(i) == mid.cluster_of(j);
                    if together_lower {
                        // exact(ε)-cores are approx-assigned (maybe as
                        // border reps); require same approx cluster.
                        assert!(
                            mid.cluster_of(i).is_some(),
                            "seed {seed}: exact core {i} unassigned in approx"
                        );
                        assert_eq!(
                            mid.cluster_of(i),
                            mid.cluster_of(j),
                            "seed {seed}: exact(ε) pair ({i},{j}) split by approx"
                        );
                    }
                    if together_mid {
                        assert_eq!(
                            upper.cluster_of(i),
                            upper.cluster_of(j),
                            "seed {seed}: approx pair ({i},{j}) split by exact((1+ρ)ε)"
                        );
                    }
                }
            }
        }
    }

    /// Every exact core point must be assigned to some approx cluster
    /// (Definition 2: each core point belongs to exactly one cluster).
    #[test]
    fn exact_cores_are_always_assigned() {
        for seed in [7u64, 8, 9] {
            let pts = blobs(seed, 50);
            let exact = exact_dbscan(&pts, &Euclidean, 1.0, 5).unwrap();
            let approx = approx_dbscan(&pts, &Euclidean, 1.0, 5, 1.0).unwrap();
            for i in 0..pts.len() {
                if exact.labels()[i].is_core() {
                    assert!(
                        approx.cluster_of(i).is_some(),
                        "seed {seed}: core {i} dropped"
                    );
                }
            }
        }
    }

    #[test]
    fn summary_is_small_on_dense_data() {
        let pts = blobs(11, 400);
        let n = pts.len();
        let params = ApproxParams::new(1.0, 10, 0.5).unwrap();
        let engine = MetricDbscan::builder(pts, Euclidean)
            .rbar(params.rbar())
            .build()
            .unwrap();
        let run = engine.approx(&params).unwrap();
        let stats = run.report.approx_stats().expect("approx run");
        assert!(
            stats.summary_size < n / 5,
            "summary {} should compress {} points",
            stats.summary_size,
            n
        );
        assert!(stats.summary_size >= 3, "at least one rep per blob");
    }

    #[test]
    fn rho_zero_rejected_rho_two_accepted() {
        let pts = blobs(1, 30);
        assert!(approx_dbscan(&pts, &Euclidean, 1.0, 5, 0.0).is_err());
        assert!(approx_dbscan(&pts, &Euclidean, 1.0, 5, 2.0).is_ok());
    }

    #[test]
    fn duplicates_and_tiny_inputs() {
        let dup = vec![vec![0.0, 0.0]; 12];
        let c = approx_dbscan(&dup, &Euclidean, 1.0, 4, 0.5).unwrap();
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.num_noise(), 0);
        let two = vec![vec![0.0], vec![100.0]];
        let c = approx_dbscan(&two, &Euclidean, 1.0, 2, 0.5).unwrap();
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.num_noise(), 2);
    }
}
