//! # Metric DBSCAN — exact, ρ-approximate, and streaming
//!
//! This crate implements the algorithms of
//!
//! > Mo, Song, Ding. *Towards Metric DBSCAN: Exact, Approximate, and
//! > Streaming Algorithms.* SIGMOD 2024.
//!
//! for density-based clustering in **general metric spaces** — the only
//! structure the algorithms use is a [`mdbscan_metric::Metric`]
//! oracle, so points may be vectors, strings under edit distance, or any
//! user type. Under the paper's standing assumption (inliers of low
//! doubling dimension `D`, up to `z` unconstrained outliers) every
//! algorithm here runs in time **linear in `n`**:
//!
//! | entry point | paper | guarantee |
//! |---|---|---|
//! | [`exact_dbscan`] / [`GonzalezIndex::exact`] | §3.1 | exact DBSCAN clusters, `O(n((Δ/ε)^D + z log(ε/δ)) t_dis)` |
//! | [`exact_dbscan_covertree`] | §3.2 | exact, `O(n log Φ · t_dis)` when the *whole* input doubles |
//! | [`approx_dbscan`] / [`GonzalezIndex::approx`] | Alg. 2 | ρ-approximate DBSCAN (Gan–Tao semantics), `O(n((Δ/ρε)^D + z) t_dis)` |
//! | [`StreamingApproxDbscan`] | Alg. 3 | 3-pass streaming ρ-approximate, memory `O((Δ/ρε)^D + z)` — independent of `n` |
//!
//! ## Parameter tuning for free (Remark 5/6)
//!
//! The expensive pre-processing — the radius-guided Gonzalez net — depends
//! only on the radius bound `r̄`, not on `(ε, MinPts)`. Build a
//! [`GonzalezIndex`] once with `r̄ ≤ ε₀/2` and solve for as many parameter
//! settings as you like; only the cheap per-query steps re-run:
//!
//! ```
//! use mdbscan_core::{DbscanParams, GonzalezIndex};
//! use mdbscan_metric::Euclidean;
//!
//! let pts: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 20) as f64, (i / 20) as f64]).collect();
//! let index = GonzalezIndex::build(&pts, &Euclidean, 0.5).unwrap();
//! for eps in [1.0, 1.5, 2.0] {
//!     let c = index.exact(&DbscanParams::new(eps, 4).unwrap()).unwrap();
//!     println!("eps={eps}: {} clusters", c.num_clusters());
//! }
//! ```
//!
//! ## Threading model
//!
//! Every hot phase is data-parallel over scoped threads, controlled by
//! one knob — [`ParallelConfig`] — which defaults to the machine's
//! available parallelism and threads through
//! [`mdbscan_kcenter::BuildOptions::parallel`] (Algorithm 1 build),
//! [`GonzalezIndex`] (stored at build time, reused by queries), and
//! [`ExactConfig::parallel`] (per-query override for the exact steps).
//!
//! What scales with cores:
//!
//! | phase | parallel over |
//! |---|---|
//! | Algorithm 1 sweep + farthest-point reduction | points |
//! | center adjacency (`A` sets) | upper-triangle center rows |
//! | Step 1 core labeling / Algorithm 2 core tests | points / centers |
//! | Step 2 fragment cover trees | fragments (weighted) |
//! | Step 2 BCP tests / summary merges | candidate pairs, batched per union-find round |
//! | Step 3 border assignment / Algorithm 2 labeling | points |
//! | streaming pass 3 | stream blocks |
//!
//! Cover-tree construction for the §3.2 variant and streaming passes
//! 1–2 are inherently sequential (each insert/arrival depends on the
//! state so far).
//!
//! **Determinism is unconditional**: chunks are contiguous in index
//! order, reductions combine per-chunk results in chunk order with ties
//! broken toward the smaller index, and batched merging only skips
//! pairs already connected — so cluster labels are bit-identical across
//! thread counts (a 1-thread and a 64-thread run agree byte for byte).
//! Only derived counters that measure *work done* (e.g.
//! [`ExactStats::bcp_tests`]) may differ.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod approx;
mod error;
mod exact;
mod exact_covertree;
mod index;
mod labels;
mod netview;
mod params;
mod parmerge;
mod steps;
mod streaming;
mod unionfind;

pub use approx::ApproxStats;
pub use error::DbscanError;
pub use exact::{ExactConfig, ExactStats};
pub use exact_covertree::{
    exact_dbscan_covertree, exact_dbscan_covertree_with, CoverTreeExactStats,
};
pub use index::GonzalezIndex;
pub use labels::{Clustering, PointLabel};
pub use mdbscan_parallel::ParallelConfig;
pub use params::{ApproxParams, DbscanParams};
pub use streaming::{StreamingApproxDbscan, StreamingFootprint, StreamingStats};
pub use unionfind::UnionFind;

use mdbscan_metric::Metric;

/// One-shot exact metric DBSCAN (§3.1): builds the `ε/2`-net with
/// Algorithm 1, then labels cores, merges via per-group cover trees, and
/// classifies borders/outliers. See [`GonzalezIndex`] to amortize the net
/// across parameter settings.
pub fn exact_dbscan<P: Sync, M: Metric<P> + Sync>(
    points: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
) -> Result<Clustering, DbscanError> {
    let params = DbscanParams::new(eps, min_pts)?;
    let index = GonzalezIndex::build(points, metric, eps / 2.0)?;
    index.exact(&params)
}

/// One-shot ρ-approximate metric DBSCAN (Algorithm 2): builds the
/// `ρε/2`-net, constructs the core-point summary `S*`, merges inside the
/// summary at threshold `(1+ρ)ε`, and labels the rest against it.
pub fn approx_dbscan<P: Sync, M: Metric<P> + Sync>(
    points: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
    rho: f64,
) -> Result<Clustering, DbscanError> {
    let params = ApproxParams::new(eps, min_pts, rho)?;
    let index = GonzalezIndex::build(points, metric, params.rbar())?;
    index.approx(&params)
}
