//! # Metric DBSCAN — exact, ρ-approximate, and streaming
//!
//! This crate implements the algorithms of
//!
//! > Mo, Song, Ding. *Towards Metric DBSCAN: Exact, Approximate, and
//! > Streaming Algorithms.* SIGMOD 2024.
//!
//! for density-based clustering in **general metric spaces** — the only
//! structure the algorithms use is a [`mdbscan_metric::Metric`]
//! oracle, so points may be vectors, strings under edit distance, or any
//! user type. Under the paper's standing assumption (inliers of low
//! doubling dimension `D`, up to `z` unconstrained outliers) every
//! algorithm here runs in time **linear in `n`**.
//!
//! ## The engine
//!
//! The primary API is [`MetricDbscan`]: an **owned, `Send + Sync`,
//! `Arc`-shareable, epoch-based engine** serving all four solvers
//! behind one surface — and able to **ingest new points while
//! serving** ([`MetricDbscan::ingest`]; each batch publishes an
//! immutable [`EngineSnapshot`] readers query lock-free, and every
//! cached artifact is keyed by epoch so stale entries are unreachable
//! by construction). Every entry point returns a [`Run`] — the
//! [`Clustering`] plus a unified [`RunReport`] with timings, solver
//! stats, and cache telemetry:
//!
//! | entry point | paper | guarantee |
//! |---|---|---|
//! | [`MetricDbscan::exact`] | §3.1 | exact DBSCAN clusters, `O(n((Δ/ε)^D + z log(ε/δ)) t_dis)` |
//! | [`MetricDbscan::covertree`] | §3.2 | exact, `O(n log Φ · t_dis)` when the *whole* input doubles |
//! | [`MetricDbscan::approx`] | Alg. 2 | ρ-approximate DBSCAN (Gan–Tao semantics), `O(n((Δ/ρε)^D + z) t_dis)` |
//! | [`MetricDbscan::streaming`] / [`MetricDbscan::streaming_session`] | Alg. 3 | 3-pass streaming ρ-approximate, memory `O((Δ/ρε)^D + z)` |
//!
//! One-shot conveniences remain for scripts: [`exact_dbscan`],
//! [`approx_dbscan`], [`exact_dbscan_covertree`], and the raw
//! [`StreamingApproxDbscan`] engine.
//!
//! ## Parameter tuning for free (Remark 5/6) — now with caching
//!
//! The expensive pre-processing — the radius-guided Gonzalez net —
//! depends only on the radius bound `r̄`, not on `(ε, MinPts, ρ)`. Build
//! the engine once with `r̄ ≤ ε₀/2` and solve for as many parameter
//! settings as you like; only the cheap per-query steps re-run. On top,
//! the engine keeps an LRU of the `(ε, MinPts)`-derived Step-2 fragment
//! cover trees, so *repeating* a setting (dashboards, A/B probes,
//! concurrent users asking the same question) skips Step 1 and all tree
//! construction — check [`RunReport::cache_hit`]:
//!
//! ```
//! use mdbscan_core::{DbscanParams, MetricDbscan};
//! use mdbscan_metric::Euclidean;
//!
//! let pts: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 20) as f64, (i / 20) as f64]).collect();
//! let engine = MetricDbscan::builder(pts, Euclidean).rbar(0.5).build().unwrap();
//! for eps in [1.0, 1.5, 2.0, 1.0] {
//!     let run = engine.exact(&DbscanParams::new(eps, 4).unwrap()).unwrap();
//!     println!(
//!         "eps={eps}: {} clusters (cache {})",
//!         run.clustering.num_clusters(),
//!         if run.report.cache_hit { "hit" } else { "miss" },
//!     );
//! }
//! assert_eq!(engine.cache_stats().hits, 1); // the repeated eps=1.0 probe
//! ```
//!
//! ## Threading model
//!
//! Every hot phase is data-parallel over scoped threads, controlled by
//! one knob — [`ParallelConfig`] — which defaults to the machine's
//! available parallelism and threads through
//! [`mdbscan_kcenter::BuildOptions::parallel`] (Algorithm 1 build),
//! [`MetricDbscanBuilder::parallel`] (stored on the engine, reused by
//! queries), and [`ExactConfig::parallel`] (per-query override for the
//! exact steps).
//!
//! What scales with cores:
//!
//! | phase | parallel over |
//! |---|---|
//! | Algorithm 1 sweep + farthest-point reduction | points |
//! | center adjacency (`A` sets) | upper-triangle center rows |
//! | Step 1 core labeling / Algorithm 2 core tests | points / centers |
//! | Step 2 fragment cover trees | fragments (weighted) |
//! | Step 2 BCP tests / summary merges | candidate pairs, batched per union-find round |
//! | Step 3 border assignment / Algorithm 2 labeling | points |
//! | streaming pass 3 | stream blocks |
//!
//! Cover-tree construction for the §3.2 variant and streaming passes
//! 1–2 are inherently sequential (each insert/arrival depends on the
//! state so far).
//!
//! **Determinism is unconditional**: chunks are contiguous in index
//! order, reductions combine per-chunk results in chunk order with ties
//! broken toward the smaller index, batched merging only skips pairs
//! already connected, and cached artifacts are deterministic functions
//! of `(net, ε, MinPts)` — so cluster labels are bit-identical across
//! thread counts, across concurrent engine queries, and across cache
//! hits vs. cold runs. Only derived counters that measure *work done*
//! (e.g. [`ExactStats::bcp_tests`]) may differ.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod approx;
mod engine;
mod error;
mod exact;
mod exact_covertree;
mod labels;
mod netview;
mod params;
mod parmerge;
mod persist;
mod steps;
mod store;
mod streaming;
mod unionfind;

pub use approx::ApproxStats;
pub use engine::{
    AlgorithmKind, CacheStats, CandidateIndex, EngineSnapshot, IngestReport, MetricDbscan,
    MetricDbscanBuilder, NetStrategy, Run, RunDetail, RunReport,
};
pub use error::DbscanError;
pub use exact::{ExactConfig, ExactStats};
pub use exact_covertree::{
    exact_dbscan_covertree, exact_dbscan_covertree_with, CoverTreeExactStats,
};
pub use labels::{Clustering, PointLabel};
pub use mdbscan_grid::CandidateStats;
pub use mdbscan_obs::{Event, MetricsRecorder, NoopRecorder, Phase, Recorder};
pub use mdbscan_parallel::ParallelConfig;
pub use mdbscan_rp::{RpConfig, RpStats};
pub use params::{ApproxParams, DbscanParams};
pub use persist::LoadStats;
pub use streaming::{StreamingApproxDbscan, StreamingFootprint, StreamingStats};
pub use unionfind::UnionFind;

use mdbscan_kcenter::{BuildOptions, RadiusGuidedNet};
use mdbscan_metric::BatchMetric;

/// One-shot exact metric DBSCAN (§3.1) over borrowed points: builds the
/// `ε/2`-net with Algorithm 1, then labels cores, merges via per-group
/// cover trees, and classifies borders/outliers. See [`MetricDbscan`] to
/// amortize the net (and the Step-2 trees) across parameter settings.
pub fn exact_dbscan<P: Sync, M: BatchMetric<P> + Sync>(
    points: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
) -> Result<Clustering, DbscanError> {
    let params = DbscanParams::new(eps, min_pts)?;
    let net = build_net(points, metric, eps / 2.0)?;
    let cfg = ExactConfig::default();
    let out = steps::run_exact_steps(
        points,
        metric,
        &netview::NetView::of(&net),
        &params,
        &cfg,
        steps::StepsReuse::default(),
    );
    Ok(Clustering::from_labels(out.labels))
}

/// One-shot ρ-approximate metric DBSCAN (Algorithm 2) over borrowed
/// points: builds the `ρε/2`-net, constructs the core-point summary `S*`,
/// merges inside the summary at threshold `(1+ρ)ε`, and labels the rest
/// against it. See [`MetricDbscan::approx`] for the engine form.
pub fn approx_dbscan<P: Sync, M: BatchMetric<P> + Sync>(
    points: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
    rho: f64,
) -> Result<Clustering, DbscanError> {
    let params = ApproxParams::new(eps, min_pts, rho)?;
    let net = build_net(points, metric, params.rbar())?;
    let out = approx::run_approx(
        points,
        metric,
        &netview::NetView::of(&net),
        &params,
        &ParallelConfig::default(),
        &mdbscan_metric::PruningConfig::default(),
        approx::ApproxReuse::default(),
    );
    Ok(Clustering::from_labels(out.labels))
}

fn build_net<P: Sync, M: BatchMetric<P> + Sync>(
    points: &[P],
    metric: &M,
    rbar: f64,
) -> Result<RadiusGuidedNet, DbscanError> {
    error::validate_points_and_rbar(points.len(), rbar)?;
    Ok(RadiusGuidedNet::build_with(
        points,
        metric,
        rbar,
        &BuildOptions::default(),
    ))
}
