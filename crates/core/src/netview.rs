//! Internal: a borrowed view of an `r̄`-net, decoupling the DBSCAN steps
//! from where the net came from (Algorithm 1 or a cover-tree level, §3.2).

use mdbscan_parallel::Csr;

/// A covering net with its Voronoi decomposition, by reference.
///
/// The cover sets are shared as flat CSR rows (offsets + values), so the
/// Step 1–3 inner loops stream one contiguous array instead of chasing a
/// `Vec` per center.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NetView<'n> {
    /// Covering radius bound: every point is within `rbar` of its center.
    pub rbar: f64,
    /// Point indices of the centers.
    pub centers: &'n [usize],
    /// Per point, the position in `centers` of its center.
    pub assignment: &'n [u32],
    /// Per center, the points assigned to it (rows partition the input).
    pub cover_sets: &'n Csr,
    /// Exact `dis(p, c_p)` per point when the net recorded it (Algorithm
    /// 1 does, for free — the greedy maintains these distances anyway).
    /// `None` for cover-tree nets, where the triangle-inequality pruning
    /// falls back to the coarser `rbar` bound.
    pub dist_to_center: Option<&'n [f64]>,
}

impl<'n> NetView<'n> {
    /// Views an Algorithm-1 net (the one place the field mapping lives).
    pub fn of(net: &'n mdbscan_kcenter::RadiusGuidedNet) -> Self {
        NetView {
            rbar: net.rbar,
            centers: &net.centers,
            assignment: &net.assignment,
            cover_sets: &net.cover_sets,
            dist_to_center: Some(&net.dist_to_center),
        }
    }

    /// The best available upper bound on `dis(p, c_p)` for point `p`:
    /// the recorded exact distance, else the covering radius.
    #[inline]
    pub fn center_dist_ub(&self, p: usize) -> f64 {
        self.dist_to_center.map_or(self.rbar, |d| d[p])
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.assignment.len()
    }

    /// Number of centers.
    pub fn num_centers(&self) -> usize {
        self.centers.len()
    }
}
