//! Clustering output types.

/// The role and cluster membership of one input point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointLabel {
    /// A core point: `|B(p, ε) ∩ X| ≥ MinPts`. Belongs to exactly one
    /// cluster.
    Core(u32),
    /// A border point: within `ε` of some core point but not core itself.
    ///
    /// Note the paper's footnote 1: a border point may be within `ε` of
    /// cores from several clusters; like every practical DBSCAN
    /// implementation we assign it to one of them (the nearest found).
    ///
    /// The ρ-approximate solvers also use `Border` for points whose
    /// individual core-ness the algorithm never certifies (points covered
    /// by a core *center*'s ball) — "assigned, not certified core".
    Border(u32),
    /// An outlier / noise point.
    Noise,
}

impl PointLabel {
    /// The cluster id, or `None` for noise.
    pub fn cluster(&self) -> Option<u32> {
        match self {
            PointLabel::Core(c) | PointLabel::Border(c) => Some(*c),
            PointLabel::Noise => None,
        }
    }

    /// True for [`PointLabel::Core`].
    pub fn is_core(&self) -> bool {
        matches!(self, PointLabel::Core(_))
    }

    /// True for [`PointLabel::Noise`].
    pub fn is_noise(&self) -> bool {
        matches!(self, PointLabel::Noise)
    }
}

/// A complete clustering of the input: one [`PointLabel`] per point, with
/// cluster ids compacted to `0..num_clusters`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    labels: Vec<PointLabel>,
    num_clusters: usize,
}

impl Clustering {
    /// Builds a clustering from raw labels, re-numbering cluster ids to the
    /// dense range `0..num_clusters` (order of first appearance).
    pub fn from_labels(raw: Vec<PointLabel>) -> Self {
        let mut remap: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut labels = raw;
        for l in labels.iter_mut() {
            let id = match l {
                PointLabel::Core(c) | PointLabel::Border(c) => c,
                PointLabel::Noise => continue,
            };
            let next = remap.len() as u32;
            *id = *remap.entry(*id).or_insert(next);
        }
        Clustering {
            num_clusters: remap.len(),
            labels,
        }
    }

    /// Per-point labels.
    pub fn labels(&self) -> &[PointLabel] {
        &self.labels
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The cluster of point `i`, or `None` for noise.
    pub fn cluster_of(&self, i: usize) -> Option<u32> {
        self.labels[i].cluster()
    }

    /// Flat assignment vector: cluster id per point, `-1` for noise — the
    /// format the evaluation metrics (ARI/AMI) and the experiment harness
    /// consume.
    pub fn assignments(&self) -> Vec<i32> {
        self.labels
            .iter()
            .map(|l| l.cluster().map_or(-1, |c| c as i32))
            .collect()
    }

    /// Count of core points.
    pub fn num_core(&self) -> usize {
        self.labels.iter().filter(|l| l.is_core()).count()
    }

    /// Count of border points.
    pub fn num_border(&self) -> usize {
        self.labels
            .iter()
            .filter(|l| matches!(l, PointLabel::Border(_)))
            .count()
    }

    /// Count of noise points.
    pub fn num_noise(&self) -> usize {
        self.labels.iter().filter(|l| l.is_noise()).count()
    }

    /// The members of each cluster, as point-index lists.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_clusters];
        for (i, l) in self.labels.iter().enumerate() {
            if let Some(c) = l.cluster() {
                out[c as usize].push(i);
            }
        }
        out
    }

    /// Iterates over `(cluster_id, members)` pairs in cluster-id order,
    /// each member list ascending by point index.
    pub fn iter_clusters(&self) -> impl Iterator<Item = (u32, Vec<usize>)> {
        self.clusters()
            .into_iter()
            .enumerate()
            .map(|(id, members)| (id as u32, members))
    }

    /// Point count per cluster, indexed by cluster id — one `O(n)` pass,
    /// no member lists materialized.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters];
        for l in &self.labels {
            if let Some(c) = l.cluster() {
                sizes[c as usize] += 1;
            }
        }
        sizes
    }

    /// True when `self` and `other` induce the same *partition of the
    /// non-noise points into clusters* and agree on which points are noise
    /// — i.e. equal up to cluster renumbering. The core/border distinction
    /// is ignored (border ties may be broken differently).
    pub fn same_partition(&self, other: &Clustering) -> bool {
        if self.len() != other.len() || self.num_clusters != other.num_clusters {
            return false;
        }
        let mut fwd: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut bwd: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (a, b) in self.labels.iter().zip(other.labels.iter()) {
            match (a.cluster(), b.cluster()) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_renumbers_in_first_appearance_order() {
        let c = Clustering::from_labels(vec![
            PointLabel::Core(7),
            PointLabel::Noise,
            PointLabel::Border(3),
            PointLabel::Core(7),
            PointLabel::Core(3),
        ]);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.assignments(), vec![0, -1, 1, 0, 1]);
        assert_eq!(c.num_core(), 3);
        assert_eq!(c.num_border(), 1);
        assert_eq!(c.num_noise(), 1);
        assert_eq!(c.cluster_of(0), Some(0));
        assert_eq!(c.cluster_of(1), None);
        assert_eq!(c.clusters(), vec![vec![0, 3], vec![2, 4]]);
        assert_eq!(c.cluster_sizes(), vec![2, 2]);
        let collected: Vec<(u32, Vec<usize>)> = c.iter_clusters().collect();
        assert_eq!(collected, vec![(0, vec![0, 3]), (1, vec![2, 4])]);
    }

    #[test]
    fn sizes_ignore_noise_and_cover_empty() {
        let c = Clustering::from_labels(vec![PointLabel::Noise, PointLabel::Noise]);
        assert!(c.cluster_sizes().is_empty());
        assert_eq!(c.iter_clusters().count(), 0);
        let c = Clustering::from_labels(vec![
            PointLabel::Core(1),
            PointLabel::Border(1),
            PointLabel::Noise,
            PointLabel::Core(1),
        ]);
        assert_eq!(c.cluster_sizes(), vec![3]);
    }

    #[test]
    fn same_partition_modulo_renaming() {
        let a = Clustering::from_labels(vec![
            PointLabel::Core(0),
            PointLabel::Core(1),
            PointLabel::Noise,
        ]);
        let b = Clustering::from_labels(vec![
            PointLabel::Border(5),
            PointLabel::Core(2),
            PointLabel::Noise,
        ]);
        assert!(a.same_partition(&b));
        let c = Clustering::from_labels(vec![
            PointLabel::Core(0),
            PointLabel::Core(0),
            PointLabel::Noise,
        ]);
        assert!(!a.same_partition(&c));
        let d = Clustering::from_labels(vec![
            PointLabel::Core(0),
            PointLabel::Core(1),
            PointLabel::Core(1),
        ]);
        assert!(!a.same_partition(&d));
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering::from_labels(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.num_clusters(), 0);
        assert!(c.clusters().is_empty());
    }

    #[test]
    fn label_helpers() {
        assert!(PointLabel::Core(1).is_core());
        assert!(!PointLabel::Border(1).is_core());
        assert!(PointLabel::Noise.is_noise());
        assert_eq!(PointLabel::Border(4).cluster(), Some(4));
        assert_eq!(PointLabel::Noise.cluster(), None);
    }
}
