//! Algorithm 3: streaming ρ-approximate DBSCAN in three passes.
//!
//! Memory: `O(|E| + |M|) = O((Δ/ρε)^D) + z` stored points — independent of
//! the stream length `n` (Theorem 4).
//!
//! * **Pass 1** — first-fit netting: a point farther than `r̄ = ρε/2` from
//!   every existing center becomes a center (so `E` is an `r̄`-packing and
//!   covers the stream); every center counts how many stream points land
//!   in its `ε`-ball — once the count reaches `MinPts` the center is a
//!   certified core point. Points within `r̄` of a not-yet-core center are
//!   parked in `M` (potential cores whose certification needs a second
//!   look). Each non-core center parks fewer than `MinPts` points, so
//!   `|M| < MinPts · |E|`.
//! * **Pass 2** — recount `|B(m, ε)|` for every `m ∈ M` over the full
//!   stream (pass 1 undercounts points that arrived *before* `m`); the
//!   certified cores join the summary `S*`. Then merge inside `S*` offline
//!   at threshold `(1+ρ)ε` (it fits in memory).
//! * **Pass 3** — label each stream point: its first-fit center, if core,
//!   hands it that cluster; otherwise the nearest summary point within
//!   `(ρ/2+1)ε` does; otherwise it is noise.
//!
//! The output satisfies the same ρ-approximate guarantees as Algorithm 2
//! (same summary argument; the net is built by first-fit instead of
//! farthest-point, which changes `E` but none of the packing/covering
//! properties the proof of Theorem 2 uses).
//!
//! # First-center anchoring
//!
//! Streaming has no Algorithm-1 net, but the same triangle-inequality
//! pruning applies with the **first center as the anchor**: every
//! stored point (center or parked candidate) records its distance to
//! `E[0]` at creation time, and each arriving stream point pays one
//! anchor evaluation `d₀ = dis(p, E[0])` (which simultaneously *is* its
//! distance test against `E[0]`). Then `|d₀ − dis(x, E[0])|` /
//! `d₀ + dis(x, E[0])` decide most `r̄`- and `ε`-threshold tests against
//! stored points without evaluating them — in all three passes and in
//! the offline merge. Labels are bit-identical with pruning on or off
//! ([`mdbscan_metric::PruningConfig`]); [`StreamingStats::pruning`]
//! carries the ledger.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mdbscan_metric::{Metric, PruneStats, PruningConfig};
use mdbscan_parallel::{par_map_range, ParallelConfig};
use mdbscan_rp::{RpIndex, RpStats};

use crate::error::DbscanError;
use crate::labels::{Clustering, PointLabel};
use crate::params::ApproxParams;
use crate::parmerge::{batch_size, union_rounds};
use crate::unionfind::UnionFind;

/// Pass-3 labeling buffers this many stream points per parallel block.
const PASS3_BLOCK: usize = 4096;

/// Memory accounting of the streaming state, in *stored points* — the
/// quantity Figure 6 of the paper plots as `(|E| + |M|)/n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingFootprint {
    /// Number of net centers `|E|`.
    pub centers: usize,
    /// Number of parked candidates `|M|` (after pass-1 pruning).
    pub parked: usize,
    /// Summary size `|S*|` (subset of the above — no extra storage).
    pub summary: usize,
}

impl StreamingFootprint {
    /// Total stored points (`|E| + |M|`; `S* ⊆ E ∪ M` costs nothing).
    pub fn stored_points(&self) -> usize {
        self.centers + self.parked
    }
}

/// Counters for one full streaming run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamingStats {
    /// Stream length observed in pass 1.
    pub n: usize,
    /// Pass-1 `M` insertions before pruning.
    pub parked_raw: usize,
    /// Summary pairs tested during the offline merge.
    pub merge_pairs_tested: u64,
    /// Seconds in pass 1 (net maintenance, `finish_pass1` included).
    /// Only populated by the [`StreamingApproxDbscan::run_indexed`]
    /// driver family; a manually driven session leaves it 0.
    pub pass1_secs: f64,
    /// Seconds in pass 2 (core validation). Driver-populated, like
    /// [`StreamingStats::pass1_secs`].
    pub pass2_secs: f64,
    /// Seconds in the offline merge (`finish_pass2`). Driver-populated.
    pub merge_secs: f64,
    /// Seconds in pass 3 (labeling). Driver-populated.
    pub pass3_secs: f64,
    /// First-center-anchored pruning ledger across all passes and the
    /// offline merge (work counters; labels are identical regardless).
    pub pruning: PruneStats,
    /// Random-projection candidate ledger, when the run carried an RP
    /// index ([`StreamingApproxDbscan::with_index`]): all zeros
    /// otherwise. Unlike pruning, RP filtering *can* change labels —
    /// deterministically for a fixed seed — by undercounting ε-balls.
    pub rp: RpStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pass1,
    Pass2,
    Pass3,
}

struct Center<P> {
    point: P,
    /// Arrival index of the stream point this center was created from
    /// (ascending across the center list — centers are created in
    /// arrival order), for RP candidate matching.
    stream_id: u32,
    /// Distance to the first center, recorded at creation (anchor).
    d_to_first: f64,
    /// Stream points seen within ε (self included).
    eps_count: usize,
    core: bool,
    /// Position of this center's summary entry, if core.
    summary_pos: u32,
}

struct Parked<P> {
    point: P,
    /// Center (by position) the point was parked under.
    center: u32,
    /// Arrival index of the parked stream point (ascending across the
    /// parked list), for RP candidate matching.
    stream_id: u32,
    /// Distance to the first center, recorded at parking time (anchor).
    d_to_first: f64,
    /// Pass-2 recount of `|B(m, ε)|`.
    eps_count: usize,
    core: bool,
    summary_pos: u32,
}

/// The streaming ρ-approximate DBSCAN engine (paper Algorithm 3).
///
/// Drive it manually — `pass1_observe* → finish_pass1 → pass2_observe* →
/// finish_pass2 → pass3_label*` — or hand a replayable stream to
/// [`StreamingApproxDbscan::run`]. The manual API is what a real
/// deployment over an external data source uses; phases are checked and
/// misuse panics.
///
/// ```
/// use mdbscan_core::{ApproxParams, StreamingApproxDbscan};
/// use mdbscan_metric::Euclidean;
///
/// let stream: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 10) as f64 * 0.1]).collect();
/// let params = ApproxParams::new(0.5, 5, 0.5).unwrap();
/// let (clustering, engine) =
///     StreamingApproxDbscan::run(&Euclidean, &params, || stream.iter().cloned()).unwrap();
/// assert_eq!(clustering.num_clusters(), 1);
/// assert!(engine.footprint().stored_points() < 100);
/// ```
pub struct StreamingApproxDbscan<'m, P, M> {
    metric: &'m M,
    params: ApproxParams,
    parallel: ParallelConfig,
    pruning: PruningConfig,
    rbar: f64,
    phase: Phase,
    centers: Vec<Center<P>>,
    parked: Vec<Parked<P>>,
    /// Cluster id per summary position, filled by `finish_pass2`.
    summary_clusters: Vec<u32>,
    /// Parked candidates not yet certified in pass 2 — when this hits
    /// zero, pass-2 observations stop paying for anchors (or any work).
    pass2_pending: usize,
    /// Pass-2 arrival counter: the replayed stream's positions, so RP
    /// candidate lookups address the same ids as pass 1.
    pass2_seen: usize,
    /// Optional random-projection candidate index over the *stream in
    /// arrival order* (see [`StreamingApproxDbscan::with_index`]).
    index: Option<Arc<RpIndex>>,
    /// Scratch candidate buffer for the sequential passes.
    rp_buf: Vec<u32>,
    stats: StreamingStats,
    // Pruning counters as relaxed atomics: pass 3 labels through `&self`
    // from many threads at once.
    p_accepts: AtomicU64,
    p_rejects: AtomicU64,
    p_anchors: AtomicU64,
    // RP candidate-generation ledger, same atomic shape (pass 3 is
    // concurrent).
    rp_projections: AtomicU64,
    rp_emitted: AtomicU64,
    rp_rejected: AtomicU64,
}

/// One stored point's threshold test `dis(x, p) ≤ bound`, decided by the
/// first-center anchor when possible. Returns the decision and whether
/// it was free.
#[inline]
#[allow(clippy::too_many_arguments)] // per-pair hot-path helper
fn anchored_within<P, M: Metric<P>>(
    metric: &M,
    stored: &P,
    stored_anchor: f64,
    p: &P,
    d0: f64,
    bound: f64,
    accepts: &AtomicU64,
    rejects: &AtomicU64,
) -> bool {
    if (d0 - stored_anchor).abs() > bound {
        rejects.fetch_add(1, Ordering::Relaxed);
        return false;
    }
    if d0 + stored_anchor <= bound {
        accepts.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    metric.within(stored, p, bound)
}

impl<'m, P: Clone + Sync, M: Metric<P> + Sync> StreamingApproxDbscan<'m, P, M> {
    /// Creates an empty engine in pass-1 state.
    pub fn new(metric: &'m M, params: &ApproxParams) -> Self {
        Self {
            metric,
            params: *params,
            parallel: ParallelConfig::default(),
            pruning: PruningConfig::default(),
            rbar: params.rbar(),
            phase: Phase::Pass1,
            centers: Vec::new(),
            parked: Vec::new(),
            summary_clusters: Vec::new(),
            pass2_pending: 0,
            pass2_seen: 0,
            index: None,
            rp_buf: Vec::new(),
            stats: StreamingStats::default(),
            p_accepts: AtomicU64::new(0),
            p_rejects: AtomicU64::new(0),
            p_anchors: AtomicU64::new(0),
            rp_projections: AtomicU64::new(0),
            rp_emitted: AtomicU64::new(0),
            rp_rejected: AtomicU64::new(0),
        }
    }

    /// Sets the thread knob for the offline summary merge and the
    /// batched pass-3 labeling. Passes 1 and 2 are inherently
    /// sequential (first-fit netting depends on arrival order); the
    /// result is identical for every thread count.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the first-center-anchored pruning policy (default: on).
    /// Labels are identical either way; only the evaluation counts in
    /// [`StreamingStats::pruning`] change.
    ///
    /// Must be called **before the first observation**: points stored
    /// while pruning is off record no anchor distance, so flipping it on
    /// mid-stream would prune against garbage anchors. Panics otherwise.
    pub fn with_pruning(mut self, pruning: PruningConfig) -> Self {
        assert!(
            self.stats.n == 0,
            "with_pruning must be called before the first observation"
        );
        self.pruning = pruning;
        self
    }

    /// Attaches a random-projection candidate index whose point ids are
    /// **stream arrival positions** (id `i` = the `i`-th observed
    /// point). The ε-counting of passes 1 and 2 and the pass-3
    /// nearest-summary scan then only examine stored points in the
    /// arriving point's candidate set; the first-fit owner scan stays
    /// exact, so net construction (and the memory bound) is unchanged.
    ///
    /// A candidate miss *undercounts* an ε-ball — fewer certified cores
    /// and labeled borders, never extra ones — so filtered runs stay
    /// deterministic for a fixed seed (a quality trade-off, not a
    /// nondeterminism source). Pass-3 positional lookups require
    /// [`StreamingApproxDbscan::pass3_label_at`]; the positionless
    /// [`StreamingApproxDbscan::pass3_label`] always scans the full
    /// summary.
    ///
    /// Must be called **before the first observation** (the sequential
    /// passes number arrivals from the start); panics otherwise.
    pub fn with_index(mut self, index: Option<Arc<RpIndex>>) -> Self {
        assert!(
            self.stats.n == 0,
            "with_index must be called before the first observation"
        );
        self.index = index;
        self
    }

    /// RP-filtered candidate lookup for stream position `sid`: fills
    /// `out` (sorted, deduped, `sid` included) and returns `true`, or
    /// returns `false` to scan everything (no index attached, or the
    /// stream ran past the index's coverage).
    fn rp_candidates(&self, sid: usize, out: &mut Vec<u32>) -> bool {
        let Some(rp) = self.index.as_deref() else {
            return false;
        };
        if sid >= rp.len() {
            return false;
        }
        let mut stats = RpStats::default();
        rp.candidates_for(sid as u32, out, &mut stats);
        self.rp_projections
            .fetch_add(stats.projections, Ordering::Relaxed);
        self.rp_emitted
            .fetch_add(stats.candidates_emitted, Ordering::Relaxed);
        self.rp_rejected
            .fetch_add(stats.candidates_rejected, Ordering::Relaxed);
        true
    }

    /// The anchor distance `dis(p, E[0])` for an incoming point, or
    /// `None` when pruning is off / no center exists yet. One metric
    /// call, counted as an anchor evaluation.
    #[inline]
    fn anchor_of(&self, p: &P) -> Option<f64> {
        if !self.pruning.enabled || self.centers.is_empty() {
            return None;
        }
        self.p_anchors.fetch_add(1, Ordering::Relaxed);
        Some(self.metric.distance(&self.centers[0].point, p))
    }

    /// Pass 1: observe one stream point (clones it only if it becomes a
    /// center or parks in `M`).
    pub fn pass1_observe(&mut self, p: &P) {
        assert_eq!(self.phase, Phase::Pass1, "pass1_observe outside pass 1");
        let sid = self.stats.n;
        self.stats.n += 1;
        let eps = self.params.eps();
        let min_pts = self.params.min_pts();
        let d0 = self.anchor_of(p);
        // First-fit netting (paper lines 3–5).
        let mut owner: Option<u32> = None;
        for (i, c) in self.centers.iter().enumerate() {
            let within = match d0 {
                // The anchor distance *is* the test against center 0.
                Some(d0) if i == 0 => d0 <= self.rbar,
                Some(d0) => anchored_within(
                    self.metric,
                    &c.point,
                    c.d_to_first,
                    p,
                    d0,
                    self.rbar,
                    &self.p_accepts,
                    &self.p_rejects,
                ),
                None => self.metric.within(&c.point, p, self.rbar),
            };
            if within {
                owner = Some(i as u32);
                break;
            }
        }
        if owner.is_none() {
            self.centers.push(Center {
                point: p.clone(),
                stream_id: sid as u32,
                d_to_first: d0.unwrap_or(0.0),
                eps_count: 0,
                core: false,
                summary_pos: u32::MAX,
            });
            owner = Some((self.centers.len() - 1) as u32);
        }
        let owner = owner.expect("owner set above");
        // ε-ball counting for every center (lines 6–12), restricted to
        // the arriving point's RP candidates when an index is attached
        // (both lists ascend in stream id — a merge join).
        let mut buf = std::mem::take(&mut self.rp_buf);
        let filtered = self.rp_candidates(sid, &mut buf);
        let mut k = 0usize;
        for (i, c) in self.centers.iter_mut().enumerate() {
            if filtered {
                while k < buf.len() && buf[k] < c.stream_id {
                    k += 1;
                }
                if k >= buf.len() {
                    break;
                }
                if buf[k] != c.stream_id {
                    continue;
                }
            }
            let within = match d0 {
                Some(d0) if i == 0 => d0 <= eps,
                Some(d0) => anchored_within(
                    self.metric,
                    &c.point,
                    c.d_to_first,
                    p,
                    d0,
                    eps,
                    &self.p_accepts,
                    &self.p_rejects,
                ),
                None => self.metric.within(&c.point, p, eps),
            };
            if within {
                c.eps_count += 1;
                if c.eps_count >= min_pts {
                    c.core = true;
                }
            }
        }
        self.rp_buf = buf;
        // Park p under its owner if that owner is not (yet) core. Centers
        // park themselves too — their own pass-1 count misses earlier
        // arrivals, so certification is finished in pass 2.
        if !self.centers[owner as usize].core {
            self.parked.push(Parked {
                point: p.clone(),
                center: owner,
                stream_id: sid as u32,
                d_to_first: d0.unwrap_or(0.0),
                eps_count: 0,
                core: false,
                summary_pos: u32::MAX,
            });
            self.stats.parked_raw += 1;
        }
    }

    /// Ends pass 1: prunes `M` entries whose center got certified core
    /// (their ball is represented by the center itself, exactly as in
    /// Algorithm 2's summary rule).
    pub fn finish_pass1(&mut self) {
        assert_eq!(self.phase, Phase::Pass1, "finish_pass1 outside pass 1");
        let centers = &self.centers;
        self.parked.retain(|m| !centers[m.center as usize].core);
        // A center parked under itself before *another* center... cannot
        // happen (first-fit: a center's owner is itself); but a parked
        // duplicate of a center point is fine — it just recounts.
        self.pass2_pending = self.parked.len();
        self.phase = Phase::Pass2;
    }

    /// Pass 2: observe one stream point, updating the `ε`-counts of parked
    /// candidates.
    pub fn pass2_observe(&mut self, p: &P) {
        assert_eq!(self.phase, Phase::Pass2, "pass2_observe outside pass 2");
        let sid = self.pass2_seen;
        self.pass2_seen += 1;
        let eps = self.params.eps();
        let min_pts = self.params.min_pts();
        // Once every parked candidate is certified, the pass is a no-op
        // per point — in particular no anchor evaluation is paid.
        if self.pass2_pending == 0 {
            return;
        }
        let d0 = self.anchor_of(p);
        // Same RP restriction as pass 1: only parked candidates in the
        // replayed point's candidate set recount it (merge join — the
        // parked list ascends in stream id, `retain` kept the order).
        let mut buf = std::mem::take(&mut self.rp_buf);
        let filtered = self.rp_candidates(sid, &mut buf);
        let mut k = 0usize;
        let mut pending = self.pass2_pending;
        for m in self.parked.iter_mut() {
            if m.eps_count >= min_pts {
                continue;
            }
            if filtered {
                while k < buf.len() && buf[k] < m.stream_id {
                    k += 1;
                }
                if k >= buf.len() {
                    break;
                }
                if buf[k] != m.stream_id {
                    continue;
                }
            }
            let within = match d0 {
                Some(d0) => anchored_within(
                    self.metric,
                    &m.point,
                    m.d_to_first,
                    p,
                    d0,
                    eps,
                    &self.p_accepts,
                    &self.p_rejects,
                ),
                None => self.metric.within(&m.point, p, eps),
            };
            if within {
                m.eps_count += 1;
                if m.eps_count >= min_pts {
                    m.core = true;
                    pending -= 1;
                }
            }
        }
        self.pass2_pending = pending;
        self.rp_buf = buf;
    }

    /// Ends pass 2: assembles the summary `S*` (core centers + certified
    /// parked cores) and merges inside it at `(1+ρ)ε`, offline in memory.
    /// Summary pairs whose first-center anchors already decide the merge
    /// threshold are unioned (or skipped) without a distance test.
    pub fn finish_pass2(&mut self) {
        assert_eq!(self.phase, Phase::Pass2, "finish_pass2 outside pass 2");
        // Collect summary points: (clone of point, slot)
        enum Slot {
            Center(usize),
            Parked(usize),
        }
        let mut slots: Vec<Slot> = Vec::new();
        for (i, c) in self.centers.iter().enumerate() {
            if c.core {
                slots.push(Slot::Center(i));
            }
        }
        for (i, m) in self.parked.iter().enumerate() {
            if m.core {
                slots.push(Slot::Parked(i));
            }
        }
        for (pos, slot) in slots.iter().enumerate() {
            match slot {
                Slot::Center(i) => self.centers[*i].summary_pos = pos as u32,
                Slot::Parked(i) => self.parked[*i].summary_pos = pos as u32,
            }
        }
        let summary_points: Vec<P> = slots
            .iter()
            .map(|s| match s {
                Slot::Center(i) => self.centers[*i].point.clone(),
                Slot::Parked(i) => self.parked[*i].point.clone(),
            })
            .collect();
        let anchors: Vec<f64> = slots
            .iter()
            .map(|s| match s {
                Slot::Center(i) => self.centers[*i].d_to_first,
                Slot::Parked(i) => self.parked[*i].d_to_first,
            })
            .collect();
        let merge_r = self.params.merge_radius();
        let s = summary_points.len();
        let threads = self.parallel.threads();
        let pruning_on = self.pruning.enabled;
        let mut uf = UnionFind::new(s);
        // Pair verdict from the anchors alone: Some(true) = free union,
        // Some(false) = free skip, None = needs a distance test. The
        // first summary slot is E[0] itself only if E[0] is core; the
        // anchors are sound bounds either way (plain triangle
        // inequality through E[0]).
        let verdict = |i: usize, j: usize| -> Option<bool> {
            if !pruning_on {
                return None;
            }
            if (anchors[i] - anchors[j]).abs() > merge_r {
                self.p_rejects.fetch_add(1, Ordering::Relaxed);
                return Some(false);
            }
            if anchors[i] + anchors[j] <= merge_r {
                self.p_accepts.fetch_add(1, Ordering::Relaxed);
                return Some(true);
            }
            None
        };
        if threads <= 1 {
            for i in 0..s {
                for j in (i + 1)..s {
                    if uf.connected(i, j) {
                        continue;
                    }
                    match verdict(i, j) {
                        Some(true) => {
                            uf.union(i, j);
                        }
                        Some(false) => {}
                        None => {
                            self.stats.merge_pairs_tested += 1;
                            if self
                                .metric
                                .within(&summary_points[i], &summary_points[j], merge_r)
                            {
                                uf.union(i, j);
                            }
                        }
                    }
                }
            }
        } else {
            // Round-batched all-pairs sweep: same candidate order,
            // parallel distance tests, identical final components.
            let batch = batch_size(threads);
            let mut i = 0usize;
            let mut j = 1usize;
            let (tested, _) = union_rounds(
                &mut uf,
                threads,
                |uf| {
                    let mut out = Vec::new();
                    while out.len() < batch && i + 1 < s {
                        if uf.root(i) != uf.root(j) {
                            match verdict(i, j) {
                                Some(true) => {
                                    uf.union(i, j);
                                }
                                Some(false) => {}
                                None => out.push((i as u32, j as u32)),
                            }
                        }
                        j += 1;
                        if j >= s {
                            i += 1;
                            j = i + 1;
                        }
                    }
                    out
                },
                |a, b| {
                    self.metric
                        .within(&summary_points[a], &summary_points[b], merge_r)
                },
            );
            self.stats.merge_pairs_tested = tested;
        }
        self.summary_clusters = uf.component_ids();
        self.phase = Phase::Pass3;
    }

    /// Pass 3: label one stream point. Replays the pass-1 first-fit rule
    /// (centers are scanned in creation order, so the owner found here is
    /// the owner from pass 1). Always scans the full summary — with an
    /// RP index attached, use [`StreamingApproxDbscan::pass3_label_at`]
    /// so the candidate lookup can address the point by its stream
    /// position.
    pub fn pass3_label(&self, p: &P) -> PointLabel {
        self.pass3_label_impl(None, p)
    }

    /// Pass 3 with the point's stream position: like
    /// [`StreamingApproxDbscan::pass3_label`], but when an RP index is
    /// attached the nearest-summary scan is restricted to position
    /// `sid`'s candidate set (the first-fit owner replay stays exact).
    /// Without an index the two entry points are identical.
    pub fn pass3_label_at(&self, sid: usize, p: &P) -> PointLabel {
        let mut cands = Vec::new();
        if self.rp_candidates(sid, &mut cands) {
            self.pass3_label_impl(Some(&cands), p)
        } else {
            self.pass3_label_impl(None, p)
        }
    }

    fn pass3_label_impl(&self, cands: Option<&[u32]>, p: &P) -> PointLabel {
        assert_eq!(self.phase, Phase::Pass3, "pass3_label before finish_pass2");
        let label_r = self.params.label_radius();
        let d0 = self.anchor_of(p);
        // First-fit owner.
        for (i, c) in self.centers.iter().enumerate() {
            let within = match d0 {
                Some(d0) if i == 0 => d0 <= self.rbar,
                Some(d0) => anchored_within(
                    self.metric,
                    &c.point,
                    c.d_to_first,
                    p,
                    d0,
                    self.rbar,
                    &self.p_accepts,
                    &self.p_rejects,
                ),
                None => self.metric.within(&c.point, p, self.rbar),
            };
            if within {
                if c.core {
                    return PointLabel::Border(self.summary_clusters[c.summary_pos as usize]);
                }
                break;
            }
        }
        // Nearest summary member within (ρ/2+1)ε. The anchored lower
        // bound skips members that provably cannot beat the current
        // best (`dis ≥ |d₀ − anchor| > bound` ⇒ the bounded evaluation
        // would reject them anyway).
        let mut best: Option<(f64, u32)> = None;
        let consider = |point: &P, anchor: f64, pos: u32, best: &mut Option<(f64, u32)>| {
            let bound = best.map_or(label_r, |(d, _)| d);
            if let Some(d0) = d0 {
                if (d0 - anchor).abs() > bound {
                    self.p_rejects.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            if let Some(d) = self.metric.distance_leq(point, p, bound) {
                if d == 0.0 {
                    // The point *is* a summary member: certified core.
                    *best = Some((-1.0, pos));
                } else if best.is_none_or(|(bd, _)| d < bd) {
                    *best = Some((d, pos));
                }
            }
        };
        match cands {
            // RP-filtered scan: the same slot order over the candidate
            // subset (merge joins — both lists ascend in stream id), so
            // the min/tie-break semantics are unchanged on the pairs
            // examined.
            Some(cands) => {
                let mut k = 0usize;
                for c in &self.centers {
                    if !c.core {
                        continue;
                    }
                    while k < cands.len() && cands[k] < c.stream_id {
                        k += 1;
                    }
                    if k >= cands.len() {
                        break;
                    }
                    if cands[k] == c.stream_id {
                        consider(&c.point, c.d_to_first, c.summary_pos, &mut best);
                    }
                }
                let mut k = 0usize;
                for m in &self.parked {
                    if !m.core {
                        continue;
                    }
                    while k < cands.len() && cands[k] < m.stream_id {
                        k += 1;
                    }
                    if k >= cands.len() {
                        break;
                    }
                    if cands[k] == m.stream_id {
                        consider(&m.point, m.d_to_first, m.summary_pos, &mut best);
                    }
                }
            }
            None => {
                for c in &self.centers {
                    if c.core {
                        consider(&c.point, c.d_to_first, c.summary_pos, &mut best);
                    }
                }
                for m in &self.parked {
                    if m.core {
                        consider(&m.point, m.d_to_first, m.summary_pos, &mut best);
                    }
                }
            }
        }
        match best {
            Some((d, pos)) if d < 0.0 => PointLabel::Core(self.summary_clusters[pos as usize]),
            Some((_, pos)) => PointLabel::Border(self.summary_clusters[pos as usize]),
            None => PointLabel::Noise,
        }
    }

    /// Current memory footprint in stored points.
    pub fn footprint(&self) -> StreamingFootprint {
        StreamingFootprint {
            centers: self.centers.len(),
            parked: self.parked.len(),
            summary: self.centers.iter().filter(|c| c.core).count()
                + self.parked.iter().filter(|m| m.core).count(),
        }
    }

    /// Run counters, the pruning and RP ledgers included.
    pub fn stats(&self) -> StreamingStats {
        let mut stats = self.stats;
        stats.pruning = PruneStats {
            bound_accepts: self.p_accepts.load(Ordering::Relaxed),
            bound_rejects: self.p_rejects.load(Ordering::Relaxed),
            anchor_evals: self.p_anchors.load(Ordering::Relaxed),
            ..PruneStats::default()
        };
        stats.rp = RpStats {
            projections: self.rp_projections.load(Ordering::Relaxed),
            candidates_emitted: self.rp_emitted.load(Ordering::Relaxed),
            candidates_rejected: self.rp_rejected.load(Ordering::Relaxed),
        };
        stats
    }

    /// Convenience driver: runs all three passes over a replayable stream
    /// (the factory is invoked three times) and returns the labels in
    /// stream order plus the engine for inspection.
    pub fn run<I: Iterator<Item = P>>(
        metric: &'m M,
        params: &ApproxParams,
        make_stream: impl Fn() -> I,
    ) -> Result<(Clustering, Self), DbscanError> {
        Self::run_with(metric, params, &ParallelConfig::default(), make_stream)
    }

    /// As [`StreamingApproxDbscan::run`], with an explicit thread knob
    /// for the offline merge and pass-3 labeling. Pass 3 buffers the
    /// stream in fixed-size blocks and labels each block in parallel —
    /// memory stays `O(summary + block)`, independent of `n`.
    pub fn run_with<I: Iterator<Item = P>>(
        metric: &'m M,
        params: &ApproxParams,
        parallel: &ParallelConfig,
        make_stream: impl Fn() -> I,
    ) -> Result<(Clustering, Self), DbscanError> {
        Self::run_pruned(
            metric,
            params,
            parallel,
            &PruningConfig::default(),
            make_stream,
        )
    }

    /// As [`StreamingApproxDbscan::run_with`], with an explicit pruning
    /// policy (labels are identical for every setting).
    pub fn run_pruned<I: Iterator<Item = P>>(
        metric: &'m M,
        params: &ApproxParams,
        parallel: &ParallelConfig,
        pruning: &PruningConfig,
        make_stream: impl Fn() -> I,
    ) -> Result<(Clustering, Self), DbscanError> {
        Self::run_indexed(metric, params, parallel, pruning, None, make_stream)
    }

    /// As [`StreamingApproxDbscan::run_pruned`], with an optional
    /// random-projection candidate index whose point ids are stream
    /// arrival positions ([`StreamingApproxDbscan::with_index`]).
    /// `None` is exactly `run_pruned`; `Some` restricts the ε-counting
    /// and nearest-summary scans to RP candidates — deterministic for a
    /// fixed seed, but an approximation (the index changes which cores
    /// get certified, not how any examined pair evaluates).
    pub fn run_indexed<I: Iterator<Item = P>>(
        metric: &'m M,
        params: &ApproxParams,
        parallel: &ParallelConfig,
        pruning: &PruningConfig,
        index: Option<Arc<RpIndex>>,
        make_stream: impl Fn() -> I,
    ) -> Result<(Clustering, Self), DbscanError> {
        let mut engine = Self::new(metric, params)
            .with_parallel(*parallel)
            .with_pruning(*pruning)
            .with_index(index);
        // Pass timings are observational only (stats fields, reported
        // via the engine recorder): the passes themselves are untouched.
        let t = Instant::now();
        for p in make_stream() {
            engine.pass1_observe(&p);
        }
        if engine.stats.n == 0 {
            return Err(DbscanError::EmptyInput);
        }
        engine.finish_pass1();
        engine.stats.pass1_secs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        for p in make_stream() {
            engine.pass2_observe(&p);
        }
        engine.stats.pass2_secs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        engine.finish_pass2();
        engine.stats.merge_secs = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let threads = parallel.threads();
        let mut labels: Vec<PointLabel> = Vec::with_capacity(engine.stats.n);
        let mut stream = make_stream();
        let mut base = 0usize;
        loop {
            let block: Vec<P> = stream.by_ref().take(PASS3_BLOCK).collect();
            if block.is_empty() {
                break;
            }
            labels.extend(par_map_range(block.len(), threads, 512, |i| {
                engine.pass3_label_at(base + i, &block[i])
            }));
            base += block.len();
        }
        engine.stats.pass3_secs = t.elapsed().as_secs_f64();
        Ok((Clustering::from_labels(labels), engine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dbscan;
    use mdbscan_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_stream(seed: u64, per_blob: usize) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for i in 0..per_blob * 2 {
            let c = if i % 2 == 0 { 0.0 } else { 30.0 };
            pts.push(vec![
                c + rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            ]);
        }
        for _ in 0..per_blob / 10 {
            pts.push(vec![rng.random_range(100.0..200.0), 500.0]);
        }
        pts
    }

    #[test]
    fn finds_blobs_with_small_memory() {
        let stream = blob_stream(3, 300);
        let params = ApproxParams::new(1.0, 10, 0.5).unwrap();
        let (c, engine) =
            StreamingApproxDbscan::run(&Euclidean, &params, || stream.iter().cloned()).unwrap();
        assert_eq!(c.num_clusters(), 2);
        assert!(c.num_noise() >= 20);
        let fp = engine.footprint();
        assert!(
            fp.stored_points() < stream.len() / 3,
            "memory {} points vs stream {}",
            fp.stored_points(),
            stream.len()
        );
        assert!(fp.summary <= fp.stored_points());
        assert_eq!(engine.stats().n, stream.len());
        // Two far-apart blobs: the anchor bounds must decide many tests.
        assert!(
            engine.stats().pruning.bound_rejects > 0,
            "anchoring never fired: {:?}",
            engine.stats().pruning
        );
    }

    /// Pruning on vs off: byte-identical labels and footprint.
    #[test]
    fn pruning_is_invisible_in_labels() {
        let stream = blob_stream(13, 150);
        let params = ApproxParams::new(1.0, 8, 0.5).unwrap();
        let (on, e_on) = StreamingApproxDbscan::run_pruned(
            &Euclidean,
            &params,
            &ParallelConfig::sequential(),
            &PruningConfig::default(),
            || stream.iter().cloned(),
        )
        .unwrap();
        let (off, e_off) = StreamingApproxDbscan::run_pruned(
            &Euclidean,
            &params,
            &ParallelConfig::sequential(),
            &PruningConfig::off(),
            || stream.iter().cloned(),
        )
        .unwrap();
        assert_eq!(on.labels(), off.labels());
        assert_eq!(e_on.footprint(), e_off.footprint());
        assert_eq!(e_off.stats().pruning, PruneStats::default());
    }

    /// Sandwich check against the exact solver (the ρ-approximate
    /// guarantee): exact(ε)-core pairs stay together; streaming pairs
    /// stay together under exact((1+ρ)ε).
    #[test]
    fn sandwich_against_exact() {
        let stream = blob_stream(5, 120);
        let eps = 1.0;
        let rho = 0.5;
        let params = ApproxParams::new(eps, 8, rho).unwrap();
        let (mid, _) =
            StreamingApproxDbscan::run(&Euclidean, &params, || stream.iter().cloned()).unwrap();
        let lower = exact_dbscan(&stream, &Euclidean, eps, 8).unwrap();
        let upper = exact_dbscan(&stream, &Euclidean, (1.0 + rho) * eps, 8).unwrap();
        for i in 0..stream.len() {
            if lower.labels()[i].is_core() {
                assert!(
                    mid.cluster_of(i).is_some(),
                    "exact core {i} unassigned by streaming"
                );
            }
        }
        for i in 0..stream.len() {
            for j in (i + 1)..stream.len() {
                let both_lower = lower.labels()[i].is_core()
                    && lower.labels()[j].is_core()
                    && lower.cluster_of(i) == lower.cluster_of(j);
                if both_lower {
                    assert_eq!(
                        mid.cluster_of(i),
                        mid.cluster_of(j),
                        "exact(ε) pair ({i},{j}) split by streaming"
                    );
                }
                let both_mid = mid.labels()[i].is_core()
                    && mid.labels()[j].is_core()
                    && mid.cluster_of(i) == mid.cluster_of(j);
                if both_mid {
                    assert_eq!(
                        upper.cluster_of(i),
                        upper.cluster_of(j),
                        "streaming pair ({i},{j}) split by exact((1+ρ)ε)"
                    );
                }
            }
        }
    }

    #[test]
    fn memory_bound_holds() {
        // |M| < MinPts * |E| and S* ⊆ E ∪ M.
        let stream = blob_stream(7, 200);
        let params = ApproxParams::new(0.8, 6, 1.0).unwrap();
        let (_, engine) =
            StreamingApproxDbscan::run(&Euclidean, &params, || stream.iter().cloned()).unwrap();
        let fp = engine.footprint();
        assert!(fp.parked < 6 * fp.centers.max(1));
    }

    #[test]
    fn empty_stream_rejected() {
        let params = ApproxParams::new(1.0, 4, 0.5).unwrap();
        let empty: Vec<Vec<f64>> = vec![];
        assert!(matches!(
            StreamingApproxDbscan::run(&Euclidean, &params, || empty.iter().cloned()),
            Err(DbscanError::EmptyInput)
        ));
    }

    #[test]
    fn single_repeated_point_is_one_cluster() {
        let stream = vec![vec![2.0, 2.0]; 50];
        let params = ApproxParams::new(1.0, 5, 0.5).unwrap();
        let (c, engine) =
            StreamingApproxDbscan::run(&Euclidean, &params, || stream.iter().cloned()).unwrap();
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.num_noise(), 0);
        assert_eq!(engine.footprint().centers, 1);
    }

    #[test]
    #[should_panic]
    fn phase_misuse_panics() {
        let params = ApproxParams::new(1.0, 4, 0.5).unwrap();
        let engine: StreamingApproxDbscan<Vec<f64>, _> =
            StreamingApproxDbscan::new(&Euclidean, &params);
        let _ = engine.pass3_label(&vec![0.0]);
    }

    #[test]
    fn labels_in_stream_order() {
        let stream = blob_stream(11, 50);
        let params = ApproxParams::new(1.0, 5, 0.5).unwrap();
        let (c, engine) =
            StreamingApproxDbscan::run(&Euclidean, &params, || stream.iter().cloned()).unwrap();
        // manual pass-3 replay gives the same labels
        for (i, p) in stream.iter().enumerate() {
            assert_eq!(c.labels()[i].cluster(), engine.pass3_label(p).cluster());
        }
    }
}
