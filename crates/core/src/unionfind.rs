//! Union-find (disjoint set union) with path halving and union by rank —
//! the merge engine behind DBSCAN Step 2 and the summary merge of
//! Algorithm 2.

/// A disjoint-set forest over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        Self {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns true when they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Representative of `x`'s set **without** path compression — usable
    /// through a shared reference, e.g. to pre-filter candidate pairs
    /// while a batch of parallel tests is in flight. Chains stay short
    /// because every mutating call goes through the halving [`UnionFind::find`].
    pub fn root(&self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Maps each element to a dense component id in `0..components`, in
    /// order of first appearance by element index.
    pub fn component_ids(&mut self) -> Vec<u32> {
        let n = self.len();
        let mut ids = vec![u32::MAX; n];
        let mut next = 0u32;
        for x in 0..n {
            let r = self.find(x);
            if ids[r] == u32::MAX {
                ids[r] = next;
                next += 1;
            }
            ids[x] = ids[r];
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(6);
        assert_eq!(uf.components(), 6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(0, 2));
        assert_eq!(uf.components(), 3);
        assert!(uf.connected(1, 3));
        assert!(!uf.connected(1, 4));
        assert_eq!(uf.len(), 6);
    }

    #[test]
    fn component_ids_are_dense_and_consistent() {
        let mut uf = UnionFind::new(5);
        uf.union(3, 4);
        uf.union(0, 4);
        let ids = uf.component_ids();
        assert_eq!(ids[0], ids[3]);
        assert_eq!(ids[3], ids[4]);
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[1], ids[2]);
        let max = *ids.iter().max().unwrap();
        assert_eq!(max as usize + 1, uf.components());
        // first-appearance order: element 0's component gets id 0
        assert_eq!(ids[0], 0);
        assert_eq!(ids[1], 1);
    }

    #[test]
    fn long_chain_flattens() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.components(), 1);
        for i in 0..n {
            assert_eq!(uf.find(i), uf.find(0));
        }
    }

    #[test]
    fn empty() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.components(), 0);
        assert!(uf.component_ids().is_empty());
    }
}
