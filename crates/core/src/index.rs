//! The reusable Gonzalez index (Remark 5/6): build the net once, solve
//! DBSCAN for many `(ε, MinPts[, ρ])` settings.

use mdbscan_kcenter::{BuildOptions, RadiusGuidedNet};
use mdbscan_metric::Metric;
use mdbscan_parallel::ParallelConfig;

use crate::approx::{run_approx, ApproxStats};
use crate::error::DbscanError;
use crate::exact::{ExactConfig, ExactStats};
use crate::labels::Clustering;
use crate::netview::NetView;
use crate::params::{ApproxParams, DbscanParams};
use crate::steps::run_exact_steps;

/// An `r̄`-net index over a borrowed point set, amortizing the expensive
/// radius-guided Gonzalez pre-processing (Algorithm 1) across queries.
///
/// Table 2 of the paper measures Algorithm 1 at 60–99 % of the total
/// exact-DBSCAN runtime; with this index that cost is paid once per
/// dataset, and each subsequent `(ε, MinPts)` probe pays only the
/// (A-set + three steps) remainder.
///
/// Constraints enforced at query time:
/// * exact queries need `r̄ ≤ ε/2`;
/// * approximate queries need `r̄ ≤ ρε/2`;
/// * the net must cover the data (no `max_centers` truncation).
pub struct GonzalezIndex<'a, P, M> {
    points: &'a [P],
    metric: &'a M,
    net: RadiusGuidedNet,
    parallel: ParallelConfig,
}

impl<'a, P: Sync, M: Metric<P> + Sync> GonzalezIndex<'a, P, M> {
    /// Runs Algorithm 1 with radius bound `rbar` and wraps the result.
    pub fn build(points: &'a [P], metric: &'a M, rbar: f64) -> Result<Self, DbscanError> {
        Self::build_with(points, metric, rbar, &BuildOptions::default())
    }

    /// As [`GonzalezIndex::build`] with explicit Gonzalez options
    /// (seed center, threads, center cap).
    pub fn build_with(
        points: &'a [P],
        metric: &'a M,
        rbar: f64,
        opts: &BuildOptions,
    ) -> Result<Self, DbscanError> {
        if points.is_empty() {
            return Err(DbscanError::EmptyInput);
        }
        if !(rbar.is_finite() && rbar > 0.0) {
            return Err(DbscanError::InvalidEpsilon(rbar));
        }
        let net = RadiusGuidedNet::build_with(points, metric, rbar, opts);
        Ok(Self {
            points,
            metric,
            net,
            parallel: opts.parallel,
        })
    }

    /// Wraps an externally built net (used by tests and by callers that
    /// already ran Algorithm 1 for other purposes).
    pub fn from_net(
        points: &'a [P],
        metric: &'a M,
        net: RadiusGuidedNet,
    ) -> Result<Self, DbscanError> {
        if points.len() != net.len() {
            return Err(DbscanError::EmptyInput);
        }
        Ok(Self {
            points,
            metric,
            net,
            parallel: ParallelConfig::default(),
        })
    }

    /// The thread-count knob queries on this index use by default
    /// (inherited from [`BuildOptions::parallel`] at build time).
    pub fn parallel(&self) -> ParallelConfig {
        self.parallel
    }

    /// The underlying net.
    pub fn net(&self) -> &RadiusGuidedNet {
        &self.net
    }

    /// The net radius `r̄`.
    pub fn rbar(&self) -> f64 {
        self.net.rbar
    }

    /// Number of net centers `|E|`.
    pub fn num_centers(&self) -> usize {
        self.net.centers.len()
    }

    /// The points the index was built over.
    pub fn points(&self) -> &'a [P] {
        self.points
    }

    fn view(&self) -> NetView<'_> {
        NetView {
            rbar: self.net.rbar,
            centers: &self.net.centers,
            assignment: &self.net.assignment,
            cover_sets: &self.net.cover_sets,
        }
    }

    fn check_usable(&self, limit: f64) -> Result<(), DbscanError> {
        if !self.net.covered {
            return Err(DbscanError::IndexNotCovering);
        }
        if self.net.rbar > limit * (1.0 + 1e-9) {
            return Err(DbscanError::IndexTooCoarse {
                rbar: self.net.rbar,
                limit,
            });
        }
        Ok(())
    }

    /// Exact metric DBSCAN (§3.1) at the given parameters, threaded per
    /// the index's [`GonzalezIndex::parallel`] config.
    pub fn exact(&self, params: &DbscanParams) -> Result<Clustering, DbscanError> {
        let cfg = ExactConfig {
            parallel: self.parallel,
            ..ExactConfig::default()
        };
        self.exact_with(params, &cfg).map(|(c, _)| c)
    }

    /// Exact DBSCAN with explicit configuration, returning phase
    /// statistics.
    pub fn exact_with(
        &self,
        params: &DbscanParams,
        cfg: &ExactConfig,
    ) -> Result<(Clustering, ExactStats), DbscanError> {
        self.check_usable(params.eps() / 2.0)?;
        let (labels, stats) = run_exact_steps(self.points, self.metric, &self.view(), params, cfg);
        Ok((Clustering::from_labels(labels), stats))
    }

    /// ρ-approximate DBSCAN (Algorithm 2) at the given parameters.
    pub fn approx(&self, params: &ApproxParams) -> Result<Clustering, DbscanError> {
        self.approx_with(params).map(|(c, _)| c)
    }

    /// ρ-approximate DBSCAN returning summary statistics.
    pub fn approx_with(
        &self,
        params: &ApproxParams,
    ) -> Result<(Clustering, ApproxStats), DbscanError> {
        self.check_usable(params.rbar())?;
        let (labels, stats) = run_approx(
            self.points,
            self.metric,
            &self.view(),
            params,
            &self.parallel,
        );
        Ok((Clustering::from_labels(labels), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn grid() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                v.push(vec![i as f64, j as f64]);
            }
        }
        v
    }

    #[test]
    fn build_validation() {
        let pts = grid();
        assert!(GonzalezIndex::build(&pts, &Euclidean, 0.5).is_ok());
        assert!(matches!(
            GonzalezIndex::<Vec<f64>, _>::build(&[], &Euclidean, 0.5),
            Err(DbscanError::EmptyInput)
        ));
        assert!(matches!(
            GonzalezIndex::build(&pts, &Euclidean, -1.0),
            Err(DbscanError::InvalidEpsilon(_))
        ));
    }

    #[test]
    fn coarse_index_rejected() {
        let pts = grid();
        let index = GonzalezIndex::build(&pts, &Euclidean, 2.0).unwrap();
        let params = DbscanParams::new(1.5, 4).unwrap();
        assert!(matches!(
            index.exact(&params),
            Err(DbscanError::IndexTooCoarse { .. })
        ));
        // but serves eps >= 4
        let params = DbscanParams::new(4.0, 4).unwrap();
        assert!(index.exact(&params).is_ok());
    }

    #[test]
    fn truncated_index_rejected() {
        let pts = grid();
        let opts = mdbscan_kcenter::BuildOptions {
            max_centers: 2,
            ..Default::default()
        };
        let index = GonzalezIndex::build_with(&pts, &Euclidean, 0.4, &opts).unwrap();
        let params = DbscanParams::new(1.0, 4).unwrap();
        assert!(matches!(
            index.exact(&params),
            Err(DbscanError::IndexNotCovering)
        ));
    }

    #[test]
    fn index_reuse_across_eps_matches_fresh_builds() {
        let pts = grid();
        let index = GonzalezIndex::build(&pts, &Euclidean, 0.5).unwrap();
        for eps in [1.0, 1.5, 2.5] {
            let params = DbscanParams::new(eps, 4).unwrap();
            let reused = index.exact(&params).unwrap();
            let fresh = crate::exact_dbscan(&pts, &Euclidean, eps, 4).unwrap();
            assert!(
                reused.same_partition(&fresh),
                "eps={eps}: reused index must match fresh build"
            );
        }
    }
}
