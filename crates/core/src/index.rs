//! The deprecated borrowed Gonzalez index (Remark 5/6), superseded by
//! the owned [`crate::MetricDbscan`] engine.

#![allow(deprecated)] // the shim keeps using itself for one release

use mdbscan_kcenter::{BuildOptions, RadiusGuidedNet};
use mdbscan_metric::BatchMetric;
use mdbscan_parallel::ParallelConfig;

use crate::approx::{run_approx, ApproxReuse, ApproxStats};
use crate::error::DbscanError;
use crate::exact::{ExactConfig, ExactStats};
use crate::labels::Clustering;
use crate::netview::NetView;
use crate::params::{ApproxParams, DbscanParams};
use crate::steps::{run_exact_steps, StepsReuse};

/// An `r̄`-net index over a **borrowed** point set, amortizing the
/// radius-guided Gonzalez pre-processing (Algorithm 1) across queries.
///
/// Deprecated in favor of [`crate::MetricDbscan`], which owns its data
/// (so it is `Send + Sync + 'static`, `Arc`-shareable across threads),
/// unifies all four solver entry points, and caches Step-2 fragment
/// trees across repeated `(ε, MinPts)` probes. This shim delegates to
/// the same internals and will be removed one release after 0.2.
///
/// Constraints enforced at query time:
/// * exact queries need `r̄ ≤ ε/2`;
/// * approximate queries need `r̄ ≤ ρε/2`;
/// * the net must cover the data (no `max_centers` truncation).
#[deprecated(
    since = "0.2.0",
    note = "use `MetricDbscan::builder(points, metric).rbar(r).build()` — \
            the owned engine is Arc-shareable and caches fragment trees"
)]
pub struct GonzalezIndex<'a, P, M> {
    points: &'a [P],
    metric: &'a M,
    net: RadiusGuidedNet,
    parallel: ParallelConfig,
}

impl<'a, P: Sync, M: BatchMetric<P> + Sync> GonzalezIndex<'a, P, M> {
    /// Runs Algorithm 1 with radius bound `rbar` and wraps the result.
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricDbscan::builder(...).rbar(r).build()`"
    )]
    pub fn build(points: &'a [P], metric: &'a M, rbar: f64) -> Result<Self, DbscanError> {
        Self::build_with(points, metric, rbar, &BuildOptions::default())
    }

    /// As [`GonzalezIndex::build`] with explicit Gonzalez options
    /// (seed center, threads, center cap).
    #[deprecated(
        since = "0.2.0",
        note = "use `MetricDbscan::builder(...)` with `.parallel()`, `.first_center()`, `.max_centers()`"
    )]
    pub fn build_with(
        points: &'a [P],
        metric: &'a M,
        rbar: f64,
        opts: &BuildOptions,
    ) -> Result<Self, DbscanError> {
        crate::error::validate_points_and_rbar(points.len(), rbar)?;
        let net = RadiusGuidedNet::build_with(points, metric, rbar, opts);
        Ok(Self {
            points,
            metric,
            net,
            parallel: opts.parallel,
        })
    }

    /// Wraps an externally built net (used by tests and by callers that
    /// already ran Algorithm 1 for other purposes).
    #[deprecated(since = "0.2.0", note = "use `MetricDbscan`")]
    pub fn from_net(
        points: &'a [P],
        metric: &'a M,
        net: RadiusGuidedNet,
    ) -> Result<Self, DbscanError> {
        if points.len() != net.len() {
            return Err(DbscanError::EmptyInput);
        }
        Ok(Self {
            points,
            metric,
            net,
            parallel: ParallelConfig::default(),
        })
    }

    /// The thread-count knob queries on this index use by default
    /// (inherited from [`BuildOptions::parallel`] at build time).
    pub fn parallel(&self) -> ParallelConfig {
        self.parallel
    }

    /// The underlying net.
    pub fn net(&self) -> &RadiusGuidedNet {
        &self.net
    }

    /// The net radius `r̄`.
    pub fn rbar(&self) -> f64 {
        self.net.rbar
    }

    /// Number of net centers `|E|`.
    pub fn num_centers(&self) -> usize {
        self.net.centers.len()
    }

    /// The points the index was built over.
    pub fn points(&self) -> &'a [P] {
        self.points
    }

    fn view(&self) -> NetView<'_> {
        NetView::of(&self.net)
    }

    fn check_usable(&self, limit: f64) -> Result<(), DbscanError> {
        if !self.net.covered {
            return Err(DbscanError::IndexNotCovering);
        }
        if self.net.rbar > limit * (1.0 + 1e-9) {
            return Err(DbscanError::IndexTooCoarse {
                rbar: self.net.rbar,
                limit,
            });
        }
        Ok(())
    }

    /// Exact metric DBSCAN (§3.1) at the given parameters, threaded per
    /// the index's [`GonzalezIndex::parallel`] config.
    #[deprecated(since = "0.2.0", note = "use `MetricDbscan::exact`")]
    pub fn exact(&self, params: &DbscanParams) -> Result<Clustering, DbscanError> {
        let cfg = ExactConfig {
            parallel: self.parallel,
            ..ExactConfig::default()
        };
        self.exact_with(params, &cfg).map(|(c, _)| c)
    }

    /// Exact DBSCAN with explicit configuration, returning phase
    /// statistics.
    #[deprecated(since = "0.2.0", note = "use `MetricDbscan::exact_with`")]
    pub fn exact_with(
        &self,
        params: &DbscanParams,
        cfg: &ExactConfig,
    ) -> Result<(Clustering, ExactStats), DbscanError> {
        self.check_usable(params.eps() / 2.0)?;
        let out = run_exact_steps(
            self.points,
            self.metric,
            &self.view(),
            params,
            cfg,
            StepsReuse::default(),
        );
        Ok((Clustering::from_labels(out.labels), out.stats))
    }

    /// ρ-approximate DBSCAN (Algorithm 2) at the given parameters.
    #[deprecated(since = "0.2.0", note = "use `MetricDbscan::approx`")]
    pub fn approx(&self, params: &ApproxParams) -> Result<Clustering, DbscanError> {
        self.approx_with(params).map(|(c, _)| c)
    }

    /// ρ-approximate DBSCAN returning summary statistics.
    #[deprecated(since = "0.2.0", note = "use `MetricDbscan::approx`")]
    pub fn approx_with(
        &self,
        params: &ApproxParams,
    ) -> Result<(Clustering, ApproxStats), DbscanError> {
        self.check_usable(params.rbar())?;
        let out = run_approx(
            self.points,
            self.metric,
            &self.view(),
            params,
            &self.parallel,
            &mdbscan_metric::PruningConfig::default(),
            ApproxReuse::default(),
        );
        Ok((Clustering::from_labels(out.labels), out.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn grid() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                v.push(vec![i as f64, j as f64]);
            }
        }
        v
    }

    #[test]
    fn build_validation() {
        let pts = grid();
        assert!(GonzalezIndex::build(&pts, &Euclidean, 0.5).is_ok());
        assert!(matches!(
            GonzalezIndex::<Vec<f64>, _>::build(&[], &Euclidean, 0.5),
            Err(DbscanError::EmptyInput)
        ));
        assert!(matches!(
            GonzalezIndex::build(&pts, &Euclidean, -1.0),
            Err(DbscanError::InvalidRadius(_))
        ));
    }

    #[test]
    fn coarse_index_rejected() {
        let pts = grid();
        let index = GonzalezIndex::build(&pts, &Euclidean, 2.0).unwrap();
        let params = DbscanParams::new(1.5, 4).unwrap();
        assert!(matches!(
            index.exact(&params),
            Err(DbscanError::IndexTooCoarse { .. })
        ));
        // but serves eps >= 4
        let params = DbscanParams::new(4.0, 4).unwrap();
        assert!(index.exact(&params).is_ok());
    }

    #[test]
    fn truncated_index_rejected() {
        let pts = grid();
        let opts = mdbscan_kcenter::BuildOptions {
            max_centers: 2,
            ..Default::default()
        };
        let index = GonzalezIndex::build_with(&pts, &Euclidean, 0.4, &opts).unwrap();
        let params = DbscanParams::new(1.0, 4).unwrap();
        assert!(matches!(
            index.exact(&params),
            Err(DbscanError::IndexNotCovering)
        ));
    }

    #[test]
    fn index_reuse_across_eps_matches_fresh_builds() {
        let pts = grid();
        let index = GonzalezIndex::build(&pts, &Euclidean, 0.5).unwrap();
        for eps in [1.0, 1.5, 2.5] {
            let params = DbscanParams::new(eps, 4).unwrap();
            let reused = index.exact(&params).unwrap();
            let fresh = crate::exact_dbscan(&pts, &Euclidean, eps, 4).unwrap();
            assert!(
                reused.same_partition(&fresh),
                "eps={eps}: reused index must match fresh build"
            );
        }
    }
}
