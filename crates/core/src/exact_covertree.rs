//! Section 3.2: exact DBSCAN when the *whole* input (outliers included)
//! has low doubling dimension.
//!
//! Instead of running Algorithm 1, build one cover tree over `X` and read
//! the `ε/2`-net off a level: the implicit level set `T_{i₀}` is a net with
//! covering radius `2^{i₀+1}` and separation `2^{i₀}`. The paper picks
//! `i₀ = ⌊log₂(ε/2)⌋`; because the standard cover-tree covering bound is
//! `2^{i+1}` (one power looser than the prose's `r`-net), we descend one
//! extra level so that the covering radius provably satisfies the
//! pipeline's `r̄ ≤ ε/2` requirement. Steps 1–3 then run unchanged, with
//! `|A_p| = O(1)` (Lemma 7) and total time `O(n log Φ · t_dis)`
//! (Theorem 1).

use std::time::Instant;

use mdbscan_covertree::CoverTree;
use mdbscan_metric::BatchMetric;
use mdbscan_parallel::Csr;

use crate::error::DbscanError;
use crate::exact::{ExactConfig, ExactStats};
use crate::labels::Clustering;
use crate::netview::NetView;
use crate::params::DbscanParams;
use crate::steps::{run_exact_steps, StepsReuse};

/// The cover-tree level the §3.2 pipeline reads its net from: covering
/// radius of level `i` is `2^{i+1}`, and the pipeline needs it `≤ ε/2`,
/// so `i₀ = ⌊log₂(ε/2)⌋ − 1` (one below the paper's prose level).
pub(crate) fn covertree_level(eps: f64) -> i32 {
    (eps / 2.0).log2().floor() as i32 - 1
}

/// Statistics of a §3.2 run.
#[derive(Debug, Clone, Copy)]
pub struct CoverTreeExactStats {
    /// Seconds building the cover tree over `X`.
    pub tree_secs: f64,
    /// Seconds extracting the net from level `i₀`.
    pub net_secs: f64,
    /// The level used.
    pub level: i32,
    /// Number of net centers.
    pub n_centers: usize,
    /// Step statistics (adjacency + Steps 1–3).
    pub steps: ExactStats,
}

/// Exact metric DBSCAN via a cover-tree-derived net (§3.2, Theorem 1).
///
/// Produces the same clusters as [`crate::exact_dbscan`] (both are exact);
/// only the pre-processing differs. Prefer this variant when the whole
/// input is known to double — e.g. no adversarial outliers — because the
/// cover tree is reusable across *all* `ε` (any level can be extracted),
/// not just `ε ≥ 2r̄`.
pub fn exact_dbscan_covertree<P: Sync, M: BatchMetric<P> + Sync>(
    points: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
) -> Result<(Clustering, CoverTreeExactStats), DbscanError> {
    exact_dbscan_covertree_with(points, metric, eps, min_pts, &ExactConfig::default())
}

/// As [`exact_dbscan_covertree`], with explicit step configuration —
/// the ablation toggles plus the [`ExactConfig::parallel`] thread knob
/// for the shared Steps 1–3. (The cover-tree construction itself is
/// sequential: inserts depend on the evolving tree.)
pub fn exact_dbscan_covertree_with<P: Sync, M: BatchMetric<P> + Sync>(
    points: &[P],
    metric: &M,
    eps: f64,
    min_pts: usize,
    cfg: &ExactConfig,
) -> Result<(Clustering, CoverTreeExactStats), DbscanError> {
    let params = DbscanParams::new(eps, min_pts)?;
    if points.is_empty() {
        return Err(DbscanError::EmptyInput);
    }
    let t = Instant::now();
    let tree = CoverTree::build(points, metric);
    let tree_secs = t.elapsed().as_secs_f64();

    let i0 = covertree_level(eps);
    let t = Instant::now();
    let net = tree.extract_net(i0);
    let net_secs = t.elapsed().as_secs_f64();
    debug_assert!(net.cover_radius <= eps / 2.0 * (1.0 + 1e-9));

    // Rebuild cover sets from the assignment (the net gives center pos per
    // point).
    let cover_sets = Csr::from_assignment(&net.assignment, net.centers.len());
    let view = NetView {
        rbar: net.cover_radius,
        centers: &net.centers,
        assignment: &net.assignment,
        cover_sets: &cover_sets,
        dist_to_center: None,
    };
    let out = run_exact_steps(points, metric, &view, &params, cfg, StepsReuse::default());
    Ok((
        Clustering::from_labels(out.labels),
        CoverTreeExactStats {
            tree_secs,
            net_secs,
            level: i0,
            n_centers: net.centers.len(),
            steps: out.stats,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dbscan;
    use mdbscan_metric::Euclidean;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn agrees_with_algorithm1_pipeline() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut pts: Vec<Vec<f64>> = Vec::new();
        for c in [[0.0, 0.0], [8.0, 8.0]] {
            for _ in 0..80 {
                pts.push(vec![
                    c[0] + rng.random_range(-1.0..1.0),
                    c[1] + rng.random_range(-1.0..1.0),
                ]);
            }
        }
        for eps in [0.6, 1.0, 1.7] {
            let via_alg1 = exact_dbscan(&pts, &Euclidean, eps, 5).unwrap();
            let (via_tree, stats) = exact_dbscan_covertree(&pts, &Euclidean, eps, 5).unwrap();
            // Both are exact: identical core partition & noise set; borders
            // may tie-break differently, so compare through the partition
            // only when cluster structure is unambiguous.
            assert_eq!(
                via_alg1.num_clusters(),
                via_tree.num_clusters(),
                "eps={eps}"
            );
            for i in 0..pts.len() {
                assert_eq!(
                    via_alg1.labels()[i].is_core(),
                    via_tree.labels()[i].is_core(),
                    "core mismatch at {i}, eps={eps}"
                );
                assert_eq!(
                    via_alg1.labels()[i].is_noise(),
                    via_tree.labels()[i].is_noise(),
                    "noise mismatch at {i}, eps={eps}"
                );
            }
            assert!(stats.n_centers > 0);
            assert!(stats.steps.n_centers == stats.n_centers);
        }
    }

    #[test]
    fn level_choice_respects_rbar_bound() {
        let pts: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 * 0.25]).collect();
        for eps in [0.3, 1.0, 3.0, 10.0] {
            let (c, stats) = exact_dbscan_covertree(&pts, &Euclidean, eps, 3).unwrap();
            assert_eq!(c.len(), 64);
            // 2^{i0+1} <= eps/2
            assert!(
                (stats.level + 1) as f64 <= (eps / 2.0).log2() + 1e-9,
                "eps={eps}: level {} too coarse",
                stats.level
            );
        }
    }

    #[test]
    fn empty_input_rejected() {
        let pts: Vec<Vec<f64>> = vec![];
        assert!(matches!(
            exact_dbscan_covertree(&pts, &Euclidean, 1.0, 3),
            Err(DbscanError::EmptyInput)
        ));
    }
}
