//! The owned, shareable metric-DBSCAN engine: one builder facade over
//! the exact (§3.1), cover-tree exact (§3.2), ρ-approximate
//! (Algorithm 2), and streaming (Algorithm 3) solvers.
//!
//! [`MetricDbscan`] owns its point set (`Arc<[P]>`) and metric, so —
//! unlike the borrowed [`crate::GonzalezIndex`] it replaces — it is
//! `Send + Sync`, lives happily inside an `Arc`, and can serve queries
//! from many request-handling threads at once. The paper's Remark 5/6
//! insight (the radius-guided Gonzalez net depends only on `r̄`, not on
//! `(ε, MinPts, ρ)`) makes this the natural unit of deployment: build
//! once, answer parameter probes forever.
//!
//! On top of the shared net the engine adds two caches, both behind one
//! mutex and both invisible in the results (cached artifacts are
//! deterministic functions of the net and the query parameters, so a hit
//! returns **bit-identical labels** to a cold run):
//!
//! * a **fragment LRU** keyed by `(pipeline, ε, MinPts)` holding the
//!   Step-1 core flags, the Step-2 fragment partition, and the fragment
//!   cover trees as borrow-free skeletons — repeated parameter probes
//!   skip Step 1 and all tree construction;
//! * the **whole-input cover tree** of the §3.2 pipeline, built lazily on
//!   the first [`MetricDbscan::covertree`] call and reused for every
//!   `ε` thereafter (any level can be extracted from one tree).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mdbscan_covertree::{CoverTree, CoverTreeSkeleton};
use mdbscan_kcenter::{BuildOptions, CenterAdjacency, RadiusGuidedNet};
use mdbscan_metric::{BatchMetric, PruneStats, PruningConfig};
use mdbscan_parallel::{Csr, ParallelConfig};

use crate::approx::{approx_threshold, run_approx, ApproxArtifacts, ApproxReuse, ApproxStats};
use crate::error::DbscanError;
use crate::exact::{ExactConfig, ExactStats};
use crate::exact_covertree::{covertree_level, CoverTreeExactStats};
use crate::labels::Clustering;
use crate::netview::NetView;
use crate::params::{ApproxParams, DbscanParams};
use crate::steps::{run_exact_steps, StepArtifacts, StepsReuse};
use crate::streaming::{StreamingApproxDbscan, StreamingFootprint, StreamingStats};

/// Default number of fragment-artifact entries the engine retains.
const DEFAULT_CACHE_CAPACITY: usize = 16;

/// Entries the `ε`-keyed center-adjacency cache retains. The adjacency
/// depends on `ε` only (not `MinPts`), so `(ε, MinPts)` sweeps share one
/// entry per `ε` value; a handful covers any realistic sweep.
const ADJACENCY_CACHE_CAPACITY: usize = 8;

/// Which solver produced a [`Run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Exact DBSCAN over the engine's Gonzalez net (§3.1).
    Exact,
    /// ρ-approximate DBSCAN, Algorithm 2.
    Approx,
    /// Exact DBSCAN over a cover-tree-derived net (§3.2).
    CoverTree,
    /// Three-pass streaming ρ-approximate DBSCAN, Algorithm 3.
    Streaming,
}

/// Solver-specific statistics inside a [`RunReport`].
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub enum RunDetail {
    /// Phase stats of the §3.1 exact pipeline.
    Exact(ExactStats),
    /// Summary/merge stats of Algorithm 2.
    Approx(ApproxStats),
    /// Tree + phase stats of the §3.2 pipeline.
    CoverTree(CoverTreeExactStats),
    /// Pass counters and the memory footprint of Algorithm 3.
    Streaming {
        /// Stream-pass counters.
        stats: StreamingStats,
        /// Stored points at the end of the run (`|E| + |M|`).
        footprint: StreamingFootprint,
    },
}

/// The unified per-run report every engine entry point returns,
/// subsuming the per-solver stats structs.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct RunReport {
    /// Which solver ran.
    pub algorithm: AlgorithmKind,
    /// Wall-clock seconds for the whole query (cache lookups included,
    /// engine construction excluded).
    pub total_secs: f64,
    /// True when this run reused at least one cached artifact (fragment
    /// trees, the approx summary, and/or the whole-input cover tree; the
    /// `ε`-keyed adjacency cache is reported separately in
    /// [`CacheStats`]).
    pub cache_hit: bool,
    /// Engine-lifetime cache hits, sampled after this run.
    pub cache_hits: u64,
    /// Engine-lifetime cache misses, sampled after this run.
    pub cache_misses: u64,
    /// Triangle-inequality pruning ledger of this run: pairs accepted /
    /// rejected by the net-anchored bounds without a distance
    /// evaluation, and the anchor evaluations paid for them
    /// ([`PruneStats::distance_evals_saved`] nets the two). Always
    /// collected; all zeros when the engine was built with
    /// [`MetricDbscanBuilder::pruning`] off.
    pub pruning: PruneStats,
    /// Solver-specific statistics.
    pub detail: RunDetail,
}

impl RunReport {
    /// The exact-pipeline stats, when this was an exact or cover-tree run.
    pub fn exact_stats(&self) -> Option<&ExactStats> {
        match &self.detail {
            RunDetail::Exact(s) => Some(s),
            RunDetail::CoverTree(s) => Some(&s.steps),
            _ => None,
        }
    }

    /// The Algorithm-2 stats, when this was an approximate run.
    pub fn approx_stats(&self) -> Option<&ApproxStats> {
        match &self.detail {
            RunDetail::Approx(s) => Some(s),
            _ => None,
        }
    }

    /// The streaming footprint, when this was a streaming run.
    pub fn streaming_footprint(&self) -> Option<StreamingFootprint> {
        match &self.detail {
            RunDetail::Streaming { footprint, .. } => Some(*footprint),
            _ => None,
        }
    }
}

/// One engine query: the clustering plus its [`RunReport`].
#[derive(Debug, Clone)]
pub struct Run {
    /// The cluster labels.
    pub clustering: Clustering,
    /// Timings, counters, and cache telemetry of this query.
    pub report: RunReport,
}

impl Run {
    /// Drops the report, keeping only the clustering.
    pub fn into_clustering(self) -> Clustering {
        self.clustering
    }
}

/// A snapshot of the engine's cache counters
/// ([`MetricDbscan::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a reusable artifact (fragment/summary LRU).
    pub hits: u64,
    /// Lookups that had to compute from scratch (fragment/summary LRU).
    pub misses: u64,
    /// Fragment/summary-artifact entries currently retained.
    pub entries: usize,
    /// Whether the whole-input cover tree has been built and retained.
    pub covertree_cached: bool,
    /// Lookups that found a cached `ε`-keyed center adjacency.
    pub adjacency_hits: u64,
    /// Adjacency lookups that had to rebuild.
    pub adjacency_misses: u64,
    /// Center-adjacency entries currently retained.
    pub adjacency_entries: usize,
}

/// Which pipeline a cached fragment partition belongs to. The §3.1 and
/// §3.2 pipelines derive different nets, so their artifacts must never
/// collide even at equal `(ε, MinPts)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetKind {
    Gonzalez,
    CoverTree,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheKey {
    kind: NetKind,
    eps_bits: u64,
    min_pts: usize,
    /// `Some(ρ bits)` for Algorithm-2 summaries, `None` for the exact
    /// pipelines — the two artifact families never collide even at equal
    /// `(ε, MinPts)`.
    rho_bits: Option<u64>,
}

/// A cached per-parameter artifact: the exact pipelines store Step-1/2
/// outputs, the approximate pipeline its merged summary.
enum CachedArtifacts {
    Steps(Arc<StepArtifacts>),
    Approx(Arc<ApproxArtifacts>),
}

impl CachedArtifacts {
    fn heap_bytes(&self) -> usize {
        match self {
            CachedArtifacts::Steps(a) => a.heap_bytes(),
            CachedArtifacts::Approx(a) => a.heap_bytes(),
        }
    }
}

/// A tiny exact-scan most-recent-first LRU: the working set is a
/// handful of parameter probes, so a `Vec` scanned linearly beats any
/// hash scheme. Shared by the fragment/summary cache and the adjacency
/// cache; capacity 0 disables insertion entirely.
struct Lru<K, V> {
    capacity: usize,
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Lru<K, V> {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Looks up `key`, promoting a hit to most-recent.
    fn promote(&mut self, key: &K) -> Option<&V> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(&self.entries[0].1)
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.entries.retain(|(k, _)| k != &key);
        self.entries.insert(0, (key, value));
        self.entries.truncate(self.capacity);
    }
}

/// The fragment/summary artifact cache, with typed accessors over the
/// shared [`Lru`].
type FragmentLru = Lru<CacheKey, CachedArtifacts>;

impl FragmentLru {
    fn get_steps(&mut self, key: &CacheKey) -> Option<Arc<StepArtifacts>> {
        match self.promote(key)? {
            CachedArtifacts::Steps(a) => Some(Arc::clone(a)),
            CachedArtifacts::Approx(_) => None,
        }
    }

    fn get_approx(&mut self, key: &CacheKey) -> Option<Arc<ApproxArtifacts>> {
        match self.promote(key)? {
            CachedArtifacts::Approx(a) => Some(Arc::clone(a)),
            CachedArtifacts::Steps(_) => None,
        }
    }

    /// Total heap bytes retained (diagnostic).
    fn heap_bytes(&self) -> usize {
        self.entries.iter().map(|(_, a)| a.heap_bytes()).sum()
    }
}

/// Key of the `ε`-only center-adjacency cache: the adjacency is a pure
/// function of (net, threshold, screening mode) — `MinPts` and `ρ`
/// never enter. Cover-tree nets differ per level, so the level joins
/// the key there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AdjKey {
    kind: NetKind,
    level: i32,
    threshold_bits: u64,
    /// The per-edge bounds differ between screened and unscreened
    /// builds (membership does not), so the two never share an entry.
    pruned: bool,
}

struct EngineCache {
    fragments: FragmentLru,
    adjacency: Lru<AdjKey, Arc<CenterAdjacency>>,
    covertree: Option<Arc<CoverTreeSkeleton>>,
}

/// Builder for [`MetricDbscan`]; see [`MetricDbscan::builder`].
pub struct MetricDbscanBuilder<P, M> {
    points: Arc<[P]>,
    metric: M,
    rbar: Option<f64>,
    first: usize,
    max_centers: usize,
    parallel: Option<ParallelConfig>,
    pruning: PruningConfig,
    cache_capacity: usize,
}

impl<P: Sync, M: BatchMetric<P>> MetricDbscanBuilder<P, M> {
    /// The net radius `r̄` for the Algorithm-1 preprocessing.
    /// **Required.** Exact queries need `r̄ ≤ ε/2`; ρ-approximate queries
    /// need `r̄ ≤ ρε/2` — pick the bound for the finest parameters you
    /// intend to probe.
    pub fn rbar(mut self, rbar: f64) -> Self {
        self.rbar = Some(rbar);
        self
    }

    /// Worker threads for the build and for every query that does not
    /// override them ([`ExactConfig::parallel`]). Defaults to the
    /// machine's available parallelism.
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// Index of the arbitrary first Gonzalez center (paper line 1).
    /// Defaults to 0.
    pub fn first_center(mut self, first: usize) -> Self {
        self.first = first;
        self
    }

    /// Hard cap on `|E|` — a safety valve for adversarial inputs; a
    /// truncated net rejects queries with
    /// [`DbscanError::IndexNotCovering`]. Defaults to unlimited.
    pub fn max_centers(mut self, max_centers: usize) -> Self {
        self.max_centers = max_centers;
        self
    }

    /// Number of `(ε, MinPts)` fragment-artifact entries the engine
    /// retains (default 16); `0` disables caching entirely (the
    /// `ε`-keyed adjacency cache included).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Net-anchored triangle-inequality pruning policy for every query
    /// this engine serves (default: on). Pruning skips distance
    /// evaluations whose outcome the net's recorded distances already
    /// decide — cluster labels are **bit-identical** with it on or off;
    /// only [`RunReport::pruning`] and the evaluation counts change.
    pub fn pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = pruning;
        self
    }

    /// Validates the configuration and runs Algorithm 1.
    ///
    /// Errors: [`DbscanError::EmptyInput`], [`DbscanError::RadiusNotSet`],
    /// [`DbscanError::InvalidRadius`], [`DbscanError::InvalidFirstCenter`].
    pub fn build(self) -> Result<MetricDbscan<P, M>, DbscanError> {
        let rbar = self.rbar.ok_or(DbscanError::RadiusNotSet)?;
        crate::error::validate_points_and_rbar(self.points.len(), rbar)?;
        if self.first >= self.points.len() {
            return Err(DbscanError::InvalidFirstCenter {
                first: self.first,
                len: self.points.len(),
            });
        }
        let parallel = self.parallel.unwrap_or_default();
        let opts = BuildOptions {
            first: self.first,
            parallel,
            max_centers: self.max_centers,
        };
        let net = RadiusGuidedNet::build_with(&self.points, &self.metric, rbar, &opts);
        let adj_capacity = if self.cache_capacity == 0 {
            0
        } else {
            ADJACENCY_CACHE_CAPACITY
        };
        Ok(MetricDbscan {
            points: self.points,
            metric: self.metric,
            net,
            parallel,
            pruning: self.pruning,
            cache: Mutex::new(EngineCache {
                fragments: Lru::new(self.cache_capacity),
                adjacency: Lru::new(adj_capacity),
                covertree: None,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            adj_hits: AtomicU64::new(0),
            adj_misses: AtomicU64::new(0),
        })
    }
}

/// An owned, `Send + Sync` metric-DBSCAN engine: the radius-guided
/// Gonzalez net (Algorithm 1) plus its point set and metric, queryable
/// concurrently from many threads, with cached per-parameter artifacts.
///
/// Built via [`MetricDbscan::builder`]; supersedes the lifetime-bound
/// [`crate::GonzalezIndex`]. Four entry points share the one net and
/// return a uniform [`Run`]:
///
/// * [`MetricDbscan::exact`] — exact DBSCAN, §3.1 (needs `r̄ ≤ ε/2`);
/// * [`MetricDbscan::approx`] — ρ-approximate, Algorithm 2
///   (needs `r̄ ≤ ρε/2`);
/// * [`MetricDbscan::covertree`] — exact via a cover-tree net, §3.2
///   (independent of `r̄`; the tree is built once and reused);
/// * [`MetricDbscan::streaming`] — Algorithm 3 replayed over the owned
///   points; [`MetricDbscan::streaming_session`] opens a manual session
///   for external streams.
///
/// # Concurrency and determinism
///
/// All query methods take `&self`; an `Arc<MetricDbscan<_, _>>` can be
/// cloned into any number of worker threads. Labels are **bit-identical**
/// across thread counts, across concurrent interleavings, and across
/// cache hits vs. cold runs — cached artifacts are deterministic
/// functions of `(net, ε, MinPts)`, so reuse changes wall-clock only.
///
/// ```
/// use mdbscan_core::{DbscanParams, MetricDbscan};
/// use mdbscan_metric::Euclidean;
/// use std::sync::Arc;
///
/// let pts: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 20) as f64, (i / 20) as f64]).collect();
/// let engine = Arc::new(
///     MetricDbscan::builder(pts, Euclidean).rbar(0.5).build().unwrap(),
/// );
/// let shared = Arc::clone(&engine);
/// let handle = std::thread::spawn(move || {
///     shared.exact(&DbscanParams::new(1.0, 4).unwrap()).unwrap()
/// });
/// let here = engine.exact(&DbscanParams::new(1.0, 4).unwrap()).unwrap();
/// let there = handle.join().unwrap();
/// assert_eq!(here.clustering, there.clustering);
/// // With the artifacts now resident, a repeat probe replays the cache.
/// let again = engine.exact(&DbscanParams::new(1.0, 4).unwrap()).unwrap();
/// assert!(again.report.cache_hit);
/// ```
pub struct MetricDbscan<P, M> {
    points: Arc<[P]>,
    metric: M,
    net: RadiusGuidedNet,
    parallel: ParallelConfig,
    pruning: PruningConfig,
    cache: Mutex<EngineCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    adj_hits: AtomicU64,
    adj_misses: AtomicU64,
}

impl<P: Sync, M: BatchMetric<P>> MetricDbscan<P, M> {
    /// Starts a builder over an owned point set (a `Vec<P>`, an
    /// `Arc<[P]>`, or anything converting into one) and an owned metric.
    /// A borrowed metric works too: `&M` implements
    /// [`mdbscan_metric::Metric`]/[`BatchMetric`] whenever `M` does.
    pub fn builder(points: impl Into<Arc<[P]>>, metric: M) -> MetricDbscanBuilder<P, M> {
        MetricDbscanBuilder {
            points: points.into(),
            metric,
            rbar: None,
            first: 0,
            max_centers: usize::MAX,
            parallel: None,
            pruning: PruningConfig::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }

    /// The points the engine owns.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// A cheap handle to the owned point set (shared, not copied).
    pub fn points_arc(&self) -> Arc<[P]> {
        Arc::clone(&self.points)
    }

    /// The metric the engine owns.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The underlying radius-guided Gonzalez net.
    pub fn net(&self) -> &RadiusGuidedNet {
        &self.net
    }

    /// The net radius `r̄`.
    pub fn rbar(&self) -> f64 {
        self.net.rbar
    }

    /// Number of net centers `|E|`.
    pub fn num_centers(&self) -> usize {
        self.net.centers.len()
    }

    /// The default thread knob (set at build time).
    pub fn parallel(&self) -> ParallelConfig {
        self.parallel
    }

    /// The default pruning policy (set at build time).
    pub fn pruning(&self) -> PruningConfig {
        self.pruning
    }

    /// Snapshot of the cache counters and occupancy.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().expect("engine cache poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: cache.fragments.entries.len(),
            covertree_cached: cache.covertree.is_some(),
            adjacency_hits: self.adj_hits.load(Ordering::Relaxed),
            adjacency_misses: self.adj_misses.load(Ordering::Relaxed),
            adjacency_entries: cache.adjacency.entries.len(),
        }
    }

    /// Approximate heap bytes held by the fragment cache (diagnostic,
    /// for capacity tuning).
    pub fn cache_heap_bytes(&self) -> usize {
        self.cache
            .lock()
            .expect("engine cache poisoned")
            .fragments
            .heap_bytes()
    }

    /// Drops every cached artifact (fragment/summary entries, cached
    /// adjacencies, and the whole-input cover tree). Counters are
    /// preserved.
    pub fn clear_cache(&self) {
        let mut cache = self.cache.lock().expect("engine cache poisoned");
        cache.fragments.entries.clear();
        cache.adjacency.entries.clear();
        cache.covertree = None;
    }

    fn view(&self) -> NetView<'_> {
        NetView::of(&self.net)
    }

    fn check_usable(&self, limit: f64) -> Result<(), DbscanError> {
        if !self.net.covered {
            return Err(DbscanError::IndexNotCovering);
        }
        if self.net.rbar > limit * (1.0 + 1e-9) {
            return Err(DbscanError::IndexTooCoarse {
                rbar: self.net.rbar,
                limit,
            });
        }
        Ok(())
    }

    fn count_lookup(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn report(
        &self,
        algorithm: AlgorithmKind,
        t0: Instant,
        hit: bool,
        pruning: PruneStats,
        detail: RunDetail,
    ) -> RunReport {
        RunReport {
            algorithm,
            total_secs: t0.elapsed().as_secs_f64(),
            cache_hit: hit,
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            pruning,
            detail,
        }
    }

    /// Consults the `ε`-keyed adjacency cache; `None` means "build it"
    /// (and hand it back via [`MetricDbscan::store_adjacency`]).
    fn lookup_adjacency(
        &self,
        kind: NetKind,
        level: i32,
        threshold: f64,
        pruned: bool,
    ) -> (AdjKey, Option<Arc<CenterAdjacency>>) {
        let key = AdjKey {
            kind,
            level,
            threshold_bits: threshold.to_bits(),
            pruned,
        };
        let found = self
            .cache
            .lock()
            .expect("engine cache poisoned")
            .adjacency
            .promote(&key)
            .map(Arc::clone);
        if found.is_some() {
            self.adj_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.adj_misses.fetch_add(1, Ordering::Relaxed);
        }
        (key, found)
    }

    fn store_adjacency(&self, key: AdjKey, adjacency: &Arc<CenterAdjacency>) {
        self.cache
            .lock()
            .expect("engine cache poisoned")
            .adjacency
            .insert(key, Arc::clone(adjacency));
    }

    /// Shared Steps-1–3 driver with fragment- and adjacency-cache
    /// consultation.
    fn run_steps_cached(
        &self,
        view: &NetView<'_>,
        params: &DbscanParams,
        cfg: &ExactConfig,
        kind: NetKind,
        level: i32,
    ) -> (Clustering, ExactStats, bool) {
        // Only the default Step-1/2 shape is cacheable: the ablation
        // toggles change what the artifacts contain.
        let cacheable = cfg.dense_shortcut && cfg.cover_tree_merge;
        let key = CacheKey {
            kind,
            eps_bits: params.eps().to_bits(),
            min_pts: params.min_pts(),
            rho_bits: None,
        };
        let cached: Option<Arc<StepArtifacts>> = if cacheable {
            let found = self
                .cache
                .lock()
                .expect("engine cache poisoned")
                .fragments
                .get_steps(&key);
            self.count_lookup(found.is_some());
            found
        } else {
            None
        };
        let hit = cached.is_some();
        let threshold = 2.0 * view.rbar + params.eps();
        let (adj_key, adj_cached) =
            self.lookup_adjacency(kind, level, threshold, cfg.pruning.enabled);
        let adj_was_cached = adj_cached.is_some();
        let outcome = run_exact_steps(
            &self.points,
            &self.metric,
            view,
            params,
            cfg,
            StepsReuse {
                artifacts: cached.as_deref(),
                adjacency: adj_cached,
            },
        );
        if !adj_was_cached {
            self.store_adjacency(adj_key, &outcome.adjacency);
        }
        if cacheable {
            if let Some(artifacts) = outcome.fresh_artifacts {
                self.cache
                    .lock()
                    .expect("engine cache poisoned")
                    .fragments
                    .insert(key, CachedArtifacts::Steps(Arc::new(artifacts)));
            }
        }
        (Clustering::from_labels(outcome.labels), outcome.stats, hit)
    }

    /// Exact metric DBSCAN (§3.1) at the given parameters, with the
    /// engine's default configuration. Requires `r̄ ≤ ε/2`.
    pub fn exact(&self, params: &DbscanParams) -> Result<Run, DbscanError> {
        let cfg = ExactConfig {
            parallel: self.parallel,
            pruning: self.pruning,
            ..ExactConfig::default()
        };
        self.exact_with(params, &cfg)
    }

    /// Exact metric DBSCAN with explicit configuration (ablation toggles,
    /// pruning override, per-query thread override, distance counting).
    pub fn exact_with(&self, params: &DbscanParams, cfg: &ExactConfig) -> Result<Run, DbscanError> {
        let t0 = Instant::now();
        self.check_usable(params.eps() / 2.0)?;
        let (clustering, stats, hit) =
            self.run_steps_cached(&self.view(), params, cfg, NetKind::Gonzalez, 0);
        let report = self.report(
            AlgorithmKind::Exact,
            t0,
            hit,
            stats.pruning,
            RunDetail::Exact(stats),
        );
        Ok(Run { clustering, report })
    }

    /// ρ-approximate DBSCAN (Algorithm 2). Requires `r̄ ≤ ρε/2`.
    ///
    /// Repeated probes at the same `(ε, MinPts, ρ)` replay the merged
    /// summary from the artifact LRU (bit-identical labels, the summary
    /// construction and merge skipped); the `ε`-keyed adjacency cache is
    /// shared with the exact pipeline's entries at matching thresholds.
    pub fn approx(&self, params: &ApproxParams) -> Result<Run, DbscanError> {
        let t0 = Instant::now();
        self.check_usable(params.rbar())?;
        let view = self.view();
        let key = CacheKey {
            kind: NetKind::Gonzalez,
            eps_bits: params.eps().to_bits(),
            min_pts: params.min_pts(),
            rho_bits: Some(params.rho().to_bits()),
        };
        let cached: Option<Arc<ApproxArtifacts>> = {
            let found = self
                .cache
                .lock()
                .expect("engine cache poisoned")
                .fragments
                .get_approx(&key);
            self.count_lookup(found.is_some());
            found
        };
        let hit = cached.is_some();
        let threshold = approx_threshold(view.rbar, params);
        let (adj_key, adj_cached) =
            self.lookup_adjacency(NetKind::Gonzalez, 0, threshold, self.pruning.enabled);
        let adj_was_cached = adj_cached.is_some();
        let outcome = run_approx(
            &self.points,
            &self.metric,
            &view,
            params,
            &self.parallel,
            &self.pruning,
            ApproxReuse {
                artifacts: cached.as_deref(),
                adjacency: adj_cached,
            },
        );
        if !adj_was_cached {
            self.store_adjacency(adj_key, &outcome.adjacency);
        }
        if let Some(artifacts) = outcome.fresh_artifacts {
            self.cache
                .lock()
                .expect("engine cache poisoned")
                .fragments
                .insert(key, CachedArtifacts::Approx(Arc::new(artifacts)));
        }
        let report = self.report(
            AlgorithmKind::Approx,
            t0,
            hit,
            outcome.stats.pruning,
            RunDetail::Approx(outcome.stats),
        );
        Ok(Run {
            clustering: Clustering::from_labels(outcome.labels),
            report,
        })
    }

    /// Exact DBSCAN via a cover-tree-derived net (§3.2, Theorem 1), with
    /// the engine's default configuration.
    ///
    /// Unlike [`MetricDbscan::exact`] this path does not depend on `r̄`:
    /// the whole-input cover tree is built lazily on the first call
    /// (sequentially — inserts depend on the evolving tree) and cached on
    /// the engine, after which **any** `ε` extracts its net from the same
    /// tree with zero further distance evaluations.
    pub fn covertree(&self, params: &DbscanParams) -> Result<Run, DbscanError> {
        let cfg = ExactConfig {
            parallel: self.parallel,
            pruning: self.pruning,
            ..ExactConfig::default()
        };
        self.covertree_with(params, &cfg)
    }

    /// As [`MetricDbscan::covertree`], with explicit configuration.
    pub fn covertree_with(
        &self,
        params: &DbscanParams,
        cfg: &ExactConfig,
    ) -> Result<Run, DbscanError> {
        let t0 = Instant::now();
        let t = Instant::now();
        let (skeleton, tree_hit) = {
            let cached = self
                .cache
                .lock()
                .expect("engine cache poisoned")
                .covertree
                .clone();
            match cached {
                Some(s) => (s, true),
                None => {
                    // Build outside the lock so concurrent exact/approx
                    // queries are not stalled behind the sequential
                    // construction; if two threads race, both build the
                    // same (deterministic) tree and the first insertion
                    // wins.
                    let tree = CoverTree::build(&self.points, &self.metric);
                    let built = Arc::new(tree.into_skeleton());
                    let mut cache = self.cache.lock().expect("engine cache poisoned");
                    let kept = cache
                        .covertree
                        .get_or_insert_with(|| Arc::clone(&built))
                        .clone();
                    (kept, false)
                }
            }
        };
        self.count_lookup(tree_hit);
        let tree = CoverTree::from_skeleton(&self.points, &self.metric, (*skeleton).clone());
        let tree_secs = t.elapsed().as_secs_f64();

        let level = covertree_level(params.eps());
        let t = Instant::now();
        let net = tree.extract_net(level);
        let net_secs = t.elapsed().as_secs_f64();
        debug_assert!(net.cover_radius <= params.eps() / 2.0 * (1.0 + 1e-9));
        let cover_sets = Csr::from_assignment(&net.assignment, net.centers.len());
        let view = NetView {
            rbar: net.cover_radius,
            centers: &net.centers,
            assignment: &net.assignment,
            cover_sets: &cover_sets,
            dist_to_center: None,
        };
        let (clustering, steps, frag_hit) =
            self.run_steps_cached(&view, params, cfg, NetKind::CoverTree, level);
        let detail = RunDetail::CoverTree(CoverTreeExactStats {
            tree_secs,
            net_secs,
            level,
            n_centers: net.centers.len(),
            steps,
        });
        let report = self.report(
            AlgorithmKind::CoverTree,
            t0,
            tree_hit || frag_hit,
            steps.pruning,
            detail,
        );
        Ok(Run { clustering, report })
    }
}

impl<P: Clone + Sync, M: BatchMetric<P>> MetricDbscan<P, M> {
    /// Streaming ρ-approximate DBSCAN (Algorithm 3) replayed over the
    /// engine's own points — three in-memory passes with the same
    /// validation and labeling semantics a true stream would see. Useful
    /// for cross-checking a deployment's streaming parameters against a
    /// held dataset; for unbounded external streams use
    /// [`MetricDbscan::streaming_session`].
    pub fn streaming(&self, params: &ApproxParams) -> Result<Run, DbscanError> {
        let t0 = Instant::now();
        let (clustering, session) = StreamingApproxDbscan::run_pruned(
            &self.metric,
            params,
            &self.parallel,
            &self.pruning,
            || self.points.iter().cloned(),
        )?;
        let stats = session.stats();
        let detail = RunDetail::Streaming {
            stats,
            footprint: session.footprint(),
        };
        let report = self.report(AlgorithmKind::Streaming, t0, false, stats.pruning, detail);
        Ok(Run { clustering, report })
    }

    /// Opens a fresh Algorithm-3 session borrowing the engine's metric,
    /// thread knob, and pruning policy, to be driven pass-by-pass over
    /// an **external** stream (`pass1_observe* → finish_pass1 →
    /// pass2_observe* → finish_pass2 → pass3_label*`). The session
    /// stores only `O((Δ/ρε)^D + z)` points — it never touches the
    /// engine's own data.
    pub fn streaming_session(&self, params: &ApproxParams) -> StreamingApproxDbscan<'_, P, M> {
        StreamingApproxDbscan::new(&self.metric, params)
            .with_parallel(self.parallel)
            .with_pruning(self.pruning)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn grid() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                v.push(vec![i as f64, j as f64]);
            }
        }
        v
    }

    fn engine(rbar: f64) -> MetricDbscan<Vec<f64>, Euclidean> {
        MetricDbscan::builder(grid(), Euclidean)
            .rbar(rbar)
            .build()
            .unwrap()
    }

    #[test]
    fn engine_is_send_sync_and_arc_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricDbscan<Vec<f64>, Euclidean>>();
        assert_send_sync::<Arc<MetricDbscan<String, mdbscan_metric::Levenshtein>>>();
    }

    #[test]
    fn builder_validation() {
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(matches!(
            MetricDbscan::builder(empty, Euclidean).rbar(0.5).build(),
            Err(DbscanError::EmptyInput)
        ));
        assert!(matches!(
            MetricDbscan::builder(grid(), Euclidean).build(),
            Err(DbscanError::RadiusNotSet)
        ));
        assert!(matches!(
            MetricDbscan::builder(grid(), Euclidean).rbar(-2.0).build(),
            Err(DbscanError::InvalidRadius(_))
        ));
        assert!(matches!(
            MetricDbscan::builder(grid(), Euclidean)
                .rbar(f64::NAN)
                .build(),
            Err(DbscanError::InvalidRadius(_))
        ));
        assert!(matches!(
            MetricDbscan::builder(grid(), Euclidean)
                .rbar(0.5)
                .first_center(10_000)
                .build(),
            Err(DbscanError::InvalidFirstCenter { .. })
        ));
    }

    #[test]
    fn coarse_and_truncated_nets_rejected() {
        let e = engine(2.0);
        assert!(matches!(
            e.exact(&DbscanParams::new(1.5, 4).unwrap()),
            Err(DbscanError::IndexTooCoarse { .. })
        ));
        assert!(e.exact(&DbscanParams::new(4.0, 4).unwrap()).is_ok());
        let truncated = MetricDbscan::builder(grid(), Euclidean)
            .rbar(0.4)
            .max_centers(2)
            .build()
            .unwrap();
        assert!(matches!(
            truncated.exact(&DbscanParams::new(1.0, 4).unwrap()),
            Err(DbscanError::IndexNotCovering)
        ));
    }

    #[test]
    fn repeated_query_hits_fragment_cache_with_identical_labels() {
        let e = engine(0.5);
        let params = DbscanParams::new(1.0, 4).unwrap();
        let cold = e.exact(&params).unwrap();
        assert!(!cold.report.cache_hit);
        assert_eq!(cold.report.cache_misses, 1);
        let warm = e.exact(&params).unwrap();
        assert!(warm.report.cache_hit);
        assert_eq!(warm.report.cache_hits, 1);
        assert_eq!(cold.clustering, warm.clustering);
        // A different (ε, MinPts) misses, then hits on repeat.
        let params2 = DbscanParams::new(2.0, 6).unwrap();
        assert!(!e.exact(&params2).unwrap().report.cache_hit);
        assert!(e.exact(&params2).unwrap().report.cache_hit);
        let stats = e.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 2, 2));
        assert!(e.cache_heap_bytes() > 0);
        e.clear_cache();
        assert_eq!(e.cache_stats().entries, 0);
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let e = MetricDbscan::builder(grid(), Euclidean)
            .rbar(0.5)
            .cache_capacity(0)
            .build()
            .unwrap();
        let params = DbscanParams::new(1.0, 4).unwrap();
        let a = e.exact(&params).unwrap();
        let b = e.exact(&params).unwrap();
        assert!(!b.report.cache_hit);
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn lru_evicts_oldest_entry() {
        let e = MetricDbscan::builder(grid(), Euclidean)
            .rbar(0.5)
            .cache_capacity(2)
            .build()
            .unwrap();
        let p1 = DbscanParams::new(1.0, 4).unwrap();
        let p2 = DbscanParams::new(1.5, 4).unwrap();
        let p3 = DbscanParams::new(2.0, 4).unwrap();
        e.exact(&p1).unwrap();
        e.exact(&p2).unwrap();
        e.exact(&p3).unwrap(); // evicts p1
        assert_eq!(e.cache_stats().entries, 2);
        assert!(!e.exact(&p1).unwrap().report.cache_hit, "p1 was evicted");
        assert!(e.exact(&p3).unwrap().report.cache_hit, "p3 is resident");
    }

    #[test]
    fn all_four_entry_points_agree_where_they_should() {
        let pts = grid();
        let e = MetricDbscan::builder(pts.clone(), Euclidean)
            .rbar(0.5)
            .build()
            .unwrap();
        let params = DbscanParams::new(1.0, 4).unwrap();
        let exact = e.exact(&params).unwrap();
        let tree = e.covertree(&params).unwrap();
        // Both are exact solvers: identical partition.
        assert!(exact.clustering.same_partition(&tree.clustering));
        assert_eq!(tree.report.algorithm, AlgorithmKind::CoverTree);
        // Second covertree call reuses the whole-input tree.
        let tree2 = e.covertree(&params).unwrap();
        assert!(tree2.report.cache_hit);
        assert_eq!(tree2.clustering, tree.clustering);
        // Approx + streaming run and report their stats.
        let aparams = ApproxParams::new(1.0, 4, 1.0).unwrap();
        let approx = e.approx(&aparams).unwrap();
        assert!(approx.report.approx_stats().is_some());
        let streaming = e.streaming(&aparams).unwrap();
        assert!(streaming.report.streaming_footprint().is_some());
        assert_eq!(
            streaming.clustering.len(),
            pts.len(),
            "streaming labels every point"
        );
    }

    #[test]
    fn engine_matches_free_function() {
        let pts = grid();
        let e = MetricDbscan::builder(pts.clone(), Euclidean)
            .rbar(0.5)
            .build()
            .unwrap();
        for eps in [1.0, 1.5, 2.5] {
            let params = DbscanParams::new(eps, 4).unwrap();
            let run = e.exact(&params).unwrap();
            let fresh = crate::exact_dbscan(&pts, &Euclidean, eps, 4).unwrap();
            assert!(run.clustering.same_partition(&fresh), "eps={eps}");
        }
    }

    #[test]
    fn streaming_session_is_driveable() {
        let e = engine(0.25);
        let aparams = ApproxParams::new(1.0, 3, 0.5).unwrap();
        let mut session = e.streaming_session(&aparams);
        let stream: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 4) as f64 * 0.2, 0.0]).collect();
        for p in &stream {
            session.pass1_observe(p);
        }
        session.finish_pass1();
        for p in &stream {
            session.pass2_observe(p);
        }
        session.finish_pass2();
        assert!(session.pass3_label(&stream[0]).cluster().is_some());
    }
}
