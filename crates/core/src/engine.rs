//! The owned, shareable metric-DBSCAN engine: one builder facade over
//! the exact (§3.1), cover-tree exact (§3.2), ρ-approximate
//! (Algorithm 2), and streaming (Algorithm 3) solvers — now **epoch
//! based and mutable**: the engine can ingest new points while serving
//! readers.
//!
//! # The epoch / snapshot model
//!
//! [`MetricDbscan`] owns an append-only point sequence and its `r̄`-net.
//! Every mutation ([`MetricDbscan::ingest`] / `ingest_one`) runs behind
//! one writer mutex, extends the chunked point store and the net in
//! place, and assigns a bumped **epoch counter**; the immutable
//! [`EngineSnapshot`] for that epoch is *published lazily*, on the
//! first read after the batch — so the O(n) flatten into contiguous
//! storage is paid once per read boundary, not once per batch, and
//! point-at-a-time feeding costs O(n) total in copies instead of
//! O(n²). A query grabs the current snapshot (one `Arc` clone under a
//! read lock held for nanoseconds — never across any distance
//! evaluation; the first read after a batch additionally pays the
//! pending flatten) and computes entirely against that frozen state. A
//! snapshot taken *before* an ingest keeps answering from its own
//! epoch forever — byte-identical results no matter how much the
//! engine has grown since.
//!
//! The whole engine state — points, net, writer anchors, delta
//! history, and every cache — round-trips through a versioned on-disk
//! artifact: [`MetricDbscan::save`] / [`MetricDbscan::load`] (and
//! [`EngineSnapshot::save`] for read-only replicas), with zero
//! distance evaluations on load and bit-identical post-load behavior;
//! see the `persist` module docs in this crate and the
//! `mdbscan_persist` crate for the format.
//!
//! Every cached artifact — the fragment/summary LRU, the `ε`-keyed
//! center adjacency, the whole-input §3.2 cover tree — carries its
//! **epoch in the cache key**, so stale entries are unreachable *by
//! construction* rather than by flushing: an epoch-`e` query can only
//! ever hit epoch-`e` artifacts. Across epochs the engine still reuses
//! work *incrementally* (reported as [`CacheStats::upgrades`], never as
//! hits):
//!
//! * the center adjacency extends by the new-center rows only, instead
//!   of an `O(|E|²)` rebuild;
//! * Step-1 core flags are monotone under ingest, so only new points —
//!   and old points whose neighbor balls gained members — are
//!   re-verified;
//! * fragments only ever gain members, so cached fragment cover trees
//!   grow by [`mdbscan_covertree::CoverTree::insert`] instead of being
//!   discarded, and so does the cached whole-input tree.
//!
//! # Ingest determinism contract
//!
//! The net is maintained by the **radius-guided first-fit rule** — the
//! streaming pass-1 rule of Algorithm 3: a new point joins the ball of
//! the first center within `r̄`, else becomes a new center. Ingesting
//! `p₀ … pₙ` in order therefore replays exactly the loop a one-shot
//! [`NetStrategy::RadiusGuided`] build over the same sequence runs, so
//! an engine that was built over a prefix and ingested the rest
//! produces labels **bit-identical** to a fresh radius-guided engine
//! over the full sequence — at every thread count, pruning on or off,
//! for all four solvers. (`tests/dynamic_engine.rs` enforces this.)
//!
//! # Radius-guided vs. Gonzalez nets
//!
//! The default [`NetStrategy::Gonzalez`] runs Algorithm 1's
//! farthest-point greedy — a batch algorithm that inspects the whole
//! input per round and tends to produce the fewest centers. The
//! [`NetStrategy::RadiusGuided`] first-fit rule sees each point once,
//! which is what makes online ingest replayable. Both produce valid
//! `r̄`-nets (covering + packing) with exact `dis(p, c_p)` anchors, so
//! every solver, cache, and pruning bound works identically on either;
//! they just select different centers. A Gonzalez-built engine may also
//! ingest — insertions extend its net by the first-fit rule — but then
//! only the *ingested engine itself* is the determinism reference (no
//! fresh batch build reproduces a mixed net).
//!
//! On top of the shared net the engine adds the caches described above,
//! all invisible in the results: cached artifacts are deterministic
//! functions of `(epoch, net, ε, MinPts)`, so a hit returns
//! **bit-identical labels** to a cold run.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use mdbscan_covertree::{CoverTree, CoverTreeSkeleton};
use mdbscan_grid::{CandidateStats, GridIndex, GRID_MAX_DIM};
use mdbscan_kcenter::{BuildOptions, CenterAdjacency, IncrementalNet, RadiusGuidedNet};
use mdbscan_metric::{BatchMetric, PruneStats, PruningConfig};
use mdbscan_obs::{Event, Phase, Recorder};
use mdbscan_parallel::{Csr, ParallelConfig};
use mdbscan_rp::{RpConfig, RpIndex, RpStats};

use crate::approx::{approx_threshold, run_approx, ApproxArtifacts, ApproxReuse, ApproxStats};
use crate::error::DbscanError;
use crate::exact::{ExactConfig, ExactStats};
use crate::exact_covertree::{covertree_level, CoverTreeExactStats};
use crate::labels::Clustering;
use crate::netview::NetView;
use crate::params::{ApproxParams, DbscanParams};
use crate::steps::{run_exact_steps, StepArtifacts, StepsReuse, StepsUpgrade};
use crate::store::{ChunkedStore, PointBuf};
use crate::streaming::{StreamingApproxDbscan, StreamingFootprint, StreamingStats};

/// Default number of fragment-artifact entries the engine retains.
const DEFAULT_CACHE_CAPACITY: usize = 16;

/// Entries the `ε`-keyed center-adjacency cache retains. The adjacency
/// depends on `ε` only (not `MinPts`), so `(ε, MinPts)` sweeps share one
/// entry per `ε` value; a handful covers any realistic sweep.
const ADJACENCY_CACHE_CAPACITY: usize = 8;

/// Whole-input cover-tree skeletons retained (one per recently queried
/// epoch; older epochs grow into newer ones by insertion).
const COVERTREE_CACHE_CAPACITY: usize = 4;

/// Ingest deltas retained for incremental artifact upgrades. A cached
/// artifact older than this many epochs falls back to a full recompute.
const DELTA_HISTORY: usize = 128;

/// Per-epoch grid indexes retained (one per recently queried
/// `(epoch, cell)` pair; older epochs extend into newer ones).
pub(crate) const GRID_CACHE_CAPACITY: usize = 4;

/// Per-epoch random-projection indexes retained. The RP index is
/// ε-independent (one per epoch covers every parameter probe), so a
/// couple of epochs suffice; older epochs extend into newer ones.
pub(crate) const RP_CACHE_CAPACITY: usize = 2;

/// Which candidate-generation machinery the engine's solvers use for
/// ε-ball scans and the center-adjacency build.
///
/// [`CandidateIndex::Grid`] changes only which pairs are *examined*,
/// never what any examined pair evaluates to — labels stay
/// **bit-identical** to the generic path.
/// [`CandidateIndex::RandomProjection`] additionally restricts the
/// approximate/streaming solvers' ε-ball scans to projection-list
/// candidates: runs are still deterministic for a fixed seed (across
/// thread counts, cache states, ingest-vs-fresh, and artifact round
/// trips), but a candidate miss is a *quality* trade-off against the
/// generic path, measurable via `crates/eval`.
///
/// Both indexes are *auto-gated* on the metric exposing a Euclidean
/// coordinate view ([`mdbscan_metric::GridCompatible`]): the grid needs
/// ambient dimension `≤ 3`, random projections accept any dimension
/// (they exist for the d = 128–768 embedding regime where grid cells
/// and net-anchored pruning both degenerate). Ineligible metrics
/// silently stay on the generic net-anchored path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateIndex {
    /// The paper's net-anchored candidate generation (cover sets plus
    /// triangle-inequality pruning). Works for every metric. The
    /// default.
    #[default]
    Generic,
    /// ε-aligned grid buckets (`mdbscan_grid`): candidates come from
    /// ring cells around each query point, with whole-cell accepts for
    /// dense interiors. Low-dimensional coordinate data only (see the
    /// auto-gate above); ineligible metrics fall back to
    /// [`CandidateIndex::Generic`] per query, silently.
    Grid,
    /// Seeded random-projection lists (`mdbscan_rp`, sDBSCAN-style):
    /// the approximate and streaming solvers draw their Step-1 counting
    /// and labeling candidates from per-projection top-m lists. Any
    /// coordinate dimension; the exact solvers ignore it (they must
    /// stay exact) and ineligible metrics fall back to
    /// [`CandidateIndex::Generic`] per query, silently. The seed is
    /// part of this configuration, so artifacts are reproducible.
    RandomProjection(RpConfig),
}

/// How the engine's `r̄`-net is selected (see the module docs for the
/// full contrast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetStrategy {
    /// Algorithm 1's farthest-point greedy (batch; fewest centers).
    /// The default.
    #[default]
    Gonzalez,
    /// First-fit netting — the streaming pass-1 insertion rule. One
    /// pass, sequential, and **replayable**: build-then-ingest is
    /// bit-identical to a one-shot build over the same point sequence,
    /// which makes this the strategy of choice for engines that ingest.
    RadiusGuided,
}

/// Which solver produced a [`Run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Exact DBSCAN over the engine's net (§3.1).
    Exact,
    /// ρ-approximate DBSCAN, Algorithm 2.
    Approx,
    /// Exact DBSCAN over a cover-tree-derived net (§3.2).
    CoverTree,
    /// Three-pass streaming ρ-approximate DBSCAN, Algorithm 3.
    Streaming,
}

/// Solver-specific statistics inside a [`RunReport`].
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub enum RunDetail {
    /// Phase stats of the §3.1 exact pipeline.
    Exact(ExactStats),
    /// Summary/merge stats of Algorithm 2.
    Approx(ApproxStats),
    /// Tree + phase stats of the §3.2 pipeline.
    CoverTree(CoverTreeExactStats),
    /// Pass counters and the memory footprint of Algorithm 3.
    Streaming {
        /// Stream-pass counters.
        stats: StreamingStats,
        /// Stored points at the end of the run (`|E| + |M|`).
        footprint: StreamingFootprint,
    },
}

/// The unified per-run report every engine entry point returns,
/// subsuming the per-solver stats structs.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct RunReport {
    /// Which solver ran.
    pub algorithm: AlgorithmKind,
    /// The epoch the run was answered at.
    pub epoch: u64,
    /// Wall-clock seconds for the whole query (cache lookups included,
    /// engine construction excluded).
    pub total_secs: f64,
    /// True when this run reused at least one cached artifact *of its
    /// own epoch* (fragment trees, the approx summary, and/or the
    /// whole-input cover tree; the `ε`-keyed adjacency cache is
    /// reported separately in [`CacheStats`]). Cross-epoch incremental
    /// reuse is never reported as a hit — see [`CacheStats::upgrades`].
    pub cache_hit: bool,
    /// Engine-lifetime cache hits, sampled after this run.
    pub cache_hits: u64,
    /// Engine-lifetime cache misses, sampled after this run.
    pub cache_misses: u64,
    /// Triangle-inequality pruning ledger of this run: pairs accepted /
    /// rejected by the net-anchored bounds without a distance
    /// evaluation, and the anchor evaluations paid for them
    /// ([`PruneStats::distance_evals_saved`] nets the two). Always
    /// collected; all zeros when the engine was built with
    /// [`MetricDbscanBuilder::pruning`] off.
    pub pruning: PruneStats,
    /// Grid candidate-generation ledger of this run: ring cells probed,
    /// candidates handed to the metric, and candidates rejected by cell
    /// bounds without an evaluation. All zeros on the generic path
    /// (engines built without [`MetricDbscanBuilder::candidate_index`]
    /// = [`CandidateIndex::Grid`], or whose metric has no coordinate
    /// view). Counts only the work actually performed this run: phases
    /// replayed from cached artifacts contribute nothing.
    pub candidates: CandidateStats,
    /// Random-projection candidate ledger of this run: projection lists
    /// probed, candidates handed to the metric, and duplicates/rejects
    /// filtered before evaluation. All zeros unless the engine was built
    /// with [`CandidateIndex::RandomProjection`] *and* this was an
    /// approximate or streaming run (the exact solvers never consult
    /// the RP index).
    pub rp: RpStats,
    /// Solver-specific statistics.
    pub detail: RunDetail,
}

impl RunReport {
    /// The exact-pipeline stats, when this was an exact or cover-tree run.
    pub fn exact_stats(&self) -> Option<&ExactStats> {
        match &self.detail {
            RunDetail::Exact(s) => Some(s),
            RunDetail::CoverTree(s) => Some(&s.steps),
            _ => None,
        }
    }

    /// The Algorithm-2 stats, when this was an approximate run.
    pub fn approx_stats(&self) -> Option<&ApproxStats> {
        match &self.detail {
            RunDetail::Approx(s) => Some(s),
            _ => None,
        }
    }

    /// The streaming footprint, when this was a streaming run.
    pub fn streaming_footprint(&self) -> Option<StreamingFootprint> {
        match &self.detail {
            RunDetail::Streaming { footprint, .. } => Some(*footprint),
            _ => None,
        }
    }
}

/// Folds one finished run's per-phase timings and candidate counters
/// into a recorder. The report already exists — labels included — so
/// this is purely observational: nothing a recorder does can reach
/// back into the run. Streaming maps its passes onto the pipeline
/// phases (pass 1 → net build, pass 2 → Step 1, offline merge →
/// Step 2, pass 3 → Step 3); cover-tree runs report the tree build +
/// net extraction as the net-build phase.
fn record_run_phases(rec: &dyn Recorder, report: &RunReport) {
    let secs = |s: f64| Duration::from_secs_f64(s.max(0.0));
    match &report.detail {
        RunDetail::Exact(s) => {
            rec.phase(Phase::Adjacency, secs(s.adjacency_secs));
            rec.phase(Phase::Step1, secs(s.label_secs));
            rec.phase(Phase::Step2, secs(s.merge_secs));
            rec.phase(Phase::Step3, secs(s.assign_secs));
        }
        RunDetail::CoverTree(s) => {
            rec.phase(Phase::NetBuild, secs(s.tree_secs + s.net_secs));
            rec.phase(Phase::Adjacency, secs(s.steps.adjacency_secs));
            rec.phase(Phase::Step1, secs(s.steps.label_secs));
            rec.phase(Phase::Step2, secs(s.steps.merge_secs));
            rec.phase(Phase::Step3, secs(s.steps.assign_secs));
        }
        RunDetail::Approx(s) => {
            rec.phase(Phase::Adjacency, secs(s.adjacency_secs));
            rec.phase(Phase::Step1, secs(s.summary_secs));
            rec.phase(Phase::Step2, secs(s.merge_secs));
            rec.phase(Phase::Step3, secs(s.label_secs));
        }
        RunDetail::Streaming { stats, .. } => {
            rec.phase(Phase::NetBuild, secs(stats.pass1_secs));
            rec.phase(Phase::Step1, secs(stats.pass2_secs));
            rec.phase(Phase::Step2, secs(stats.merge_secs));
            rec.phase(Phase::Step3, secs(stats.pass3_secs));
        }
    }
    let emitted = report.candidates.candidates_emitted + report.rp.candidates_emitted;
    let rejected = report.candidates.candidates_rejected + report.rp.candidates_rejected;
    if emitted > 0 {
        rec.event(Event::CandidatesEmitted, emitted);
    }
    if rejected > 0 {
        rec.event(Event::CandidatesRejected, rejected);
    }
}

/// One engine query: the clustering plus its [`RunReport`].
#[derive(Debug, Clone)]
pub struct Run {
    /// The cluster labels.
    pub clustering: Clustering,
    /// Timings, counters, and cache telemetry of this query.
    pub report: RunReport,
}

impl Run {
    /// Drops the report, keeping only the clustering.
    pub fn into_clustering(self) -> Clustering {
        self.clustering
    }
}

/// What one [`MetricDbscan::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct IngestReport {
    /// The epoch the batch published (unchanged for an empty batch).
    pub epoch: u64,
    /// Points inserted by this call.
    pub added_points: usize,
    /// Centers created by this call.
    pub new_centers: usize,
    /// Cover sets that gained members (new centers included).
    pub dirty_balls: usize,
    /// Total points after the call.
    pub num_points: usize,
    /// Total centers `|E|` after the call.
    pub num_centers: usize,
    /// Whether the net still covers every point (false only after a
    /// `max_centers` truncation; queries then fail with
    /// [`DbscanError::IndexNotCovering`]).
    pub covered: bool,
}

/// A snapshot of the engine's cache counters
/// ([`MetricDbscan::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a reusable same-epoch artifact
    /// (fragment/summary LRU).
    pub hits: u64,
    /// Lookups that had to compute — fully or incrementally — at the
    /// query's epoch (fragment/summary LRU).
    pub misses: u64,
    /// Cross-epoch incremental reuses: an older epoch's artifact
    /// (fragments, adjacency, or the whole-input cover tree) was
    /// *upgraded* through the ingest deltas instead of recomputed from
    /// scratch. Counted in addition to the miss.
    pub upgrades: u64,
    /// Fragment/summary-artifact entries currently retained.
    pub entries: usize,
    /// Whether at least one whole-input cover tree is retained.
    pub covertree_cached: bool,
    /// Lookups that found a cached same-epoch `ε`-keyed center
    /// adjacency.
    pub adjacency_hits: u64,
    /// Adjacency lookups that had to rebuild or extend.
    pub adjacency_misses: u64,
    /// Center-adjacency entries currently retained.
    pub adjacency_entries: usize,
    /// Grid-index lookups that found a cached same-epoch grid. Always 0
    /// for engines on [`CandidateIndex::Generic`].
    pub grid_hits: u64,
    /// Grid-index lookups that had to build or extend a grid.
    pub grid_misses: u64,
    /// Grid-index entries currently retained.
    pub grid_entries: usize,
    /// Random-projection-index lookups that found a cached same-epoch
    /// index. Always 0 for engines not on
    /// [`CandidateIndex::RandomProjection`].
    pub rp_hits: u64,
    /// Random-projection-index lookups that had to build or extend.
    pub rp_misses: u64,
    /// Random-projection-index entries currently retained.
    pub rp_entries: usize,
}

/// Which pipeline a cached fragment partition belongs to. The §3.1 and
/// §3.2 pipelines derive different nets, so their artifacts must never
/// collide even at equal `(ε, MinPts)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NetKind {
    Gonzalez,
    CoverTree,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CacheKey {
    pub(crate) kind: NetKind,
    /// Epoch the artifacts were computed at: an epoch-`e` query can only
    /// hit epoch-`e` entries, so stale artifacts are invalidated by
    /// construction.
    pub(crate) epoch: u64,
    pub(crate) eps_bits: u64,
    pub(crate) min_pts: usize,
    /// `Some(ρ bits)` for Algorithm-2 summaries, `None` for the exact
    /// pipelines — the two artifact families never collide even at equal
    /// `(ε, MinPts)`.
    pub(crate) rho_bits: Option<u64>,
}

/// A cached per-parameter artifact: the exact pipelines store Step-1/2
/// outputs, the approximate pipeline its merged summary.
pub(crate) enum CachedArtifacts {
    Steps(Arc<StepArtifacts>),
    Approx(Arc<ApproxArtifacts>),
}

impl CachedArtifacts {
    fn heap_bytes(&self) -> usize {
        match self {
            CachedArtifacts::Steps(a) => a.heap_bytes(),
            CachedArtifacts::Approx(a) => a.heap_bytes(),
        }
    }
}

/// A tiny exact-scan most-recent-first LRU: the working set is a
/// handful of parameter probes, so a `Vec` scanned linearly beats any
/// hash scheme. Shared by the fragment/summary cache, the adjacency
/// cache, and the per-epoch cover-tree cache; capacity 0 disables
/// insertion entirely.
pub(crate) struct Lru<K, V> {
    pub(crate) capacity: usize,
    pub(crate) entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Lru<K, V> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Looks up `key`, promoting a hit to most-recent.
    fn promote(&mut self, key: &K) -> Option<&V> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(&self.entries[0].1)
    }

    fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.entries.retain(|(k, _)| k != &key);
        self.entries.insert(0, (key, value));
        self.entries.truncate(self.capacity);
    }
}

/// The fragment/summary artifact cache, with typed accessors over the
/// shared [`Lru`].
pub(crate) type FragmentLru = Lru<CacheKey, CachedArtifacts>;

impl FragmentLru {
    fn get_steps(&mut self, key: &CacheKey) -> Option<Arc<StepArtifacts>> {
        match self.promote(key)? {
            CachedArtifacts::Steps(a) => Some(Arc::clone(a)),
            CachedArtifacts::Approx(_) => None,
        }
    }

    fn get_approx(&mut self, key: &CacheKey) -> Option<Arc<ApproxArtifacts>> {
        match self.promote(key)? {
            CachedArtifacts::Approx(a) => Some(Arc::clone(a)),
            CachedArtifacts::Steps(_) => None,
        }
    }

    /// The newest strictly-older-epoch Steps entry matching `key`'s
    /// parameters — the upgrade base for an incremental Step-1/2 run.
    fn best_steps_base(&self, key: &CacheKey) -> Option<(u64, Arc<StepArtifacts>)> {
        let mut best: Option<(u64, Arc<StepArtifacts>)> = None;
        for (k, v) in &self.entries {
            if k.kind == key.kind
                && k.eps_bits == key.eps_bits
                && k.min_pts == key.min_pts
                && k.rho_bits == key.rho_bits
                && k.epoch < key.epoch
            {
                if let CachedArtifacts::Steps(a) = v {
                    if best.as_ref().is_none_or(|(e, _)| k.epoch > *e) {
                        best = Some((k.epoch, Arc::clone(a)));
                    }
                }
            }
        }
        best
    }

    /// Total heap bytes retained (diagnostic).
    fn heap_bytes(&self) -> usize {
        self.entries.iter().map(|(_, a)| a.heap_bytes()).sum()
    }
}

/// Key of the `ε`-only center-adjacency cache: the adjacency is a pure
/// function of (epoch, net, threshold, screening mode) — `MinPts` and
/// `ρ` never enter. Cover-tree nets differ per level, so the level
/// joins the key there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AdjKey {
    pub(crate) kind: NetKind,
    pub(crate) epoch: u64,
    pub(crate) level: i32,
    pub(crate) threshold_bits: u64,
    /// The per-edge bounds differ between screened and unscreened
    /// builds (membership does not), so the two never share an entry.
    pub(crate) pruned: bool,
}

/// Key of the per-epoch grid-index cache. The grid is a pure function
/// of (epoch's points, cell side): the net never enters, so the exact
/// and cover-tree pipelines share entries at equal `ε`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct GridKey {
    pub(crate) epoch: u64,
    /// Bits of the cell side `ε/√d` — each probed `ε` gets its own
    /// aligned grid.
    pub(crate) cell_bits: u64,
}

/// One published epoch's delta: which cover sets gained members, and
/// how many points existed before — everything an incremental artifact
/// upgrade needs.
pub(crate) struct EpochDelta {
    pub(crate) epoch: u64,
    pub(crate) old_num_points: usize,
    pub(crate) dirty_balls: Vec<u32>,
}

pub(crate) struct EngineCache {
    pub(crate) fragments: FragmentLru,
    pub(crate) adjacency: Lru<AdjKey, Arc<CenterAdjacency>>,
    pub(crate) covertree: Lru<u64, Arc<CoverTreeSkeleton>>,
    pub(crate) grids: Lru<GridKey, Arc<GridIndex>>,
    /// Per-epoch random-projection indexes (the RP index is
    /// ε-independent, so the epoch alone keys it; the config is fixed at
    /// engine construction).
    pub(crate) rps: Lru<u64, Arc<RpIndex>>,
    /// Published ingest deltas, ascending by epoch, bounded by
    /// [`DELTA_HISTORY`].
    pub(crate) deltas: VecDeque<EpochDelta>,
}

impl EngineCache {
    /// The union of dirty balls across epochs `(from, to]`, or `None`
    /// when the delta history no longer covers that span (→ full
    /// recompute). `old_n` sanity-checks that the upgrade base really
    /// describes the point prefix present at `from`.
    fn dirty_since(&self, from: u64, to: u64, old_n: usize) -> Option<Vec<u32>> {
        let mut needed = from + 1;
        let mut dirty: Vec<u32> = Vec::new();
        for d in &self.deltas {
            if d.epoch < needed {
                continue;
            }
            if d.epoch != needed {
                return None; // pruned history or a gap
            }
            if needed == from + 1 && d.old_num_points != old_n {
                return None;
            }
            dirty.extend_from_slice(&d.dirty_balls);
            if d.epoch == to {
                dirty.sort_unstable();
                dirty.dedup();
                return Some(dirty);
            }
            needed += 1;
        }
        None
    }
}

/// One published epoch: the contiguous point snapshot and the net over
/// it. Immutable once published; readers hold it via `Arc`.
pub(crate) struct EpochState<P> {
    pub(crate) epoch: u64,
    pub(crate) points: PointBuf<P>,
    pub(crate) net: Arc<RadiusGuidedNet>,
}

/// The writer-side mutable state, initialized lazily on the first
/// ingest (a never-ingesting engine pays nothing for it).
pub(crate) struct IngestState<P> {
    pub(crate) store: ChunkedStore<P>,
    pub(crate) net: IncrementalNet,
    /// The pending epoch: the epoch of the last appended batch. Runs
    /// ahead of the published [`EpochState::epoch`] until the first
    /// post-batch read flattens and publishes.
    pub(crate) epoch: u64,
}

/// Builder for [`MetricDbscan`]; see [`MetricDbscan::builder`].
pub struct MetricDbscanBuilder<P, M> {
    points: Arc<[P]>,
    metric: M,
    rbar: Option<f64>,
    first: usize,
    max_centers: usize,
    strategy: NetStrategy,
    parallel: Option<ParallelConfig>,
    pruning: PruningConfig,
    cache_capacity: usize,
    candidate_index: CandidateIndex,
    recorder: Option<Arc<dyn Recorder>>,
}

impl<P: Sync, M: BatchMetric<P>> MetricDbscanBuilder<P, M> {
    /// The net radius `r̄` for the Algorithm-1 preprocessing.
    /// **Required.** Exact queries need `r̄ ≤ ε/2`; ρ-approximate queries
    /// need `r̄ ≤ ρε/2` — pick the bound for the finest parameters you
    /// intend to probe.
    pub fn rbar(mut self, rbar: f64) -> Self {
        self.rbar = Some(rbar);
        self
    }

    /// Worker threads for the build and for every query that does not
    /// override them ([`ExactConfig::parallel`]). Defaults to the
    /// machine's available parallelism.
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = Some(parallel);
        self
    }

    /// How the initial net is built (default
    /// [`NetStrategy::Gonzalez`]). Choose
    /// [`NetStrategy::RadiusGuided`] for engines that will
    /// [`MetricDbscan::ingest`]: build-then-ingest is then bit-identical
    /// to a fresh build over the concatenated sequence.
    pub fn net_strategy(mut self, strategy: NetStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Index of the arbitrary first Gonzalez center (paper line 1).
    /// Defaults to 0. Ignored under [`NetStrategy::RadiusGuided`],
    /// where the first point is always the first center (first-fit).
    pub fn first_center(mut self, first: usize) -> Self {
        self.first = first;
        self
    }

    /// Hard cap on `|E|` — a safety valve for adversarial inputs; a
    /// truncated net rejects queries with
    /// [`DbscanError::IndexNotCovering`]. Defaults to unlimited.
    pub fn max_centers(mut self, max_centers: usize) -> Self {
        self.max_centers = max_centers;
        self
    }

    /// Number of `(ε, MinPts)` fragment-artifact entries the engine
    /// retains (default 16); `0` disables caching entirely (the
    /// `ε`-keyed adjacency cache included).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Net-anchored triangle-inequality pruning policy for every query
    /// this engine serves (default: on). Pruning skips distance
    /// evaluations whose outcome the net's recorded distances already
    /// decide — cluster labels are **bit-identical** with it on or off;
    /// only [`RunReport::pruning`] and the evaluation counts change.
    pub fn pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = pruning;
        self
    }

    /// Candidate-generation machinery for every query this engine
    /// serves (default [`CandidateIndex::Generic`]). Choosing
    /// [`CandidateIndex::Grid`] engages the ε-aligned grid index for
    /// metrics with a low-dimensional coordinate view
    /// ([`mdbscan_metric::VectorBlock`] at `d ≤ 3`) — **bit-identical
    /// labels**, typically far fewer distance evaluations. Choosing
    /// [`CandidateIndex::RandomProjection`] engages the seeded
    /// projection-list index for coordinate metrics at *any* dimension —
    /// deterministic for a fixed seed but an approximation of the
    /// generic candidate set (see [`CandidateIndex`]); it applies to the
    /// approximate and streaming solvers only. Ineligible metrics
    /// silently keep the generic path.
    pub fn candidate_index(mut self, index: CandidateIndex) -> Self {
        self.candidate_index = index;
        self
    }

    /// Attaches an observability recorder ([`mdbscan_obs::Recorder`]):
    /// the engine reports phase durations (net build, Step-1,
    /// adjacency, Step-2, Step-3, candidate probe, ingest, artifact
    /// save/load) and cache hit/miss events through it. Observability
    /// is **read-only**: a recorder never affects labels or evaluation
    /// counters (see the `mdbscan_obs` crate docs), and the default
    /// `None` path does no work at all.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Validates the configuration and builds the net (Algorithm 1, or
    /// the first-fit pass under [`NetStrategy::RadiusGuided`]).
    ///
    /// Errors: [`DbscanError::EmptyInput`], [`DbscanError::RadiusNotSet`],
    /// [`DbscanError::InvalidRadius`], [`DbscanError::InvalidFirstCenter`].
    pub fn build(self) -> Result<MetricDbscan<P, M>, DbscanError> {
        let rbar = self.rbar.ok_or(DbscanError::RadiusNotSet)?;
        crate::error::validate_points_and_rbar(self.points.len(), rbar)?;
        if self.first >= self.points.len() {
            return Err(DbscanError::InvalidFirstCenter {
                first: self.first,
                len: self.points.len(),
            });
        }
        let parallel = self.parallel.unwrap_or_default();
        let net_started = self.recorder.as_ref().map(|_| Instant::now());
        let net = match self.strategy {
            NetStrategy::Gonzalez => {
                let opts = BuildOptions {
                    first: self.first,
                    parallel,
                    max_centers: self.max_centers,
                };
                RadiusGuidedNet::build_with(&self.points, &self.metric, rbar, &opts)
            }
            NetStrategy::RadiusGuided => {
                IncrementalNet::build(&self.points, &self.metric, rbar, self.max_centers).to_net()
            }
        };
        if let (Some(rec), Some(started)) = (&self.recorder, net_started) {
            rec.phase(Phase::NetBuild, started.elapsed());
        }
        let adj_capacity = if self.cache_capacity == 0 {
            0
        } else {
            ADJACENCY_CACHE_CAPACITY
        };
        let tree_capacity = if self.cache_capacity == 0 {
            0
        } else {
            COVERTREE_CACHE_CAPACITY
        };
        let grid_capacity = if self.cache_capacity == 0 {
            0
        } else {
            GRID_CACHE_CAPACITY
        };
        let rp_capacity = if self.cache_capacity == 0 {
            0
        } else {
            RP_CACHE_CAPACITY
        };
        Ok(MetricDbscan {
            metric: self.metric,
            rbar,
            parallel,
            pruning: self.pruning,
            max_centers: self.max_centers,
            strategy: self.strategy,
            candidate_index: self.candidate_index,
            current: RwLock::new(Arc::new(EpochState {
                epoch: 0,
                points: self.points.into(),
                net: Arc::new(net),
            })),
            writer: Mutex::new(None),
            cache: Mutex::new(EngineCache {
                fragments: Lru::new(self.cache_capacity),
                adjacency: Lru::new(adj_capacity),
                covertree: Lru::new(tree_capacity),
                grids: Lru::new(grid_capacity),
                rps: Lru::new(rp_capacity),
                deltas: VecDeque::new(),
            }),
            pending_epoch: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            upgrade_count: AtomicU64::new(0),
            adj_hits: AtomicU64::new(0),
            adj_misses: AtomicU64::new(0),
            grid_hits: AtomicU64::new(0),
            grid_misses: AtomicU64::new(0),
            rp_hits: AtomicU64::new(0),
            rp_misses: AtomicU64::new(0),
            load_stats: None,
            load_micros: 0,
            recorder: self.recorder,
        })
    }
}

/// An owned, `Send + Sync`, epoch-based metric-DBSCAN engine: an
/// append-only point sequence with its `r̄`-net, queryable concurrently
/// from many threads *while ingesting*, with epoch-keyed caches.
///
/// Built via [`MetricDbscan::builder`]. Four entry points share the one
/// net and return a uniform [`Run`]:
///
/// * [`MetricDbscan::exact`] — exact DBSCAN, §3.1 (needs `r̄ ≤ ε/2`);
/// * [`MetricDbscan::approx`] — ρ-approximate, Algorithm 2
///   (needs `r̄ ≤ ρε/2`);
/// * [`MetricDbscan::covertree`] — exact via a cover-tree net, §3.2
///   (independent of `r̄`; the tree is grown across epochs and reused);
/// * [`MetricDbscan::streaming`] — Algorithm 3 replayed over the owned
///   points; [`MetricDbscan::streaming_session`] opens a manual session
///   for external streams.
///
/// Each delegates to the current [`EngineSnapshot`]; take one explicitly
/// ([`MetricDbscan::snapshot`]) to pin a query sequence to one epoch
/// while the engine keeps ingesting.
///
/// # Concurrency and determinism
///
/// All methods take `&self`; an `Arc<MetricDbscan<_, _>>` can be cloned
/// into any number of worker threads, readers and one-at-a-time writers
/// alike. Labels are **bit-identical** across thread counts, across
/// concurrent interleavings, across cache hits vs. cold runs vs.
/// incremental upgrades — and, for radius-guided engines, across any
/// batch split of the same ingest sequence (see the module docs).
///
/// ```
/// use mdbscan_core::{DbscanParams, MetricDbscan, NetStrategy};
/// use mdbscan_metric::Euclidean;
///
/// let pts: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 20) as f64, (i / 20) as f64]).collect();
/// let engine = MetricDbscan::builder(pts.clone(), Euclidean)
///     .rbar(0.5)
///     .net_strategy(NetStrategy::RadiusGuided)
///     .build()
///     .unwrap();
/// let params = DbscanParams::new(1.0, 4).unwrap();
/// let before = engine.exact(&params).unwrap();
///
/// // Ingest 100 more grid points while the engine stays queryable.
/// let more: Vec<Vec<f64>> = (100..200).map(|i| vec![(i % 20) as f64, (i / 20) as f64]).collect();
/// let report = engine.ingest(more.clone()).unwrap();
/// assert_eq!(report.epoch, 1);
/// let after = engine.exact(&params).unwrap();
///
/// // Bit-identical to a fresh radius-guided engine over the full sequence.
/// let all: Vec<Vec<f64>> = pts.into_iter().chain(more).collect();
/// let fresh = MetricDbscan::builder(all, Euclidean)
///     .rbar(0.5)
///     .net_strategy(NetStrategy::RadiusGuided)
///     .build()
///     .unwrap();
/// assert_eq!(after.clustering, fresh.exact(&params).unwrap().clustering);
/// assert_ne!(before.clustering.len(), after.clustering.len());
/// ```
pub struct MetricDbscan<P, M> {
    pub(crate) metric: M,
    pub(crate) rbar: f64,
    pub(crate) parallel: ParallelConfig,
    pub(crate) pruning: PruningConfig,
    pub(crate) max_centers: usize,
    pub(crate) strategy: NetStrategy,
    pub(crate) candidate_index: CandidateIndex,
    pub(crate) current: RwLock<Arc<EpochState<P>>>,
    pub(crate) writer: Mutex<Option<IngestState<P>>>,
    pub(crate) cache: Mutex<EngineCache>,
    /// The latest *assigned* epoch: equals the published epoch except
    /// between an ingest and the first read after it (the lazy-publish
    /// window).
    pub(crate) pending_epoch: AtomicU64,
    pub(crate) publishes: AtomicU64,
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) upgrade_count: AtomicU64,
    pub(crate) adj_hits: AtomicU64,
    pub(crate) adj_misses: AtomicU64,
    pub(crate) grid_hits: AtomicU64,
    pub(crate) grid_misses: AtomicU64,
    pub(crate) rp_hits: AtomicU64,
    pub(crate) rp_misses: AtomicU64,
    /// Copied-bytes accounting from the load that produced this engine;
    /// `None` for engines built in-process.
    pub(crate) load_stats: Option<crate::persist::LoadStats>,
    /// Wall-clock microseconds of the artifact load that produced this
    /// engine (0 for engines built in-process) — reported as the
    /// `ArtifactLoad` phase when a recorder is attached post-load.
    pub(crate) load_micros: u64,
    /// Observability seam; `None` (the default) does no work anywhere.
    pub(crate) recorder: Option<Arc<dyn Recorder>>,
}

impl<P: Clone + Sync, M: BatchMetric<P>> MetricDbscan<P, M> {
    /// Starts a builder over an owned point set (a `Vec<P>`, an
    /// `Arc<[P]>`, or anything converting into one) and an owned metric.
    /// A borrowed metric works too: `&M` implements
    /// [`mdbscan_metric::Metric`]/[`BatchMetric`] whenever `M` does.
    pub fn builder(points: impl Into<Arc<[P]>>, metric: M) -> MetricDbscanBuilder<P, M> {
        MetricDbscanBuilder {
            points: points.into(),
            metric,
            rbar: None,
            first: 0,
            max_centers: usize::MAX,
            strategy: NetStrategy::default(),
            parallel: None,
            pruning: PruningConfig::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            candidate_index: CandidateIndex::default(),
            recorder: None,
        }
    }

    /// Attaches an observability recorder to an already-built engine —
    /// the post-[`load`](MetricDbscan::load) counterpart of
    /// [`MetricDbscanBuilder::recorder`]. If this engine came from an
    /// artifact, the load's wall-clock time is reported immediately as
    /// an [`Phase::ArtifactLoad`] phase.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        if self.load_micros > 0 {
            recorder.phase(
                Phase::ArtifactLoad,
                std::time::Duration::from_micros(self.load_micros),
            );
        }
        self.recorder = Some(recorder);
        self
    }

    /// Cache-mutex access with poison **recovery**. Every cache
    /// operation leaves its collections structurally valid even when
    /// interrupted by a panic (they are plain `Vec`/`VecDeque` edits of
    /// `Arc` payloads), and every cached artifact is a pure function of
    /// its key — so the worst a poisoned cache can carry is a missed
    /// hit or an extra entry, never a wrong answer. Recovering via
    /// `into_inner` is therefore sound, and one panicked query cannot
    /// cascade into panics on every later query.
    pub(crate) fn cache_lock(&self) -> std::sync::MutexGuard<'_, EngineCache> {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Published-state read with poison recovery: the `RwLock` only
    /// ever holds a complete `Arc<EpochState>` (writers assign a
    /// fully-built value), so the stored state is valid even if some
    /// holder panicked — `into_inner` recovery is sound.
    pub(crate) fn state_read(&self) -> Arc<EpochState<P>> {
        Arc::clone(
            &self
                .current
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    fn state_write(&self) -> std::sync::RwLockWriteGuard<'_, Arc<EpochState<P>>> {
        self.current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Writer-mutex access. Poisoning here is **not** recoverable: a
    /// panic mid-[`MetricDbscan::ingest`] (typically a panicking user
    /// metric) can leave the chunked store and the incremental net out
    /// of sync, so the pending batches are quarantined. Fallible
    /// callers surface [`DbscanError::Poisoned`]; pure read paths fall
    /// back to the last published epoch, which is always consistent.
    pub(crate) fn writer_lock(
        &self,
    ) -> Result<std::sync::MutexGuard<'_, Option<IngestState<P>>>, DbscanError> {
        self.writer
            .lock()
            .map_err(|_| DbscanError::Poisoned("ingest writer"))
    }

    pub(crate) fn state(&self) -> Arc<EpochState<P>> {
        let state = self.state_read();
        if self.pending_epoch.load(Ordering::Acquire) == state.epoch {
            return state;
        }
        self.publish_pending()
    }

    /// The lazy half of [`MetricDbscan::ingest`]: flattens the writer's
    /// pending batches into a published [`EpochState`]. Runs on the
    /// first read after a batch — one O(n) clone pass (zero distance
    /// evaluations) no matter how many batches piled up since the last
    /// read, which is what makes point-at-a-time feeding O(n) total in
    /// copies instead of O(n²).
    #[cold]
    fn publish_pending(&self) -> Arc<EpochState<P>> {
        match self.writer_lock() {
            Ok(writer) => self.publish_locked(&writer),
            // A poisoned writer quarantines its pending batches (see
            // [`DbscanError::Poisoned`]); readers keep serving the last
            // published epoch, which is always consistent.
            Err(_) => self.state_read(),
        }
    }

    /// As [`MetricDbscan::state`], for callers that already hold the
    /// writer lock (the persistence path, which must serialize a frozen
    /// writer alongside the published state).
    pub(crate) fn publish_locked(&self, writer: &Option<IngestState<P>>) -> Arc<EpochState<P>> {
        let current = self.state_read();
        let Some(live) = writer.as_ref() else {
            return current;
        };
        if live.epoch == current.epoch {
            return current;
        }
        let state = Arc::new(EpochState {
            epoch: live.epoch,
            points: live.store.flatten(),
            net: Arc::new(live.net.to_net()),
        });
        *self.state_write() = Arc::clone(&state);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        state
    }

    /// Pins the current epoch: the returned [`EngineSnapshot`] keeps
    /// answering from this exact point set and net no matter how many
    /// ingests happen after. Cheap (one `Arc` clone) and lock-free on
    /// the query path.
    pub fn snapshot(&self) -> EngineSnapshot<'_, P, M> {
        EngineSnapshot {
            engine: self,
            state: self.state(),
        }
    }

    /// The current epoch (0 at build; +1 per non-empty ingest batch).
    /// Reading the epoch never forces a pending publication.
    pub fn epoch(&self) -> u64 {
        self.pending_epoch.load(Ordering::Acquire)
    }

    /// Total points at the current epoch (pending batches included;
    /// never forces a publication). When the writer was poisoned by a
    /// panicked ingest, the count of the last published epoch is
    /// reported — the pending batches are quarantined.
    pub fn num_points(&self) -> usize {
        match self.writer.lock() {
            Ok(writer) => match writer.as_ref() {
                Some(live) => live.store.len(),
                None => self.state_read().points.len(),
            },
            Err(_) => self.state_read().points.len(),
        }
    }

    /// Epoch publications performed so far — the O(n) store/cover
    /// flattens a first post-batch read pays. `ingest` itself never
    /// flattens, so a point-at-a-time feeder followed by one query
    /// publishes once, not once per point.
    pub fn publish_count(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// A handle to the current epoch's point snapshot. Shared (a
    /// refcount bump) for every engine built or ingested in-process;
    /// an engine whose points alias a zero-copy loaded artifact pays
    /// one clone pass here to materialize the `Arc` — engine-internal
    /// paths never do.
    pub fn points_arc(&self) -> Arc<[P]> {
        self.state().points.to_arc()
    }

    /// Copied-bytes accounting from the artifact load that produced
    /// this engine, or `None` for engines built in-process. A
    /// zero-copy load (aligned artifact, [`mdbscan_metric::VectorBlock`]
    /// workload via the self-contained API) reports point and metric
    /// copied bytes independent of the dataset size.
    pub fn load_stats(&self) -> Option<crate::persist::LoadStats> {
        self.load_stats
    }

    /// The metric the engine owns.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// A cheap handle to the current epoch's net.
    pub fn net_arc(&self) -> Arc<RadiusGuidedNet> {
        Arc::clone(&self.state().net)
    }

    /// The net radius `r̄` (fixed at build time).
    pub fn rbar(&self) -> f64 {
        self.rbar
    }

    /// Number of net centers `|E|` at the current epoch (pending
    /// batches included; never forces a publication). As with
    /// [`MetricDbscan::num_points`], a poisoned writer falls back to
    /// the last published epoch.
    pub fn num_centers(&self) -> usize {
        match self.writer.lock() {
            Ok(writer) => match writer.as_ref() {
                Some(live) => live.net.num_centers(),
                None => self.state_read().net.centers.len(),
            },
            Err(_) => self.state_read().net.centers.len(),
        }
    }

    /// The default thread knob (set at build time).
    pub fn parallel(&self) -> ParallelConfig {
        self.parallel
    }

    /// The default pruning policy (set at build time).
    pub fn pruning(&self) -> PruningConfig {
        self.pruning
    }

    /// The candidate-generation machinery (set at build time).
    pub fn candidate_index(&self) -> CandidateIndex {
        self.candidate_index
    }

    /// Snapshot of the cache counters and occupancy.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache_lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            upgrades: self.upgrade_count.load(Ordering::Relaxed),
            entries: cache.fragments.entries.len(),
            covertree_cached: !cache.covertree.entries.is_empty(),
            adjacency_hits: self.adj_hits.load(Ordering::Relaxed),
            adjacency_misses: self.adj_misses.load(Ordering::Relaxed),
            adjacency_entries: cache.adjacency.entries.len(),
            grid_hits: self.grid_hits.load(Ordering::Relaxed),
            grid_misses: self.grid_misses.load(Ordering::Relaxed),
            grid_entries: cache.grids.entries.len(),
            rp_hits: self.rp_hits.load(Ordering::Relaxed),
            rp_misses: self.rp_misses.load(Ordering::Relaxed),
            rp_entries: cache.rps.entries.len(),
        }
    }

    /// Approximate heap bytes held by the fragment cache (diagnostic,
    /// for capacity tuning).
    pub fn cache_heap_bytes(&self) -> usize {
        self.cache_lock().fragments.heap_bytes()
    }

    /// Drops every cached artifact (fragment/summary entries, cached
    /// adjacencies, grid indexes, random-projection indexes, and the
    /// whole-input cover trees). Counters and the ingest delta history
    /// are preserved.
    pub fn clear_cache(&self) {
        let mut cache = self.cache_lock();
        cache.fragments.entries.clear();
        cache.adjacency.entries.clear();
        cache.covertree.entries.clear();
        cache.grids.entries.clear();
        cache.rps.entries.clear();
    }

    fn count_lookup(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        self.record_cache_event(hit);
    }

    /// Reports one cache lookup to the recorder, if any. Observational
    /// only — every caller has already updated its own counters.
    fn record_cache_event(&self, hit: bool) {
        if let Some(rec) = &self.recorder {
            rec.event(
                if hit {
                    Event::CacheHit
                } else {
                    Event::CacheMiss
                },
                1,
            );
        }
    }

    /// Start of an artifact save, for the `ArtifactSave` phase; `None`
    /// without a recorder (the save paths live in `persist.rs`).
    pub(crate) fn record_save_start(&self) -> Option<Instant> {
        self.recorder.as_ref().map(|_| Instant::now())
    }

    /// End of a successful artifact save.
    pub(crate) fn record_save_done(&self, started: Option<Instant>) {
        if let (Some(rec), Some(t)) = (&self.recorder, started) {
            rec.phase(Phase::ArtifactSave, t.elapsed());
        }
    }

    /// Exact metric DBSCAN (§3.1) at the current epoch; see
    /// [`EngineSnapshot::exact`].
    pub fn exact(&self, params: &DbscanParams) -> Result<Run, DbscanError> {
        self.snapshot().exact(params)
    }

    /// Exact metric DBSCAN with explicit configuration at the current
    /// epoch; see [`EngineSnapshot::exact_with`].
    pub fn exact_with(&self, params: &DbscanParams, cfg: &ExactConfig) -> Result<Run, DbscanError> {
        self.snapshot().exact_with(params, cfg)
    }

    /// ρ-approximate DBSCAN (Algorithm 2) at the current epoch; see
    /// [`EngineSnapshot::approx`].
    pub fn approx(&self, params: &ApproxParams) -> Result<Run, DbscanError> {
        self.snapshot().approx(params)
    }

    /// Exact DBSCAN via a cover-tree-derived net (§3.2) at the current
    /// epoch; see [`EngineSnapshot::covertree`].
    pub fn covertree(&self, params: &DbscanParams) -> Result<Run, DbscanError> {
        self.snapshot().covertree(params)
    }

    /// As [`MetricDbscan::covertree`], with explicit configuration.
    pub fn covertree_with(
        &self,
        params: &DbscanParams,
        cfg: &ExactConfig,
    ) -> Result<Run, DbscanError> {
        self.snapshot().covertree_with(params, cfg)
    }
}

impl<P: Clone + Sync, M: BatchMetric<P>> MetricDbscan<P, M> {
    /// Ingests one point; see [`MetricDbscan::ingest`].
    pub fn ingest_one(&self, point: P) -> Result<IngestReport, DbscanError> {
        self.ingest(std::iter::once(point))
    }

    /// Appends a batch of points and assigns a new epoch.
    ///
    /// The net is maintained by the radius-guided first-fit rule
    /// (streaming pass 1): each point joins the ball of the first
    /// center within `r̄`, else becomes a new center — so its
    /// `dis(p, c_p)` pruning anchor is recorded exactly like at build
    /// time. Writers are serialized behind one mutex; concurrent
    /// readers keep answering from their epoch's snapshot throughout
    /// and observe the new epoch only on their next query. An empty
    /// batch assigns nothing.
    ///
    /// The per-ingest cost is proportional to the **batch**, not to
    /// `n`: the first-fit scan walks the chunked store in place, and
    /// the O(n) flatten into a contiguous published snapshot (a clone
    /// pass — zero distance evaluations) is deferred to the first read
    /// after the batch. Feeding one point at a time is therefore O(n)
    /// total in copies, not O(n²). Reads that only inspect counters
    /// ([`MetricDbscan::epoch`], [`MetricDbscan::num_points`],
    /// [`MetricDbscan::num_centers`]) never force the publication.
    ///
    /// For engines built with [`NetStrategy::RadiusGuided`] the result
    /// is bit-identical to a fresh build over the concatenated
    /// sequence, for any batch split (the module-level determinism
    /// contract) — lazy publication changes *when* the snapshot is
    /// materialized, never what it contains.
    ///
    /// # Errors
    ///
    /// [`DbscanError::Poisoned`] when an earlier ingest panicked
    /// mid-mutation (a panicking user metric, typically): the writer
    /// state can no longer be trusted, so further mutation is refused.
    /// Queries keep serving the last published epoch.
    pub fn ingest(&self, points: impl IntoIterator<Item = P>) -> Result<IngestReport, DbscanError> {
        let batch: Vec<P> = points.into_iter().collect();
        let ingest_started = self.recorder.as_ref().map(|_| Instant::now());
        let mut writer = self.writer_lock()?;
        if batch.is_empty() {
            return Ok(match writer.as_ref() {
                Some(live) => IngestReport {
                    epoch: live.epoch,
                    added_points: 0,
                    new_centers: 0,
                    dirty_balls: 0,
                    num_points: live.store.len(),
                    num_centers: live.net.num_centers(),
                    covered: live.net.covered(),
                },
                None => {
                    let state = self.state_read();
                    IngestReport {
                        epoch: state.epoch,
                        added_points: 0,
                        new_centers: 0,
                        dirty_balls: 0,
                        num_points: state.points.len(),
                        num_centers: state.net.centers.len(),
                        covered: state.net.covered,
                    }
                }
            });
        }
        let live = writer.get_or_insert_with(|| {
            // Writer was never initialized, so nothing is pending and
            // `current` is exactly the engine's latest state.
            let state = self.state_read();
            IngestState {
                store: ChunkedStore::from_initial(state.points.clone()),
                net: IncrementalNet::from_net(&state.net, self.max_centers),
                epoch: state.epoch,
            }
        });
        let first = live.store.len();
        live.store.append(batch);
        let delta = live.net.ingest_from(&live.store, first, &self.metric);
        live.epoch += 1;
        let epoch = live.epoch;
        {
            let mut cache = self.cache_lock();
            cache.deltas.push_back(EpochDelta {
                epoch,
                old_num_points: first,
                dirty_balls: delta.dirty_balls.clone(),
            });
            while cache.deltas.len() > DELTA_HISTORY {
                cache.deltas.pop_front();
            }
        }
        self.pending_epoch.store(epoch, Ordering::Release);
        let report = IngestReport {
            epoch,
            added_points: delta.added_points,
            new_centers: delta.new_centers,
            dirty_balls: delta.dirty_balls.len(),
            num_points: live.store.len(),
            num_centers: live.net.num_centers(),
            covered: live.net.covered(),
        };
        if let (Some(rec), Some(started)) = (&self.recorder, ingest_started) {
            rec.phase(Phase::IngestBatch, started.elapsed());
            rec.event(Event::PointsIngested, report.added_points as u64);
        }
        Ok(report)
    }

    /// Streaming ρ-approximate DBSCAN (Algorithm 3) replayed over the
    /// current epoch's points; see [`EngineSnapshot::streaming`].
    pub fn streaming(&self, params: &ApproxParams) -> Result<Run, DbscanError> {
        self.snapshot().streaming(params)
    }

    /// Opens a fresh Algorithm-3 session borrowing the engine's metric,
    /// thread knob, and pruning policy, to be driven pass-by-pass over
    /// an **external** stream (`pass1_observe* → finish_pass1 →
    /// pass2_observe* → finish_pass2 → pass3_label*`). The session
    /// stores only `O((Δ/ρε)^D + z)` points — it never touches the
    /// engine's own data.
    pub fn streaming_session(&self, params: &ApproxParams) -> StreamingApproxDbscan<'_, P, M> {
        StreamingApproxDbscan::new(&self.metric, params)
            .with_parallel(self.parallel)
            .with_pruning(self.pruning)
    }
}

/// One pinned epoch of a [`MetricDbscan`]: an immutable point snapshot
/// plus its net, answering the same four entry points as the engine —
/// always from this epoch, regardless of later ingests. Obtained via
/// [`MetricDbscan::snapshot`]; cheap to take and to drop.
pub struct EngineSnapshot<'e, P, M> {
    pub(crate) engine: &'e MetricDbscan<P, M>,
    pub(crate) state: Arc<EpochState<P>>,
}

impl<'e, P: Clone + Sync, M: BatchMetric<P>> EngineSnapshot<'e, P, M> {
    /// The epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.state.epoch
    }

    /// The snapshot's points.
    pub fn points(&self) -> &[P] {
        &self.state.points
    }

    /// Number of points at this epoch.
    pub fn num_points(&self) -> usize {
        self.state.points.len()
    }

    /// The snapshot's net.
    pub fn net(&self) -> &RadiusGuidedNet {
        &self.state.net
    }

    /// Number of net centers `|E|` at this epoch.
    pub fn num_centers(&self) -> usize {
        self.state.net.centers.len()
    }

    fn view(&self) -> NetView<'_> {
        NetView::of(&self.state.net)
    }

    fn check_usable(&self, limit: f64) -> Result<(), DbscanError> {
        if !self.state.net.covered {
            return Err(DbscanError::IndexNotCovering);
        }
        if self.state.net.rbar > limit * (1.0 + 1e-9) {
            return Err(DbscanError::IndexTooCoarse {
                rbar: self.state.net.rbar,
                limit,
            });
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        algorithm: AlgorithmKind,
        t0: Instant,
        hit: bool,
        pruning: PruneStats,
        candidates: CandidateStats,
        rp: RpStats,
        detail: RunDetail,
    ) -> RunReport {
        let report = RunReport {
            algorithm,
            epoch: self.state.epoch,
            total_secs: t0.elapsed().as_secs_f64(),
            cache_hit: hit,
            cache_hits: self.engine.hits.load(Ordering::Relaxed),
            cache_misses: self.engine.misses.load(Ordering::Relaxed),
            pruning,
            candidates,
            rp,
            detail,
        };
        if let Some(rec) = &self.engine.recorder {
            record_run_phases(rec.as_ref(), &report);
        }
        report
    }

    /// Resolves this snapshot's ε-aligned grid index, or `None` to stay
    /// on the generic path: the engine must have opted into
    /// [`CandidateIndex::Grid`] *and* the metric must expose a
    /// coordinate view of dimension `1..=GRID_MAX_DIM`.
    ///
    /// A same-epoch cached grid is a hit; otherwise the newest
    /// older-epoch grid at the same cell side is *extended* by the
    /// appended points' coordinates (counted as an upgrade). Either way
    /// the resolution performs **zero distance evaluations** —
    /// coordinate extraction and binning never consult the metric.
    fn resolve_grid(&self, eps: f64) -> Option<Arc<GridIndex>> {
        let engine = self.engine;
        if engine.candidate_index != CandidateIndex::Grid {
            return None;
        }
        let dim = engine.metric.grid_coords(&[], &mut Vec::new())?;
        if dim == 0 || dim > GRID_MAX_DIM {
            return None;
        }
        let cell = eps / (dim as f64).sqrt();
        let probe_started = engine.recorder.as_ref().map(|_| Instant::now());
        let finish = |g: Arc<GridIndex>| {
            if let (Some(rec), Some(t)) = (&engine.recorder, probe_started) {
                rec.phase(Phase::CandidateProbe, t.elapsed());
            }
            Some(g)
        };
        let key = GridKey {
            epoch: self.state.epoch,
            cell_bits: cell.to_bits(),
        };
        let (found, base) = {
            let mut cache = engine.cache_lock();
            match cache.grids.promote(&key).map(Arc::clone) {
                Some(g) => (Some(g), None),
                None => {
                    // Newest older-epoch grid at the same cell side:
                    // points are append-only, so it covers a prefix.
                    let mut best: Option<(u64, Arc<GridIndex>)> = None;
                    for (k, v) in &cache.grids.entries {
                        if k.cell_bits == key.cell_bits
                            && k.epoch < key.epoch
                            && best.as_ref().is_none_or(|(e, _)| k.epoch > *e)
                        {
                            best = Some((k.epoch, Arc::clone(v)));
                        }
                    }
                    (None, best.map(|(_, g)| g))
                }
            }
        };
        if let Some(g) = found {
            engine.grid_hits.fetch_add(1, Ordering::Relaxed);
            engine.record_cache_event(true);
            return finish(g);
        }
        engine.grid_misses.fetch_add(1, Ordering::Relaxed);
        engine.record_cache_event(false);
        let points: &[P] = &self.state.points;
        let built = match base {
            Some(b) if b.len() == points.len() => {
                engine.upgrade_count.fetch_add(1, Ordering::Relaxed);
                b
            }
            Some(b) => {
                let mut coords = Vec::with_capacity((points.len() - b.len()) * dim);
                engine.metric.grid_coords(&points[b.len()..], &mut coords);
                engine.upgrade_count.fetch_add(1, Ordering::Relaxed);
                Arc::new(b.extend(&coords))
            }
            None => {
                let mut coords = Vec::with_capacity(points.len() * dim);
                engine.metric.grid_coords(points, &mut coords);
                Arc::new(GridIndex::build(dim, cell, coords))
            }
        };
        engine.cache_lock().grids.insert(key, Arc::clone(&built));
        finish(built)
    }

    /// Resolves this snapshot's random-projection index, or `None` to
    /// stay on the generic path: the engine must have opted into
    /// [`CandidateIndex::RandomProjection`] *and* the metric must expose
    /// a coordinate view (any dimension).
    ///
    /// The index is ε-independent, so the cache is keyed by epoch alone.
    /// A same-epoch cached index is a hit; otherwise the newest
    /// older-epoch index is *extended* by the appended points'
    /// coordinates (counted as an upgrade) — the projection lists store
    /// their values, so an extended index is bit-identical to a fresh
    /// build over the concatenated sequence. Resolution performs **zero
    /// distance evaluations**.
    fn resolve_rp(&self) -> Option<Arc<RpIndex>> {
        let engine = self.engine;
        let CandidateIndex::RandomProjection(cfg) = engine.candidate_index else {
            return None;
        };
        let dim = engine.metric.grid_coords(&[], &mut Vec::new())?;
        if dim == 0 {
            return None;
        }
        let probe_started = engine.recorder.as_ref().map(|_| Instant::now());
        let finish = |r: Arc<RpIndex>| {
            if let (Some(rec), Some(t)) = (&engine.recorder, probe_started) {
                rec.phase(Phase::CandidateProbe, t.elapsed());
            }
            Some(r)
        };
        let key = self.state.epoch;
        let (found, base) = {
            let mut cache = engine.cache_lock();
            match cache.rps.promote(&key).map(Arc::clone) {
                Some(r) => (Some(r), None),
                None => {
                    // Newest older-epoch index: points are append-only,
                    // so it covers a prefix of this epoch's points.
                    let mut best: Option<(u64, Arc<RpIndex>)> = None;
                    for (k, v) in &cache.rps.entries {
                        if *k < key && best.as_ref().is_none_or(|(e, _)| *k > *e) {
                            best = Some((*k, Arc::clone(v)));
                        }
                    }
                    (None, best.map(|(_, r)| r))
                }
            }
        };
        if let Some(r) = found {
            engine.rp_hits.fetch_add(1, Ordering::Relaxed);
            engine.record_cache_event(true);
            return finish(r);
        }
        engine.rp_misses.fetch_add(1, Ordering::Relaxed);
        engine.record_cache_event(false);
        let points: &[P] = &self.state.points;
        let built = match base {
            Some(b) if b.len() == points.len() => {
                engine.upgrade_count.fetch_add(1, Ordering::Relaxed);
                b
            }
            Some(b) => {
                let mut coords = Vec::with_capacity((points.len() - b.len()) * dim);
                engine.metric.grid_coords(&points[b.len()..], &mut coords);
                engine.upgrade_count.fetch_add(1, Ordering::Relaxed);
                Arc::new(b.extend(&coords))
            }
            None => {
                let mut coords = Vec::with_capacity(points.len() * dim);
                engine.metric.grid_coords(points, &mut coords);
                Arc::new(RpIndex::build(dim, &coords, cfg))
            }
        };
        engine.cache_lock().rps.insert(key, Arc::clone(&built));
        finish(built)
    }

    /// Consults the epoch+`ε`-keyed adjacency cache. A same-epoch entry
    /// is a hit; otherwise a Gonzalez-kind adjacency from an older
    /// epoch is *extended* by the new-center rows (counted as an
    /// upgrade, stored under this epoch). `None` means "build it" (and
    /// hand it back via `store_adjacency`).
    fn lookup_adjacency(
        &self,
        kind: NetKind,
        level: i32,
        threshold: f64,
        pruned: bool,
        parallel: &ParallelConfig,
    ) -> (AdjKey, Option<Arc<CenterAdjacency>>) {
        let key = AdjKey {
            kind,
            epoch: self.state.epoch,
            level,
            threshold_bits: threshold.to_bits(),
            pruned,
        };
        let engine = self.engine;
        let (found, base) = {
            let mut cache = engine.cache_lock();
            match cache.adjacency.promote(&key).map(Arc::clone) {
                Some(adj) => (Some(adj), None),
                None if kind == NetKind::Gonzalez => {
                    // Newest older-epoch entry at the same threshold:
                    // centers are append-only, so it covers a prefix.
                    let mut best: Option<(u64, Arc<CenterAdjacency>)> = None;
                    for (k, v) in &cache.adjacency.entries {
                        if k.kind == key.kind
                            && k.level == key.level
                            && k.threshold_bits == key.threshold_bits
                            && k.pruned == key.pruned
                            && k.epoch < key.epoch
                            && best.as_ref().is_none_or(|(e, _)| k.epoch > *e)
                        {
                            best = Some((k.epoch, Arc::clone(v)));
                        }
                    }
                    (None, best.map(|(_, adj)| adj))
                }
                None => (None, None),
            }
        };
        if found.is_some() {
            engine.adj_hits.fetch_add(1, Ordering::Relaxed);
            engine.record_cache_event(true);
            return (key, found);
        }
        engine.adj_misses.fetch_add(1, Ordering::Relaxed);
        engine.record_cache_event(false);
        let Some(base) = base else {
            return (key, None);
        };
        let centers = &self.state.net.centers;
        let extended = if base.len() == centers.len() {
            // No new centers since the base epoch: the adjacency is
            // identical (membership depends only on the center set).
            base
        } else {
            Arc::new(CenterAdjacency::extend(
                &base,
                &self.state.points,
                &engine.metric,
                centers,
                parallel,
            ))
        };
        engine.upgrade_count.fetch_add(1, Ordering::Relaxed);
        self.store_adjacency(key, &extended);
        (key, Some(extended))
    }

    fn store_adjacency(&self, key: AdjKey, adjacency: &Arc<CenterAdjacency>) {
        self.engine
            .cache_lock()
            .adjacency
            .insert(key, Arc::clone(adjacency));
    }

    /// Shared Steps-1–3 driver with fragment- and adjacency-cache
    /// consultation, plus cross-epoch incremental upgrades.
    fn run_steps_cached(
        &self,
        view: &NetView<'_>,
        params: &DbscanParams,
        cfg: &ExactConfig,
        kind: NetKind,
        level: i32,
        grid: Option<Arc<GridIndex>>,
    ) -> (Clustering, ExactStats, bool) {
        let engine = self.engine;
        // Only the default Step-1/2 shape is cacheable: the ablation
        // toggles change what the artifacts contain.
        let cacheable = cfg.dense_shortcut && cfg.cover_tree_merge;
        let key = CacheKey {
            kind,
            epoch: self.state.epoch,
            eps_bits: params.eps().to_bits(),
            min_pts: params.min_pts(),
            rho_bits: None,
        };
        // Same-epoch hit, else (Gonzalez only — cover-tree nets change
        // wholesale per epoch) an older epoch's artifacts plus the
        // ingest deltas separating them from this epoch.
        let mut upgrade_base: Option<(Arc<StepArtifacts>, Vec<u32>)> = None;
        let cached: Option<Arc<StepArtifacts>> = if cacheable {
            let mut cache = engine.cache_lock();
            let found = cache.fragments.get_steps(&key);
            if found.is_none() && kind == NetKind::Gonzalez {
                if let Some((from, art)) = cache.fragments.best_steps_base(&key) {
                    if let Some(dirty) = cache.dirty_since(from, key.epoch, art.is_core.len()) {
                        upgrade_base = Some((art, dirty));
                    }
                }
            }
            drop(cache);
            engine.count_lookup(found.is_some());
            found
        } else {
            None
        };
        let hit = cached.is_some();
        if upgrade_base.is_some() {
            engine.upgrade_count.fetch_add(1, Ordering::Relaxed);
        }
        let threshold = 2.0 * view.rbar + params.eps();
        let (adj_key, adj_cached) =
            self.lookup_adjacency(kind, level, threshold, cfg.pruning.enabled, &cfg.parallel);
        let adj_was_cached = adj_cached.is_some();
        let outcome = run_exact_steps(
            &self.state.points,
            &engine.metric,
            view,
            params,
            cfg,
            StepsReuse {
                artifacts: cached.as_deref(),
                upgrade: upgrade_base.as_ref().map(|(art, dirty)| StepsUpgrade {
                    artifacts: art,
                    dirty_balls: dirty,
                }),
                adjacency: adj_cached,
                grid,
            },
        );
        if !adj_was_cached {
            self.store_adjacency(adj_key, &outcome.adjacency);
        }
        if cacheable {
            if let Some(artifacts) = outcome.fresh_artifacts {
                engine
                    .cache_lock()
                    .fragments
                    .insert(key, CachedArtifacts::Steps(Arc::new(artifacts)));
            }
        }
        (Clustering::from_labels(outcome.labels), outcome.stats, hit)
    }

    /// Exact metric DBSCAN (§3.1) at this snapshot's epoch, with the
    /// engine's default configuration. Requires `r̄ ≤ ε/2`.
    pub fn exact(&self, params: &DbscanParams) -> Result<Run, DbscanError> {
        let cfg = ExactConfig {
            parallel: self.engine.parallel,
            pruning: self.engine.pruning,
            ..ExactConfig::default()
        };
        self.exact_with(params, &cfg)
    }

    /// Exact metric DBSCAN with explicit configuration (ablation toggles,
    /// pruning override, per-query thread override, distance counting).
    pub fn exact_with(&self, params: &DbscanParams, cfg: &ExactConfig) -> Result<Run, DbscanError> {
        let t0 = Instant::now();
        self.check_usable(params.eps() / 2.0)?;
        let grid = self.resolve_grid(params.eps());
        let (clustering, stats, hit) =
            self.run_steps_cached(&self.view(), params, cfg, NetKind::Gonzalez, 0, grid);
        let report = self.report(
            AlgorithmKind::Exact,
            t0,
            hit,
            stats.pruning,
            stats.candidates,
            RpStats::default(),
            RunDetail::Exact(stats),
        );
        Ok(Run { clustering, report })
    }

    /// ρ-approximate DBSCAN (Algorithm 2). Requires `r̄ ≤ ρε/2`.
    ///
    /// Repeated probes at the same `(epoch, ε, MinPts, ρ)` replay the
    /// merged summary from the artifact LRU (bit-identical labels, the
    /// summary construction and merge skipped); the `ε`-keyed adjacency
    /// cache is shared with the exact pipeline's entries at matching
    /// thresholds and extends across epochs.
    pub fn approx(&self, params: &ApproxParams) -> Result<Run, DbscanError> {
        let t0 = Instant::now();
        self.check_usable(params.rbar())?;
        let engine = self.engine;
        let view = self.view();
        let key = CacheKey {
            kind: NetKind::Gonzalez,
            epoch: self.state.epoch,
            eps_bits: params.eps().to_bits(),
            min_pts: params.min_pts(),
            rho_bits: Some(params.rho().to_bits()),
        };
        let cached: Option<Arc<ApproxArtifacts>> = {
            let found = engine.cache_lock().fragments.get_approx(&key);
            engine.count_lookup(found.is_some());
            found
        };
        let hit = cached.is_some();
        let threshold = approx_threshold(view.rbar, params);
        let (adj_key, adj_cached) = self.lookup_adjacency(
            NetKind::Gonzalez,
            0,
            threshold,
            engine.pruning.enabled,
            &engine.parallel,
        );
        let adj_was_cached = adj_cached.is_some();
        let grid = self.resolve_grid(params.eps());
        let rp = self.resolve_rp();
        let outcome = run_approx(
            &self.state.points,
            &engine.metric,
            &view,
            params,
            &engine.parallel,
            &engine.pruning,
            ApproxReuse {
                artifacts: cached.as_deref(),
                adjacency: adj_cached,
                grid,
                rp,
            },
        );
        if !adj_was_cached {
            self.store_adjacency(adj_key, &outcome.adjacency);
        }
        if let Some(artifacts) = outcome.fresh_artifacts {
            engine
                .cache_lock()
                .fragments
                .insert(key, CachedArtifacts::Approx(Arc::new(artifacts)));
        }
        let report = self.report(
            AlgorithmKind::Approx,
            t0,
            hit,
            outcome.stats.pruning,
            outcome.stats.candidates,
            outcome.stats.rp,
            RunDetail::Approx(outcome.stats),
        );
        Ok(Run {
            clustering: Clustering::from_labels(outcome.labels),
            report,
        })
    }

    /// Exact DBSCAN via a cover-tree-derived net (§3.2, Theorem 1), with
    /// the engine's default configuration.
    pub fn covertree(&self, params: &DbscanParams) -> Result<Run, DbscanError> {
        let cfg = ExactConfig {
            parallel: self.engine.parallel,
            pruning: self.engine.pruning,
            ..ExactConfig::default()
        };
        self.covertree_with(params, &cfg)
    }

    /// As [`EngineSnapshot::covertree`], with explicit configuration.
    ///
    /// Unlike [`EngineSnapshot::exact`] this path does not depend on
    /// `r̄`: the whole-input cover tree is built lazily on the first
    /// call (sequentially — inserts depend on the evolving tree) and
    /// cached per epoch. Across epochs the cached tree **grows by
    /// insertion** of the new points — the grown tree is bit-identical
    /// to a from-scratch build, because building *is* sequential
    /// insertion in index order — after which any `ε` extracts its net
    /// with zero further distance evaluations.
    pub fn covertree_with(
        &self,
        params: &DbscanParams,
        cfg: &ExactConfig,
    ) -> Result<Run, DbscanError> {
        let t0 = Instant::now();
        let engine = self.engine;
        let n = self.state.points.len();
        let t = Instant::now();
        let (skeleton, tree_hit) = {
            let (cached, base) = {
                let mut cache = engine.cache_lock();
                match cache.covertree.promote(&self.state.epoch).map(Arc::clone) {
                    Some(s) => (Some(s), None),
                    None => {
                        // Largest cached prefix tree (points are
                        // append-only, so any smaller epoch's tree is a
                        // prefix of this epoch's).
                        let mut best: Option<Arc<CoverTreeSkeleton>> = None;
                        for (_, s) in &cache.covertree.entries {
                            if s.len() <= n && best.as_ref().is_none_or(|b| s.len() > b.len()) {
                                best = Some(Arc::clone(s));
                            }
                        }
                        (None, best)
                    }
                }
            };
            match (cached, base) {
                (Some(s), _) => (s, true),
                (None, base) => {
                    // Build (or grow) outside the lock so concurrent
                    // queries are not stalled behind the sequential
                    // construction; if two threads race, both produce
                    // the same (deterministic) tree and the first
                    // insertion wins.
                    let built = match base {
                        Some(b) if b.len() == n => {
                            engine.upgrade_count.fetch_add(1, Ordering::Relaxed);
                            b
                        }
                        Some(b) => {
                            let from = b.len();
                            let mut tree = CoverTree::from_skeleton(
                                &self.state.points,
                                &engine.metric,
                                (*b).clone(),
                            );
                            for i in from..n {
                                tree.insert(i);
                            }
                            engine.upgrade_count.fetch_add(1, Ordering::Relaxed);
                            Arc::new(tree.into_skeleton())
                        }
                        None => {
                            let tree = CoverTree::build(&self.state.points, &engine.metric);
                            Arc::new(tree.into_skeleton())
                        }
                    };
                    let mut cache = engine.cache_lock();
                    let kept = match cache.covertree.promote(&self.state.epoch) {
                        Some(existing) => Arc::clone(existing),
                        None => {
                            cache.covertree.insert(self.state.epoch, Arc::clone(&built));
                            built
                        }
                    };
                    (kept, false)
                }
            }
        };
        engine.count_lookup(tree_hit);
        let tree =
            CoverTree::from_skeleton(&self.state.points, &engine.metric, (*skeleton).clone());
        let tree_secs = t.elapsed().as_secs_f64();

        let level = covertree_level(params.eps());
        let t = Instant::now();
        let net = tree.extract_net(level);
        let net_secs = t.elapsed().as_secs_f64();
        debug_assert!(net.cover_radius <= params.eps() / 2.0 * (1.0 + 1e-9));
        let cover_sets = Csr::from_assignment(&net.assignment, net.centers.len());
        let view = NetView {
            rbar: net.cover_radius,
            centers: &net.centers,
            assignment: &net.assignment,
            cover_sets: &cover_sets,
            dist_to_center: None,
        };
        let grid = self.resolve_grid(params.eps());
        let (clustering, steps, frag_hit) =
            self.run_steps_cached(&view, params, cfg, NetKind::CoverTree, level, grid);
        let detail = RunDetail::CoverTree(CoverTreeExactStats {
            tree_secs,
            net_secs,
            level,
            n_centers: net.centers.len(),
            steps,
        });
        let report = self.report(
            AlgorithmKind::CoverTree,
            t0,
            tree_hit || frag_hit,
            steps.pruning,
            steps.candidates,
            RpStats::default(),
            detail,
        );
        Ok(Run { clustering, report })
    }
}

impl<'e, P: Clone + Sync, M: BatchMetric<P>> EngineSnapshot<'e, P, M> {
    /// Streaming ρ-approximate DBSCAN (Algorithm 3) replayed over this
    /// snapshot's points — three in-memory passes with the same
    /// validation and labeling semantics a true stream would see. Useful
    /// for cross-checking a deployment's streaming parameters against a
    /// held dataset; for unbounded external streams use
    /// [`MetricDbscan::streaming_session`].
    pub fn streaming(&self, params: &ApproxParams) -> Result<Run, DbscanError> {
        let t0 = Instant::now();
        let engine = self.engine;
        let rp = self.resolve_rp();
        let (clustering, session) = StreamingApproxDbscan::run_indexed(
            &engine.metric,
            params,
            &engine.parallel,
            &engine.pruning,
            rp,
            || self.state.points.iter().cloned(),
        )?;
        let stats = session.stats();
        let detail = RunDetail::Streaming {
            stats,
            footprint: session.footprint(),
        };
        let report = self.report(
            AlgorithmKind::Streaming,
            t0,
            false,
            stats.pruning,
            CandidateStats::default(),
            stats.rp,
            detail,
        );
        Ok(Run { clustering, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn grid() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                v.push(vec![i as f64, j as f64]);
            }
        }
        v
    }

    fn engine(rbar: f64) -> MetricDbscan<Vec<f64>, Euclidean> {
        MetricDbscan::builder(grid(), Euclidean)
            .rbar(rbar)
            .build()
            .unwrap()
    }

    #[test]
    fn engine_is_send_sync_and_arc_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricDbscan<Vec<f64>, Euclidean>>();
        assert_send_sync::<Arc<MetricDbscan<String, mdbscan_metric::Levenshtein>>>();
    }

    #[test]
    fn builder_validation() {
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(matches!(
            MetricDbscan::builder(empty, Euclidean).rbar(0.5).build(),
            Err(DbscanError::EmptyInput)
        ));
        assert!(matches!(
            MetricDbscan::builder(grid(), Euclidean).build(),
            Err(DbscanError::RadiusNotSet)
        ));
        assert!(matches!(
            MetricDbscan::builder(grid(), Euclidean).rbar(-2.0).build(),
            Err(DbscanError::InvalidRadius(_))
        ));
        assert!(matches!(
            MetricDbscan::builder(grid(), Euclidean)
                .rbar(f64::NAN)
                .build(),
            Err(DbscanError::InvalidRadius(_))
        ));
        assert!(matches!(
            MetricDbscan::builder(grid(), Euclidean)
                .rbar(0.5)
                .first_center(10_000)
                .build(),
            Err(DbscanError::InvalidFirstCenter { .. })
        ));
    }

    #[test]
    fn coarse_and_truncated_nets_rejected() {
        let e = engine(2.0);
        assert!(matches!(
            e.exact(&DbscanParams::new(1.5, 4).unwrap()),
            Err(DbscanError::IndexTooCoarse { .. })
        ));
        assert!(e.exact(&DbscanParams::new(4.0, 4).unwrap()).is_ok());
        let truncated = MetricDbscan::builder(grid(), Euclidean)
            .rbar(0.4)
            .max_centers(2)
            .build()
            .unwrap();
        assert!(matches!(
            truncated.exact(&DbscanParams::new(1.0, 4).unwrap()),
            Err(DbscanError::IndexNotCovering)
        ));
    }

    #[test]
    fn repeated_query_hits_fragment_cache_with_identical_labels() {
        let e = engine(0.5);
        let params = DbscanParams::new(1.0, 4).unwrap();
        let cold = e.exact(&params).unwrap();
        assert!(!cold.report.cache_hit);
        assert_eq!(cold.report.cache_misses, 1);
        assert_eq!(cold.report.epoch, 0);
        let warm = e.exact(&params).unwrap();
        assert!(warm.report.cache_hit);
        assert_eq!(warm.report.cache_hits, 1);
        assert_eq!(cold.clustering, warm.clustering);
        // A different (ε, MinPts) misses, then hits on repeat.
        let params2 = DbscanParams::new(2.0, 6).unwrap();
        assert!(!e.exact(&params2).unwrap().report.cache_hit);
        assert!(e.exact(&params2).unwrap().report.cache_hit);
        let stats = e.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 2, 2));
        assert!(e.cache_heap_bytes() > 0);
        e.clear_cache();
        assert_eq!(e.cache_stats().entries, 0);
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let e = MetricDbscan::builder(grid(), Euclidean)
            .rbar(0.5)
            .cache_capacity(0)
            .build()
            .unwrap();
        let params = DbscanParams::new(1.0, 4).unwrap();
        let a = e.exact(&params).unwrap();
        let b = e.exact(&params).unwrap();
        assert!(!b.report.cache_hit);
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn lru_evicts_oldest_entry() {
        let e = MetricDbscan::builder(grid(), Euclidean)
            .rbar(0.5)
            .cache_capacity(2)
            .build()
            .unwrap();
        let p1 = DbscanParams::new(1.0, 4).unwrap();
        let p2 = DbscanParams::new(1.5, 4).unwrap();
        let p3 = DbscanParams::new(2.0, 4).unwrap();
        e.exact(&p1).unwrap();
        e.exact(&p2).unwrap();
        e.exact(&p3).unwrap(); // evicts p1
        assert_eq!(e.cache_stats().entries, 2);
        assert!(!e.exact(&p1).unwrap().report.cache_hit, "p1 was evicted");
        assert!(e.exact(&p3).unwrap().report.cache_hit, "p3 is resident");
    }

    #[test]
    fn all_four_entry_points_agree_where_they_should() {
        let pts = grid();
        let e = MetricDbscan::builder(pts.clone(), Euclidean)
            .rbar(0.5)
            .build()
            .unwrap();
        let params = DbscanParams::new(1.0, 4).unwrap();
        let exact = e.exact(&params).unwrap();
        let tree = e.covertree(&params).unwrap();
        // Both are exact solvers: identical partition.
        assert!(exact.clustering.same_partition(&tree.clustering));
        assert_eq!(tree.report.algorithm, AlgorithmKind::CoverTree);
        // Second covertree call reuses the whole-input tree.
        let tree2 = e.covertree(&params).unwrap();
        assert!(tree2.report.cache_hit);
        assert_eq!(tree2.clustering, tree.clustering);
        // Approx + streaming run and report their stats.
        let aparams = ApproxParams::new(1.0, 4, 1.0).unwrap();
        let approx = e.approx(&aparams).unwrap();
        assert!(approx.report.approx_stats().is_some());
        let streaming = e.streaming(&aparams).unwrap();
        assert!(streaming.report.streaming_footprint().is_some());
        assert_eq!(
            streaming.clustering.len(),
            pts.len(),
            "streaming labels every point"
        );
    }

    #[test]
    fn engine_matches_free_function() {
        let pts = grid();
        let e = MetricDbscan::builder(pts.clone(), Euclidean)
            .rbar(0.5)
            .build()
            .unwrap();
        for eps in [1.0, 1.5, 2.5] {
            let params = DbscanParams::new(eps, 4).unwrap();
            let run = e.exact(&params).unwrap();
            let fresh = crate::exact_dbscan(&pts, &Euclidean, eps, 4).unwrap();
            assert!(run.clustering.same_partition(&fresh), "eps={eps}");
        }
    }

    #[test]
    fn streaming_session_is_driveable() {
        let e = engine(0.25);
        let aparams = ApproxParams::new(1.0, 3, 0.5).unwrap();
        let mut session = e.streaming_session(&aparams);
        let stream: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 4) as f64 * 0.2, 0.0]).collect();
        for p in &stream {
            session.pass1_observe(p);
        }
        session.finish_pass1();
        for p in &stream {
            session.pass2_observe(p);
        }
        session.finish_pass2();
        assert!(session.pass3_label(&stream[0]).cluster().is_some());
    }

    #[test]
    fn ingest_bumps_epochs_and_matches_fresh_radius_guided_build() {
        let pts = grid();
        let (seed, rest) = pts.split_at(60);
        let dynamic = MetricDbscan::builder(seed.to_vec(), Euclidean)
            .rbar(0.5)
            .net_strategy(NetStrategy::RadiusGuided)
            .build()
            .unwrap();
        assert_eq!(dynamic.epoch(), 0);
        assert_eq!(
            dynamic.ingest(Vec::<Vec<f64>>::new()).unwrap().added_points,
            0
        );
        assert_eq!(dynamic.epoch(), 0, "empty batch publishes nothing");
        let report = dynamic.ingest(rest[..40].to_vec()).unwrap();
        assert_eq!((report.epoch, report.added_points), (1, 40));
        let report = dynamic.ingest_one(rest[40].clone()).unwrap();
        assert_eq!((report.epoch, report.added_points), (2, 1));
        dynamic.ingest(rest[41..].to_vec()).unwrap();
        assert_eq!(dynamic.epoch(), 3);
        assert_eq!(dynamic.num_points(), pts.len());

        let fresh = MetricDbscan::builder(pts, Euclidean)
            .rbar(0.5)
            .net_strategy(NetStrategy::RadiusGuided)
            .build()
            .unwrap();
        assert_eq!(dynamic.net_arc().centers, fresh.net_arc().centers);
        let params = DbscanParams::new(1.0, 4).unwrap();
        assert_eq!(
            dynamic.exact(&params).unwrap().clustering,
            fresh.exact(&params).unwrap().clustering
        );
    }

    #[test]
    fn old_snapshot_unaffected_by_ingest_and_caches_do_not_cross_epochs() {
        let pts = grid();
        let (seed, rest) = pts.split_at(100);
        let e = MetricDbscan::builder(seed.to_vec(), Euclidean)
            .rbar(0.5)
            .net_strategy(NetStrategy::RadiusGuided)
            .build()
            .unwrap();
        let params = DbscanParams::new(1.0, 4).unwrap();
        let snap0 = e.snapshot();
        let before = snap0.exact(&params).unwrap();
        assert!(!before.report.cache_hit);

        e.ingest(rest.to_vec()).unwrap();
        // The pinned snapshot still answers from epoch 0, as a cache hit.
        let again = snap0.exact(&params).unwrap();
        assert_eq!(again.report.epoch, 0);
        assert!(again.report.cache_hit, "same-epoch artifacts are resident");
        assert_eq!(before.clustering, again.clustering);
        assert_eq!(snap0.num_points(), 100);

        // The engine's current epoch must not hit epoch-0 artifacts...
        let after = e.exact(&params).unwrap();
        assert_eq!(after.report.epoch, 1);
        assert!(!after.report.cache_hit, "hits never cross epochs");
        // ...but may upgrade them incrementally.
        assert!(e.cache_stats().upgrades > 0, "expected incremental reuse");
        assert_eq!(after.clustering.len(), pts.len());
    }
}
