//! Error type for the DBSCAN solvers.

use std::fmt;

/// Errors produced by parameter validation and index reuse checks.
#[derive(Debug, Clone, PartialEq)]
pub enum DbscanError {
    /// `ε` must be positive and finite.
    InvalidEpsilon(f64),
    /// `MinPts` must be at least 1.
    InvalidMinPts(usize),
    /// `ρ` must be in `(0, 2]` (Theorem 3's standing assumption; values
    /// above 2 would break the summary size bound of Lemma 8).
    InvalidRho(f64),
    /// The input point set is empty.
    EmptyInput,
    /// A [`crate::GonzalezIndex`] built with radius `rbar` cannot serve a
    /// query that requires `rbar ≤ limit` (Remark 5: the net must be at
    /// least as fine as `ε/2`, resp. `ρε/2` for the approximate solver).
    IndexTooCoarse {
        /// The index's net radius.
        rbar: f64,
        /// The maximum radius admissible for the requested parameters.
        limit: f64,
    },
    /// The index was built with `max_centers` truncation and does not cover
    /// the data, so DBSCAN answers would be wrong.
    IndexNotCovering,
}

impl fmt::Display for DbscanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbscanError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
            DbscanError::InvalidMinPts(m) => write!(f, "MinPts must be >= 1, got {m}"),
            DbscanError::InvalidRho(r) => write!(f, "rho must be in (0, 2], got {r}"),
            DbscanError::EmptyInput => write!(f, "input point set is empty"),
            DbscanError::IndexTooCoarse { rbar, limit } => write!(
                f,
                "index net radius {rbar} is too coarse for this query (needs <= {limit}); \
                 rebuild the index with a smaller rbar"
            ),
            DbscanError::IndexNotCovering => {
                write!(
                    f,
                    "index was truncated by max_centers and does not cover the data"
                )
            }
        }
    }
}

impl std::error::Error for DbscanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DbscanError::InvalidEpsilon(-1.0).to_string().contains("-1"));
        assert!(DbscanError::InvalidMinPts(0).to_string().contains('0'));
        assert!(DbscanError::InvalidRho(3.0).to_string().contains('3'));
        assert!(DbscanError::EmptyInput.to_string().contains("empty"));
        assert!(DbscanError::IndexTooCoarse {
            rbar: 2.0,
            limit: 1.0
        }
        .to_string()
        .contains("rebuild"));
        assert!(DbscanError::IndexNotCovering
            .to_string()
            .contains("max_centers"));
    }
}
