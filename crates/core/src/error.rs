//! Error type for the DBSCAN solvers.

use std::fmt;

/// Errors produced by parameter validation, the [`crate::MetricDbscan`]
/// builder, and index reuse checks.
///
/// Marked `#[non_exhaustive]`: future releases may add variants (the
/// builder grew three in 0.2), so downstream `match`es need a wildcard
/// arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DbscanError {
    /// `ε` must be positive and finite.
    InvalidEpsilon(f64),
    /// `MinPts` must be at least 1.
    InvalidMinPts(usize),
    /// `ρ` must be in `(0, 2]` (Theorem 3's standing assumption; values
    /// above 2 would break the summary size bound of Lemma 8).
    InvalidRho(f64),
    /// The input point set is empty.
    EmptyInput,
    /// The net radius `r̄` handed to the engine builder must be positive
    /// and finite.
    InvalidRadius(f64),
    /// [`crate::MetricDbscanBuilder::build`] was called without
    /// [`crate::MetricDbscanBuilder::rbar`]; the radius-guided Gonzalez
    /// net has no default resolution (pick `r̄ ≤ ε₀/2` for the smallest
    /// `ε₀` you intend to query).
    RadiusNotSet,
    /// The seed-center index passed to
    /// [`crate::MetricDbscanBuilder::first_center`] is out of range.
    InvalidFirstCenter {
        /// The requested first-center index.
        first: usize,
        /// Number of points in the input.
        len: usize,
    },
    /// An engine built with radius `rbar` cannot serve a query that
    /// requires `rbar ≤ limit` (Remark 5: the net must be at least as
    /// fine as `ε/2`, resp. `ρε/2` for the approximate solver).
    IndexTooCoarse {
        /// The index's net radius.
        rbar: f64,
        /// The maximum radius admissible for the requested parameters.
        limit: f64,
    },
    /// The index was built with `max_centers` truncation and does not cover
    /// the data, so DBSCAN answers would be wrong.
    IndexNotCovering,
    /// A panic poisoned the engine's writer state mid-mutation (e.g. a
    /// user metric panicked inside [`crate::MetricDbscan::ingest`]),
    /// so the pending (unpublished) batches cannot be trusted. Queries
    /// keep serving the last **published** epoch — which is always
    /// consistent — but mutations and saves fail with this variant
    /// rather than risking a half-netted point set. Carries a short
    /// description of the poisoned component.
    Poisoned(&'static str),
    /// Reading or writing a persisted engine artifact failed at the
    /// file level (missing file, permissions, short write). Carries the
    /// OS error rendered as text.
    Io(String),
    /// A persisted engine artifact was read but failed validation —
    /// truncation, checksum mismatch, unsupported format version, a
    /// point-type or metric tag that does not match the requested load,
    /// or structurally inconsistent state. Loads fail typed; they never
    /// hand back garbage clusters.
    Format {
        /// The artifact section (or `"header"`) where validation failed.
        section: String,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for DbscanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbscanError::InvalidEpsilon(e) => {
                write!(f, "epsilon must be positive and finite, got {e}")
            }
            DbscanError::InvalidMinPts(m) => write!(f, "MinPts must be >= 1, got {m}"),
            DbscanError::InvalidRho(r) => write!(f, "rho must be in (0, 2], got {r}"),
            DbscanError::EmptyInput => write!(f, "input point set is empty"),
            DbscanError::InvalidRadius(r) => {
                write!(f, "net radius rbar must be positive and finite, got {r}")
            }
            DbscanError::RadiusNotSet => write!(
                f,
                "no net radius set: call .rbar(r) on the builder (r <= eps/2 \
                 for the smallest eps you will query)"
            ),
            DbscanError::InvalidFirstCenter { first, len } => write!(
                f,
                "first-center index {first} out of range for {len} points"
            ),
            DbscanError::IndexTooCoarse { rbar, limit } => write!(
                f,
                "index net radius {rbar} is too coarse for this query (needs <= {limit}); \
                 rebuild the index with a smaller rbar"
            ),
            DbscanError::IndexNotCovering => {
                write!(
                    f,
                    "index was truncated by max_centers and does not cover the data"
                )
            }
            DbscanError::Poisoned(what) => write!(
                f,
                "engine {what} was poisoned by a panic mid-mutation; pending \
                 ingests are quarantined (queries keep serving the last \
                 published epoch) — rebuild or reload the engine to ingest again"
            ),
            DbscanError::Io(e) => write!(f, "engine artifact i/o failed: {e}"),
            DbscanError::Format { section, reason } => {
                write!(f, "invalid engine artifact (section `{section}`): {reason}")
            }
        }
    }
}

impl std::error::Error for DbscanError {}

impl From<mdbscan_persist::PersistError> for DbscanError {
    fn from(e: mdbscan_persist::PersistError) -> Self {
        match e {
            mdbscan_persist::PersistError::Io(e) => DbscanError::Io(e),
            mdbscan_persist::PersistError::Format { section, reason } => {
                DbscanError::Format { section, reason }
            }
        }
    }
}

/// Shared input validation for everything that runs Algorithm 1 over a
/// point set (the engine builder and the one-shot free functions).
pub(crate) fn validate_points_and_rbar(len: usize, rbar: f64) -> Result<(), DbscanError> {
    if len == 0 {
        return Err(DbscanError::EmptyInput);
    }
    if !(rbar.is_finite() && rbar > 0.0) {
        return Err(DbscanError::InvalidRadius(rbar));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DbscanError::InvalidEpsilon(-1.0).to_string().contains("-1"));
        assert!(DbscanError::InvalidMinPts(0).to_string().contains('0'));
        assert!(DbscanError::InvalidRho(3.0).to_string().contains('3'));
        assert!(DbscanError::EmptyInput.to_string().contains("empty"));
        assert!(DbscanError::InvalidRadius(f64::NAN)
            .to_string()
            .contains("NaN"));
        assert!(DbscanError::RadiusNotSet.to_string().contains("rbar"));
        assert!(DbscanError::InvalidFirstCenter { first: 9, len: 3 }
            .to_string()
            .contains('9'));
        assert!(DbscanError::IndexTooCoarse {
            rbar: 2.0,
            limit: 1.0
        }
        .to_string()
        .contains("rebuild"));
        assert!(DbscanError::IndexNotCovering
            .to_string()
            .contains("max_centers"));
        assert!(DbscanError::Poisoned("writer")
            .to_string()
            .contains("writer"));
        assert!(DbscanError::Io("no such file".into())
            .to_string()
            .contains("no such file"));
        assert!(DbscanError::Format {
            section: "net".into(),
            reason: "checksum mismatch".into()
        }
        .to_string()
        .contains("net"));
    }

    #[test]
    fn persist_errors_convert_with_their_payloads() {
        use mdbscan_persist::PersistError;
        assert_eq!(
            DbscanError::from(PersistError::Io("gone".into())),
            DbscanError::Io("gone".into())
        );
        assert_eq!(
            DbscanError::from(PersistError::format("points", "truncated")),
            DbscanError::Format {
                section: "points".into(),
                reason: "truncated".into()
            }
        );
    }
}
