//! Validated parameter bundles.

use crate::error::DbscanError;

/// Parameters of (exact) DBSCAN: the neighborhood radius `ε` and the
/// density threshold `MinPts`.
///
/// Following the paper's convention (and Ester et al.'s original), a point
/// is **core** when `|B(p, ε) ∩ X| ≥ MinPts`, with the ball *closed* and
/// `p` itself counted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    eps: f64,
    min_pts: usize,
}

impl DbscanParams {
    /// Validates and constructs. `eps` must be positive and finite;
    /// `min_pts ≥ 1`.
    pub fn new(eps: f64, min_pts: usize) -> Result<Self, DbscanError> {
        if !(eps.is_finite() && eps > 0.0) {
            return Err(DbscanError::InvalidEpsilon(eps));
        }
        if min_pts == 0 {
            return Err(DbscanError::InvalidMinPts(min_pts));
        }
        Ok(Self { eps, min_pts })
    }

    /// The neighborhood radius `ε`.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The density threshold `MinPts`.
    pub fn min_pts(&self) -> usize {
        self.min_pts
    }
}

/// Parameters of ρ-approximate DBSCAN (Gan–Tao; paper Definition 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxParams {
    base: DbscanParams,
    rho: f64,
}

impl ApproxParams {
    /// Validates and constructs. Additionally to [`DbscanParams`],
    /// `ρ ∈ (0, 2]` (Theorem 3's standing assumption; Remark: the paper
    /// notes ρ > 2 works with slight modifications, but every experiment
    /// uses ρ ≤ 2, and Lemma 8's summary bound needs `ρε/2 ≤ ε`).
    pub fn new(eps: f64, min_pts: usize, rho: f64) -> Result<Self, DbscanError> {
        let base = DbscanParams::new(eps, min_pts)?;
        if !(rho.is_finite() && rho > 0.0 && rho <= 2.0) {
            return Err(DbscanError::InvalidRho(rho));
        }
        Ok(Self { base, rho })
    }

    /// The neighborhood radius `ε`.
    pub fn eps(&self) -> f64 {
        self.base.eps()
    }

    /// The density threshold `MinPts`.
    pub fn min_pts(&self) -> usize {
        self.base.min_pts()
    }

    /// The approximation parameter `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The net radius Algorithm 2 prescribes: `r̄ = ρε/2`.
    pub fn rbar(&self) -> f64 {
        self.rho * self.eps() / 2.0
    }

    /// The merge threshold inside the summary: `(1+ρ)ε`.
    pub fn merge_radius(&self) -> f64 {
        (1.0 + self.rho) * self.eps()
    }

    /// The labeling threshold for points outside the summary:
    /// `(ρ/2 + 1)ε`.
    pub fn label_radius(&self) -> f64 {
        (self.rho / 2.0 + 1.0) * self.eps()
    }

    /// The exact-DBSCAN view of these parameters.
    pub fn base(&self) -> DbscanParams {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params() {
        let p = DbscanParams::new(0.5, 4).unwrap();
        assert_eq!(p.eps(), 0.5);
        assert_eq!(p.min_pts(), 4);
        let a = ApproxParams::new(2.0, 10, 0.5).unwrap();
        assert_eq!(a.rbar(), 0.5);
        assert_eq!(a.merge_radius(), 3.0);
        assert_eq!(a.label_radius(), 2.5);
        assert_eq!(a.base(), DbscanParams::new(2.0, 10).unwrap());
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(matches!(
            DbscanParams::new(0.0, 4),
            Err(DbscanError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            DbscanParams::new(f64::NAN, 4),
            Err(DbscanError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            DbscanParams::new(f64::INFINITY, 4),
            Err(DbscanError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            DbscanParams::new(1.0, 0),
            Err(DbscanError::InvalidMinPts(0))
        ));
        assert!(matches!(
            ApproxParams::new(1.0, 4, 0.0),
            Err(DbscanError::InvalidRho(_))
        ));
        assert!(matches!(
            ApproxParams::new(1.0, 4, 2.5),
            Err(DbscanError::InvalidRho(_))
        ));
        assert!(matches!(
            ApproxParams::new(-1.0, 4, 0.5),
            Err(DbscanError::InvalidEpsilon(_))
        ));
    }
}
