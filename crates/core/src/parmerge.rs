//! Round-batched parallel union-find merging with a component-aware
//! batch planner.
//!
//! The sequential merge loops (exact Step 2, the Algorithm-2 summary
//! merge, the streaming offline merge) interleave *pure* pair tests
//! (`BCP ≤ ε`, `dis ≤ (1+ρ)ε`) with union-find updates, skipping pairs
//! already connected. That interleaving is inherently serial, but the
//! *final partition* only depends on which pairs pass their test:
//! skipped pairs are exactly those already connected transitively, so
//! adding or removing them never changes the connected components.
//!
//! [`union_rounds`] exploits that: candidate pairs are consumed in
//! batches; each batch is pre-filtered against the current union-find
//! state (read-only roots), its tests run in parallel, and its positive
//! pairs are unioned in order.
//!
//! # Component-aware planning
//!
//! Pre-filtering against *committed* connectivity alone is not enough:
//! a round that schedules `(A,B)` and later `(B,C)` would also schedule
//! `(A,C)`, a pair the sequential loop never tests when the first two
//! succeed. The planner therefore tracks an **optimistic** view of the
//! round — every scheduled pair is assumed to succeed — and any pair
//! whose endpoints are already connected in that view is *deferred*,
//! not tested. Deferred pairs are re-examined at the next round against
//! the now-committed state: if the optimism held they are dropped
//! (exactly like the sequential skip); if a test failed they get
//! scheduled then (exactly like the sequential fallback). A round never
//! schedules two pairs that connect the same pair of components, so the
//! batched run never tests a pair the sequential interleaving skips —
//! the tested count is bounded by (and, when tests succeed, equal to)
//! the sequential loop's count, closing the old `bcp_tests` gap where
//! batching could *over*-test. (It can come in slightly under: a
//! deferred pair may be resolved by a later positive before its retry.)

use crate::unionfind::UnionFind;
use mdbscan_parallel::par_map_range;

/// The round-local optimistic union-find: scheduled pairs are assumed
/// connected until their tests land. Entries reset lazily per round via
/// a generation stamp, so planning stays O(batch α) per round instead
/// of O(n).
struct RoundPlanner {
    parent: Vec<u32>,
    stamp: Vec<u32>,
    round: u32,
}

impl RoundPlanner {
    fn new(len: usize) -> Self {
        Self {
            parent: vec![0; len],
            stamp: vec![0; len],
            round: 0,
        }
    }

    fn next_round(&mut self) {
        self.round = self.round.wrapping_add(1);
        if self.round == 0 {
            // Stamp wrap-around (practically unreachable): hard reset.
            self.stamp.fill(0);
            self.round = 1;
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.stamp[x] != self.round {
            self.stamp[x] = self.round;
            self.parent[x] = x as u32;
            return x;
        }
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let up = self.parent[x as usize];
            // Fresh parents may predate this round; treat them as roots.
            if self.stamp[up as usize] != self.round {
                self.stamp[up as usize] = self.round;
                self.parent[up as usize] = up;
            }
            x = up;
        }
        x as usize
    }

    /// Reserves the pair of (committed) roots `a`, `b` for this round:
    /// returns false — defer the pair — when an already-scheduled chain
    /// optimistically connects them.
    fn try_reserve(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb as u32;
        true
    }
}

/// Drains `next_batch` until exhaustion, testing each candidate pair
/// with `test` (in parallel across the batch) and unioning positives in
/// batch order. Returns `(pairs_tested, pairs_positive)`.
///
/// `next_batch` sees the up-to-date union-find and should (a) skip
/// pairs whose endpoints are already connected — use
/// [`UnionFind::root`] — and (b) bound the batch size so skipping stays
/// effective; it returns an empty batch to signal exhaustion (deferred
/// pairs may still be flushed afterwards). It receives the union-find
/// **mutably** so triangle-inequality *free accepts* (pairs whose
/// distance upper bound is already within the threshold) can be unioned
/// during batch assembly without spending a test slot.
pub(crate) fn union_rounds<F>(
    uf: &mut UnionFind,
    threads: usize,
    mut next_batch: impl FnMut(&mut UnionFind) -> Vec<(u32, u32)>,
    test: F,
) -> (u64, u64)
where
    F: Fn(usize, usize) -> bool + Sync,
{
    let mut tested = 0u64;
    let mut positive = 0u64;
    let mut planner = RoundPlanner::new(uf.len());
    // Pairs postponed because an earlier pair of their round already
    // (optimistically) connected their components.
    let mut deferred: Vec<(u32, u32)> = Vec::new();
    let mut source_dry = false;
    loop {
        planner.next_round();
        let mut batch: Vec<(u32, u32)> = Vec::new();
        // Deferred pairs go first — they are older in candidate order.
        let mut still_deferred: Vec<(u32, u32)> = Vec::new();
        for &(a, b) in &deferred {
            let (ra, rb) = (uf.root(a as usize), uf.root(b as usize));
            if ra == rb {
                continue; // the optimism held: sequential would skip too
            }
            if planner.try_reserve(ra, rb) {
                batch.push((a, b));
            } else {
                still_deferred.push((a, b));
            }
        }
        deferred = still_deferred;
        if !source_dry {
            let fresh = next_batch(uf);
            if fresh.is_empty() {
                source_dry = true;
            }
            for (a, b) in fresh {
                let (ra, rb) = (uf.root(a as usize), uf.root(b as usize));
                if ra == rb {
                    continue; // connected by a free accept mid-assembly
                }
                if planner.try_reserve(ra, rb) {
                    batch.push((a, b));
                } else {
                    deferred.push((a, b));
                }
            }
        }
        if batch.is_empty() {
            if source_dry && deferred.is_empty() {
                return (tested, positive);
            }
            // A fresh round always schedules the first live deferred
            // pair, so this loops only while progress is still possible.
            continue;
        }
        tested += batch.len() as u64;
        // Small batches run inline — a handful of distance tests never
        // pays for a thread spawn.
        let hits: Vec<bool> = par_map_range(batch.len(), threads, 8, |i| {
            let (a, b) = batch[i];
            test(a as usize, b as usize)
        });
        for (&(a, b), hit) in batch.iter().zip(hits) {
            if hit {
                positive += 1;
                uf.union(a as usize, b as usize);
            }
        }
    }
}

/// A sensible batch size: large enough to amortize a round's spawn
/// cost, small enough that connectivity discovered early in the round
/// still prunes most of what follows.
pub(crate) fn batch_size(threads: usize) -> usize {
    (threads * 16).max(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pairs(
        all_pairs: &[(u32, u32)],
        n: usize,
        threads: usize,
        batch: usize,
        test: impl Fn(usize, usize) -> bool + Sync,
    ) -> (Vec<u32>, u64) {
        let mut uf = UnionFind::new(n);
        let mut cursor = 0usize;
        let (tested, _) = union_rounds(
            &mut uf,
            threads,
            |uf| {
                let mut out = Vec::new();
                while out.len() < batch && cursor < all_pairs.len() {
                    let (a, b) = all_pairs[cursor];
                    cursor += 1;
                    if uf.root(a as usize) != uf.root(b as usize) {
                        out.push((a, b));
                    }
                }
                out
            },
            test,
        );
        (uf.component_ids(), tested)
    }

    /// A chain 0-1-2-…-n as candidate pairs plus all the transitive
    /// pairs; the transitive ones must be skipped or harmless.
    #[test]
    fn components_match_sequential_for_any_threading() {
        let n = 40usize;
        let all_pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        // connect iff same parity
        let test = |a: usize, b: usize| (a % 2) == (b % 2);
        let (reference, _) = run_pairs(&all_pairs, n, 1, 1, test);
        assert_eq!(reference.iter().filter(|&&c| c == 0).count(), n / 2);
        for (threads, batch) in [(1, 7), (4, 16), (8, 64)] {
            let (ids, _) = run_pairs(&all_pairs, n, threads, batch, test);
            assert_eq!(ids, reference, "threads={threads}");
        }
    }

    /// The component-aware planner must never test a pair the
    /// sequential interleaving skips: tested counts are bounded by the
    /// sequential count for every thread count and batch size (this is
    /// the `bcp_tests` over-testing gap noted in the roadmap). With an
    /// always-true predicate the counts are exactly equal — both run
    /// the same greedy spanning forest.
    #[test]
    fn tested_counts_never_exceed_sequential() {
        let n = 60usize;
        let all_pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        for modulo in [2usize, 3, 7] {
            // Deterministic mixed pass/fail predicate.
            let test =
                move |a: usize, b: usize| (a % modulo) == (b % modulo) && (a * 31 + b) % 5 != 3;
            let (seq_ids, seq_tested) = run_pairs(&all_pairs, n, 1, 1, test);
            for (threads, batch) in [(2, 8), (4, 16), (8, 64), (3, 5)] {
                let (ids, tested) = run_pairs(&all_pairs, n, threads, batch, test);
                assert_eq!(ids, seq_ids, "modulo={modulo} threads={threads}");
                assert!(
                    tested <= seq_tested,
                    "modulo={modulo} threads={threads} batch={batch}: \
                     planner over-tested ({tested} > {seq_tested})"
                );
            }
        }
        // All-success: exact equality (one spanning tree per component).
        let always = |_: usize, _: usize| true;
        let (seq_ids, seq_tested) = run_pairs(&all_pairs, n, 1, 1, always);
        assert_eq!(seq_tested, (n - 1) as u64);
        for (threads, batch) in [(4, 16), (8, 128)] {
            let (ids, tested) = run_pairs(&all_pairs, n, threads, batch, always);
            assert_eq!(ids, seq_ids);
            assert_eq!(tested, seq_tested, "threads={threads} batch={batch}");
        }
    }

    /// The scenario the old planner over-tested: one round holding the
    /// whole chain (A,B), (B,C), (A,C) must defer the transitive pair.
    #[test]
    fn transitive_pair_within_one_round_is_deferred() {
        let pairs = [(0u32, 1u32), (1, 2), (0, 2)];
        let always = |_: usize, _: usize| true;
        let (seq_ids, seq_tested) = run_pairs(&pairs, 3, 1, 1, always);
        assert_eq!(seq_tested, 2, "sequential skips the transitive pair");
        // One big batch: the old planner tested all 3.
        let (ids, tested) = run_pairs(&pairs, 3, 4, 64, always);
        assert_eq!(ids, seq_ids);
        assert_eq!(tested, 2, "round must not schedule (0,2)");
    }
}
