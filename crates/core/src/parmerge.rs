//! Round-batched parallel union-find merging.
//!
//! The sequential merge loops (exact Step 2, the Algorithm-2 summary
//! merge, the streaming offline merge) interleave *pure* pair tests
//! (`BCP ≤ ε`, `dis ≤ (1+ρ)ε`) with union-find updates, skipping pairs
//! already connected. That interleaving is inherently serial, but the
//! *final partition* only depends on which pairs pass their test:
//! skipped pairs are exactly those already connected transitively, so
//! adding or removing them never changes the connected components.
//!
//! [`union_rounds`] exploits that: candidate pairs are consumed in
//! batches; each batch is pre-filtered against the current union-find
//! state (read-only roots), its tests run in parallel, and its positive
//! pairs are unioned in order. A parallel run may test a few pairs a
//! sequential run would have skipped (the price of batching), but the
//! resulting components — and therefore the final cluster labels — are
//! identical for every thread count.

use crate::unionfind::UnionFind;
use mdbscan_parallel::par_map_range;

/// Drains `next_batch` until exhaustion, testing each candidate pair
/// with `test` (in parallel across the batch) and unioning positives in
/// batch order. Returns `(pairs_tested, pairs_positive)`.
///
/// `next_batch` sees the up-to-date union-find and should (a) skip
/// pairs whose endpoints are already connected — use
/// [`UnionFind::root`] — and (b) bound the batch size so skipping stays
/// effective; it returns an empty batch to finish. It receives the
/// union-find **mutably** so triangle-inequality *free accepts* (pairs
/// whose distance upper bound is already within the threshold) can be
/// unioned during batch assembly without spending a test slot.
pub(crate) fn union_rounds<F>(
    uf: &mut UnionFind,
    threads: usize,
    mut next_batch: impl FnMut(&mut UnionFind) -> Vec<(u32, u32)>,
    test: F,
) -> (u64, u64)
where
    F: Fn(usize, usize) -> bool + Sync,
{
    let mut tested = 0u64;
    let mut positive = 0u64;
    loop {
        let batch = next_batch(uf);
        if batch.is_empty() {
            return (tested, positive);
        }
        tested += batch.len() as u64;
        // Small batches run inline — a handful of distance tests never
        // pays for a thread spawn.
        let hits: Vec<bool> = par_map_range(batch.len(), threads, 8, |i| {
            let (a, b) = batch[i];
            test(a as usize, b as usize)
        });
        for (&(a, b), hit) in batch.iter().zip(hits) {
            if hit {
                positive += 1;
                uf.union(a as usize, b as usize);
            }
        }
    }
}

/// A sensible batch size: large enough to amortize a round's spawn
/// cost, small enough that connectivity discovered early in the round
/// still prunes most of what follows.
pub(crate) fn batch_size(threads: usize) -> usize {
    (threads * 16).max(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A chain 0-1-2-…-n as candidate pairs plus all the transitive
    /// pairs; the transitive ones must be skipped or harmless.
    #[test]
    fn components_match_sequential_for_any_threading() {
        let n = 40usize;
        let all_pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        // connect iff same parity
        let test = |a: usize, b: usize| (a % 2) == (b % 2);

        let run = |threads: usize, batch: usize| -> Vec<u32> {
            let mut uf = UnionFind::new(n);
            let mut cursor = 0usize;
            let (_, _) = union_rounds(
                &mut uf,
                threads,
                |uf| {
                    let mut out = Vec::new();
                    while out.len() < batch && cursor < all_pairs.len() {
                        let (a, b) = all_pairs[cursor];
                        cursor += 1;
                        if uf.root(a as usize) != uf.root(b as usize) {
                            out.push((a, b));
                        }
                    }
                    out
                },
                test,
            );
            uf.component_ids()
        };

        let reference = run(1, 1);
        assert_eq!(reference.iter().filter(|&&c| c == 0).count(), n / 2);
        for (threads, batch) in [(1, 7), (4, 16), (8, 64)] {
            assert_eq!(run(threads, batch), reference, "threads={threads}");
        }
    }
}
