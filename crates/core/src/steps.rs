//! The three steps of exact metric DBSCAN (§3.1), shared by the
//! Algorithm 1 pipeline ([`crate::MetricDbscan::exact`]) and the
//! cover-tree pipeline of §3.2 ([`crate::exact_dbscan_covertree`]).
//!
//! * **Step 1** — label core points. Points in *dense* balls
//!   (`|C_e| ≥ MinPts`) are core for free because the ball has diameter
//!   `≤ 2r̄ ≤ ε` (this is where `r̄ ≤ ε/2` is needed); points in sparse
//!   balls count their `ε`-neighborhood inside `∪_{e' ∈ A_e} C_{e'}`
//!   (sound by Lemma 2), stopping at `MinPts`. Amortized `O(n·z·t_dis)`
//!   (Lemma 4).
//! * **Step 2** — merge core groups. All core points inside one ball are
//!   pairwise within `2r̄ ≤ ε`, hence one cluster fragment; fragments
//!   `C̃_e, C̃_{e'}` of neighboring balls merge iff their bichromatic
//!   closest pair is `≤ ε`, decided by a cover tree per fragment with
//!   early termination on the first witness pair. `O(n·z·log(ε/δ)·t_dis)`
//!   (Lemma 5).
//! * **Step 3** — borders vs outliers. Each non-core point looks for its
//!   nearest core point inside `∪_{e' ∈ A_e} C̃_{e'}`; within `ε` → border
//!   of that core's cluster, else noise. `O(n·z·t_dis)` (Lemma 6).
//!
//! # Net-anchored pruning
//!
//! Every phase additionally exploits the distances the net already
//! knows ([`mdbscan_metric::PruningConfig`], on by default): each point
//! carries `dis(p, c_p)`, so one *anchor* evaluation `dis(q, c)` per
//! (query, neighbor-center) pair sandwiches every pair distance in that
//! center's group by the triangle inequality — most Step-1 candidates
//! are counted or discarded, Step-2 fragment pairs merged, and Step-3
//! fragments skipped **without evaluating their distances**. Decisions
//! agree exactly with the evaluated predicates, so labels are
//! bit-identical with pruning on or off; [`StepsStats::pruning`]
//! reports the ledger.
//!
//! # Threading
//!
//! Every phase is parallel over its natural unit and deterministic for
//! any thread count ([`ExactConfig::parallel`]):
//!
//! * the adjacency parallelizes over upper-triangle center rows;
//! * Step 1 over points (each point's core test is independent), with
//!   pruning counters reduced per worker chunk;
//! * Step 2 builds the per-fragment cover trees in parallel (weighted
//!   by fragment size) and batches BCP tests per union-find round — a
//!   batch is pre-filtered against current connectivity, tested in
//!   parallel, and unioned in order, preserving the early-termination
//!   *semantics* (skipped pairs are already-connected pairs) and the
//!   final labels exactly;
//! * Step 3 over points again.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mdbscan_covertree::{CoverTree, CoverTreeSkeleton};
use mdbscan_grid::{CandidateStats, GridIndex};
use mdbscan_kcenter::CenterAdjacency;
use mdbscan_metric::{BatchMetric, CountingMetric, PruneStats, PruningConfig};
use mdbscan_parallel::{
    par_map_ranges, split_even, split_weighted, worker_count, Csr, ParallelConfig,
};

use crate::labels::PointLabel;
use crate::netview::NetView;
use crate::params::DbscanParams;
use crate::parmerge::{batch_size, union_rounds};
use crate::unionfind::UnionFind;

/// Points per worker below which Step 1/3 stay sequential.
const STEP_MIN_PER_THREAD: usize = 512;

/// Toggles for the implementation refinements of the exact pipeline —
/// the ablation benches flip these to measure what each buys.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Step 1: label every point of a ball with `|C_e| ≥ MinPts` core
    /// without any distance computation (the paper's dense/sparse split,
    /// Lemma 4 / §3.3). Off = every point counts its neighborhood.
    pub dense_shortcut: bool,
    /// Step 2/3: answer BCP and nearest-core queries with per-fragment
    /// cover trees (the paper's design). Off = brute-force scans over the
    /// fragment pairs (still A-restricted).
    pub cover_tree_merge: bool,
    /// Step 2: stop a BCP test at the first witness pair `≤ ε` and skip
    /// tests between fragments already merged transitively. Off = every
    /// neighboring pair computes its full BCP — note that `pruning` must
    /// *also* be off for textbook BCP counts, since distance-free merge
    /// accepts bypass [`StepsStats::bcp_tests`] entirely.
    pub early_termination: bool,
    /// Net-anchored triangle-inequality pruning across the adjacency and
    /// Steps 1–3 (see the module docs). Labels are identical with it on
    /// or off; only the number of distance evaluations changes. On by
    /// default.
    pub pruning: PruningConfig,
    /// Worker threads for the adjacency and Steps 1–3. The labels are
    /// identical for every setting; only wall-clock changes. Defaults to
    /// the machine's available parallelism.
    pub parallel: ParallelConfig,
    /// Count distance evaluations into [`StepsStats::distance_evals`]
    /// (and the per-phase `*_evals` fields). Off by default: the counter
    /// is one shared atomic, whose contention is measurable next to
    /// cheap metrics (e.g. 2-d Euclidean) — enable it for work
    /// accounting, not for wall-clock runs.
    pub count_distance_evals: bool,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            dense_shortcut: true,
            cover_tree_merge: true,
            early_termination: true,
            pruning: PruningConfig::default(),
            parallel: ParallelConfig::default(),
            count_distance_evals: false,
        }
    }
}

/// Phase timings and counters of one exact run (harness fodder: Table 2
/// reports the Algorithm-1 share, the ablations report the step shares).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepsStats {
    /// Centers in the net.
    pub n_centers: usize,
    /// Mean `|A_e|` over centers (paper Lemma 3 bounds this by
    /// `O((ε/r̄)^D) + z`).
    pub mean_adjacency_degree: f64,
    /// Seconds computing the center adjacency.
    pub adjacency_secs: f64,
    /// Seconds in Step 1.
    pub label_secs: f64,
    /// Seconds in Step 2 (including fragment cover-tree construction).
    pub merge_secs: f64,
    /// Seconds in Step 3.
    pub assign_secs: f64,
    /// Number of points labeled core by the dense-ball shortcut.
    pub dense_cores: usize,
    /// Fragment pairs whose BCP was tested. The multi-thread batch
    /// planner is component-aware (a round never schedules a pair whose
    /// endpoints an earlier pair of the same round may connect), so this
    /// never exceeds the 1-thread count — it can come in slightly under
    /// when a deferred pair resolves before its retry; the resulting
    /// labels are identical either way.
    pub bcp_tests: u64,
    /// Fragment pairs found connected (distance-free accepts included).
    pub bcp_connected: u64,
    /// Triangle-inequality pruning ledger across the adjacency and
    /// Steps 1–3. `bound_*` counters are in candidate *pairs*; for
    /// tree-backed groups a skipped group counts all its pairs even
    /// though the tree would have evaluated fewer, so
    /// [`PruneStats::distance_evals_saved`] is an upper estimate there.
    /// Like `bcp_tests`, these are work counters — thread count and
    /// cache hits may shift them while labels stay identical.
    pub pruning: PruneStats,
    /// Distance evaluations across all phases (adjacency + Steps 1–3),
    /// in units of the paper's `t_dis`. Zero unless
    /// [`ExactConfig::count_distance_evals`] is set.
    pub distance_evals: u64,
    /// Distance evaluations spent in the adjacency build (zero when the
    /// adjacency came from the engine cache, or when not counting).
    pub adjacency_evals: u64,
    /// Distance evaluations spent in Step 1 (zero on a fragment-cache
    /// hit, or when not counting).
    pub label_evals: u64,
    /// Distance evaluations spent in Step 2 (when counting).
    pub merge_evals: u64,
    /// Distance evaluations spent in Step 3 (when counting).
    pub assign_evals: u64,
    /// Grid candidate-generation ledger across the adjacency build and
    /// Steps 1/3 — all zeros on the generic path. Like [`Self::pruning`]
    /// these are *work* counters: labels are bit-identical with the grid
    /// on or off; only where the candidates come from changes.
    pub candidates: CandidateStats,
}

/// The `(ε, MinPts)`-dependent intermediates of Steps 1–2 that an engine
/// may cache across queries: the core flags, the fragment partition
/// `C̃_e` (with per-fragment anchor radii), and the per-fragment cover
/// trees as owned, borrow-free [`CoverTreeSkeleton`]s.
///
/// For a fixed net all of these are **deterministic functions of
/// `(ε, MinPts)`** — independent of thread count, of the pruning knob,
/// and of the ablation toggles under which they are cached (the
/// defaults: dense shortcut and cover-tree merge on) — so replaying
/// them yields bit-identical labels. Re-attaching a skeleton costs zero
/// distance evaluations, which is exactly the Step-2 construction cost
/// the cache amortizes.
pub(crate) struct StepArtifacts {
    pub(crate) is_core: Vec<bool>,
    pub(crate) dense_cores: usize,
    pub(crate) fragments: Csr,
    /// Per center: `max_{p ∈ C̃_e} dis(p, c_e)` (0 for empty fragments)
    /// — the anchor radius Step 2/3 pruning measures against.
    pub(crate) frag_radius: Vec<f64>,
    pub(crate) skeletons: Vec<Option<CoverTreeSkeleton>>,
}

impl StepArtifacts {
    /// Approximate heap footprint, for cache accounting.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.is_core.len()
            + self.fragments.total_len() * std::mem::size_of::<u32>()
            + self.frag_radius.len() * std::mem::size_of::<f64>()
            + self
                .skeletons
                .iter()
                .flatten()
                .map(CoverTreeSkeleton::heap_bytes)
                .sum::<usize>()
    }
}

/// Per-fragment reuse verdict of an incremental upgrade: carry the
/// cached cover tree over, grow it by the fragment's added members, or
/// rebuild from scratch.
enum FragPlan {
    Reuse,
    Grow(Vec<u32>),
    Build,
}

/// An older epoch's artifacts plus the ingest delta separating it from
/// the current net — the input of the *incremental* Step-1/2
/// maintenance. Core flags are monotone under ingest (adding points
/// only grows `ε`-neighborhoods), so only points whose neighbor balls
/// gained members are re-verified, fragments only ever gain members,
/// and grown fragments extend their cached cover trees by insertion
/// instead of rebuilding.
#[derive(Clone, Copy)]
pub(crate) struct StepsUpgrade<'a> {
    /// Artifacts computed at the same `(ε, MinPts)` over a prefix of
    /// the current (append-only) point sequence, on the same net prefix.
    pub(crate) artifacts: &'a StepArtifacts,
    /// Ball positions (in the current net) whose cover sets gained
    /// members since those artifacts were computed, ascending; new
    /// centers included.
    pub(crate) dirty_balls: &'a [u32],
}

/// Cached inputs a caller may replay into [`run_exact_steps`]: Step-1/2
/// artifacts (same net, same `(ε, MinPts)`), an older epoch's artifacts
/// to upgrade incrementally (consulted only when `artifacts` is absent),
/// and/or a center adjacency (same net, same threshold — it depends on
/// `ε` only).
#[derive(Default)]
pub(crate) struct StepsReuse<'a> {
    pub(crate) artifacts: Option<&'a StepArtifacts>,
    pub(crate) upgrade: Option<StepsUpgrade<'a>>,
    pub(crate) adjacency: Option<Arc<CenterAdjacency>>,
    /// ε-aligned grid over the current epoch's points (cell side
    /// `ε/√d`). When present, the adjacency build and Steps 1/3 draw
    /// their candidates from ring cells instead of the neighbor cover
    /// sets — bit-identical labels, far fewer distance evaluations on
    /// low-dimensional Euclidean data. `None` keeps the generic path.
    pub(crate) grid: Option<Arc<GridIndex>>,
}

/// Everything one Steps-1–3 run produces: labels, stats, and the
/// freshly computed cacheables (`None`/`Err` sides mean "was reused or
/// not cacheable").
pub(crate) struct StepsOutcome {
    pub(crate) labels: Vec<PointLabel>,
    pub(crate) stats: StepsStats,
    /// Fresh artifacts for the caller to cache — `Some` only when
    /// nothing was reused and the configuration matches the cacheable
    /// defaults.
    pub(crate) fresh_artifacts: Option<StepArtifacts>,
    /// The adjacency this run used (freshly built or the replayed one).
    pub(crate) adjacency: Arc<CenterAdjacency>,
}

/// Runs Steps 1–3 over an arbitrary covering net. Caller must guarantee
/// `net.rbar ≤ params.eps() / 2` — that inequality is what makes the dense
/// shortcut and the fragment-merge radius sound.
pub(crate) fn run_exact_steps<P: Sync, M: BatchMetric<P> + Sync>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    params: &DbscanParams,
    cfg: &ExactConfig,
    reuse: StepsReuse<'_>,
) -> StepsOutcome {
    if cfg.count_distance_evals {
        let counting = CountingMetric::new(metric);
        let tick = || counting.count();
        let mut out = run_steps_inner(points, &counting, net, params, cfg, reuse, &tick);
        out.stats.distance_evals = counting.count();
        out
    } else {
        run_steps_inner(points, metric, net, params, cfg, reuse, &|| 0)
    }
}

#[allow(clippy::too_many_arguments)] // internal driver, mirrors run_exact_steps
fn run_steps_inner<P: Sync, M: BatchMetric<P> + Sync>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    params: &DbscanParams,
    cfg: &ExactConfig,
    reuse: StepsReuse<'_>,
    tick: &(dyn Fn() -> u64 + Sync),
) -> StepsOutcome {
    debug_assert!(net.rbar <= params.eps() / 2.0 * (1.0 + 1e-9));
    let eps = params.eps();
    let min_pts = params.min_pts();
    let n = net.num_points();
    let k = net.num_centers();
    let threads = cfg.parallel.threads();
    let mut stats = StepsStats {
        n_centers: k,
        ..Default::default()
    };

    // Neighbor-ball adjacency at 2r̄ + ε (definition (1)); Lemma 2 then
    // confines every ε-ball to its neighbor cover sets. An `ε`-matching
    // cached adjacency replays for free.
    let grid: Option<&GridIndex> = reuse.grid.as_deref();
    let t = Instant::now();
    let evals_before = tick();
    let adj: Arc<CenterAdjacency> = match reuse.adjacency {
        Some(adj) => {
            debug_assert_eq!(adj.threshold, 2.0 * net.rbar + eps, "adjacency cache mixup");
            adj
        }
        None => match grid {
            Some(g) => {
                // Grid path: ring cells over the center coordinates
                // replace the all-pairs sweep; surviving pairs are
                // evaluated exactly, so the edge set (and every label
                // downstream) matches the generic build bit-for-bit.
                let dim = g.dim();
                let mut coords = Vec::with_capacity(net.centers.len() * dim);
                for &c in net.centers {
                    coords.extend_from_slice(g.point_coords(c));
                }
                let (built, cand) = CenterAdjacency::build_grid(
                    points,
                    metric,
                    net.centers,
                    2.0 * net.rbar + eps,
                    &cfg.parallel,
                    dim,
                    coords,
                );
                stats.candidates.merge(&cand);
                Arc::new(built)
            }
            None => {
                let built = CenterAdjacency::build_pruned(
                    points,
                    metric,
                    net.centers,
                    2.0 * net.rbar + eps,
                    &cfg.parallel,
                    &cfg.pruning,
                );
                stats.pruning.merge(&built.pruning);
                Arc::new(built)
            }
        },
    };
    stats.adjacency_evals = tick() - evals_before;
    stats.adjacency_secs = t.elapsed().as_secs_f64();
    stats.mean_adjacency_degree = adj.mean_degree();

    // ---- Step 1: core labeling, parallel over points ----
    // With cached artifacts the whole step replays from the cache (the
    // core flags are a pure function of (net, ε, MinPts)). With an
    // older epoch's artifacts (`reuse.upgrade`) the step runs
    // *incrementally*: core flags are monotone under ingest, so only
    // new points — plus old non-core points in balls whose neighborhood
    // gained members — are (re-)verified.
    let t = Instant::now();
    let evals_before = tick();
    let upgrade = if reuse.artifacts.is_none() {
        reuse.upgrade
    } else {
        None
    };
    // Under an upgrade: a ball needs re-verification iff any ball of its
    // adjacency row is dirty — by Lemma 2 an untouched neighborhood
    // means an unchanged ε-ball for every member. (A ball's own row
    // contains itself, so dirty ⊆ affected.)
    let affected: Option<Vec<bool>> = upgrade.map(|u| {
        let mut dirty = vec![false; k];
        for &e in u.dirty_balls {
            if (e as usize) < k {
                dirty[e as usize] = true;
            }
        }
        (0..k)
            .map(|e| adj.neighbors.row(e).iter().any(|&e2| dirty[e2 as usize]))
            .collect()
    });
    let is_core_local: Option<Vec<bool>> = if reuse.artifacts.is_some() {
        None
    } else {
        let dense: Vec<bool> = (0..k)
            .map(|e| cfg.dense_shortcut && net.cover_sets.row_len(e) >= min_pts)
            .collect();
        stats.dense_cores = (0..k)
            .filter(|&e| dense[e])
            .map(|e| net.cover_sets.row_len(e))
            .sum();
        let w = worker_count(threads, n, STEP_MIN_PER_THREAD);
        let chunks = par_map_ranges(split_even(n, w), |r| {
            let mut ps = PruneStats::default();
            let mut cs = CandidateStats::default();
            let mut cells: Vec<u32> = Vec::new();
            let flags: Vec<bool> = r
                .map(|p| {
                    let e = net.assignment[p] as usize;
                    if let (Some(u), Some(aff)) = (upgrade, affected.as_ref()) {
                        if p < u.artifacts.is_core.len() {
                            if u.artifacts.is_core[p] {
                                return true; // cores stay core under ingest
                            }
                            if !aff[e] {
                                return false; // neighborhood untouched
                            }
                        }
                    }
                    if dense[e] {
                        return true;
                    }
                    match grid {
                        // Grid path: whole in-range cells count for
                        // free; only boundary-cell members consult the
                        // metric. Both sides of the `≥ MinPts` predicate
                        // see the same ε-ball, so the flag is identical.
                        Some(g) => {
                            g.count_within_capped(
                                g.point_coords(p),
                                eps,
                                min_pts,
                                &mut cells,
                                &mut cs,
                                |q| metric.within(&points[p], &points[q as usize], eps),
                            ) >= min_pts
                        }
                        None => {
                            count_neighbors_capped(
                                points,
                                metric,
                                net,
                                &adj,
                                e,
                                p,
                                eps,
                                min_pts,
                                &cfg.pruning,
                                &mut ps,
                            ) >= min_pts
                        }
                    }
                })
                .collect();
            (flags, ps, cs)
        });
        let mut flags = Vec::with_capacity(n);
        for (chunk, ps, cs) in chunks {
            flags.extend(chunk);
            stats.pruning.merge(&ps);
            stats.candidates.merge(&cs);
        }
        Some(flags)
    };
    let is_core: &[bool] = match reuse.artifacts {
        Some(a) => {
            stats.dense_cores = a.dense_cores;
            &a.is_core
        }
        None => is_core_local.as_deref().expect("computed above"),
    };
    stats.label_evals = tick() - evals_before;
    stats.label_secs = t.elapsed().as_secs_f64();

    // ---- Step 2: merge core fragments ----
    let t = Instant::now();
    let evals_before = tick();
    // C̃_e: the core points of each cover set, flattened like the cover
    // sets themselves, plus each fragment's anchor radius
    // max dis(p, c_e) — free to record, and what the distance-free
    // merge accepts measure against. Under an upgrade, every fragment
    // additionally gets a reuse plan: untouched rows keep their cached
    // skeleton, grown rows extend it by insertion, the rest rebuild.
    let mut frag_plans: Option<Vec<FragPlan>> = None;
    let frag_local: Option<(Csr, Vec<f64>)> = if reuse.artifacts.is_some() {
        None
    } else {
        let mut offsets = vec![0usize; k + 1];
        let mut values = Vec::new();
        let mut radius = Vec::with_capacity(k);
        let mut plans: Option<Vec<FragPlan>> = upgrade.map(|_| Vec::with_capacity(k));
        let old_k = upgrade.map_or(0, |u| u.artifacts.fragments.num_rows());
        for e in 0..k {
            if let (Some(u), Some(aff)) = (upgrade, affected.as_ref()) {
                if e < old_k && !aff[e] {
                    // Untouched ball: fragment row, anchor radius, and
                    // skeleton are all carried over verbatim.
                    values.extend_from_slice(u.artifacts.fragments.row(e));
                    offsets[e + 1] = values.len();
                    radius.push(u.artifacts.frag_radius[e]);
                    plans
                        .as_mut()
                        .expect("upgrade has plans")
                        .push(FragPlan::Reuse);
                    continue;
                }
            }
            let start = values.len();
            let mut r = 0.0f64;
            for &p in net.cover_sets.row(e) {
                if is_core[p as usize] {
                    values.push(p);
                    r = r.max(net.center_dist_ub(p as usize));
                }
            }
            offsets[e + 1] = values.len();
            radius.push(r);
            if let Some(plans) = plans.as_mut() {
                let u = upgrade.expect("plans imply upgrade");
                let new_row = &values[start..];
                let old_row: &[u32] = if e < old_k {
                    u.artifacts.fragments.row(e)
                } else {
                    &[]
                };
                let has_old_tree = e < old_k && u.artifacts.skeletons[e].is_some();
                plans.push(if new_row == old_row {
                    FragPlan::Reuse
                } else if has_old_tree {
                    // Flags are monotone and points append-only, so
                    // old ⊆ new: grow the cached tree by the difference.
                    let mut added = Vec::with_capacity(new_row.len() - old_row.len());
                    let mut oi = 0usize;
                    for &q in new_row {
                        if oi < old_row.len() && old_row[oi] == q {
                            oi += 1;
                        } else {
                            added.push(q);
                        }
                    }
                    debug_assert_eq!(oi, old_row.len(), "old fragment not a subset of new");
                    FragPlan::Grow(added)
                } else {
                    FragPlan::Build
                });
            }
        }
        frag_plans = plans;
        Some((Csr::from_parts(offsets, values), radius))
    };
    let (fragments, frag_radius): (&Csr, &[f64]) = match reuse.artifacts {
        Some(a) => (&a.fragments, &a.frag_radius),
        None => {
            let (f, r) = frag_local.as_ref().expect("computed above");
            (f, r)
        }
    };
    let trees: Vec<Option<CoverTree<'_, P, M>>> = if !cfg.cover_tree_merge {
        (0..k).map(|_| None).collect()
    } else if let Some(a) = reuse.artifacts {
        // Cache hit: re-attach the stored skeletons — zero distance
        // evaluations, just a structure clone per fragment.
        a.skeletons
            .iter()
            .map(|s| {
                s.as_ref()
                    .map(|sk| CoverTree::from_skeleton(points, metric, sk.clone()))
            })
            .collect()
    } else if let (Some(u), Some(plans)) = (upgrade, frag_plans.as_ref()) {
        // Incremental upgrade: unchanged fragments re-attach their
        // cached skeleton for free; fragments that only gained members
        // insert the difference into the cached tree (the whole point —
        // fragment construction is the Step-2 cost the epochs amortize);
        // only brand-new fragments build from scratch.
        (0..k)
            .map(|e| match &plans[e] {
                FragPlan::Reuse => u
                    .artifacts
                    .skeletons
                    .get(e)
                    .and_then(Option::as_ref)
                    .map(|sk| CoverTree::from_skeleton(points, metric, sk.clone())),
                FragPlan::Grow(added) => {
                    let sk = u.artifacts.skeletons[e]
                        .as_ref()
                        .expect("grow implies a tree");
                    let mut tree = CoverTree::from_skeleton(points, metric, sk.clone());
                    for &q in added {
                        tree.insert(q as usize);
                    }
                    Some(tree)
                }
                FragPlan::Build => {
                    let frag = fragments.row(e);
                    (!frag.is_empty()).then(|| {
                        CoverTree::from_indices(points, metric, frag.iter().map(|&p| p as usize))
                    })
                }
            })
            .collect()
    } else {
        // Parallel over centers, weighted by fragment size (construction
        // cost is superlinear in the fragment, so even splits by row
        // count would starve some workers). Small core sets build
        // sequentially — a few microseconds of tree work never pays for
        // a spawn.
        let tree_threads = if fragments.total_len() >= 2 * STEP_MIN_PER_THREAD {
            threads
        } else {
            1
        };
        let ranges = split_weighted(k, tree_threads, |e| fragments.row_len(e));
        par_map_ranges(ranges, |rows| {
            rows.map(|e| {
                let frag = fragments.row(e);
                (!frag.is_empty()).then(|| {
                    CoverTree::from_indices(points, metric, frag.iter().map(|&p| p as usize))
                })
            })
            .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    };
    let mut uf = UnionFind::new(k);
    // Candidate fragment pairs in (e, e') lexicographic order — the same
    // order the sequential loop tests them in — each carrying its
    // distance-free verdict from the adjacency's center-pair bounds:
    // `ub + r_e + r_e' ≤ ε` merges without a BCP test (every cross pair
    // is within ε), `lb − r_e − r_e' > ε` discards the candidate
    // entirely (no cross pair can reach ε). Survivors keep the edge's
    // lower bound: inside the BCP test it anchors each *probe point*
    // individually (its cached `dis(p, c_p)` sharpens the whole-fragment
    // slack), skipping tree queries for probes that provably cannot
    // reach any host member.
    let mut candidates: Vec<(u32, u32, bool, f64)> = Vec::new();
    for e in 0..k {
        if fragments.row_len(e) == 0 {
            continue;
        }
        let row = adj.neighbors.row(e);
        let lbs = adj.lbound_row(e);
        let ubs = adj.ubound_row(e);
        for ((&e2, &lb), &ub) in row.iter().zip(lbs).zip(ubs) {
            let e2u = e2 as usize;
            if e2u <= e || fragments.row_len(e2u) == 0 {
                continue;
            }
            if cfg.pruning.enabled {
                let slack = frag_radius[e] + frag_radius[e2u];
                if lb - slack > eps {
                    stats.pruning.bound_rejects += 1;
                    continue;
                }
                if ub + slack <= eps {
                    stats.pruning.bound_accepts += 1;
                    candidates.push((e as u32, e2, true, lb));
                    continue;
                }
            }
            candidates.push((e as u32, e2, false, lb));
        }
    }
    let probe_rejects = AtomicU64::new(0);
    if threads <= 1 {
        // Classic sequential interleaving: test, union, and let fresh
        // connectivity skip later pairs immediately.
        for &(e, e2, free, lb) in &candidates {
            let (e, e2) = (e as usize, e2 as usize);
            if cfg.early_termination && uf.connected(e, e2) {
                continue;
            }
            if free {
                stats.bcp_connected += 1;
                uf.union(e, e2);
                continue;
            }
            stats.bcp_tests += 1;
            if bcp_within(
                points,
                metric,
                net,
                fragments,
                frag_radius,
                &trees,
                e,
                e2,
                eps,
                lb,
                cfg,
                &probe_rejects,
            ) {
                stats.bcp_connected += 1;
                uf.union(e, e2);
            }
        }
    } else {
        let batch = batch_size(threads);
        let mut cursor = 0usize;
        let mut free_connected = 0u64;
        // The parallel test closure only sees (e, e2); recover each
        // surviving candidate's edge lower bound by binary search —
        // candidates are generated in (e, e2) lexicographic order, so
        // the non-free subsequence is already sorted.
        let edge_lb: Vec<(u32, u32, f64)> = candidates
            .iter()
            .filter(|c| !c.2)
            .map(|&(a, b, _, lb)| (a, b, lb))
            .collect();
        debug_assert!(edge_lb
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let (tested, connected) = union_rounds(
            &mut uf,
            threads,
            |uf| {
                let mut out = Vec::new();
                while out.len() < batch && cursor < candidates.len() {
                    let (e, e2, free, _) = candidates[cursor];
                    cursor += 1;
                    if cfg.early_termination && uf.root(e as usize) == uf.root(e2 as usize) {
                        continue;
                    }
                    if free {
                        free_connected += 1;
                        uf.union(e as usize, e2 as usize);
                        continue;
                    }
                    out.push((e, e2));
                }
                out
            },
            |e, e2| {
                // Every tested pair was scheduled from the non-free
                // candidates, so the search cannot miss.
                let lb = edge_lb
                    .binary_search_by_key(&(e as u32, e2 as u32), |&(a, b, _)| (a, b))
                    .map(|i| edge_lb[i].2)
                    .unwrap_or(0.0);
                bcp_within(
                    points,
                    metric,
                    net,
                    fragments,
                    frag_radius,
                    &trees,
                    e,
                    e2,
                    eps,
                    lb,
                    cfg,
                    &probe_rejects,
                )
            },
        );
        stats.bcp_tests = tested;
        stats.bcp_connected = connected + free_connected;
    }
    stats.pruning.probe_rejects += probe_rejects.load(Ordering::Relaxed);
    stats.merge_evals = tick() - evals_before;
    stats.merge_secs = t.elapsed().as_secs_f64();

    // ---- Step 3: borders and outliers, parallel over points ----
    let t = Instant::now();
    let evals_before = tick();
    let cluster_of_center = uf.component_ids();
    let w = worker_count(threads, n, STEP_MIN_PER_THREAD);
    let chunks = par_map_ranges(split_even(n, w), |r| {
        let mut ps = PruneStats::default();
        let mut cs = CandidateStats::default();
        let mut scratch = AnchorScratch::default();
        let labels: Vec<PointLabel> = r
            .map(|pi| {
                if is_core[pi] {
                    let e = net.assignment[pi] as usize;
                    return PointLabel::Core(cluster_of_center[e]);
                }
                match grid {
                    Some(g) => assign_border_grid(
                        points,
                        metric,
                        net,
                        g,
                        is_core,
                        &cluster_of_center,
                        pi,
                        eps,
                        &mut cs,
                    ),
                    None => assign_border(
                        points,
                        metric,
                        net,
                        &adj,
                        fragments,
                        frag_radius,
                        &trees,
                        &cluster_of_center,
                        pi,
                        eps,
                        &cfg.pruning,
                        &mut scratch,
                        &mut ps,
                    ),
                }
            })
            .collect();
        (labels, ps, cs)
    });
    let mut labels = Vec::with_capacity(n);
    for (chunk, ps, cs) in chunks {
        labels.extend(chunk);
        stats.pruning.merge(&ps);
        stats.candidates.merge(&cs);
    }
    stats.assign_evals = tick() - evals_before;
    stats.assign_secs = t.elapsed().as_secs_f64();

    // Hand freshly computed artifacts back for caching — only when the
    // run matches the cacheable defaults (the dense shortcut keeps
    // `dense_cores` meaningful, the trees only exist under
    // `cover_tree_merge`).
    let fresh_artifacts = (reuse.artifacts.is_none() && cfg.dense_shortcut && cfg.cover_tree_merge)
        .then(|| {
            let (fragments, frag_radius) = frag_local.expect("computed when reuse is None");
            StepArtifacts {
                is_core: is_core_local.expect("computed when reuse is None"),
                dense_cores: stats.dense_cores,
                fragments,
                frag_radius,
                skeletons: trees
                    .into_iter()
                    .map(|t| t.map(CoverTree::into_skeleton))
                    .collect(),
            }
        });

    StepsOutcome {
        labels,
        stats,
        fresh_artifacts,
        adjacency: adj,
    }
}

/// Reusable per-worker buffers for the anchored scans: the neighbor
/// centers selected for anchoring, their batched distances, and the
/// own-center substitution slots.
#[derive(Default)]
pub(crate) struct AnchorScratch {
    ids: Vec<u32>,
    evals: Vec<f64>,
    own_slots: Vec<bool>,
    pub(crate) anchors: Vec<f64>,
}

impl AnchorScratch {
    /// One batched [`BatchMetric::dist_many`] call evaluating
    /// `dis(p, c_{e'})` for every neighbor center in `row` whose group
    /// (as reported by `group_len`) passes the anchoring gate. The
    /// caller walks `row` again with the same gate, consuming
    /// `self.anchors` in order.
    ///
    /// `own` short-circuits the point's **own** center: the net already
    /// stores `dis(p, c_p)` exactly, so when center position `own.0`
    /// shows up in the row its slot is filled with `own.1` instead of
    /// spending an evaluation on a distance we hold.
    #[allow(clippy::too_many_arguments)] // per-worker hot-loop helper
    pub(crate) fn anchor_rows<P, M: BatchMetric<P>>(
        &mut self,
        points: &[P],
        metric: &M,
        net: &NetView<'_>,
        row: &[u32],
        group_len: impl Fn(usize) -> usize,
        p: usize,
        own: Option<(u32, f64)>,
        pruning: &PruningConfig,
        ps: &mut PruneStats,
    ) {
        self.ids.clear();
        self.own_slots.clear();
        self.anchors.clear();
        if !pruning.enabled {
            return;
        }
        for &e2 in row {
            if group_len(e2 as usize) >= pruning.min_anchor_group {
                match own {
                    Some((oe, _)) if oe == e2 => self.own_slots.push(true),
                    _ => {
                        self.own_slots.push(false);
                        self.ids.push(net.centers[e2 as usize] as u32);
                    }
                }
            }
        }
        if !self.ids.is_empty() {
            metric.dist_many(points, &points[p], &self.ids, &mut self.evals);
            ps.anchor_evals += self.ids.len() as u64;
        } else {
            self.evals.clear();
        }
        let mut cursor = 0usize;
        for &is_own in &self.own_slots {
            if is_own {
                self.anchors.push(own.expect("own slot recorded").1);
            } else {
                self.anchors.push(self.evals[cursor]);
                cursor += 1;
            }
        }
    }
}

/// `|B(p, ε) ∩ X|`, counted over the neighbor cover sets of `p`'s center
/// `e` and capped at `cap` (early termination — only the `≥ MinPts`
/// predicate is needed).
///
/// With pruning, one anchor evaluation `dis(p, c_{e'})` per
/// sufficiently large neighbor ball sandwiches each member's distance:
/// `dis(p, q) ∈ [|a − dis(q, c)|, a + dis(q, c)]`, so most members are
/// counted (upper bound within `ε`) or discarded (lower bound beyond
/// `ε`) without an evaluation. Anchors are paid **lazily, per ball** —
/// a scan that reaches `cap` in its first ball never anchors the rest —
/// and the point's own ball reuses the net's stored `dis(p, c_p)` for
/// free. The returned count may exceed `cap` by a group-accept, but the
/// `≥ cap` predicate — the only thing callers read — is exact.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Step 1 signature
pub(crate) fn count_neighbors_capped<P, M: BatchMetric<P>>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    adj: &CenterAdjacency,
    e: usize,
    p: usize,
    eps: f64,
    cap: usize,
    pruning: &PruningConfig,
    ps: &mut PruneStats,
) -> usize {
    let row = adj.neighbors.row(e);
    let mut count = 0usize;
    for &e2 in row {
        let e2 = e2 as usize;
        let cover = net.cover_sets.row(e2);
        let anchor = if pruning.enabled && cover.len() >= pruning.min_anchor_group {
            Some(match net.dist_to_center {
                // The own ball's anchor is already on record.
                Some(d2c) if e2 == e => d2c[p],
                _ => {
                    ps.anchor_evals += 1;
                    metric.distance(&points[p], &points[net.centers[e2]])
                }
            })
        } else {
            None
        };
        match (anchor, net.dist_to_center) {
            (Some(a), Some(d2c)) => {
                for &q in cover {
                    let dq = d2c[q as usize];
                    if a + dq <= eps {
                        ps.bound_accepts += 1;
                        count += 1;
                    } else if (a - dq).abs() > eps {
                        ps.bound_rejects += 1;
                    } else if metric.within(&points[p], &points[q as usize], eps) {
                        count += 1;
                    }
                    if count >= cap {
                        return count;
                    }
                }
            }
            (Some(a), None) => {
                // Only the covering radius bounds dis(q, c): whole-group
                // decisions at `r̄` granularity.
                if a + net.rbar <= eps {
                    ps.bound_accepts += cover.len() as u64;
                    count += cover.len();
                    if count >= cap {
                        return count;
                    }
                } else if a - net.rbar > eps {
                    ps.bound_rejects += cover.len() as u64;
                } else {
                    for &q in cover {
                        if metric.within(&points[p], &points[q as usize], eps) {
                            count += 1;
                            if count >= cap {
                                return count;
                            }
                        }
                    }
                }
            }
            (None, _) => {
                for &q in cover {
                    if metric.within(&points[p], &points[q as usize], eps) {
                        count += 1;
                        if count >= cap {
                            return count;
                        }
                    }
                }
            }
        }
    }
    count
}

/// Step 3 for one non-core point: nearest core point among neighbor
/// fragments; ties break toward the earlier center (ascending adjacency
/// rows + strict `<`). Anchored fragments whose triangle lower bound
/// exceeds the current best are skipped without touching them.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Step 3 signature
fn assign_border<P, M: BatchMetric<P>>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    adj: &CenterAdjacency,
    fragments: &Csr,
    frag_radius: &[f64],
    trees: &[Option<CoverTree<'_, P, M>>],
    cluster_of_center: &[u32],
    pi: usize,
    eps: f64,
    pruning: &PruningConfig,
    scratch: &mut AnchorScratch,
    ps: &mut PruneStats,
) -> PointLabel {
    let e = net.assignment[pi] as usize;
    let row = adj.neighbors.row(e);
    let own = net.dist_to_center.map(|d2c| (e as u32, d2c[pi]));
    scratch.anchor_rows(
        points,
        metric,
        net,
        row,
        |e2| fragments.row_len(e2),
        pi,
        own,
        pruning,
        ps,
    );
    let mut cursor = 0usize;
    let mut best: Option<(f64, usize)> = None;
    for &e2 in row {
        let e2 = e2 as usize;
        let frag = fragments.row(e2);
        let anchor = if pruning.enabled && frag.len() >= pruning.min_anchor_group {
            let a = scratch.anchors[cursor];
            cursor += 1;
            Some(a)
        } else {
            None
        };
        if frag.is_empty() {
            continue;
        }
        let bound = best.map_or(eps, |(d, _)| d);
        if let Some(a) = anchor {
            // No fragment member can beat the current best: the anchor
            // minus the fragment's radius already exceeds it.
            if a - frag_radius[e2] > bound {
                ps.bound_rejects += frag.len() as u64;
                continue;
            }
        }
        if let Some(tree) = &trees[e2] {
            if let Some(nn) = tree.nearest_within(&points[pi], bound) {
                if best.is_none_or(|(d, _)| nn.distance < d) {
                    best = Some((nn.distance, e2));
                }
            }
        } else {
            let d2c = net.dist_to_center;
            for &q in frag {
                if let (Some(a), Some(d2c)) = (anchor, d2c) {
                    let dq = d2c[q as usize];
                    if (a - dq).abs() > bound {
                        ps.bound_rejects += 1;
                        continue;
                    }
                }
                if let Some(d) = metric.distance_leq(&points[pi], &points[q as usize], bound) {
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, e2));
                    }
                }
            }
        }
    }
    match best {
        Some((_, e2)) => PointLabel::Border(cluster_of_center[e2]),
        None => PointLabel::Noise,
    }
}

/// Step 3 from the grid: nearest core point among the ring-cell
/// candidates, minimizing `(distance, center position)`
/// lexicographically — exactly the optimum the generic scan's
/// ascending adjacency rows plus strict `<` converge to, so the label
/// matches [`assign_border`] bit-for-bit (the label depends only on
/// the winning center's cluster, and every distance comes from the
/// same metric arithmetic). Cells whose lower bound exceeds the
/// current best cannot beat *or tie* it (`lb ≤ d` holds in f64 for
/// every member), so skipping them never changes the winner.
#[allow(clippy::too_many_arguments)] // mirrors assign_border
fn assign_border_grid<P, M: BatchMetric<P>>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    grid: &GridIndex,
    is_core: &[bool],
    cluster_of_center: &[u32],
    pi: usize,
    eps: f64,
    cs: &mut CandidateStats,
) -> PointLabel {
    let mut best: Option<(f64, usize)> = None;
    let mut walk = CandidateStats::default();
    let (mut emitted, mut rejected) = (0u64, 0u64);
    grid.for_each_candidate_cell(
        grid.point_coords(pi),
        eps,
        &mut walk,
        |members, cell_lb, _| {
            if best.is_some_and(|(d, _)| cell_lb > d) {
                rejected += members.len() as u64;
                return;
            }
            for &q in members {
                let q = q as usize;
                if !is_core[q] {
                    continue;
                }
                emitted += 1;
                let bound = best.map_or(eps, |(d, _)| d);
                if let Some(d) = metric.distance_leq(&points[pi], &points[q], bound) {
                    let e2 = net.assignment[q] as usize;
                    if best.is_none_or(|(bd, be)| d < bd || (d == bd && e2 < be)) {
                        best = Some((d, e2));
                    }
                }
            }
        },
    );
    cs.merge(&walk);
    cs.candidates_emitted += emitted;
    cs.candidates_rejected += rejected;
    match best {
        Some((_, e2)) => PointLabel::Border(cluster_of_center[e2]),
        None => PointLabel::Noise,
    }
}

/// Is `BCP(C̃_e, C̃_{e'}) ≤ eps`? Queries come from the smaller fragment
/// against the larger fragment's cover tree; early termination returns at
/// the first witness. Pure (no shared state beyond the relaxed
/// probe-reject counter), so Step 2 batches may run it concurrently.
///
/// Each probe point `q` is anchored against the **host center** before
/// any tree query: with `lb` a sound lower bound on
/// `dis(c_probe, c_host)` (recorded by the adjacency), the triangle
/// inequality gives `dis(q, m) ≥ lb − dis(q, c_q) − r_host` for every
/// host member `m` — and both `dis(q, c_q)` (the net's stored anchor)
/// and `r_host` (the fragment radius) are already on record, so the
/// whole probe is skipped without a single evaluation when that bound
/// exceeds `eps`. Skipped probes provably contribute no witness pair,
/// so the BCP verdict — and the labels — are unchanged.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Step 2 signature
fn bcp_within<P, M: BatchMetric<P>>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    fragments: &Csr,
    frag_radius: &[f64],
    trees: &[Option<CoverTree<'_, P, M>>],
    e: usize,
    e2: usize,
    eps: f64,
    lb: f64,
    cfg: &ExactConfig,
    probe_rejects: &AtomicU64,
) -> bool {
    // Query from the smaller side.
    let (host, probe) = if fragments.row_len(e) >= fragments.row_len(e2) {
        (e, e2)
    } else {
        (e2, e)
    };
    let probe_row = fragments.row(probe);
    let d2c = if cfg.pruning.enabled {
        net.dist_to_center
    } else {
        None
    };
    let host_radius = frag_radius[host];
    let live = |q: u32| -> bool {
        if let Some(d2c) = d2c {
            if lb - d2c[q as usize] - host_radius > eps {
                probe_rejects.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        true
    };
    if let Some(tree) = &trees[host] {
        if cfg.early_termination {
            probe_row
                .iter()
                .any(|&q| live(q) && tree.any_within(&points[q as usize], eps).is_some())
        } else {
            // Full BCP via exact NN per probe point (ablation mode).
            // Anchored-out probes cannot reach eps, so dropping them
            // never flips the `bcp <= eps` verdict.
            let mut bcp = f64::INFINITY;
            for &q in probe_row {
                if !live(q) {
                    continue;
                }
                if let Some(nn) = tree.nearest(&points[q as usize]) {
                    bcp = bcp.min(nn.distance);
                }
            }
            bcp <= eps
        }
    } else if cfg.early_termination {
        probe_row.iter().any(|&q| {
            live(q)
                && fragments
                    .row(host)
                    .iter()
                    .any(|&r| metric.within(&points[q as usize], &points[r as usize], eps))
        })
    } else {
        let mut bcp = f64::INFINITY;
        for &q in probe_row {
            if !live(q) {
                continue;
            }
            for &r in fragments.row(host) {
                bcp = bcp.min(metric.distance(&points[q as usize], &points[r as usize]));
            }
        }
        bcp <= eps
    }
}
