//! The three steps of exact metric DBSCAN (§3.1), shared by the
//! Algorithm 1 pipeline ([`crate::GonzalezIndex::exact`]) and the
//! cover-tree pipeline of §3.2 ([`crate::exact_dbscan_covertree`]).
//!
//! * **Step 1** — label core points. Points in *dense* balls
//!   (`|C_e| ≥ MinPts`) are core for free because the ball has diameter
//!   `≤ 2r̄ ≤ ε` (this is where `r̄ ≤ ε/2` is needed); points in sparse
//!   balls count their `ε`-neighborhood inside `∪_{e' ∈ A_e} C_{e'}`
//!   (sound by Lemma 2), stopping at `MinPts`. Amortized `O(n·z·t_dis)`
//!   (Lemma 4).
//! * **Step 2** — merge core groups. All core points inside one ball are
//!   pairwise within `2r̄ ≤ ε`, hence one cluster fragment; fragments
//!   `C̃_e, C̃_{e'}` of neighboring balls merge iff their bichromatic
//!   closest pair is `≤ ε`, decided by a cover tree per fragment with
//!   early termination on the first witness pair. `O(n·z·log(ε/δ)·t_dis)`
//!   (Lemma 5).
//! * **Step 3** — borders vs outliers. Each non-core point looks for its
//!   nearest core point inside `∪_{e' ∈ A_e} C̃_{e'}`; within `ε` → border
//!   of that core's cluster, else noise. `O(n·z·t_dis)` (Lemma 6).

use std::time::Instant;

use mdbscan_covertree::CoverTree;
use mdbscan_kcenter::CenterAdjacency;
use mdbscan_metric::Metric;

use crate::labels::PointLabel;
use crate::netview::NetView;
use crate::params::DbscanParams;
use crate::unionfind::UnionFind;

/// Toggles for the implementation refinements of the exact pipeline —
/// the ablation benches flip these to measure what each buys.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Step 1: label every point of a ball with `|C_e| ≥ MinPts` core
    /// without any distance computation (the paper's dense/sparse split,
    /// Lemma 4 / §3.3). Off = every point counts its neighborhood.
    pub dense_shortcut: bool,
    /// Step 2/3: answer BCP and nearest-core queries with per-fragment
    /// cover trees (the paper's design). Off = brute-force scans over the
    /// fragment pairs (still A-restricted).
    pub cover_tree_merge: bool,
    /// Step 2: stop a BCP test at the first witness pair `≤ ε` and skip
    /// tests between fragments already merged transitively. Off = every
    /// neighboring pair computes its full BCP.
    pub early_termination: bool,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            dense_shortcut: true,
            cover_tree_merge: true,
            early_termination: true,
        }
    }
}

/// Phase timings and counters of one exact run (harness fodder: Table 2
/// reports the Algorithm-1 share, the ablations report the step shares).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepsStats {
    /// Centers in the net.
    pub n_centers: usize,
    /// Mean `|A_e|` over centers (paper Lemma 3 bounds this by
    /// `O((ε/r̄)^D) + z`).
    pub mean_adjacency_degree: f64,
    /// Seconds computing the center adjacency.
    pub adjacency_secs: f64,
    /// Seconds in Step 1.
    pub label_secs: f64,
    /// Seconds in Step 2 (including fragment cover-tree construction).
    pub merge_secs: f64,
    /// Seconds in Step 3.
    pub assign_secs: f64,
    /// Number of points labeled core by the dense-ball shortcut.
    pub dense_cores: usize,
    /// Fragment pairs whose BCP was tested.
    pub bcp_tests: u64,
    /// Fragment pairs found connected.
    pub bcp_connected: u64,
}

/// Runs Steps 1–3 over an arbitrary covering net. Caller must guarantee
/// `net.rbar ≤ params.eps() / 2` — that inequality is what makes the dense
/// shortcut and the fragment-merge radius sound.
pub(crate) fn run_exact_steps<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    params: &DbscanParams,
    cfg: &ExactConfig,
) -> (Vec<PointLabel>, StepsStats) {
    debug_assert!(net.rbar <= params.eps() / 2.0 * (1.0 + 1e-9));
    let eps = params.eps();
    let min_pts = params.min_pts();
    let n = net.num_points();
    let k = net.num_centers();
    let mut stats = StepsStats {
        n_centers: k,
        ..Default::default()
    };

    // Neighbor-ball adjacency at 2r̄ + ε (definition (1)); Lemma 2 then
    // confines every ε-ball to its neighbor cover sets.
    let t = Instant::now();
    let adj = CenterAdjacency::build(points, metric, net.centers, 2.0 * net.rbar + eps);
    stats.adjacency_secs = t.elapsed().as_secs_f64();
    stats.mean_adjacency_degree = adj.mean_degree();

    // ---- Step 1: core labeling ----
    let t = Instant::now();
    let mut is_core = vec![false; n];
    for e in 0..k {
        let cset = &net.cover_sets[e];
        if cset.is_empty() {
            continue;
        }
        if cfg.dense_shortcut && cset.len() >= min_pts {
            for &p in cset {
                is_core[p as usize] = true;
            }
            stats.dense_cores += cset.len();
        } else {
            for &p in cset {
                is_core[p as usize] =
                    count_neighbors_capped(points, metric, net, &adj, e, p as usize, eps, min_pts)
                        >= min_pts;
            }
        }
    }
    stats.label_secs = t.elapsed().as_secs_f64();

    // ---- Step 2: merge core fragments ----
    let t = Instant::now();
    // C̃_e: the core points of each cover set.
    let fragments: Vec<Vec<usize>> = net
        .cover_sets
        .iter()
        .map(|cset| {
            cset.iter()
                .map(|&p| p as usize)
                .filter(|&p| is_core[p])
                .collect()
        })
        .collect();
    let trees: Vec<Option<CoverTree<'_, P, M>>> = if cfg.cover_tree_merge {
        fragments
            .iter()
            .map(|frag| {
                (!frag.is_empty())
                    .then(|| CoverTree::from_indices(points, metric, frag.iter().copied()))
            })
            .collect()
    } else {
        (0..k).map(|_| None).collect()
    };
    let mut uf = UnionFind::new(k);
    for e in 0..k {
        if fragments[e].is_empty() {
            continue;
        }
        for &e2 in &adj.neighbors[e] {
            let e2 = e2 as usize;
            if e2 <= e || fragments[e2].is_empty() {
                continue;
            }
            if cfg.early_termination && uf.connected(e, e2) {
                continue;
            }
            stats.bcp_tests += 1;
            if bcp_within(points, metric, &fragments, &trees, e, e2, eps, cfg) {
                stats.bcp_connected += 1;
                uf.union(e, e2);
            }
        }
    }
    stats.merge_secs = t.elapsed().as_secs_f64();

    // ---- Step 3: borders and outliers ----
    let t = Instant::now();
    let cluster_of_center = uf.component_ids();
    let mut labels = vec![PointLabel::Noise; n];
    for e in 0..k {
        for &p in &net.cover_sets[e] {
            let pi = p as usize;
            if is_core[pi] {
                labels[pi] = PointLabel::Core(cluster_of_center[e]);
                continue;
            }
            // Nearest core point among neighbor fragments.
            let mut best: Option<(f64, usize)> = None;
            for &e2 in &adj.neighbors[e] {
                let e2 = e2 as usize;
                if fragments[e2].is_empty() {
                    continue;
                }
                let bound = best.map_or(eps, |(d, _)| d);
                if let Some(tree) = &trees[e2] {
                    if let Some(nn) = tree.nearest_within(&points[pi], bound) {
                        if best.is_none_or(|(d, _)| nn.distance < d) {
                            best = Some((nn.distance, e2));
                        }
                    }
                } else {
                    for &q in &fragments[e2] {
                        if let Some(d) = metric.distance_leq(&points[pi], &points[q], bound) {
                            if best.is_none_or(|(bd, _)| d < bd) {
                                best = Some((d, e2));
                            }
                        }
                    }
                }
            }
            if let Some((_, e2)) = best {
                labels[pi] = PointLabel::Border(cluster_of_center[e2]);
            }
        }
    }
    stats.assign_secs = t.elapsed().as_secs_f64();

    (labels, stats)
}

/// `|B(p, ε) ∩ X|`, counted over the neighbor cover sets of `p`'s center
/// `e` and capped at `cap` (early termination — only the `≥ MinPts`
/// predicate is needed).
#[allow(clippy::too_many_arguments)] // mirrors the paper's Step 1 signature
pub(crate) fn count_neighbors_capped<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    adj: &CenterAdjacency,
    e: usize,
    p: usize,
    eps: f64,
    cap: usize,
) -> usize {
    let mut count = 0usize;
    for &e2 in &adj.neighbors[e] {
        for &q in &net.cover_sets[e2 as usize] {
            if metric.within(&points[p], &points[q as usize], eps) {
                count += 1;
                if count >= cap {
                    return count;
                }
            }
        }
    }
    count
}

/// Is `BCP(C̃_e, C̃_{e'}) ≤ eps`? Queries come from the smaller fragment
/// against the larger fragment's cover tree; early termination returns at
/// the first witness.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Step 2 signature
fn bcp_within<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    fragments: &[Vec<usize>],
    trees: &[Option<CoverTree<'_, P, M>>],
    e: usize,
    e2: usize,
    eps: f64,
    cfg: &ExactConfig,
) -> bool {
    // Query from the smaller side.
    let (host, probe) = if fragments[e].len() >= fragments[e2].len() {
        (e, e2)
    } else {
        (e2, e)
    };
    if let Some(tree) = &trees[host] {
        if cfg.early_termination {
            fragments[probe]
                .iter()
                .any(|&q| tree.any_within(&points[q], eps).is_some())
        } else {
            // Full BCP via exact NN per probe point (ablation mode).
            let mut bcp = f64::INFINITY;
            for &q in &fragments[probe] {
                if let Some(nn) = tree.nearest(&points[q]) {
                    bcp = bcp.min(nn.distance);
                }
            }
            bcp <= eps
        }
    } else if cfg.early_termination {
        fragments[probe].iter().any(|&q| {
            fragments[host]
                .iter()
                .any(|&r| metric.within(&points[q], &points[r], eps))
        })
    } else {
        let mut bcp = f64::INFINITY;
        for &q in &fragments[probe] {
            for &r in &fragments[host] {
                bcp = bcp.min(metric.distance(&points[q], &points[r]));
            }
        }
        bcp <= eps
    }
}
