//! The three steps of exact metric DBSCAN (§3.1), shared by the
//! Algorithm 1 pipeline ([`crate::GonzalezIndex::exact`]) and the
//! cover-tree pipeline of §3.2 ([`crate::exact_dbscan_covertree`]).
//!
//! * **Step 1** — label core points. Points in *dense* balls
//!   (`|C_e| ≥ MinPts`) are core for free because the ball has diameter
//!   `≤ 2r̄ ≤ ε` (this is where `r̄ ≤ ε/2` is needed); points in sparse
//!   balls count their `ε`-neighborhood inside `∪_{e' ∈ A_e} C_{e'}`
//!   (sound by Lemma 2), stopping at `MinPts`. Amortized `O(n·z·t_dis)`
//!   (Lemma 4).
//! * **Step 2** — merge core groups. All core points inside one ball are
//!   pairwise within `2r̄ ≤ ε`, hence one cluster fragment; fragments
//!   `C̃_e, C̃_{e'}` of neighboring balls merge iff their bichromatic
//!   closest pair is `≤ ε`, decided by a cover tree per fragment with
//!   early termination on the first witness pair. `O(n·z·log(ε/δ)·t_dis)`
//!   (Lemma 5).
//! * **Step 3** — borders vs outliers. Each non-core point looks for its
//!   nearest core point inside `∪_{e' ∈ A_e} C̃_{e'}`; within `ε` → border
//!   of that core's cluster, else noise. `O(n·z·t_dis)` (Lemma 6).
//!
//! # Threading
//!
//! Every phase is parallel over its natural unit and deterministic for
//! any thread count ([`ExactConfig::parallel`]):
//!
//! * the adjacency parallelizes over upper-triangle center rows;
//! * Step 1 over points (each point's core test is independent);
//! * Step 2 builds the per-fragment cover trees in parallel (weighted
//!   by fragment size) and batches BCP tests per union-find round — a
//!   batch is pre-filtered against current connectivity, tested in
//!   parallel, and unioned in order, preserving the early-termination
//!   *semantics* (skipped pairs are already-connected pairs) and the
//!   final labels exactly;
//! * Step 3 over points again.

use std::time::Instant;

use mdbscan_covertree::{CoverTree, CoverTreeSkeleton};
use mdbscan_kcenter::CenterAdjacency;
use mdbscan_metric::{CountingMetric, Metric};
use mdbscan_parallel::{par_map_range, par_map_ranges, split_weighted, Csr, ParallelConfig};

use crate::labels::PointLabel;
use crate::netview::NetView;
use crate::params::DbscanParams;
use crate::parmerge::{batch_size, union_rounds};
use crate::unionfind::UnionFind;

/// Points per worker below which Step 1/3 stay sequential.
const STEP_MIN_PER_THREAD: usize = 512;

/// Toggles for the implementation refinements of the exact pipeline —
/// the ablation benches flip these to measure what each buys.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Step 1: label every point of a ball with `|C_e| ≥ MinPts` core
    /// without any distance computation (the paper's dense/sparse split,
    /// Lemma 4 / §3.3). Off = every point counts its neighborhood.
    pub dense_shortcut: bool,
    /// Step 2/3: answer BCP and nearest-core queries with per-fragment
    /// cover trees (the paper's design). Off = brute-force scans over the
    /// fragment pairs (still A-restricted).
    pub cover_tree_merge: bool,
    /// Step 2: stop a BCP test at the first witness pair `≤ ε` and skip
    /// tests between fragments already merged transitively. Off = every
    /// neighboring pair computes its full BCP.
    pub early_termination: bool,
    /// Worker threads for the adjacency and Steps 1–3. The labels are
    /// identical for every setting; only wall-clock changes. Defaults to
    /// the machine's available parallelism.
    pub parallel: ParallelConfig,
    /// Count distance evaluations into [`StepsStats::distance_evals`].
    /// Off by default: the counter is one shared atomic, whose
    /// contention is measurable next to cheap metrics (e.g. 2-d
    /// Euclidean) — enable it for work accounting, not for wall-clock
    /// runs.
    pub count_distance_evals: bool,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            dense_shortcut: true,
            cover_tree_merge: true,
            early_termination: true,
            parallel: ParallelConfig::default(),
            count_distance_evals: false,
        }
    }
}

/// Phase timings and counters of one exact run (harness fodder: Table 2
/// reports the Algorithm-1 share, the ablations report the step shares).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepsStats {
    /// Centers in the net.
    pub n_centers: usize,
    /// Mean `|A_e|` over centers (paper Lemma 3 bounds this by
    /// `O((ε/r̄)^D) + z`).
    pub mean_adjacency_degree: f64,
    /// Seconds computing the center adjacency.
    pub adjacency_secs: f64,
    /// Seconds in Step 1.
    pub label_secs: f64,
    /// Seconds in Step 2 (including fragment cover-tree construction).
    pub merge_secs: f64,
    /// Seconds in Step 3.
    pub assign_secs: f64,
    /// Number of points labeled core by the dense-ball shortcut.
    pub dense_cores: usize,
    /// Fragment pairs whose BCP was tested. With multiple threads a few
    /// extra pairs may be tested relative to a 1-thread run (batch
    /// pre-filtering is round-granular); the resulting labels are
    /// identical.
    pub bcp_tests: u64,
    /// Fragment pairs found connected.
    pub bcp_connected: u64,
    /// Distance evaluations across all phases (adjacency + Steps 1–3),
    /// in units of the paper's `t_dis`. Zero unless
    /// [`ExactConfig::count_distance_evals`] is set.
    pub distance_evals: u64,
}

/// The `(ε, MinPts)`-dependent intermediates of Steps 1–2 that an engine
/// may cache across queries: the core flags, the fragment partition
/// `C̃_e`, and the per-fragment cover trees as owned, borrow-free
/// [`CoverTreeSkeleton`]s.
///
/// For a fixed net all three are **deterministic functions of
/// `(ε, MinPts)`** — independent of thread count and of the ablation
/// toggles under which they are cached (the defaults: dense shortcut and
/// cover-tree merge on) — so replaying them yields bit-identical labels.
/// Re-attaching a skeleton costs zero distance evaluations, which is
/// exactly the Step-2 construction cost the cache amortizes.
pub(crate) struct StepArtifacts {
    pub(crate) is_core: Vec<bool>,
    pub(crate) dense_cores: usize,
    pub(crate) fragments: Csr,
    pub(crate) skeletons: Vec<Option<CoverTreeSkeleton>>,
}

impl StepArtifacts {
    /// Approximate heap footprint, for cache accounting.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.is_core.len()
            + self.fragments.total_len() * std::mem::size_of::<u32>()
            + self
                .skeletons
                .iter()
                .flatten()
                .map(CoverTreeSkeleton::heap_bytes)
                .sum::<usize>()
    }
}

/// Runs Steps 1–3 over an arbitrary covering net. Caller must guarantee
/// `net.rbar ≤ params.eps() / 2` — that inequality is what makes the dense
/// shortcut and the fragment-merge radius sound.
///
/// `reuse` replays cached [`StepArtifacts`] (same net, same
/// `(ε, MinPts)`), skipping Step 1 and the fragment cover-tree
/// construction. The third return value carries freshly computed
/// artifacts for the caller to cache — `Some` only when nothing was
/// reused and the configuration matches the cacheable defaults.
pub(crate) fn run_exact_steps<P: Sync, M: Metric<P> + Sync>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    params: &DbscanParams,
    cfg: &ExactConfig,
    reuse: Option<&StepArtifacts>,
) -> (Vec<PointLabel>, StepsStats, Option<StepArtifacts>) {
    if cfg.count_distance_evals {
        let counting = CountingMetric::new(metric);
        let (labels, mut stats, fresh) =
            run_steps_inner(points, &counting, net, params, cfg, reuse);
        stats.distance_evals = counting.count();
        (labels, stats, fresh)
    } else {
        run_steps_inner(points, metric, net, params, cfg, reuse)
    }
}

fn run_steps_inner<P: Sync, M: Metric<P> + Sync>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    params: &DbscanParams,
    cfg: &ExactConfig,
    reuse: Option<&StepArtifacts>,
) -> (Vec<PointLabel>, StepsStats, Option<StepArtifacts>) {
    debug_assert!(net.rbar <= params.eps() / 2.0 * (1.0 + 1e-9));
    let eps = params.eps();
    let min_pts = params.min_pts();
    let n = net.num_points();
    let k = net.num_centers();
    let threads = cfg.parallel.threads();
    let mut stats = StepsStats {
        n_centers: k,
        ..Default::default()
    };

    // Neighbor-ball adjacency at 2r̄ + ε (definition (1)); Lemma 2 then
    // confines every ε-ball to its neighbor cover sets.
    let t = Instant::now();
    let adj = CenterAdjacency::build_with(
        points,
        metric,
        net.centers,
        2.0 * net.rbar + eps,
        &cfg.parallel,
    );
    stats.adjacency_secs = t.elapsed().as_secs_f64();
    stats.mean_adjacency_degree = adj.mean_degree();

    // ---- Step 1: core labeling, parallel over points ----
    // With cached artifacts the whole step replays from the cache (the
    // core flags are a pure function of (net, ε, MinPts)).
    let t = Instant::now();
    let is_core_local: Option<Vec<bool>> = if reuse.is_some() {
        None
    } else {
        let dense: Vec<bool> = (0..k)
            .map(|e| cfg.dense_shortcut && net.cover_sets.row_len(e) >= min_pts)
            .collect();
        stats.dense_cores = (0..k)
            .filter(|&e| dense[e])
            .map(|e| net.cover_sets.row_len(e))
            .sum();
        Some(par_map_range(n, threads, STEP_MIN_PER_THREAD, |p| {
            let e = net.assignment[p] as usize;
            dense[e]
                || count_neighbors_capped(points, metric, net, &adj, e, p, eps, min_pts) >= min_pts
        }))
    };
    let is_core: &[bool] = match reuse {
        Some(a) => {
            stats.dense_cores = a.dense_cores;
            &a.is_core
        }
        None => is_core_local.as_deref().expect("computed above"),
    };
    stats.label_secs = t.elapsed().as_secs_f64();

    // ---- Step 2: merge core fragments ----
    let t = Instant::now();
    // C̃_e: the core points of each cover set, flattened like the cover
    // sets themselves.
    let fragments_local: Option<Csr> = if reuse.is_some() {
        None
    } else {
        let mut offsets = vec![0usize; k + 1];
        let mut values = Vec::new();
        for e in 0..k {
            values.extend(
                net.cover_sets
                    .row(e)
                    .iter()
                    .copied()
                    .filter(|&p| is_core[p as usize]),
            );
            offsets[e + 1] = values.len();
        }
        Some(Csr::from_parts(offsets, values))
    };
    let fragments: &Csr = match reuse {
        Some(a) => &a.fragments,
        None => fragments_local.as_ref().expect("computed above"),
    };
    let trees: Vec<Option<CoverTree<'_, P, M>>> = if !cfg.cover_tree_merge {
        (0..k).map(|_| None).collect()
    } else if let Some(a) = reuse {
        // Cache hit: re-attach the stored skeletons — zero distance
        // evaluations, just a structure clone per fragment.
        a.skeletons
            .iter()
            .map(|s| {
                s.as_ref()
                    .map(|sk| CoverTree::from_skeleton(points, metric, sk.clone()))
            })
            .collect()
    } else {
        // Parallel over centers, weighted by fragment size (construction
        // cost is superlinear in the fragment, so even splits by row
        // count would starve some workers). Small core sets build
        // sequentially — a few microseconds of tree work never pays for
        // a spawn.
        let tree_threads = if fragments.total_len() >= 2 * STEP_MIN_PER_THREAD {
            threads
        } else {
            1
        };
        let ranges = split_weighted(k, tree_threads, |e| fragments.row_len(e));
        par_map_ranges(ranges, |rows| {
            rows.map(|e| {
                let frag = fragments.row(e);
                (!frag.is_empty()).then(|| {
                    CoverTree::from_indices(points, metric, frag.iter().map(|&p| p as usize))
                })
            })
            .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    };
    let mut uf = UnionFind::new(k);
    // Candidate fragment pairs in (e, e') lexicographic order — the same
    // order the sequential loop tests them in.
    let candidates: Vec<(u32, u32)> = (0..k)
        .filter(|&e| fragments.row_len(e) > 0)
        .flat_map(|e| {
            adj.neighbors[e]
                .iter()
                .map(move |&e2| (e as u32, e2))
                .filter(|&(e, e2)| e2 as usize > e as usize && fragments.row_len(e2 as usize) > 0)
        })
        .collect();
    if threads <= 1 {
        // Classic sequential interleaving: test, union, and let fresh
        // connectivity skip later pairs immediately.
        for &(e, e2) in &candidates {
            let (e, e2) = (e as usize, e2 as usize);
            if cfg.early_termination && uf.connected(e, e2) {
                continue;
            }
            stats.bcp_tests += 1;
            if bcp_within(points, metric, fragments, &trees, e, e2, eps, cfg) {
                stats.bcp_connected += 1;
                uf.union(e, e2);
            }
        }
    } else {
        let batch = batch_size(threads);
        let mut cursor = 0usize;
        let (tested, connected) = union_rounds(
            &mut uf,
            threads,
            |uf| {
                let mut out = Vec::new();
                while out.len() < batch && cursor < candidates.len() {
                    let (e, e2) = candidates[cursor];
                    cursor += 1;
                    if cfg.early_termination && uf.root(e as usize) == uf.root(e2 as usize) {
                        continue;
                    }
                    out.push((e, e2));
                }
                out
            },
            |e, e2| bcp_within(points, metric, fragments, &trees, e, e2, eps, cfg),
        );
        stats.bcp_tests = tested;
        stats.bcp_connected = connected;
    }
    stats.merge_secs = t.elapsed().as_secs_f64();

    // ---- Step 3: borders and outliers, parallel over points ----
    let t = Instant::now();
    let cluster_of_center = uf.component_ids();
    let labels: Vec<PointLabel> = par_map_range(n, threads, STEP_MIN_PER_THREAD, |pi| {
        if is_core[pi] {
            let e = net.assignment[pi] as usize;
            return PointLabel::Core(cluster_of_center[e]);
        }
        // Nearest core point among neighbor fragments; ties break toward
        // the earlier center (ascending adjacency rows + strict `<`).
        let e = net.assignment[pi] as usize;
        let mut best: Option<(f64, usize)> = None;
        for &e2 in &adj.neighbors[e] {
            let e2 = e2 as usize;
            let frag = fragments.row(e2);
            if frag.is_empty() {
                continue;
            }
            let bound = best.map_or(eps, |(d, _)| d);
            if let Some(tree) = &trees[e2] {
                if let Some(nn) = tree.nearest_within(&points[pi], bound) {
                    if best.is_none_or(|(d, _)| nn.distance < d) {
                        best = Some((nn.distance, e2));
                    }
                }
            } else {
                for &q in frag {
                    if let Some(d) = metric.distance_leq(&points[pi], &points[q as usize], bound) {
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, e2));
                        }
                    }
                }
            }
        }
        match best {
            Some((_, e2)) => PointLabel::Border(cluster_of_center[e2]),
            None => PointLabel::Noise,
        }
    });
    stats.assign_secs = t.elapsed().as_secs_f64();

    // Hand freshly computed artifacts back for caching — only when the
    // run matches the cacheable defaults (the dense shortcut keeps
    // `dense_cores` meaningful, the trees only exist under
    // `cover_tree_merge`).
    let fresh =
        (reuse.is_none() && cfg.dense_shortcut && cfg.cover_tree_merge).then(|| StepArtifacts {
            is_core: is_core_local.expect("computed when reuse is None"),
            dense_cores: stats.dense_cores,
            fragments: fragments_local.expect("computed when reuse is None"),
            skeletons: trees
                .into_iter()
                .map(|t| t.map(CoverTree::into_skeleton))
                .collect(),
        });

    (labels, stats, fresh)
}

/// `|B(p, ε) ∩ X|`, counted over the neighbor cover sets of `p`'s center
/// `e` and capped at `cap` (early termination — only the `≥ MinPts`
/// predicate is needed).
#[allow(clippy::too_many_arguments)] // mirrors the paper's Step 1 signature
pub(crate) fn count_neighbors_capped<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    net: &NetView<'_>,
    adj: &CenterAdjacency,
    e: usize,
    p: usize,
    eps: f64,
    cap: usize,
) -> usize {
    let mut count = 0usize;
    for &e2 in &adj.neighbors[e] {
        for &q in net.cover_sets.row(e2 as usize) {
            if metric.within(&points[p], &points[q as usize], eps) {
                count += 1;
                if count >= cap {
                    return count;
                }
            }
        }
    }
    count
}

/// Is `BCP(C̃_e, C̃_{e'}) ≤ eps`? Queries come from the smaller fragment
/// against the larger fragment's cover tree; early termination returns at
/// the first witness. Pure (no shared state), so Step 2 batches may run
/// it concurrently.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Step 2 signature
fn bcp_within<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    fragments: &Csr,
    trees: &[Option<CoverTree<'_, P, M>>],
    e: usize,
    e2: usize,
    eps: f64,
    cfg: &ExactConfig,
) -> bool {
    // Query from the smaller side.
    let (host, probe) = if fragments.row_len(e) >= fragments.row_len(e2) {
        (e, e2)
    } else {
        (e2, e)
    };
    let probe_row = fragments.row(probe);
    if let Some(tree) = &trees[host] {
        if cfg.early_termination {
            probe_row
                .iter()
                .any(|&q| tree.any_within(&points[q as usize], eps).is_some())
        } else {
            // Full BCP via exact NN per probe point (ablation mode).
            let mut bcp = f64::INFINITY;
            for &q in probe_row {
                if let Some(nn) = tree.nearest(&points[q as usize]) {
                    bcp = bcp.min(nn.distance);
                }
            }
            bcp <= eps
        }
    } else if cfg.early_termination {
        probe_row.iter().any(|&q| {
            fragments
                .row(host)
                .iter()
                .any(|&r| metric.within(&points[q as usize], &points[r as usize], eps))
        })
    } else {
        let mut bcp = f64::INFINITY;
        for &q in probe_row {
            for &r in fragments.row(host) {
                bcp = bcp.min(metric.distance(&points[q as usize], &points[r as usize]));
            }
        }
        bcp <= eps
    }
}
