//! Engine persistence: [`MetricDbscan::save`] / [`MetricDbscan::load`]
//! and [`EngineSnapshot::save`] over the `mdbscan_persist` artifact
//! format.
//!
//! A saved engine round-trips **everything** a restarted process needs
//! to answer — and keep ingesting — exactly as if it never died:
//!
//! * the contiguous point snapshot (via `PersistPoint`);
//! * the `r̄`-net: centers, assignment, the exact `dis(p, c_p)`
//!   anchors, the flat cover sets, and the covering flag;
//! * the writer's first-center anchor distances, so post-load ingests
//!   pay exactly the evaluations an unrestarted engine would;
//! * the ingest delta history (dirty-ball lists), so cross-epoch
//!   incremental upgrades keep working across the restart;
//! * every cache, in LRU order with its keys: the `ε`-keyed center
//!   adjacencies with their lo/hi edge bounds, the fragment/summary
//!   artifacts (cached cover-tree skeletons included), and the
//!   whole-input §3.2 trees;
//! * the engine configuration (radius, strategy, pruning policy, cache
//!   capacities) and the lifetime cache counters.
//!
//! Loading performs **zero distance evaluations** — every number above
//! is plain recorded data — and the loaded engine's contract is *bit
//! identity*: every solver returns the same labels, the same evaluation
//! counts, and the same cache-hit behavior the saving engine would
//! have produced, and a post-load `ingest` continues the radius-guided
//! determinism contract seamlessly. The only knob that intentionally
//! does not travel is [`ParallelConfig`]: thread counts are a property
//! of the host, not of the artifact, and labels are identical at every
//! thread count anyway.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use mdbscan_covertree::CoverTreeSkeleton;
use mdbscan_kcenter::{CenterAdjacency, IncrementalNet, RadiusGuidedNet};
use mdbscan_metric::{BatchMetric, MetricTag, PersistMetric, PersistPoint, PruningConfig};
use mdbscan_parallel::{Csr, ParallelConfig};
use mdbscan_persist::{
    checkpoint_path, list_checkpoints, next_checkpoint_seq, ArtifactKind, ArtifactReader,
    ArtifactWriter, ByteReader, ByteWriter, PersistError, SharedBytes,
};

use crate::approx::ApproxArtifacts;
use crate::engine::{
    AdjKey, CacheKey, CachedArtifacts, CandidateIndex, EngineCache, EngineSnapshot, EpochDelta,
    EpochState, IngestState, Lru, MetricDbscan, NetKind, NetStrategy, GRID_CACHE_CAPACITY,
    RP_CACHE_CAPACITY,
};
use crate::error::DbscanError;
use crate::steps::StepArtifacts;
use crate::store::{ChunkedStore, PointBuf};

const SEC_ENGINE: &str = "engine";
const SEC_POINTS: &str = "points";
const SEC_NET: &str = "net";
const SEC_WRITER: &str = "writer";
const SEC_DELTAS: &str = "deltas";
const SEC_ADJACENCY: &str = "adjacency-cache";
const SEC_FRAGMENTS: &str = "fragment-cache";
const SEC_COVERTREES: &str = "covertree-cache";
/// Grid candidate-index configuration. **Optional**: artifacts written
/// before the grid subsystem existed simply lack it, and decode to
/// [`CandidateIndex::Generic`] with default capacity and zeroed
/// counters — so the `golden_v1` fixture (and any other v1 artifact)
/// keeps loading bit-identically. The grid indexes themselves are
/// never persisted: rebuilding them is pure coordinate arithmetic
/// (zero distance evaluations), so only the toggle and its counters
/// travel.
const SEC_GRID: &str = "grid-index";
/// Random-projection candidate-index cache state. **Optional** like
/// [`SEC_GRID`]: artifacts written before the RP subsystem existed
/// simply lack it and decode to the default capacity with zeroed
/// counters. The RP configuration itself (seed, K, m, probes) travels
/// inside the candidate-index byte in [`SEC_GRID`]; the projection
/// lists are never persisted — rebuilding them is pure seeded
/// coordinate arithmetic (zero distance evaluations), bit-identical
/// for a fixed seed.
const SEC_RP: &str = "rp-index";
/// The metric's own state, for **self-contained** artifacts
/// ([`MetricDbscan::save_self_contained`]). **Optional** like
/// [`SEC_GRID`]: plain `save` artifacts simply lack it, and a
/// self-contained artifact still loads through the plain API (the
/// caller-supplied metric wins; the section is ignored). Written via
/// `aligned_section` so array-backed metrics (`VectorBlock`) decode
/// zero-copy.
const SEC_METRIC: &str = "metric";

/// Copied-bytes accounting for one artifact load: how much of the
/// point and metric payload had to be materialized on the heap versus
/// served by reference out of the loaded file buffer.
///
/// A zero-copy load — aligned artifact, plain-scalar point codec
/// (`u32` row ids), array-backed metric via the self-contained API —
/// copies O(1) bytes regardless of the dataset size: the copied
/// counters then hold only fixed-size headers, while the payload
/// counters keep growing with n. Engines built in-process report no
/// stats at all ([`MetricDbscan::load_stats`] is `None`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Bytes of the points section payload.
    pub point_payload_bytes: u64,
    /// Bytes of that payload copied to the heap (0 when the point
    /// array aliases the artifact buffer).
    pub point_bytes_copied: u64,
    /// Bytes of the metric section payload (0 when the artifact is not
    /// self-contained).
    pub metric_payload_bytes: u64,
    /// Bytes of the metric payload copied to the heap; a zero-copy
    /// block decode leaves only the fixed-size length prefix here.
    pub metric_bytes_copied: u64,
}

impl LoadStats {
    /// Total bytes copied to the heap across both payloads.
    pub fn bytes_copied(&self) -> u64 {
        self.point_bytes_copied + self.metric_bytes_copied
    }
}

fn encode_strategy(out: &mut ByteWriter, strategy: NetStrategy) {
    out.put_u8(match strategy {
        NetStrategy::Gonzalez => 0,
        NetStrategy::RadiusGuided => 1,
    });
}

fn decode_strategy(r: &mut ByteReader<'_>) -> Result<NetStrategy, PersistError> {
    match r.get_u8()? {
        0 => Ok(NetStrategy::Gonzalez),
        1 => Ok(NetStrategy::RadiusGuided),
        b => Err(r.err(format!("unknown net strategy {b}"))),
    }
}

fn encode_candidate_index(out: &mut ByteWriter, index: CandidateIndex) {
    match index {
        CandidateIndex::Generic => out.put_u8(0),
        CandidateIndex::Grid => out.put_u8(1),
        CandidateIndex::RandomProjection(cfg) => {
            out.put_u8(2);
            out.put_u64(cfg.seed);
            out.put_u32(cfg.projections);
            out.put_u32(cfg.top_m);
            out.put_u32(cfg.probes);
        }
    }
}

fn decode_candidate_index(r: &mut ByteReader<'_>) -> Result<CandidateIndex, PersistError> {
    match r.get_u8()? {
        0 => Ok(CandidateIndex::Generic),
        1 => Ok(CandidateIndex::Grid),
        2 => {
            let cfg = mdbscan_rp::RpConfig::new(r.get_u64()?)
                .projections(r.get_u32()?)
                .top_m(r.get_u32()?)
                .probes(r.get_u32()?);
            Ok(CandidateIndex::RandomProjection(cfg))
        }
        b => Err(r.err(format!("unknown candidate index {b}"))),
    }
}

/// The optional [`SEC_GRID`] payload, with the defaults an old artifact
/// (no such section) decodes to.
struct GridSection {
    candidate_index: CandidateIndex,
    grid_capacity: usize,
    grid_hits: u64,
    grid_misses: u64,
}

impl GridSection {
    fn encode(&self, out: &mut ByteWriter) {
        encode_candidate_index(out, self.candidate_index);
        out.put_usize(self.grid_capacity);
        out.put_u64(self.grid_hits);
        out.put_u64(self.grid_misses);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            candidate_index: decode_candidate_index(r)?,
            grid_capacity: r.get_usize()?,
            grid_hits: r.get_u64()?,
            grid_misses: r.get_u64()?,
        })
    }

    /// What a pre-grid artifact means: the generic path, the default
    /// capacity derivation, cold counters.
    fn absent(frag_capacity: usize) -> Self {
        Self {
            candidate_index: CandidateIndex::Generic,
            grid_capacity: if frag_capacity == 0 {
                0
            } else {
                GRID_CACHE_CAPACITY
            },
            grid_hits: 0,
            grid_misses: 0,
        }
    }
}

/// The optional [`SEC_RP`] payload, with the defaults a pre-RP artifact
/// (no such section) decodes to.
struct RpSection {
    rp_capacity: usize,
    rp_hits: u64,
    rp_misses: u64,
}

impl RpSection {
    fn encode(&self, out: &mut ByteWriter) {
        out.put_usize(self.rp_capacity);
        out.put_u64(self.rp_hits);
        out.put_u64(self.rp_misses);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            rp_capacity: r.get_usize()?,
            rp_hits: r.get_u64()?,
            rp_misses: r.get_u64()?,
        })
    }

    /// What a pre-RP artifact means: the default capacity derivation,
    /// cold counters.
    fn absent(frag_capacity: usize) -> Self {
        Self {
            rp_capacity: if frag_capacity == 0 {
                0
            } else {
                RP_CACHE_CAPACITY
            },
            rp_hits: 0,
            rp_misses: 0,
        }
    }
}

fn encode_net_kind(out: &mut ByteWriter, kind: NetKind) {
    out.put_u8(match kind {
        NetKind::Gonzalez => 0,
        NetKind::CoverTree => 1,
    });
}

fn decode_net_kind(r: &mut ByteReader<'_>) -> Result<NetKind, PersistError> {
    match r.get_u8()? {
        0 => Ok(NetKind::Gonzalez),
        1 => Ok(NetKind::CoverTree),
        b => Err(r.err(format!("unknown net kind {b}"))),
    }
}

/// The fixed-size engine-section payload: configuration plus counters.
struct EngineSection {
    rbar: f64,
    max_centers: usize,
    strategy: NetStrategy,
    pruning: PruningConfig,
    frag_capacity: usize,
    adj_capacity: usize,
    tree_capacity: usize,
    epoch: u64,
    publishes: u64,
    hits: u64,
    misses: u64,
    upgrades: u64,
    adj_hits: u64,
    adj_misses: u64,
}

impl EngineSection {
    fn encode(&self, out: &mut ByteWriter) {
        out.put_f64(self.rbar);
        out.put_usize(self.max_centers);
        encode_strategy(out, self.strategy);
        self.pruning.encode(out);
        out.put_usize(self.frag_capacity);
        out.put_usize(self.adj_capacity);
        out.put_usize(self.tree_capacity);
        out.put_u64(self.epoch);
        out.put_u64(self.publishes);
        out.put_u64(self.hits);
        out.put_u64(self.misses);
        out.put_u64(self.upgrades);
        out.put_u64(self.adj_hits);
        out.put_u64(self.adj_misses);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        Ok(Self {
            rbar: r.get_f64()?,
            max_centers: r.get_usize()?,
            strategy: decode_strategy(r)?,
            pruning: PruningConfig::decode(r)?,
            frag_capacity: r.get_usize()?,
            adj_capacity: r.get_usize()?,
            tree_capacity: r.get_usize()?,
            epoch: r.get_u64()?,
            publishes: r.get_u64()?,
            hits: r.get_u64()?,
            misses: r.get_u64()?,
            upgrades: r.get_u64()?,
            adj_hits: r.get_u64()?,
            adj_misses: r.get_u64()?,
        })
    }
}

fn encode_cache_key(out: &mut ByteWriter, key: &CacheKey) {
    encode_net_kind(out, key.kind);
    out.put_u64(key.epoch);
    out.put_u64(key.eps_bits);
    out.put_usize(key.min_pts);
    match key.rho_bits {
        Some(bits) => {
            out.put_bool(true);
            out.put_u64(bits);
        }
        None => out.put_bool(false),
    }
}

fn decode_cache_key(r: &mut ByteReader<'_>) -> Result<CacheKey, PersistError> {
    Ok(CacheKey {
        kind: decode_net_kind(r)?,
        epoch: r.get_u64()?,
        eps_bits: r.get_u64()?,
        min_pts: r.get_usize()?,
        rho_bits: if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        },
    })
}

fn encode_adj_key(out: &mut ByteWriter, key: &AdjKey) {
    encode_net_kind(out, key.kind);
    out.put_u64(key.epoch);
    out.put_i32(key.level);
    out.put_u64(key.threshold_bits);
    out.put_bool(key.pruned);
}

fn decode_adj_key(r: &mut ByteReader<'_>) -> Result<AdjKey, PersistError> {
    Ok(AdjKey {
        kind: decode_net_kind(r)?,
        epoch: r.get_u64()?,
        level: r.get_i32()?,
        threshold_bits: r.get_u64()?,
        pruned: r.get_bool()?,
    })
}

fn encode_steps(out: &mut ByteWriter, a: &StepArtifacts) {
    out.put_bools(&a.is_core);
    out.put_usize(a.dense_cores);
    a.fragments.encode(out);
    out.put_f64s(&a.frag_radius);
    out.put_usize(a.skeletons.len());
    for skeleton in &a.skeletons {
        match skeleton {
            Some(s) => {
                out.put_bool(true);
                s.encode(out);
            }
            None => out.put_bool(false),
        }
    }
}

/// Decodes Step-1/2 artifacts, validating their internal alignment and
/// that every stored point id stays inside the artifact's own point
/// count (`is_core.len()`, the epoch the entry was computed at) —
/// which in turn must not exceed `max_points`, the loaded engine's
/// point count. A violated bound here would otherwise surface as an
/// index panic (or silently wrong labels) on the first cache hit.
fn decode_steps(r: &mut ByteReader<'_>, max_points: usize) -> Result<StepArtifacts, PersistError> {
    let is_core = r.get_bools()?;
    let dense_cores = r.get_usize()?;
    let fragments = Csr::decode(r)?;
    let frag_radius = r.get_f64s()?;
    if is_core.len() > max_points {
        return Err(r.err(format!(
            "artifact covers {} points, engine stores {max_points}",
            is_core.len()
        )));
    }
    if frag_radius.len() != fragments.num_rows() {
        return Err(r.err(format!(
            "{} fragment radii for {} fragment rows",
            frag_radius.len(),
            fragments.num_rows()
        )));
    }
    if let Some(&bad) = fragments
        .values()
        .iter()
        .find(|&&p| p as usize >= is_core.len())
    {
        return Err(r.err(format!(
            "fragment member {bad} out of range ({} points)",
            is_core.len()
        )));
    }
    let num_skeletons = r.get_usize()?;
    if num_skeletons != fragments.num_rows() {
        return Err(r.err(format!(
            "{num_skeletons} fragment trees for {} fragment rows",
            fragments.num_rows()
        )));
    }
    let mut skeletons = Vec::with_capacity(num_skeletons.min(r.remaining() + 1));
    for _ in 0..num_skeletons {
        skeletons.push(if r.get_bool()? {
            let skeleton = CoverTreeSkeleton::decode(r)?;
            if skeleton
                .max_point_index()
                .is_some_and(|m| m as usize >= is_core.len())
            {
                return Err(r.err("fragment tree indexes past the artifact's points"));
            }
            Some(skeleton)
        } else {
            None
        });
    }
    Ok(StepArtifacts {
        is_core,
        dense_cores,
        fragments,
        frag_radius,
        skeletons,
    })
}

fn encode_approx(out: &mut ByteWriter, a: &ApproxArtifacts) {
    out.put_bools(&a.center_core);
    out.put_u32s(&a.summary);
    a.summary_by_center.encode(out);
    out.put_u32s(&a.summary_cluster);
}

/// Decodes Algorithm-2 summary artifacts with the same defensive
/// bounds as [`decode_steps`]: summary ids must be stored points,
/// per-center rows must reference existing summary positions, and the
/// per-position arrays must align.
fn decode_approx(
    r: &mut ByteReader<'_>,
    max_points: usize,
) -> Result<ApproxArtifacts, PersistError> {
    let center_core = r.get_bools()?;
    let summary = r.get_u32s()?;
    let summary_by_center = Csr::decode(r)?;
    let summary_cluster = r.get_u32s()?;
    if let Some(&bad) = summary.iter().find(|&&p| p as usize >= max_points) {
        return Err(r.err(format!(
            "summary point {bad} out of range ({max_points} points)"
        )));
    }
    if summary_cluster.len() != summary.len() {
        return Err(r.err(format!(
            "{} cluster ids for {} summary points",
            summary_cluster.len(),
            summary.len()
        )));
    }
    if center_core.len() != summary_by_center.num_rows() {
        return Err(r.err(format!(
            "{} center-core flags for {} summary rows",
            center_core.len(),
            summary_by_center.num_rows()
        )));
    }
    if let Some(&bad) = summary_by_center
        .values()
        .iter()
        .find(|&&s| s as usize >= summary.len())
    {
        return Err(r.err(format!(
            "summary row references position {bad} of {}",
            summary.len()
        )));
    }
    Ok(ApproxArtifacts {
        center_core,
        summary,
        summary_by_center,
        summary_cluster,
    })
}

/// Serializes the points + net of one epoch into `w` (shared by the
/// engine and snapshot save paths). The points section is 8-aligned so
/// plain-scalar point codecs (`u32` row ids: an 8-byte count, then the
/// raw array) decode zero-copy from the loaded buffer.
fn encode_epoch_state<P: PersistPoint>(w: &mut ArtifactWriter, state: &EpochState<P>) {
    let s = w.aligned_section(SEC_POINTS);
    s.put_usize(state.points.len());
    for p in state.points.iter() {
        p.encode_point(s);
    }
    state.net.encode(w.section(SEC_NET));
}

impl<P, M> MetricDbscan<P, M>
where
    P: PersistPoint + Clone + Sync,
    M: BatchMetric<P> + MetricTag,
{
    /// Saves the full engine state to `path` as a versioned,
    /// checksummed artifact (see the `mdbscan_persist` crate docs for
    /// the layout).
    ///
    /// Any pending lazily-published batches are flattened first (a
    /// clone pass — zero distance evaluations), and the writer lock is
    /// held for the duration, so the artifact is a consistent cut: no
    /// ingest can land halfway through it. Concurrent *queries* keep
    /// running.
    ///
    /// The contract [`MetricDbscan::load`] restores: bit-identical
    /// labels, evaluation counts, and cache-hit behavior for every
    /// solver, and post-load ingests that continue the radius-guided
    /// determinism contract as if the process never died.
    ///
    /// The write itself is crash-consistent (temp file + `sync_all` +
    /// atomic rename): a crash mid-save leaves `path` holding either
    /// the previous complete artifact or the new one, never a torn
    /// prefix. A poisoned writer (an earlier ingest panicked
    /// mid-mutation) fails with [`DbscanError::Poisoned`] — a save must
    /// never persist quarantined state.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DbscanError> {
        let started = self.record_save_start();
        self.to_artifact()?
            .write_file(path)
            .map_err(DbscanError::from)?;
        self.record_save_done(started);
        Ok(())
    }

    /// Saves the engine as the next numbered checkpoint in `dir`
    /// (`ckpt-<seq:016x>.mdb`, creating `dir` if needed) and returns
    /// the sequence number written.
    ///
    /// Checkpoints never overwrite each other, so
    /// [`MetricDbscan::load_latest`] can always fall back past a
    /// corrupt newest file to the last good one. Callers that bound
    /// disk use delete old sequence numbers after a successful save.
    pub fn save_checkpoint(&self, dir: impl AsRef<Path>) -> Result<u64, DbscanError> {
        let started = self.record_save_start();
        let dir = dir.as_ref();
        let art = self.to_artifact()?;
        std::fs::create_dir_all(dir).map_err(|e| DbscanError::Io(e.to_string()))?;
        let seq = next_checkpoint_seq(dir)?;
        art.write_file(checkpoint_path(dir, seq))?;
        self.record_save_done(started);
        Ok(seq)
    }

    /// Serializes the engine into an in-memory artifact; `save` is this
    /// plus one `write`.
    fn to_artifact(&self) -> Result<ArtifactWriter, DbscanError> {
        let writer = self.writer_lock()?;
        let state = self.publish_locked(&writer);
        let mut w = ArtifactWriter::new(ArtifactKind::Engine, P::TYPE_TAG, M::METRIC_TAG);
        let cache = self.cache_lock();
        EngineSection {
            rbar: self.rbar,
            max_centers: self.max_centers,
            strategy: self.strategy,
            pruning: self.pruning,
            frag_capacity: cache.fragments.capacity,
            adj_capacity: cache.adjacency.capacity,
            tree_capacity: cache.covertree.capacity,
            epoch: state.epoch,
            publishes: self.publishes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            upgrades: self.upgrade_count.load(Ordering::Relaxed),
            adj_hits: self.adj_hits.load(Ordering::Relaxed),
            adj_misses: self.adj_misses.load(Ordering::Relaxed),
        }
        .encode(w.section(SEC_ENGINE));
        GridSection {
            candidate_index: self.candidate_index,
            grid_capacity: cache.grids.capacity,
            grid_hits: self.grid_hits.load(Ordering::Relaxed),
            grid_misses: self.grid_misses.load(Ordering::Relaxed),
        }
        .encode(w.section(SEC_GRID));
        RpSection {
            rp_capacity: cache.rps.capacity,
            rp_hits: self.rp_hits.load(Ordering::Relaxed),
            rp_misses: self.rp_misses.load(Ordering::Relaxed),
        }
        .encode(w.section(SEC_RP));
        encode_epoch_state(&mut w, &state);

        let s = w.section(SEC_WRITER);
        match writer.as_ref() {
            Some(live) => {
                s.put_bool(true);
                s.put_f64s(live.net.first_center_anchors());
            }
            None => s.put_bool(false),
        }

        let s = w.section(SEC_DELTAS);
        s.put_usize(cache.deltas.len());
        for d in &cache.deltas {
            s.put_u64(d.epoch);
            s.put_usize(d.old_num_points);
            s.put_u32s(&d.dirty_balls);
        }

        let s = w.section(SEC_ADJACENCY);
        s.put_usize(cache.adjacency.entries.len());
        for (key, adj) in &cache.adjacency.entries {
            encode_adj_key(s, key);
            adj.encode(s);
        }

        let s = w.section(SEC_FRAGMENTS);
        s.put_usize(cache.fragments.entries.len());
        for (key, artifact) in &cache.fragments.entries {
            encode_cache_key(s, key);
            match artifact {
                CachedArtifacts::Steps(a) => {
                    s.put_u8(0);
                    encode_steps(s, a);
                }
                CachedArtifacts::Approx(a) => {
                    s.put_u8(1);
                    encode_approx(s, a);
                }
            }
        }

        let s = w.section(SEC_COVERTREES);
        s.put_usize(cache.covertree.entries.len());
        for (epoch, skeleton) in &cache.covertree.entries {
            s.put_u64(*epoch);
            skeleton.encode(s);
        }
        Ok(w)
    }

    /// Loads an engine (or a read-only snapshot — see
    /// [`EngineSnapshot::save`]) from `path`, handing back the metric
    /// the artifact was saved under.
    ///
    /// **Zero distance evaluations**: every structure is re-attached
    /// from recorded data. The artifact's point-type and metric tags
    /// must match `P` and `M` or the load fails with
    /// [`DbscanError::Format`]; a missing or unreadable file is
    /// [`DbscanError::Io`]; truncation and checksum mismatches are
    /// [`DbscanError::Format`] naming the failing section.
    ///
    /// Thread configuration does not travel with the artifact: the
    /// loaded engine uses the host's default [`ParallelConfig`]
    /// (labels and evaluation counts are identical at every thread
    /// count).
    pub fn load(path: impl AsRef<Path>, metric: M) -> Result<Self, DbscanError> {
        let started = Instant::now();
        let buf = SharedBytes::read_file(path)?;
        let parts = Self::decode_artifact_bytes(buf.as_slice(), Some(&buf))?;
        let mut engine = Self::assemble(parts, metric);
        engine.load_micros = started.elapsed().as_micros() as u64;
        Ok(engine)
    }

    /// Loads the newest **readable** checkpoint from a
    /// [`MetricDbscan::save_checkpoint`] directory, walking the
    /// `ckpt-<seq:016x>.mdb` sequence newest-first and falling back
    /// past any unreadable, torn, or corrupt file to the last good one.
    ///
    /// This is the crash-recovery entry point: because checkpoint saves
    /// are atomic *and* numbered, external corruption (or a torn copy)
    /// of the newest artifact degrades the warm start by one checkpoint
    /// instead of preventing it. Returns the loaded engine and the
    /// sequence number it came from. Fails only when `dir` holds no
    /// checkpoint at all ([`DbscanError::Io`]) or every checkpoint is
    /// bad (the newest file's error, so the most recent corruption is
    /// what gets reported).
    pub fn load_latest(dir: impl AsRef<Path>, metric: M) -> Result<(Self, u64), DbscanError> {
        let started = Instant::now();
        let checkpoints = list_checkpoints(dir.as_ref())?;
        if checkpoints.is_empty() {
            return Err(DbscanError::Io(format!(
                "no checkpoints (ckpt-*.mdb) in {}",
                dir.as_ref().display()
            )));
        }
        let mut newest_err = None;
        for (seq, path) in checkpoints.iter().rev() {
            let decoded = SharedBytes::read_file(path)
                .map_err(DbscanError::from)
                .and_then(|buf| Self::decode_artifact_bytes(buf.as_slice(), Some(&buf)));
            match decoded {
                Ok(parts) => {
                    let mut engine = Self::assemble(parts, metric);
                    engine.load_micros = started.elapsed().as_micros() as u64;
                    return Ok((engine, *seq));
                }
                Err(e) => {
                    let _ = newest_err.get_or_insert(e);
                }
            }
        }
        Err(newest_err.expect("non-empty checkpoint list with no Ok"))
    }

    /// Decodes and validates an artifact without needing the metric
    /// *value* (only its tag) — so [`MetricDbscan::load_latest`] can
    /// probe candidate checkpoints without consuming the caller's
    /// metric on every failed attempt.
    fn decode_artifact_bytes(
        bytes: &[u8],
        src: Option<&Arc<SharedBytes>>,
    ) -> Result<DecodedEngine<P>, DbscanError> {
        let art = ArtifactReader::from_bytes(bytes)?;
        Self::decode_from_reader(&art, src)
    }

    /// The section-by-section decode behind every load path. `src` is
    /// the 8-aligned file buffer when the caller holds one: bulk point
    /// codecs then alias it instead of copying (see [`LoadStats`]).
    fn decode_from_reader(
        art: &ArtifactReader<'_>,
        src: Option<&Arc<SharedBytes>>,
    ) -> Result<DecodedEngine<P>, DbscanError> {
        if art.point_tag() != P::TYPE_TAG {
            return Err(PersistError::format(
                "header",
                format!(
                    "artifact stores `{}` points, load requested `{}`",
                    art.point_tag(),
                    P::TYPE_TAG
                ),
            )
            .into());
        }
        if art.metric_tag() != M::METRIC_TAG {
            return Err(PersistError::format(
                "header",
                format!(
                    "artifact was saved under metric `{}`, load supplied `{}`",
                    art.metric_tag(),
                    M::METRIC_TAG
                ),
            )
            .into());
        }

        let mut s = art.require_section(SEC_ENGINE)?;
        let cfg = EngineSection::decode(&mut s)?;

        let grid = match art.section(SEC_GRID) {
            Some(mut s) => GridSection::decode(&mut s)?,
            None => GridSection::absent(cfg.frag_capacity),
        };

        let rp = match art.section(SEC_RP) {
            Some(mut s) => RpSection::decode(&mut s)?,
            None => RpSection::absent(cfg.frag_capacity),
        };

        let mut s = art.require_section(SEC_POINTS)?;
        let point_payload_bytes = s.remaining() as u64;
        let n = s.get_usize()?;
        let points: PointBuf<P> = P::decode_points(&mut s, n, src)?.into();
        let stats = LoadStats {
            point_payload_bytes,
            point_bytes_copied: if points.is_shared() {
                0
            } else {
                point_payload_bytes
            },
            ..LoadStats::default()
        };

        let mut s = art.require_section(SEC_NET)?;
        let net = RadiusGuidedNet::decode(&mut s)?;
        if net.len() != points.len() {
            return Err(PersistError::format(
                SEC_NET,
                format!("net covers {} points, {} stored", net.len(), points.len()),
            )
            .into());
        }
        if let Some(&bad) = net.centers.iter().find(|&&c| c >= points.len()) {
            return Err(PersistError::format(
                SEC_NET,
                format!(
                    "center point id {bad} out of range ({} points)",
                    points.len()
                ),
            )
            .into());
        }
        if net.rbar.to_bits() != cfg.rbar.to_bits() {
            return Err(PersistError::format(
                SEC_NET,
                format!(
                    "net radius {} disagrees with engine radius {}",
                    net.rbar, cfg.rbar
                ),
            )
            .into());
        }
        let net = Arc::new(net);

        let mut writer = None;
        if let Some(mut s) = art.section(SEC_WRITER) {
            if s.get_bool()? {
                let anchors = s.get_f64s()?;
                if anchors.len() > net.centers.len() {
                    return Err(PersistError::format(
                        SEC_WRITER,
                        format!(
                            "{} first-center anchors for {} centers",
                            anchors.len(),
                            net.centers.len()
                        ),
                    )
                    .into());
                }
                writer = Some(IngestState {
                    store: ChunkedStore::from_initial(points.clone()),
                    net: IncrementalNet::from_net_with_anchors(&net, cfg.max_centers, anchors),
                    epoch: cfg.epoch,
                });
            }
        }

        let mut deltas = VecDeque::new();
        if let Some(mut s) = art.section(SEC_DELTAS) {
            let count = s.get_usize()?;
            for _ in 0..count {
                let delta = EpochDelta {
                    epoch: s.get_u64()?,
                    old_num_points: s.get_usize()?,
                    dirty_balls: s.get_u32s()?,
                };
                // Dirty-ball positions index the (append-only) center
                // list during incremental upgrades; out-of-range ids
                // would panic on the first upgrade after the restart.
                if delta.old_num_points > points.len() {
                    return Err(PersistError::format(
                        SEC_DELTAS,
                        format!(
                            "delta predates {} points, engine stores {}",
                            delta.old_num_points,
                            points.len()
                        ),
                    )
                    .into());
                }
                if let Some(&bad) = delta
                    .dirty_balls
                    .iter()
                    .find(|&&b| b as usize >= net.centers.len())
                {
                    return Err(PersistError::format(
                        SEC_DELTAS,
                        format!(
                            "dirty ball {bad} out of range ({} centers)",
                            net.centers.len()
                        ),
                    )
                    .into());
                }
                deltas.push_back(delta);
            }
        }

        let mut adjacency = Lru::new(cfg.adj_capacity);
        if let Some(mut s) = art.section(SEC_ADJACENCY) {
            let count = s.get_usize()?;
            for _ in 0..count {
                let key = decode_adj_key(&mut s)?;
                let adj = CenterAdjacency::decode(&mut s)?;
                // Gonzalez-kind entries index (a prefix of) the loaded
                // net's center list — current-epoch entries exactly so
                // — and may serve as cross-epoch extension bases.
                if key.kind == NetKind::Gonzalez {
                    let expected_exact = key.epoch == cfg.epoch;
                    let rows = adj.neighbors.num_rows();
                    if (expected_exact && rows != net.centers.len()) || rows > net.centers.len() {
                        return Err(PersistError::format(
                            SEC_ADJACENCY,
                            format!(
                                "adjacency spans {rows} centers, net has {}",
                                net.centers.len()
                            ),
                        )
                        .into());
                    }
                }
                adjacency.entries.push((key, Arc::new(adj)));
            }
            adjacency.entries.truncate(cfg.adj_capacity);
        }

        let mut fragments = Lru::new(cfg.frag_capacity);
        if let Some(mut s) = art.section(SEC_FRAGMENTS) {
            let count = s.get_usize()?;
            for _ in 0..count {
                let key = decode_cache_key(&mut s)?;
                let artifact = match s.get_u8()? {
                    0 => {
                        let steps = decode_steps(&mut s, points.len())?;
                        // An entry keyed at the loaded epoch is hit (not
                        // upgraded), so it must cover exactly the loaded
                        // points; older epochs are re-verified against
                        // the delta history before any reuse.
                        if key.epoch == cfg.epoch && steps.is_core.len() != points.len() {
                            return Err(PersistError::format(
                                SEC_FRAGMENTS,
                                format!(
                                    "current-epoch artifact covers {} points, engine stores {}",
                                    steps.is_core.len(),
                                    points.len()
                                ),
                            )
                            .into());
                        }
                        CachedArtifacts::Steps(Arc::new(steps))
                    }
                    1 => CachedArtifacts::Approx(Arc::new(decode_approx(&mut s, points.len())?)),
                    b => return Err(s.err(format!("unknown artifact variant {b}")).into()),
                };
                fragments.entries.push((key, artifact));
            }
            fragments.entries.truncate(cfg.frag_capacity);
        }

        let mut covertree = Lru::new(cfg.tree_capacity);
        if let Some(mut s) = art.section(SEC_COVERTREES) {
            let count = s.get_usize()?;
            for _ in 0..count {
                let epoch = s.get_u64()?;
                let skeleton = CoverTreeSkeleton::decode(&mut s)?;
                if skeleton.len() > points.len() {
                    return Err(PersistError::format(
                        SEC_COVERTREES,
                        format!(
                            "cached tree spans {} points, engine stores {}",
                            skeleton.len(),
                            points.len()
                        ),
                    )
                    .into());
                }
                covertree.entries.push((epoch, Arc::new(skeleton)));
            }
            covertree.entries.truncate(cfg.tree_capacity);
        }

        Ok(DecodedEngine {
            cfg,
            grid,
            rp,
            points,
            net,
            writer,
            deltas,
            adjacency,
            fragments,
            covertree,
            stats,
        })
    }

    /// Attaches `metric` to decoded parts; pure construction, no I/O
    /// and no distance evaluations.
    fn assemble(parts: DecodedEngine<P>, metric: M) -> Self {
        let DecodedEngine {
            cfg,
            grid,
            rp,
            points,
            net,
            writer,
            deltas,
            adjacency,
            fragments,
            covertree,
            stats,
        } = parts;
        MetricDbscan {
            metric,
            rbar: cfg.rbar,
            parallel: ParallelConfig::default(),
            pruning: cfg.pruning,
            max_centers: cfg.max_centers,
            strategy: cfg.strategy,
            candidate_index: grid.candidate_index,
            current: RwLock::new(Arc::new(EpochState {
                epoch: cfg.epoch,
                points,
                net,
            })),
            writer: Mutex::new(writer),
            cache: Mutex::new(EngineCache {
                fragments,
                adjacency,
                covertree,
                grids: Lru::new(grid.grid_capacity),
                rps: Lru::new(rp.rp_capacity),
                deltas,
            }),
            pending_epoch: AtomicU64::new(cfg.epoch),
            publishes: AtomicU64::new(cfg.publishes),
            hits: AtomicU64::new(cfg.hits),
            misses: AtomicU64::new(cfg.misses),
            upgrade_count: AtomicU64::new(cfg.upgrades),
            adj_hits: AtomicU64::new(cfg.adj_hits),
            adj_misses: AtomicU64::new(cfg.adj_misses),
            grid_hits: AtomicU64::new(grid.grid_hits),
            grid_misses: AtomicU64::new(grid.grid_misses),
            rp_hits: AtomicU64::new(rp.rp_hits),
            rp_misses: AtomicU64::new(rp.rp_misses),
            load_stats: Some(stats),
            // Callers overwrite with the measured wall clock; a
            // recorder is attached post-load via `with_recorder`.
            load_micros: 0,
            recorder: None,
        }
    }
}

impl<P, M> MetricDbscan<P, M>
where
    P: PersistPoint + Clone + Sync,
    M: BatchMetric<P> + PersistMetric,
{
    /// Saves the engine with the metric's own state embedded in a
    /// `"metric"` section: the artifact is then **self-contained** — the
    /// matching [`MetricDbscan::load_self_contained`] rebuilds both the
    /// engine and the metric from the file, so a replica boots without
    /// re-deriving (or shipping) the metric out of band.
    ///
    /// For array-backed metrics ([`mdbscan_metric::VectorBlock`]) the
    /// metric section is written at an 8-aligned payload offset, so the
    /// coordinate and norm arrays decode **zero-copy**: together with
    /// the `u32` row-id points, a cold start copies O(1) point bytes
    /// regardless of n (see [`LoadStats`]).
    ///
    /// Everything [`MetricDbscan::save`] guarantees holds here too —
    /// same sections, same crash consistency, same bit-identity
    /// contract — and a self-contained artifact still loads through the
    /// plain [`MetricDbscan::load`] (the embedded metric is ignored in
    /// favor of the caller's).
    pub fn save_self_contained(&self, path: impl AsRef<Path>) -> Result<(), DbscanError> {
        let started = self.record_save_start();
        self.to_self_contained_artifact()?
            .write_file(path)
            .map_err(DbscanError::from)?;
        self.record_save_done(started);
        Ok(())
    }

    /// As [`MetricDbscan::save_checkpoint`], with the metric embedded
    /// ([`MetricDbscan::save_self_contained`]).
    pub fn save_checkpoint_self_contained(
        &self,
        dir: impl AsRef<Path>,
    ) -> Result<u64, DbscanError> {
        let started = self.record_save_start();
        let dir = dir.as_ref();
        let art = self.to_self_contained_artifact()?;
        std::fs::create_dir_all(dir).map_err(|e| DbscanError::Io(e.to_string()))?;
        let seq = next_checkpoint_seq(dir)?;
        art.write_file(checkpoint_path(dir, seq))?;
        self.record_save_done(started);
        Ok(seq)
    }

    fn to_self_contained_artifact(&self) -> Result<ArtifactWriter, DbscanError> {
        let mut w = self.to_artifact()?;
        self.metric.encode_metric(w.aligned_section(SEC_METRIC));
        Ok(w)
    }

    /// Loads a [`MetricDbscan::save_self_contained`] artifact,
    /// rebuilding the metric from its embedded section — no metric
    /// value to supply, and for block metrics no point or coordinate
    /// bytes to copy. Fails with [`DbscanError::Format`] when the
    /// artifact lacks a metric section (i.e. was written by the plain
    /// `save`); every other failure mode matches
    /// [`MetricDbscan::load`].
    pub fn load_self_contained(path: impl AsRef<Path>) -> Result<Self, DbscanError> {
        let started = Instant::now();
        let buf = SharedBytes::read_file(path)?;
        let (parts, metric) = Self::decode_self_contained(&buf)?;
        let mut engine = Self::assemble(parts, metric);
        engine.load_micros = started.elapsed().as_micros() as u64;
        Ok(engine)
    }

    /// As [`MetricDbscan::load_latest`], for self-contained
    /// checkpoints ([`MetricDbscan::save_checkpoint_self_contained`]):
    /// walks the checkpoint sequence newest-first, skipping unreadable
    /// files *and* plain (metric-less) checkpoints, and returns the
    /// newest loadable engine with its sequence number.
    pub fn load_latest_self_contained(dir: impl AsRef<Path>) -> Result<(Self, u64), DbscanError> {
        let started = Instant::now();
        let checkpoints = list_checkpoints(dir.as_ref())?;
        if checkpoints.is_empty() {
            return Err(DbscanError::Io(format!(
                "no checkpoints (ckpt-*.mdb) in {}",
                dir.as_ref().display()
            )));
        }
        let mut newest_err = None;
        for (seq, path) in checkpoints.iter().rev() {
            let decoded = SharedBytes::read_file(path)
                .map_err(DbscanError::from)
                .and_then(|buf| Self::decode_self_contained(&buf));
            match decoded {
                Ok((parts, metric)) => {
                    let mut engine = Self::assemble(parts, metric);
                    engine.load_micros = started.elapsed().as_micros() as u64;
                    return Ok((engine, *seq));
                }
                Err(e) => {
                    let _ = newest_err.get_or_insert(e);
                }
            }
        }
        Err(newest_err.expect("non-empty checkpoint list with no Ok"))
    }

    fn decode_self_contained(buf: &Arc<SharedBytes>) -> Result<(DecodedEngine<P>, M), DbscanError> {
        let art = ArtifactReader::from_bytes(buf.as_slice())?;
        let mut parts = Self::decode_from_reader(&art, Some(buf))?;
        let mut s = art.require_section(SEC_METRIC)?;
        parts.stats.metric_payload_bytes = s.remaining() as u64;
        let metric = M::decode_metric(&mut s, Some(buf))?;
        parts.stats.metric_bytes_copied = parts
            .stats
            .metric_payload_bytes
            .saturating_sub(metric.shared_state_bytes() as u64);
        Ok((parts, metric))
    }
}

/// Everything an artifact decodes to except the metric itself: the
/// halfway house between bytes and a running engine that lets
/// [`MetricDbscan::load_latest`] try several checkpoint files with one
/// (non-`Clone`) metric value.
struct DecodedEngine<P> {
    cfg: EngineSection,
    grid: GridSection,
    rp: RpSection,
    points: PointBuf<P>,
    net: Arc<RadiusGuidedNet>,
    writer: Option<IngestState<P>>,
    deltas: VecDeque<EpochDelta>,
    adjacency: Lru<AdjKey, Arc<CenterAdjacency>>,
    fragments: Lru<CacheKey, CachedArtifacts>,
    covertree: Lru<u64, Arc<CoverTreeSkeleton>>,
    stats: LoadStats,
}

impl<'e, P, M> EngineSnapshot<'e, P, M>
where
    P: PersistPoint + Clone + Sync,
    M: BatchMetric<P> + MetricTag,
{
    /// Saves this pinned epoch — points and net only, no caches, no
    /// writer state — as a read-only snapshot artifact: the shape a
    /// read-replica fleet fans out. [`MetricDbscan::load`] restores it
    /// as an engine serving exactly this epoch with cold caches and
    /// zeroed counters (it may even ingest onward — the net's recorded
    /// state is all the first-fit rule needs).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DbscanError> {
        let engine = self.engine;
        let started = engine.record_save_start();
        let mut w = ArtifactWriter::new(ArtifactKind::Snapshot, P::TYPE_TAG, M::METRIC_TAG);
        let (frag_capacity, adj_capacity, tree_capacity, grid_capacity, rp_capacity) = {
            let cache = engine.cache_lock();
            (
                cache.fragments.capacity,
                cache.adjacency.capacity,
                cache.covertree.capacity,
                cache.grids.capacity,
                cache.rps.capacity,
            )
        };
        EngineSection {
            rbar: engine.rbar,
            max_centers: engine.max_centers,
            strategy: engine.strategy,
            pruning: engine.pruning,
            frag_capacity,
            adj_capacity,
            tree_capacity,
            epoch: self.state.epoch,
            publishes: 0,
            hits: 0,
            misses: 0,
            upgrades: 0,
            adj_hits: 0,
            adj_misses: 0,
        }
        .encode(w.section(SEC_ENGINE));
        GridSection {
            candidate_index: engine.candidate_index,
            grid_capacity,
            grid_hits: 0,
            grid_misses: 0,
        }
        .encode(w.section(SEC_GRID));
        RpSection {
            rp_capacity,
            rp_hits: 0,
            rp_misses: 0,
        }
        .encode(w.section(SEC_RP));
        encode_epoch_state(&mut w, &self.state);
        w.write_file(path)?;
        engine.record_save_done(started);
        Ok(())
    }
}
