//! The engine's chunked, append-only point store.
//!
//! Ingest batches arrive as sealed `Arc<[P]>` chunks that are never
//! moved or reallocated again — concurrent readers may hold any number
//! of them alive through published snapshots. Epoch publication
//! [`ChunkedStore::flatten`]s the chunks into one contiguous `Arc<[P]>`
//! (the solvers' inner loops index a flat slice), which costs one clone
//! pass over the points but **zero distance evaluations** — free in the
//! paper's `t_dis` cost model, and off the read path entirely. Since
//! PR 5 that flatten is **lazy**: the first-fit net maintenance scans
//! the store *in place* through [`mdbscan_kcenter::PointAccess`], so a
//! point-at-a-time feeder pays O(batch) per ingest and the O(n) flatten
//! only on the first post-batch read.

use std::sync::Arc;

use mdbscan_kcenter::PointAccess;

/// Append-only storage for the engine's point sequence: sealed chunks
/// plus their running offsets.
pub(crate) struct ChunkedStore<P> {
    chunks: Vec<Arc<[P]>>,
    /// `offsets[i]` is the global id of the first point of chunk `i`;
    /// one trailing entry holds the total, so lookup is a
    /// `partition_point` over a tiny array.
    offsets: Vec<usize>,
}

impl<P> ChunkedStore<P> {
    /// Seeds the store with the engine's build-time points (shared, not
    /// copied — `Arc<[P]>` clone is a refcount bump).
    pub(crate) fn from_initial(chunk: Arc<[P]>) -> Self {
        let len = chunk.len();
        Self {
            chunks: vec![chunk],
            offsets: vec![0, len],
        }
    }

    /// Total points across all chunks.
    pub(crate) fn len(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Seals one ingest batch as a new chunk.
    pub(crate) fn append(&mut self, batch: Vec<P>) {
        let len = self.len() + batch.len();
        self.chunks.push(batch.into());
        self.offsets.push(len);
    }

    /// The point with global id `i`, without flattening.
    pub(crate) fn get(&self, i: usize) -> &P {
        debug_assert!(i < self.len());
        let chunk = self.offsets.partition_point(|&o| o <= i) - 1;
        &self.chunks[chunk][i - self.offsets[chunk]]
    }
}

impl<P> PointAccess<P> for ChunkedStore<P> {
    fn num_points(&self) -> usize {
        self.len()
    }

    fn point(&self, i: usize) -> &P {
        self.get(i)
    }
}

impl<P: Clone> ChunkedStore<P> {
    /// The contiguous snapshot view of everything stored so far. With a
    /// single chunk this is a refcount bump; otherwise one clone pass.
    pub(crate) fn flatten(&self) -> Arc<[P]> {
        if self.chunks.len() == 1 {
            return Arc::clone(&self.chunks[0]);
        }
        let mut flat = Vec::with_capacity(self.len());
        for chunk in &self.chunks {
            flat.extend(chunk.iter().cloned());
        }
        flat.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_flatten() {
        let mut store = ChunkedStore::from_initial(Arc::from(vec![1u32, 2]));
        assert_eq!(store.len(), 2);
        let first = store.flatten();
        store.append(vec![3, 4, 5]);
        store.append(Vec::new());
        assert_eq!(store.len(), 5);
        let flat = store.flatten();
        assert_eq!(&flat[..], &[1, 2, 3, 4, 5]);
        // The pre-append snapshot is untouched.
        assert_eq!(&first[..], &[1, 2]);
    }

    #[test]
    fn indexed_access_crosses_chunk_boundaries() {
        let mut store = ChunkedStore::from_initial(Arc::from(vec![10u32, 11]));
        store.append(vec![12]);
        store.append(Vec::new());
        store.append(vec![13, 14, 15]);
        assert_eq!(store.num_points(), 6);
        for i in 0..6 {
            assert_eq!(*store.get(i), 10 + i as u32);
            assert_eq!(*store.point(i), 10 + i as u32);
        }
    }
}
