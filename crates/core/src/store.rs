//! The engine's chunked, append-only point store.
//!
//! Ingest batches arrive as sealed `Arc<[P]>` chunks that are never
//! moved or reallocated again — concurrent readers may hold any number
//! of them alive through published snapshots. Each epoch publish
//! [`ChunkedStore::flatten`]s the chunks into one contiguous `Arc<[P]>`
//! (the solvers' inner loops index a flat slice), which costs one clone
//! pass over the points but **zero distance evaluations** — free in the
//! paper's `t_dis` cost model, and off the read path entirely.

use std::sync::Arc;

/// Append-only storage for the engine's point sequence: sealed chunks
/// plus the running total.
pub(crate) struct ChunkedStore<P> {
    chunks: Vec<Arc<[P]>>,
    len: usize,
}

impl<P> ChunkedStore<P> {
    /// Seeds the store with the engine's build-time points (shared, not
    /// copied — `Arc<[P]>` clone is a refcount bump).
    pub(crate) fn from_initial(chunk: Arc<[P]>) -> Self {
        let len = chunk.len();
        Self {
            chunks: vec![chunk],
            len,
        }
    }

    /// Total points across all chunks.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Seals one ingest batch as a new chunk.
    pub(crate) fn append(&mut self, batch: Vec<P>) {
        self.len += batch.len();
        self.chunks.push(batch.into());
    }
}

impl<P: Clone> ChunkedStore<P> {
    /// The contiguous snapshot view of everything stored so far. With a
    /// single chunk this is a refcount bump; otherwise one clone pass.
    pub(crate) fn flatten(&self) -> Arc<[P]> {
        if self.chunks.len() == 1 {
            return Arc::clone(&self.chunks[0]);
        }
        let mut flat = Vec::with_capacity(self.len);
        for chunk in &self.chunks {
            flat.extend(chunk.iter().cloned());
        }
        flat.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_flatten() {
        let mut store = ChunkedStore::from_initial(Arc::from(vec![1u32, 2]));
        assert_eq!(store.len(), 2);
        let first = store.flatten();
        store.append(vec![3, 4, 5]);
        store.append(Vec::new());
        assert_eq!(store.len(), 5);
        let flat = store.flatten();
        assert_eq!(&flat[..], &[1, 2, 3, 4, 5]);
        // The pre-append snapshot is untouched.
        assert_eq!(&first[..], &[1, 2]);
    }
}
