//! The engine's chunked, append-only point store and the [`PointBuf`]
//! snapshot buffer.
//!
//! Ingest batches arrive as sealed chunks that are never moved or
//! reallocated again — concurrent readers may hold any number of them
//! alive through published snapshots. Epoch publication
//! [`ChunkedStore::flatten`]s the chunks into one contiguous buffer
//! (the solvers' inner loops index a flat slice), which costs one clone
//! pass over the points but **zero distance evaluations** — free in the
//! paper's `t_dis` cost model, and off the read path entirely. Since
//! PR 5 that flatten is **lazy**: the first-fit net maintenance scans
//! the store *in place* through [`mdbscan_kcenter::PointAccess`], so a
//! point-at-a-time feeder pays O(batch) per ingest and the O(n) flatten
//! only on the first post-batch read.
//!
//! [`PointBuf`] exists for the zero-copy load path: a point snapshot is
//! *usually* an owned `Arc<[P]>`, but an engine decoded from an aligned
//! artifact can hold its points as a [`SharedSlice`] view straight into
//! the loaded file buffer — same `&[P]` to every reader, O(1) point
//! bytes copied at boot.

use std::ops::Deref;
use std::sync::Arc;

use mdbscan_kcenter::PointAccess;
use mdbscan_persist::{MaybeShared, SharedSlice};

/// One contiguous point snapshot: heap-owned, or a zero-copy view of a
/// loaded artifact buffer. Cloning either variant is a refcount bump;
/// both deref to `&[P]`.
pub(crate) enum PointBuf<P> {
    /// Points on the heap (built, ingested, or decoded element-by-
    /// element from an unaligned artifact).
    Owned(Arc<[P]>),
    /// Points aliasing a loaded artifact buffer — nothing was copied,
    /// and the file buffer stays alive as long as this snapshot does.
    Shared(SharedSlice<P>),
}

impl<P> PointBuf<P> {
    /// The points, whichever variant holds them.
    pub(crate) fn as_slice(&self) -> &[P] {
        match self {
            PointBuf::Owned(v) => v,
            PointBuf::Shared(s) => s.as_slice(),
        }
    }

    /// True when the points alias a loaded artifact buffer.
    pub(crate) fn is_shared(&self) -> bool {
        matches!(self, PointBuf::Shared(_))
    }
}

impl<P: Clone> PointBuf<P> {
    /// An `Arc<[P]>` of the snapshot. A refcount bump for the owned
    /// variant; a shared (artifact-aliasing) snapshot pays one clone
    /// pass here — the public `points_arc` escape hatch, not any
    /// engine-internal path.
    pub(crate) fn to_arc(&self) -> Arc<[P]> {
        match self {
            PointBuf::Owned(v) => Arc::clone(v),
            PointBuf::Shared(s) => Arc::from(s.as_slice()),
        }
    }
}

impl<P> Clone for PointBuf<P> {
    fn clone(&self) -> Self {
        match self {
            PointBuf::Owned(v) => PointBuf::Owned(Arc::clone(v)),
            PointBuf::Shared(s) => PointBuf::Shared(s.clone()),
        }
    }
}

impl<P> Deref for PointBuf<P> {
    type Target = [P];
    fn deref(&self) -> &[P] {
        self.as_slice()
    }
}

impl<P> From<Arc<[P]>> for PointBuf<P> {
    fn from(v: Arc<[P]>) -> Self {
        PointBuf::Owned(v)
    }
}

impl<P> From<Vec<P>> for PointBuf<P> {
    fn from(v: Vec<P>) -> Self {
        PointBuf::Owned(v.into())
    }
}

impl<P> From<MaybeShared<P>> for PointBuf<P> {
    fn from(v: MaybeShared<P>) -> Self {
        match v {
            MaybeShared::Owned(v) => PointBuf::Owned(v.into()),
            MaybeShared::Shared(s) => PointBuf::Shared(s),
        }
    }
}

impl<P: std::fmt::Debug> std::fmt::Debug for PointBuf<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointBuf::Owned(v) => write!(f, "Owned(len {})", v.len()),
            PointBuf::Shared(s) => write!(f, "Shared(len {})", s.len()),
        }
    }
}

/// Append-only storage for the engine's point sequence: sealed chunks
/// plus their running offsets.
pub(crate) struct ChunkedStore<P> {
    chunks: Vec<PointBuf<P>>,
    /// `offsets[i]` is the global id of the first point of chunk `i`;
    /// one trailing entry holds the total, so lookup is a
    /// `partition_point` over a tiny array.
    offsets: Vec<usize>,
}

impl<P> ChunkedStore<P> {
    /// Seeds the store with the engine's build-time points (shared, not
    /// copied — a [`PointBuf`] clone is a refcount bump).
    pub(crate) fn from_initial(chunk: impl Into<PointBuf<P>>) -> Self {
        let chunk = chunk.into();
        let len = chunk.len();
        Self {
            chunks: vec![chunk],
            offsets: vec![0, len],
        }
    }

    /// Total points across all chunks.
    pub(crate) fn len(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Seals one ingest batch as a new chunk.
    pub(crate) fn append(&mut self, batch: Vec<P>) {
        let len = self.len() + batch.len();
        self.chunks.push(batch.into());
        self.offsets.push(len);
    }

    /// The point with global id `i`, without flattening.
    pub(crate) fn get(&self, i: usize) -> &P {
        debug_assert!(i < self.len());
        let chunk = self.offsets.partition_point(|&o| o <= i) - 1;
        &self.chunks[chunk][i - self.offsets[chunk]]
    }
}

impl<P> PointAccess<P> for ChunkedStore<P> {
    fn num_points(&self) -> usize {
        self.len()
    }

    fn point(&self, i: usize) -> &P {
        self.get(i)
    }
}

impl<P: Clone> ChunkedStore<P> {
    /// The contiguous snapshot view of everything stored so far. With a
    /// single chunk this is a refcount bump; otherwise one clone pass.
    pub(crate) fn flatten(&self) -> PointBuf<P> {
        if self.chunks.len() == 1 {
            return self.chunks[0].clone();
        }
        let mut flat = Vec::with_capacity(self.len());
        for chunk in &self.chunks {
            flat.extend(chunk.iter().cloned());
        }
        flat.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_flatten() {
        let mut store = ChunkedStore::from_initial(vec![1u32, 2]);
        assert_eq!(store.len(), 2);
        let first = store.flatten();
        store.append(vec![3, 4, 5]);
        store.append(Vec::new());
        assert_eq!(store.len(), 5);
        let flat = store.flatten();
        assert_eq!(&flat[..], &[1, 2, 3, 4, 5]);
        // The pre-append snapshot is untouched.
        assert_eq!(&first[..], &[1, 2]);
    }

    #[test]
    fn indexed_access_crosses_chunk_boundaries() {
        let mut store = ChunkedStore::from_initial(vec![10u32, 11]);
        store.append(vec![12]);
        store.append(Vec::new());
        store.append(vec![13, 14, 15]);
        assert_eq!(store.num_points(), 6);
        for i in 0..6 {
            assert_eq!(*store.get(i), 10 + i as u32);
            assert_eq!(*store.point(i), 10 + i as u32);
        }
    }

    #[test]
    fn point_buf_variants_share_without_copying() {
        let owned: PointBuf<u32> = vec![1u32, 2, 3].into();
        assert!(!owned.is_shared());
        let again = owned.clone();
        assert_eq!(
            owned.as_slice().as_ptr(),
            again.as_slice().as_ptr(),
            "owned clone must share the allocation"
        );
        assert_eq!(owned.to_arc().as_ref(), &[1, 2, 3]);

        let buf = std::sync::Arc::new(mdbscan_persist::SharedBytes::from_vec(
            7u32.to_le_bytes()
                .iter()
                .chain(8u32.to_le_bytes().iter())
                .copied()
                .collect(),
        ));
        let view = SharedSlice::<u32>::new(&buf, 0, 2).expect("aligned");
        let shared: PointBuf<u32> = PointBuf::Shared(view);
        assert!(shared.is_shared());
        assert_eq!(&shared[..], &[7, 8]);
        assert_eq!(
            shared.as_slice().as_ptr() as *const u8,
            buf.as_slice().as_ptr(),
            "shared points must alias the buffer"
        );
        assert_eq!(shared.to_arc().as_ref(), &[7, 8]);
    }
}
