//! Public surface of the exact solver (§3.1) and its golden tests.
//!
//! The algorithm itself lives in [`crate::steps`]; this module re-exports
//! its configuration/stats types and carries the exactness test battery:
//! the paper's central claim is that the k-center-accelerated pipeline
//! returns *the same clusters* as the original DBSCAN of Ester et al., so
//! every test here compares against a straightforward `O(n²)` reference.

pub use crate::steps::{ExactConfig, StepsStats as ExactStats};

#[cfg(test)]
mod tests {
    use crate::{exact_dbscan, Clustering, DbscanParams, ExactConfig, MetricDbscan, PointLabel};
    use mdbscan_metric::{CountingMetric, Euclidean, Levenshtein, Metric};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Textbook O(n²) DBSCAN: brute-force neighborhoods + BFS expansion.
    /// Used as the golden reference for exactness.
    fn reference_dbscan<P, M: Metric<P>>(
        points: &[P],
        metric: &M,
        eps: f64,
        min_pts: usize,
    ) -> Clustering {
        let n = points.len();
        let neighborhoods: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| metric.within(&points[i], &points[j], eps))
                    .collect()
            })
            .collect();
        let is_core: Vec<bool> = neighborhoods.iter().map(|nb| nb.len() >= min_pts).collect();
        let mut labels = vec![PointLabel::Noise; n];
        let mut cluster = 0u32;
        for start in 0..n {
            if !is_core[start] || !labels[start].is_noise() {
                continue;
            }
            let mut queue = vec![start];
            labels[start] = PointLabel::Core(cluster);
            while let Some(p) = queue.pop() {
                for &q in &neighborhoods[p] {
                    if is_core[q] {
                        if labels[q].is_noise() {
                            labels[q] = PointLabel::Core(cluster);
                            queue.push(q);
                        }
                    } else if labels[q].is_noise() {
                        labels[q] = PointLabel::Border(cluster);
                    }
                }
            }
            cluster += 1;
        }
        Clustering::from_labels(labels)
    }

    /// The partition over *core* points must agree exactly; border points
    /// may legitimately attach to different clusters when within ε of
    /// several (paper footnote 1), so for borders we only check validity:
    /// the border's cluster must contain a core point within ε.
    fn assert_equivalent<P, M: Metric<P>>(
        points: &[P],
        metric: &M,
        eps: f64,
        ours: &Clustering,
        reference: &Clustering,
    ) {
        assert_eq!(ours.len(), reference.len());
        assert_eq!(
            ours.num_clusters(),
            reference.num_clusters(),
            "cluster count mismatch"
        );
        // Same core sets.
        for i in 0..ours.len() {
            assert_eq!(
                ours.labels()[i].is_core(),
                reference.labels()[i].is_core(),
                "core disagreement at {i}"
            );
            assert_eq!(
                ours.labels()[i].is_noise(),
                reference.labels()[i].is_noise(),
                "noise disagreement at {i}"
            );
        }
        // Core partition identical (up to renumbering): two cores share a
        // cluster in ours iff they do in the reference.
        let mut pair_map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut rev_map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for i in 0..ours.len() {
            if !ours.labels()[i].is_core() {
                continue;
            }
            let a = ours.cluster_of(i).unwrap();
            let b = reference.cluster_of(i).unwrap();
            assert_eq!(*pair_map.entry(a).or_insert(b), b, "core partition differs");
            assert_eq!(*rev_map.entry(b).or_insert(a), a, "core partition differs");
        }
        // Borders: assigned cluster must have a witness core within eps.
        for i in 0..ours.len() {
            if let PointLabel::Border(c) = ours.labels()[i] {
                let ok = (0..ours.len()).any(|j| {
                    ours.labels()[j].is_core()
                        && ours.cluster_of(j) == Some(c)
                        && metric.within(&points[i], &points[j], eps)
                });
                assert!(ok, "border {i} has no witness core in its cluster");
            }
        }
    }

    fn two_moons_ish(seed: u64, n: usize) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::with_capacity(n);
        for i in 0..n {
            let t = std::f64::consts::PI * (i % (n / 2)) as f64 / (n / 2) as f64;
            let (mut x, mut y) = (t.cos(), t.sin());
            if i >= n / 2 {
                x = 1.0 - x;
                y = 0.5 - y;
            }
            pts.push(vec![
                x + rng.random_range(-0.05..0.05),
                y + rng.random_range(-0.05..0.05),
            ]);
        }
        // a few outliers
        for _ in 0..n / 50 {
            pts.push(vec![
                rng.random_range(-10.0..10.0),
                rng.random_range(-10.0..10.0),
            ]);
        }
        pts
    }

    #[test]
    fn matches_reference_on_moons() {
        let pts = two_moons_ish(1, 300);
        for eps in [0.15, 0.25, 0.4] {
            let ours = exact_dbscan(&pts, &Euclidean, eps, 5).unwrap();
            let reference = reference_dbscan(&pts, &Euclidean, eps, 5);
            assert_equivalent(&pts, &Euclidean, eps, &ours, &reference);
        }
    }

    #[test]
    fn matches_reference_on_random_instances() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.random_range(20..140);
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![rng.random_range(-3.0..3.0), rng.random_range(-3.0..3.0)])
                .collect();
            let eps = rng.random_range(0.2..1.5);
            let min_pts = rng.random_range(2..7);
            let ours = exact_dbscan(&pts, &Euclidean, eps, min_pts).unwrap();
            let reference = reference_dbscan(&pts, &Euclidean, eps, min_pts);
            assert_equivalent(&pts, &Euclidean, eps, &ours, &reference);
        }
    }

    #[test]
    fn matches_reference_on_strings() {
        let mut words: Vec<String> = Vec::new();
        for base in ["cluster", "density", "stream"] {
            for i in 0..8 {
                let mut w = base.to_string();
                if i % 2 == 0 {
                    w.push(char::from(b'a' + (i as u8)));
                } else {
                    w.insert(0, char::from(b'a' + (i as u8)));
                }
                words.push(w);
            }
        }
        words.push("zzzzzzzzzzzzz".to_string()); // outlier
        let ours = exact_dbscan(&words, &Levenshtein, 2.0, 3).unwrap();
        let reference = reference_dbscan(&words, &Levenshtein, 2.0, 3);
        assert_equivalent(&words, &Levenshtein, 2.0, &ours, &reference);
        assert_eq!(ours.num_clusters(), 3);
        assert!(ours.labels().last().unwrap().is_noise());
    }

    #[test]
    fn all_config_ablations_agree() {
        let pts = two_moons_ish(3, 200);
        let params = DbscanParams::new(0.3, 5).unwrap();
        let engine = MetricDbscan::builder(pts.clone(), Euclidean)
            .rbar(0.15)
            .build()
            .unwrap();
        let baseline = engine.exact(&params).unwrap().clustering;
        for dense in [false, true] {
            for tree in [false, true] {
                for early in [false, true] {
                    let cfg = ExactConfig {
                        dense_shortcut: dense,
                        cover_tree_merge: tree,
                        early_termination: early,
                        ..ExactConfig::default()
                    };
                    let run = engine.exact_with(&params, &cfg).unwrap();
                    let c = &run.clustering;
                    assert!(
                        c.same_partition(&baseline) || {
                            // borders may tie-break differently across configs;
                            // require identical core partition + noise set
                            let ref_c = reference_dbscan(&pts, &Euclidean, 0.3, 5);
                            assert_equivalent(&pts, &Euclidean, 0.3, c, &ref_c);
                            true
                        },
                        "config {cfg:?} changed the result"
                    );
                    let stats = run.report.exact_stats().expect("exact run");
                    assert_eq!(stats.n_centers, engine.num_centers());
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        // single point, min_pts = 1: the point is its own core cluster
        let one = vec![vec![0.0]];
        let c = exact_dbscan(&one, &Euclidean, 1.0, 1).unwrap();
        assert_eq!(c.num_clusters(), 1);
        assert!(c.labels()[0].is_core());
        // single point, min_pts = 2: noise
        let c = exact_dbscan(&one, &Euclidean, 1.0, 2).unwrap();
        assert_eq!(c.num_clusters(), 0);
        assert!(c.labels()[0].is_noise());
        // all duplicates: one cluster
        let dup = vec![vec![1.0, 2.0]; 10];
        let c = exact_dbscan(&dup, &Euclidean, 0.5, 4).unwrap();
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.num_core(), 10);
        // all far apart with high min_pts: all noise
        let far: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 100.0]).collect();
        let c = exact_dbscan(&far, &Euclidean, 1.0, 2).unwrap();
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.num_noise(), 10);
    }

    #[test]
    fn min_pts_one_puts_every_point_in_a_cluster() {
        let pts: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 10.0]).collect();
        let c = exact_dbscan(&pts, &Euclidean, 1.0, 1).unwrap();
        // every point is core (its ball contains itself)
        assert_eq!(c.num_core(), 20);
        assert_eq!(c.num_clusters(), 20);
    }

    #[test]
    fn subquadratic_distance_evaluations_on_clustered_data() {
        // 2 dense blobs: the pipeline should use far fewer than n² distance
        // evaluations (the reference uses exactly n²).
        let mut pts = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        for c in 0..2 {
            for _ in 0..400 {
                pts.push(vec![
                    c as f64 * 50.0 + rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                ]);
            }
        }
        let n = pts.len() as u64;
        let counting = CountingMetric::new(Euclidean);
        let c = exact_dbscan(&pts, &counting, 0.5, 10).unwrap();
        assert_eq!(c.num_clusters(), 2);
        assert!(
            counting.count() < n * n / 4,
            "used {} evaluations, n² = {}",
            counting.count(),
            n * n
        );
    }
}
