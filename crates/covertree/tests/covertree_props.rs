//! Property-based certification of the cover tree against brute force.

use mdbscan_covertree::CoverTree;
use mdbscan_metric::{Euclidean, Levenshtein, Metric};
use proptest::prelude::*;

fn points_2d() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 2), 1..120)
}

/// Clustered + outlier mixture: many near-duplicates plus far-away points —
/// the regime the DBSCAN pipeline feeds the tree.
fn clustered_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (
        prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 2), 1..60),
        prop::collection::vec(prop::collection::vec(-1e4f64..1e4, 2), 0..6),
    )
        .prop_map(|(mut dense, far)| {
            dense.extend(far);
            dense
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold(pts in points_2d()) {
        let tree = CoverTree::build(&pts, &Euclidean);
        prop_assert_eq!(tree.len(), pts.len());
        tree.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn invariants_hold_clustered(pts in clustered_points()) {
        let tree = CoverTree::build(&pts, &Euclidean);
        tree.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn nearest_is_exact(pts in points_2d(), q in prop::collection::vec(-60.0f64..60.0, 2)) {
        let tree = CoverTree::build(&pts, &Euclidean);
        let got = tree.nearest(&q).unwrap();
        let want = pts
            .iter()
            .map(|p| Euclidean.distance(p, &q))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got.distance - want).abs() < 1e-9,
            "tree NN {} vs brute {}", got.distance, want);
    }

    #[test]
    fn range_is_exact(pts in points_2d(), q in prop::collection::vec(-60.0f64..60.0, 2), r in 0.0f64..40.0) {
        let tree = CoverTree::build(&pts, &Euclidean);
        let mut out = Vec::new();
        tree.range(&q, r, &mut out);
        out.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| Euclidean.distance(*p, &q) <= r)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(out, want);
    }

    #[test]
    fn any_within_agrees_with_range(pts in clustered_points(), q in prop::collection::vec(-60.0f64..60.0, 2), r in 0.0f64..30.0) {
        let tree = CoverTree::build(&pts, &Euclidean);
        let exists = pts.iter().any(|p| Euclidean.distance(p, &q) <= r);
        let witness = tree.any_within(&q, r);
        prop_assert_eq!(witness.is_some(), exists);
        if let Some(w) = witness {
            prop_assert!(Euclidean.distance(&pts[w.index], &q) <= r + 1e-12);
        }
    }

    #[test]
    fn count_within_matches(pts in points_2d(), q in prop::collection::vec(-60.0f64..60.0, 2), r in 0.0f64..30.0, cap in 1usize..20) {
        let tree = CoverTree::build(&pts, &Euclidean);
        let true_count = pts.iter().filter(|p| Euclidean.distance(*p, &q) <= r).count();
        prop_assert_eq!(tree.count_within(&q, r, cap), true_count.min(cap));
    }

    #[test]
    fn knn_matches_brute(pts in points_2d(), q in prop::collection::vec(-60.0f64..60.0, 2), k in 1usize..12) {
        let tree = CoverTree::build(&pts, &Euclidean);
        let got = tree.knn(&q, k);
        let mut dists: Vec<f64> = pts.iter().map(|p| Euclidean.distance(p, &q)).collect();
        dists.sort_by(f64::total_cmp);
        prop_assert_eq!(got.len(), k.min(pts.len()));
        for (g, w) in got.iter().zip(dists.iter()) {
            prop_assert!((g.distance - w).abs() < 1e-9);
        }
    }

    #[test]
    fn string_tree_invariants(words in prop::collection::vec("[ab]{0,6}", 1..40)) {
        let tree = CoverTree::build(&words, &Levenshtein);
        tree.check_invariants().map_err(TestCaseError::fail)?;
        let q = "abab".to_string();
        let got = tree.nearest(&q).unwrap();
        let want = words
            .iter()
            .map(|w| Levenshtein.distance(w, &q))
            .fold(f64::INFINITY, f64::min);
        prop_assert_eq!(got.distance, want);
    }
}
