//! Tree structure and insertion.

use mdbscan_metric::Metric;

/// A nearest-neighbor query answer: point index (into the slice the tree
/// was built over) and its distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the point in the backing slice.
    pub index: usize,
    /// Distance from the query to that point.
    pub distance: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Index of the representative point in the backing slice.
    pub(crate) point: u32,
    /// Level at which this node was inserted; its implicit self-chain spans
    /// all levels below. Children attached at level `j` satisfy
    /// `dis(child, self) ≤ 2^{j+1}`.
    pub(crate) level: i32,
    /// The exact distance to this node's parent, recorded at insertion
    /// time (0 for the root). Usually far below the `2^{level+1}`
    /// covering cap, which is what makes it a *tighter* anchor: both
    /// insertion and every query skip a child whose parent-anchored
    /// triangle lower bound already clears the pruning radius — without
    /// evaluating the child's distance.
    pub(crate) parent_dist: f64,
    /// Explicit children (node ids), each with `child.level < self.level`.
    pub(crate) children: Vec<u32>,
    /// Exact duplicates of `point` (distance 0), collapsed into this node so
    /// the separation invariant survives duplicated inputs (the paper's
    /// noisy-duplication datasets contain many).
    pub(crate) same: Vec<u32>,
}

/// The borrow-free structure of a [`CoverTree`]: node records (point
/// indices, levels, child links) without the point slice or metric.
///
/// A skeleton is what a long-lived owner (e.g. a clustering engine that
/// caches per-fragment trees across queries) stores: detach it with
/// [`CoverTree::into_skeleton`], keep it as long as the backing point
/// slice stays unchanged, and re-attach with [`CoverTree::from_skeleton`]
/// — re-attachment performs **zero distance evaluations**, which is the
/// entire construction cost the cache amortizes.
#[derive(Debug, Clone)]
pub struct CoverTreeSkeleton {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: Option<u32>,
    pub(crate) len: usize,
    /// Largest point index stored anywhere in `nodes` (0 when empty),
    /// computed once at detach time so re-attachment validates in O(1)
    /// instead of rescanning every node.
    pub(crate) max_index: u32,
}

impl CoverTreeSkeleton {
    /// Number of points the originating tree stored (duplicates included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the originating tree was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest point index stored anywhere in the skeleton, or `None`
    /// when it is empty — what a loader bounds a candidate point slice
    /// against before re-attaching.
    pub fn max_point_index(&self) -> Option<u32> {
        (!self.nodes.is_empty()).then_some(self.max_index)
    }

    /// Approximate heap footprint in bytes (node records + link lists) —
    /// what an LRU over skeletons accounts against its budget.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| (n.children.len() + n.same.len()) * std::mem::size_of::<u32>())
                .sum::<usize>()
    }
}

/// A cover tree over a borrowed point slice.
///
/// The tree stores indices into `points`; it never copies points. Build a
/// tree over a subset with [`CoverTree::from_indices`] (used by DBSCAN
/// Step 2, which indexes each core group `C̃_e` separately).
///
/// ```
/// use mdbscan_covertree::CoverTree;
/// use mdbscan_metric::Euclidean;
///
/// let pts: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
/// let tree = CoverTree::build(&pts, &Euclidean);
/// let nn = tree.nearest(&vec![41.3]).unwrap();
/// assert_eq!(nn.index, 41);
/// ```
pub struct CoverTree<'a, P, M> {
    pub(crate) points: &'a [P],
    pub(crate) metric: &'a M,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: Option<u32>,
    pub(crate) len: usize,
}

/// `⌈log₂ d⌉` as an i32, for strictly positive finite `d`.
pub(crate) fn level_for(d: f64) -> i32 {
    debug_assert!(d > 0.0 && d.is_finite());
    let l = d.log2().ceil() as i32;
    // Guard against rounding: 2^l must be >= d.
    if exp2(l) < d {
        l + 1
    } else {
        l
    }
}

/// `2^i` for i32 levels, saturating to f64 extremes.
#[inline]
pub(crate) fn exp2(i: i32) -> f64 {
    (i as f64).exp2()
}

impl<'a, P, M: Metric<P>> CoverTree<'a, P, M> {
    /// Builds a cover tree over all of `points` by incremental insertion.
    pub fn build(points: &'a [P], metric: &'a M) -> Self {
        Self::from_indices(points, metric, 0..points.len())
    }

    /// Builds a cover tree over the subset of `points` selected by
    /// `indices`. Indices must be in range; duplicates in `indices` are
    /// collapsed like duplicate points.
    pub fn from_indices(
        points: &'a [P],
        metric: &'a M,
        indices: impl IntoIterator<Item = usize>,
    ) -> Self {
        let mut tree = Self {
            points,
            metric,
            nodes: Vec::new(),
            root: None,
            len: 0,
        };
        for i in indices {
            tree.insert(i);
        }
        tree
    }

    /// Detaches the tree's structure from the borrowed points and metric,
    /// producing an owned [`CoverTreeSkeleton`] that can outlive both.
    pub fn into_skeleton(self) -> CoverTreeSkeleton {
        let max_index = self
            .nodes
            .iter()
            .flat_map(|n| std::iter::once(n.point).chain(n.same.iter().copied()))
            .max()
            .unwrap_or(0);
        CoverTreeSkeleton {
            nodes: self.nodes,
            root: self.root,
            len: self.len,
            max_index,
        }
    }

    /// Re-attaches a skeleton to a point slice and metric, restoring a
    /// queryable tree **without any distance evaluations** (the cost is a
    /// structure move plus an O(1) bounds check).
    ///
    /// The caller must supply the same (or an equal) point slice the
    /// skeleton was built over; every point index stored in the skeleton
    /// must be in range for `points` (checked via the skeleton's
    /// precomputed maximum index).
    pub fn from_skeleton(points: &'a [P], metric: &'a M, skeleton: CoverTreeSkeleton) -> Self {
        assert!(
            skeleton.nodes.is_empty() || (skeleton.max_index as usize) < points.len(),
            "skeleton indexes past the supplied point slice"
        );
        Self {
            points,
            metric,
            nodes: skeleton.nodes,
            root: skeleton.root,
            len: skeleton.len,
        }
    }

    /// Number of points stored (including collapsed duplicates).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no point has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing point slice.
    pub fn points(&self) -> &'a [P] {
        self.points
    }

    /// Current root level (`l_top`), if non-empty.
    pub fn root_level(&self) -> Option<i32> {
        self.root.map(|r| self.nodes[r as usize].level)
    }

    #[inline]
    fn dist(&self, node: u32, q: &P) -> f64 {
        self.metric
            .distance(&self.points[self.nodes[node as usize].point as usize], q)
    }

    /// Inserts the point at `index` into the tree.
    ///
    /// Implements the textbook `Insert` recursion iteratively: descend with
    /// a cover set `Q_i`, remembering at each level a candidate parent
    /// within `2^i`; when the descent fails (`dis(p, Q) > 2^i`), attach to
    /// the deepest remembered parent. Exact duplicates are appended to the
    /// matching node's `same` list.
    pub fn insert(&mut self, index: usize) {
        assert!(index < self.points.len(), "point index out of range");
        let p = &self.points[index];
        let Some(root) = self.root else {
            self.nodes.push(Node {
                point: index as u32,
                level: 0,
                parent_dist: 0.0,
                children: Vec::new(),
                same: Vec::new(),
            });
            self.root = Some(0);
            self.len = 1;
            return;
        };

        let d_root = self.dist(root, p);
        if d_root == 0.0 {
            self.nodes[root as usize].same.push(index as u32);
            self.len += 1;
            return;
        }
        // Promote the root so its ball covers p. Promotion is free: the
        // implicit self-chain simply starts higher.
        let needed = level_for(d_root);
        if needed > self.nodes[root as usize].level {
            self.nodes[root as usize].level = needed;
        }

        let mut level = self.nodes[root as usize].level;
        // Cover set Q_i: (node id, distance to p) for the nodes whose
        // implicit chains at `level` may still adopt p.
        let mut cover: Vec<(u32, f64)> = vec![(root, d_root)];
        // Deepest (node, level j, distance) seen with `node ∈ Q_j` and
        // `dis(p, node) ≤ 2^j`; on descent failure p attaches under `node`
        // at level `j − 1` (textbook step 3b, with the cascade flattened).
        let mut parent: (u32, i32, f64) = (root, self.nodes[root as usize].level, d_root);
        debug_assert!(d_root <= exp2(parent.1));

        loop {
            let radius = exp2(level);
            // Remember the closest valid parent among the incoming Q_i.
            if let Some(&(q, d)) = cover
                .iter()
                .filter(|&&(_, d)| d <= radius)
                .min_by(|a, b| a.1.total_cmp(&b.1))
            {
                parent = (q, level, d);
            }
            // Expand: Q = Q_i ∪ {children of Q_i at level − 1} (the nodes
            // themselves stand in for their implicit self-children).
            let mut expanded = cover.clone();
            #[allow(clippy::needless_range_loop)]
            // indexing avoids holding a borrow across the mutation below
            for k in 0..cover.len() {
                let (q, dq) = cover[k];
                // Collect ids first: computing distances needs `&self`.
                // Children whose parent-anchored lower bound
                // `dis(p, q) − dis(c, q)` already exceeds the covering
                // radius cannot join the next cover set (and cannot be a
                // duplicate of p) — skip their distance evaluation; the
                // resulting tree is identical.
                let child_ids: Vec<u32> = self.nodes[q as usize]
                    .children
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let node = &self.nodes[c as usize];
                        node.level == level - 1 && dq - node.parent_dist <= radius
                    })
                    .collect();
                for c in child_ids {
                    let d = self.dist(c, p);
                    if d == 0.0 {
                        self.nodes[c as usize].same.push(index as u32);
                        self.len += 1;
                        return;
                    }
                    expanded.push((c, d));
                }
            }
            let dmin = expanded
                .iter()
                .map(|&(_, d)| d)
                .fold(f64::INFINITY, f64::min);
            if dmin > radius {
                // d(p, Q) > 2^i: no chain below can adopt p.
                break;
            }
            cover = expanded.into_iter().filter(|&(_, d)| d <= radius).collect();
            // Jump past levels where nothing changes: no new children get
            // expanded and the parent candidate stays the current argmin
            // until the covering test first fails at `level_for(dmin) − 1`.
            let next_child_level = cover
                .iter()
                .flat_map(|&(q, _)| self.nodes[q as usize].children.iter())
                .map(|&c| self.nodes[c as usize].level)
                .filter(|&l| l <= level - 2)
                .max();
            let attach_floor = level_for(dmin); // smallest i with dmin <= 2^i
            let next = match next_child_level {
                // A child at level c is expanded when the loop sits at c+1.
                Some(cl) => (cl + 1).max(attach_floor),
                None => attach_floor,
            };
            // `min` guarantees progress even when `next == level` (the
            // covering test will then fail one level down and we attach).
            level = next.min(level - 1);
        }

        let (pnode, plevel, pdist) = parent;
        debug_assert!(
            self.dist(pnode, p) <= exp2(plevel),
            "covering invariant would break"
        );
        let node = Node {
            point: index as u32,
            level: plevel - 1,
            parent_dist: pdist,
            children: Vec::new(),
            same: Vec::new(),
        };
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        self.nodes[pnode as usize].children.push(id);
        self.len += 1;
    }

    /// All point indices stored in the subtree rooted at `node` (that is,
    /// the node's own chain and everything attached below), including
    /// duplicates.
    pub(crate) fn collect_subtree(&self, node: u32, out: &mut Vec<usize>) {
        let n = &self.nodes[node as usize];
        out.push(n.point as usize);
        out.extend(n.same.iter().map(|&s| s as usize));
        for &c in &n.children {
            self.collect_subtree(c, out);
        }
    }

    /// Every stored point index (order unspecified).
    pub fn indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len);
        if let Some(r) = self.root {
            self.collect_subtree(r, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    #[test]
    fn empty_tree() {
        let pts: Vec<Vec<f64>> = vec![];
        let t = CoverTree::build(&pts, &Euclidean);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.root_level(), None);
        assert!(t.indices().is_empty());
    }

    #[test]
    fn single_and_duplicate_points() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]];
        let t = CoverTree::build(&pts, &Euclidean);
        assert_eq!(t.len(), 3);
        let mut idx = t.indices();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2]);
        // All duplicates collapse into one node.
        assert_eq!(t.nodes.len(), 1);
    }

    #[test]
    fn stores_all_points() {
        let pts: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 17) as f64 * 0.37, (i % 23) as f64 * 1.11])
            .collect();
        let t = CoverTree::build(&pts, &Euclidean);
        assert_eq!(t.len(), 200);
        let mut idx = t.indices();
        idx.sort_unstable();
        assert_eq!(idx, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn subset_build() {
        let pts: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let t = CoverTree::from_indices(&pts, &Euclidean, (0..50).step_by(2));
        assert_eq!(t.len(), 25);
        assert!(t.indices().iter().all(|i| i % 2 == 0));
    }

    #[test]
    fn level_for_powers() {
        assert_eq!(level_for(1.0), 0);
        assert_eq!(level_for(2.0), 1);
        assert_eq!(level_for(2.1), 2);
        assert_eq!(level_for(0.5), -1);
        assert_eq!(level_for(0.4), -1);
        assert!(exp2(level_for(3.7)) >= 3.7);
        assert!(exp2(level_for(1e-9)) >= 1e-9);
    }

    #[test]
    #[should_panic]
    fn out_of_range_insert_panics() {
        let pts = vec![vec![0.0]];
        let mut t = CoverTree::build(&pts, &Euclidean);
        t.insert(5);
    }

    #[test]
    fn skeleton_round_trip_preserves_queries() {
        let pts: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![(i % 13) as f64 * 0.7, (i % 29) as f64 * 0.3])
            .collect();
        let tree = CoverTree::build(&pts, &Euclidean);
        let queries: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.43, 2.1]).collect();
        let want: Vec<_> = queries.iter().map(|q| tree.nearest(q)).collect();
        let skeleton = tree.into_skeleton();
        assert_eq!(skeleton.len(), 150);
        assert!(!skeleton.is_empty());
        assert!(skeleton.heap_bytes() > 0);
        // A clone re-attaches independently; both answer identically.
        let restored = CoverTree::from_skeleton(&pts, &Euclidean, skeleton.clone());
        let again = CoverTree::from_skeleton(&pts, &Euclidean, skeleton);
        for (q, w) in queries.iter().zip(&want) {
            assert_eq!(&restored.nearest(q), w);
            assert_eq!(&again.nearest(q), w);
        }
    }

    #[test]
    #[should_panic]
    fn skeleton_rejects_short_slice() {
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let skeleton = CoverTree::build(&pts, &Euclidean).into_skeleton();
        let short = &pts[..3];
        let _ = CoverTree::from_skeleton(short, &Euclidean, skeleton);
    }
}
