//! Cover tree: the spatial-index substrate of the metric DBSCAN pipeline.
//!
//! A cover tree (Beygelzimer, Kakade, Langford, ICML 2006) stores a point
//! set `P` from an arbitrary metric space as a hierarchy of nested nets.
//! Level `i` of the (implicit) tree is a set `T_i ⊆ P` with:
//!
//! * **nesting**: `T_i ⊆ T_{i−1}`;
//! * **covering**: every `q ∈ T_{i−1}` has a parent `p ∈ T_i` with
//!   `dis(p, q) ≤ 2^i`;
//! * **separation**: distinct `p, q ∈ T_i` satisfy `dis(p, q) > 2^i`.
//!
//! On data of doubling dimension `D`, construction costs
//! `O(2^{O(D)} · n · log Φ)` distance evaluations and a nearest-neighbor
//! query `O(2^{O(D)} · log Φ)`, where `Φ` is the aspect ratio (paper
//! Claim 1). The paper uses cover trees in two places:
//!
//! 1. **Step 2 of exact DBSCAN (§3.1)**: a tree per core-point group `C̃_e`
//!    answers bichromatic-closest-pair queries between neighboring groups —
//!    here via [`CoverTree::any_within`], which terminates as soon as *any*
//!    witness pair `≤ ε` is found (Step 2 only needs the predicate, not the
//!    exact BCP value).
//! 2. **The §3.2 variant**: when the *whole* input has low doubling
//!    dimension, the `ε/2`-net that Algorithm 1 would build is read off a
//!    tree level instead ([`CoverTree::extract_net`]).
//!
//! This is the *vanilla* explicit-representation cover tree: one node per
//! distinct point, implicit self-chains, exact duplicates collapsed into
//! their representative node (see [`CoverTree::build`]). Simplified /
//! compressed variants (Izbicki–Shelton 2015, Elkin–Kurlin 2023) could be
//! dropped in behind the same API, as Remark 2 of the paper notes.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod invariants;
mod net;
mod persist;
mod query;
mod tree;

pub use net::NetExtraction;
pub use tree::{CoverTree, CoverTreeSkeleton, Neighbor};
