//! Structural invariant checking, used by the test suite (and available to
//! downstream property tests) to certify that insertion maintained the
//! cover-tree contract on arbitrary data.

use crate::tree::{exp2, CoverTree};
use mdbscan_metric::Metric;

impl<'a, P, M: Metric<P>> CoverTree<'a, P, M> {
    /// Verifies the three cover-tree invariants plus bookkeeping sanity.
    ///
    /// * **covering**: every explicit node is within `2^{child.level+1}` of
    ///   its parent;
    /// * **separation**: for every level `i`, the implicit net `T_i` (all
    ///   chains with `node.level ≥ i`, restricted to nodes whose parent
    ///   chain is above `i`) is pairwise `> 2^i` separated;
    /// * **nesting** holds by construction (chains), so it is checked
    ///   indirectly via the level structure: `child.level < parent.level`;
    /// * every stored index appears exactly once.
    ///
    /// Cost is `O(levels · |T_i|²)` distance evaluations — test-only.
    pub fn check_invariants(&self) -> Result<(), String> {
        let Some(root) = self.root else {
            if self.nodes.is_empty() && self.len == 0 {
                return Ok(());
            }
            return Err("rootless tree with nodes".into());
        };

        // Bookkeeping: each stored index exactly once.
        let mut idx = self.indices();
        let n_stored = idx.len();
        idx.sort_unstable();
        idx.dedup();
        if idx.len() != n_stored {
            return Err("duplicate point index stored twice".into());
        }
        if n_stored != self.len {
            return Err(format!("len {} != stored {}", self.len, n_stored));
        }

        // Covering + level ordering via DFS.
        let mut stack = vec![root];
        let mut min_level = i32::MAX;
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id as usize];
            min_level = min_level.min(node.level);
            for &c in &node.children {
                let child = &self.nodes[c as usize];
                if child.level >= node.level {
                    return Err(format!(
                        "child level {} not below parent level {}",
                        child.level, node.level
                    ));
                }
                let d = self.metric.distance(
                    &self.points[node.point as usize],
                    &self.points[child.point as usize],
                );
                let bound = exp2(child.level + 1);
                if d > bound {
                    return Err(format!(
                        "covering violated: d={d} > 2^{}={bound}",
                        child.level + 1
                    ));
                }
                // The stored parent anchor must be the exact edge
                // distance — the query-time pruning bounds rely on it.
                if d != child.parent_dist {
                    return Err(format!(
                        "stale parent_dist: stored {} but d={d}",
                        child.parent_dist
                    ));
                }
            }
        }

        // Separation per level, from the root down to the deepest node.
        let top = self.nodes[root as usize].level;
        let mut level = top;
        while level >= min_level {
            let net = self.extract_net(level);
            for (a, &ci) in net.centers.iter().enumerate() {
                for &cj in net.centers.iter().skip(a + 1) {
                    let d = self.metric.distance(&self.points[ci], &self.points[cj]);
                    if d <= exp2(level) {
                        return Err(format!(
                            "separation violated at level {level}: d({ci},{cj})={d} <= {}",
                            exp2(level)
                        ));
                    }
                }
            }
            level -= 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    #[test]
    fn invariants_hold_on_structured_data() {
        let mut pts = Vec::new();
        for i in 0..15 {
            for j in 0..15 {
                pts.push(vec![i as f64 * 0.9, j as f64 * 1.3]);
            }
        }
        let tree = CoverTree::build(&pts, &Euclidean);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold_with_duplicates_and_outliers() {
        let mut pts = vec![vec![0.0, 0.0]; 5];
        pts.push(vec![1e6, 1e6]);
        pts.push(vec![-1e6, 3.0]);
        for i in 0..40 {
            pts.push(vec![(i % 7) as f64 * 0.01, (i % 5) as f64 * 0.01]);
        }
        let tree = CoverTree::build(&pts, &Euclidean);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold_on_empty_tree() {
        let pts: Vec<Vec<f64>> = vec![];
        let tree = CoverTree::build(&pts, &Euclidean);
        tree.check_invariants().unwrap();
    }
}
