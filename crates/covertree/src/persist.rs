//! Byte codec for [`CoverTreeSkeleton`] — what lets a cached §3.2 tree
//! (whole-input or per-fragment) survive a process restart and
//! re-attach to its point slice with **zero distance evaluations**,
//! exactly like the in-memory skeleton cache it serializes.

use crate::tree::{CoverTreeSkeleton, Node};
use mdbscan_persist::{ByteReader, ByteWriter, PersistError};

impl CoverTreeSkeleton {
    /// Appends the node records (point ids, levels, exact parent
    /// distances, child/duplicate links) plus the root and the cached
    /// length/max-index bookkeeping.
    pub fn encode(&self, out: &mut ByteWriter) {
        out.put_usize(self.nodes.len());
        for node in &self.nodes {
            out.put_u32(node.point);
            out.put_i32(node.level);
            out.put_f64(node.parent_dist);
            out.put_u32s(&node.children);
            out.put_u32s(&node.same);
        }
        match self.root {
            Some(root) => {
                out.put_bool(true);
                out.put_u32(root);
            }
            None => out.put_bool(false),
        }
        out.put_usize(self.len);
        out.put_u32(self.max_index);
    }

    /// Reads a skeleton written by [`CoverTreeSkeleton::encode`],
    /// validating that node links stay in range (a structurally broken
    /// skeleton fails typed instead of panicking at re-attach time).
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, PersistError> {
        let num_nodes = r.get_usize()?;
        let mut nodes = Vec::with_capacity(num_nodes.min(r.remaining() / 16 + 1));
        for _ in 0..num_nodes {
            nodes.push(Node {
                point: r.get_u32()?,
                level: r.get_i32()?,
                parent_dist: r.get_f64()?,
                children: r.get_u32s()?,
                same: r.get_u32s()?,
            });
        }
        let root = if r.get_bool()? {
            Some(r.get_u32()?)
        } else {
            None
        };
        let len = r.get_usize()?;
        let max_index = r.get_u32()?;
        if let Some(root) = root {
            if root as usize >= nodes.len() {
                return Err(r.err(format!("root {root} out of range ({} nodes)", nodes.len())));
            }
        }
        // Recompute the derived invariants instead of trusting the
        // stored copies: `max_index` is what `from_skeleton` bounds the
        // point slice against, and `len` is what caches size decisions
        // on — a mismatch means the node records and the bookkeeping
        // disagree, and accepting the stored values would defer the
        // failure to an index panic at query time.
        let mut count = 0usize;
        let mut max_seen = 0u32;
        for (i, node) in nodes.iter().enumerate() {
            if let Some(&child) = node.children.iter().find(|&&c| c as usize >= nodes.len()) {
                return Err(r.err(format!("node {i} links to missing child {child}")));
            }
            count += 1 + node.same.len();
            max_seen = max_seen.max(node.point);
            for &s in &node.same {
                max_seen = max_seen.max(s);
            }
        }
        if len != count {
            return Err(r.err(format!(
                "stored length {len} disagrees with the {count} points the nodes record"
            )));
        }
        if max_index != max_seen {
            return Err(r.err(format!(
                "stored max point index {max_index} disagrees with recorded maximum {max_seen}"
            )));
        }
        Ok(CoverTreeSkeleton {
            nodes,
            root,
            len,
            max_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoverTree;
    use mdbscan_metric::{CountingMetric, Euclidean};

    #[test]
    fn skeleton_round_trips_and_reattaches_without_evaluations() {
        let pts: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64 * 1.7])
            .collect();
        let skeleton = CoverTree::build(&pts, &Euclidean).into_skeleton();

        let mut w = ByteWriter::new();
        skeleton.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("covertree", &bytes);
        let back = CoverTreeSkeleton::decode(&mut r).unwrap();
        assert!(r.finished());
        assert_eq!(back.len(), skeleton.len());

        // Re-attach the decoded skeleton with a counting metric: zero
        // evaluations, identical query answers.
        let counting = CountingMetric::new(Euclidean);
        let tree = CoverTree::from_skeleton(&pts, &counting, back);
        assert_eq!(counting.count(), 0, "re-attach must evaluate nothing");
        let nn = tree.nearest(&vec![4.2, 3.3]).unwrap();
        let reference = CoverTree::build(&pts, &Euclidean);
        assert_eq!(nn.index, reference.nearest(&vec![4.2, 3.3]).unwrap().index);
    }

    #[test]
    fn out_of_range_links_fail_typed() {
        let pts: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let mut skeleton = CoverTree::build(&pts, &Euclidean).into_skeleton();
        skeleton.nodes[0].children.push(999);
        let mut w = ByteWriter::new();
        skeleton.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("covertree", &bytes);
        assert!(matches!(
            CoverTreeSkeleton::decode(&mut r),
            Err(PersistError::Format { .. })
        ));
    }

    #[test]
    fn bookkeeping_that_disagrees_with_the_nodes_fails_typed() {
        let pts: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let good = CoverTree::build(&pts, &Euclidean).into_skeleton();

        // An understated max_index would defeat from_skeleton's bounds
        // check and panic at query time; decode must reject it.
        let mut skeleton = good.clone();
        skeleton.max_index = 0;
        skeleton.nodes[0].point = 1_000_000;
        let mut w = ByteWriter::new();
        skeleton.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("covertree", &bytes);
        let err = CoverTreeSkeleton::decode(&mut r).unwrap_err();
        let PersistError::Format { reason, .. } = err else {
            panic!("expected Format");
        };
        assert!(reason.contains("max point index"), "got: {reason}");

        // A length that disagrees with the node records is rejected too.
        let mut skeleton = good.clone();
        skeleton.len += 3;
        let mut w = ByteWriter::new();
        skeleton.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new("covertree", &bytes);
        assert!(CoverTreeSkeleton::decode(&mut r).is_err());
    }
}
