//! Cover-tree queries: nearest neighbor, k-nearest, range, and the
//! early-terminating `any_within` predicate used by DBSCAN's merge step.

use crate::tree::{exp2, CoverTree, Neighbor};
use mdbscan_metric::Metric;

/// Max-heap entry for kNN (largest distance on top).
#[derive(PartialEq)]
struct HeapItem {
    distance: f64,
    index: usize,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.distance.total_cmp(&other.distance)
    }
}

impl<'a, P, M: Metric<P>> CoverTree<'a, P, M> {
    #[inline]
    fn node_dist(&self, node: u32, q: &P) -> f64 {
        self.metric
            .distance(&self.points[self.nodes[node as usize].point as usize], q)
    }

    /// Descends the tree keeping every node whose subtree could contain a
    /// point within `keep_radius(best)` of the query, updating `best` via
    /// `visit` for every node representative encountered.
    ///
    /// `visit(node_id, dist)` is called at most once per explicit node,
    /// and is guaranteed to be called for every node whose distance can
    /// influence the answer (children whose parent-anchored triangle
    /// lower bound already exceeds the pruning base are skipped without
    /// a distance evaluation); it returns the new pruning base (e.g. the
    /// current best distance for NN, a fixed `r` for range queries) or
    /// `None` to abort the whole traversal early (used by
    /// [`Self::any_within`]).
    fn descend(&self, query: &P, mut base: f64, mut visit: impl FnMut(&mut f64, u32, f64) -> bool) {
        let Some(root) = self.root else {
            return;
        };
        let d_root = self.node_dist(root, query);
        if !visit(&mut base, root, d_root) {
            return;
        }
        let mut beam: Vec<(u32, f64)> = vec![(root, d_root)];
        let mut level = self.nodes[root as usize].level;
        loop {
            // Next level with explicit children to expand.
            let Some(next) = beam
                .iter()
                .flat_map(|&(q, _)| self.nodes[q as usize].children.iter())
                .map(|&c| self.nodes[c as usize].level)
                .filter(|&l| l < level)
                .max()
            else {
                return;
            };
            level = next;
            // A chain member standing at level `level + 1` has descendants
            // within 2^{level+2}: children at level j are within 2^{j+1} and
            // the geometric tail sums to 2^{level+2}.
            let reach = exp2(level + 2);
            beam.retain(|&(_, d)| d <= base + reach);
            if beam.is_empty() {
                return;
            }
            // A child at `level` reaches descendants within 2^{level+1}
            // of itself (geometric chain tail), so the subtree of child
            // `c` of beam node `q` is entirely farther than
            // `dis(query, q) − dis(q, c) − 2^{level+1}`. When that
            // parent-anchored lower bound already exceeds the pruning
            // base, the child's distance is never evaluated — the
            // answer cannot live there. Results are identical to the
            // unpruned traversal; only the evaluation count drops.
            let reach_child = exp2(level + 1);
            let mut new_nodes: Vec<(u32, f64)> = Vec::new();
            #[allow(clippy::needless_range_loop)]
            // indexing avoids holding a borrow across the mutation below
            for k in 0..beam.len() {
                let (q, dq) = beam[k];
                for &c in &self.nodes[q as usize].children {
                    let node = &self.nodes[c as usize];
                    if node.level == level {
                        if dq - node.parent_dist - reach_child > base {
                            continue;
                        }
                        let d = self.node_dist(c, query);
                        if !visit(&mut base, c, d) {
                            return;
                        }
                        new_nodes.push((c, d));
                    }
                }
            }
            beam.extend(new_nodes);
        }
    }

    /// Exact nearest neighbor of `query` among the stored points, or `None`
    /// when the tree is empty. Ties broken arbitrarily; if the query point
    /// itself is stored, distance 0 is returned.
    pub fn nearest(&self, query: &P) -> Option<Neighbor> {
        let mut best: Option<Neighbor> = None;
        self.descend(query, f64::INFINITY, |base, node, d| {
            if best.is_none_or(|b| d < b.distance) {
                best = Some(Neighbor {
                    index: self.nodes[node as usize].point as usize,
                    distance: d,
                });
                *base = d;
            }
            true
        });
        best
    }

    /// Exact nearest neighbor at distance `≤ bound`, or `None` if every
    /// stored point is farther. Prunes harder than [`Self::nearest`] when a
    /// tight bound is known (DBSCAN Step 3 queries with `bound = ε`).
    pub fn nearest_within(&self, query: &P, bound: f64) -> Option<Neighbor> {
        let mut best: Option<Neighbor> = None;
        self.descend(query, bound, |base, node, d| {
            if d <= *base && best.is_none_or(|b| d < b.distance) {
                best = Some(Neighbor {
                    index: self.nodes[node as usize].point as usize,
                    distance: d,
                });
                *base = d;
            }
            true
        });
        best
    }

    /// Returns some stored point within `radius` of `query` as soon as one
    /// is found, or `None` if none exists.
    ///
    /// This is the predicate behind the paper's Step 2: deciding whether
    /// `BCP(C̃_e, C̃_e') ≤ ε` does not require the exact closest pair, so
    /// the traversal aborts on the first witness.
    pub fn any_within(&self, query: &P, radius: f64) -> Option<Neighbor> {
        let mut found: Option<Neighbor> = None;
        self.descend(query, radius, |_base, node, d| {
            if d <= radius {
                found = Some(Neighbor {
                    index: self.nodes[node as usize].point as usize,
                    distance: d,
                });
                return false;
            }
            true
        });
        found
    }

    /// All stored point indices within `radius` of `query` (inclusive),
    /// duplicates included, appended to `out`. Returns the number found.
    pub fn range(&self, query: &P, radius: f64, out: &mut Vec<usize>) -> usize {
        let before = out.len();
        self.descend(query, radius, |_base, node, d| {
            if d <= radius {
                let n = &self.nodes[node as usize];
                out.push(n.point as usize);
                out.extend(n.same.iter().map(|&s| s as usize));
            }
            true
        });
        out.len() - before
    }

    /// Counts stored points within `radius` of `query`, stopping early once
    /// the count reaches `cap` (DBSCAN core tests only need
    /// `count ≥ MinPts`). Returns `min(count, cap)`.
    pub fn count_within(&self, query: &P, radius: f64, cap: usize) -> usize {
        if cap == 0 {
            return 0;
        }
        let mut count = 0usize;
        self.descend(query, radius, |_base, node, d| {
            if d <= radius {
                count += 1 + self.nodes[node as usize].same.len();
                if count >= cap {
                    return false;
                }
            }
            true
        });
        count.min(cap)
    }

    /// The `k` nearest neighbors of `query`, sorted by increasing distance.
    /// Returns fewer than `k` when the tree is smaller. Duplicate points
    /// count individually.
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let mut heap: std::collections::BinaryHeap<HeapItem> = std::collections::BinaryHeap::new();
        self.descend(query, f64::INFINITY, |base, node, d| {
            let n = &self.nodes[node as usize];
            for &idx in std::iter::once(&n.point).chain(n.same.iter()) {
                if heap.len() < k {
                    heap.push(HeapItem {
                        distance: d,
                        index: idx as usize,
                    });
                } else if d < heap.peek().map_or(f64::INFINITY, |t| t.distance) {
                    heap.pop();
                    heap.push(HeapItem {
                        distance: d,
                        index: idx as usize,
                    });
                }
            }
            if heap.len() == k {
                *base = heap.peek().map_or(f64::INFINITY, |t| t.distance);
            }
            true
        });
        let mut out: Vec<Neighbor> = heap
            .into_iter()
            .map(|h| Neighbor {
                index: h.index,
                distance: h.distance,
            })
            .collect();
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::{Euclidean, Levenshtein};

    fn grid(side: usize) -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..side {
            for j in 0..side {
                v.push(vec![i as f64, j as f64]);
            }
        }
        v
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = grid(12);
        let tree = CoverTree::build(&pts, &Euclidean);
        for q in [
            vec![0.2, 0.1],
            vec![5.6, 7.3],
            vec![11.9, 11.9],
            vec![-3.0, 4.0],
            vec![100.0, 100.0],
        ] {
            let got = tree.nearest(&q).unwrap();
            let want = pts
                .iter()
                .map(|p| Euclidean.distance(p, &q))
                .fold(f64::INFINITY, f64::min);
            assert!(
                (got.distance - want).abs() < 1e-12,
                "query {q:?}: got {} want {want}",
                got.distance
            );
        }
    }

    #[test]
    fn nearest_within_bound() {
        let pts = grid(6);
        let tree = CoverTree::build(&pts, &Euclidean);
        let q = vec![2.4, 2.4];
        let nn = tree.nearest_within(&q, 1.0).unwrap();
        assert!((nn.distance - (0.4f64 * 0.4 + 0.4 * 0.4).sqrt()).abs() < 1e-12);
        assert!(tree.nearest_within(&vec![50.0, 50.0], 1.0).is_none());
    }

    #[test]
    fn any_within_and_range() {
        let pts = grid(8);
        let tree = CoverTree::build(&pts, &Euclidean);
        let q = vec![3.5, 3.5];
        assert!(tree.any_within(&q, 0.8).is_some());
        assert!(tree.any_within(&q, 0.5).is_none());
        let mut out = Vec::new();
        let n = tree.range(&q, 0.75, &mut out);
        assert_eq!(n, 4, "four grid corners at distance ~0.707");
        assert_eq!(out.len(), 4);
        // brute check
        let brute: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| Euclidean.distance(*p, &q) <= 0.75)
            .map(|(i, _)| i)
            .collect();
        let mut got = out.clone();
        got.sort_unstable();
        assert_eq!(got, brute);
    }

    #[test]
    fn count_within_caps() {
        let pts = grid(10);
        let tree = CoverTree::build(&pts, &Euclidean);
        let q = vec![5.0, 5.0];
        assert_eq!(tree.count_within(&q, 1.0, 100), 5); // self + 4 axis neighbors
        assert_eq!(tree.count_within(&q, 1.0, 3), 3);
        assert_eq!(tree.count_within(&q, 1.0, 0), 0);
        assert_eq!(tree.count_within(&q, 1e9, usize::MAX - 1), 100);
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = grid(9);
        let tree = CoverTree::build(&pts, &Euclidean);
        let q = vec![4.3, 3.8];
        for k in [1usize, 3, 7, 20, 81, 100] {
            let got = tree.knn(&q, k);
            let mut dists: Vec<f64> = pts.iter().map(|p| Euclidean.distance(p, &q)).collect();
            dists.sort_by(f64::total_cmp);
            let want: Vec<f64> = dists.into_iter().take(k).collect();
            assert_eq!(got.len(), want.len().min(pts.len()), "k={k}");
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.distance - w).abs() < 1e-9, "k={k}");
            }
        }
        assert!(tree.knn(&q, 0).is_empty());
    }

    #[test]
    fn knn_counts_duplicates() {
        let pts = vec![vec![0.0], vec![0.0], vec![0.0], vec![5.0]];
        let tree = CoverTree::build(&pts, &Euclidean);
        let got = tree.knn(&vec![0.1], 3);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|n| n.distance < 1.0));
    }

    #[test]
    fn works_with_strings() {
        let words: Vec<String> = [
            "cluster", "clusters", "cloister", "banana", "bandana", "dbscan",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let tree = CoverTree::build(&words, &Levenshtein);
        let nn = tree.nearest(&"clustering".to_string()).unwrap();
        assert_eq!(nn.distance, 3.0); // "cluster" and "clusters" tie at 3
        let mut out = Vec::new();
        tree.range(&"banan".to_string(), 2.0, &mut out);
        let found: Vec<&str> = out.iter().map(|&i| words[i].as_str()).collect();
        assert!(found.contains(&"banana"));
        assert!(found.contains(&"bandana"));
        assert!(!found.contains(&"dbscan"));
    }

    #[test]
    fn empty_tree_queries() {
        let pts: Vec<Vec<f64>> = vec![];
        let tree = CoverTree::build(&pts, &Euclidean);
        assert!(tree.nearest(&vec![0.0]).is_none());
        assert!(tree.any_within(&vec![0.0], 10.0).is_none());
        assert!(tree.knn(&vec![0.0], 3).is_empty());
        let mut out = Vec::new();
        assert_eq!(tree.range(&vec![0.0], 10.0, &mut out), 0);
    }
}
