//! Net extraction: reading an `r`-net off a cover-tree level.
//!
//! Section 3.2 of the paper: when the *whole* input (outliers included) has
//! low doubling dimension, the `ε/2`-net that Algorithm 1 would construct
//! can instead be read off level `i₀` of a cover tree built once over `X`,
//! giving the `O(n log Φ · t_dis)` bound of Theorem 1.
//!
//! One care point: with the standard cover-tree invariants, a point is
//! within `2^{i+1}` (not `2^i`) of its level-`i` ancestor — the chain
//! `2^i + 2^{i−1} + …` telescopes to `2^{i+1}`. The paper's prose treats
//! `T_{i₀}` as an `r̄`-net with `r̄ = 2^{i₀}`; we therefore expose the
//! *actual* covering radius and the §3.2 pipeline in `mdbscan-core` picks
//! `i₀ = ⌊log₂(ε/2)⌋ − 1` so that the covering radius `2^{i₀+1} ≤ ε/2`
//! matches the requirement of the exact pipeline (Remark 5: any
//! `r̄ ≤ ε/2` works).

use crate::tree::{exp2, CoverTree};
use mdbscan_metric::Metric;

/// An `r`-net extracted from a cover-tree level: centers, per-point
/// assignment, and the guaranteed covering radius.
#[derive(Debug, Clone)]
pub struct NetExtraction {
    /// Point indices (into the backing slice) of the net centers — the
    /// implicit level-`i₀` nodes, i.e. every explicit node with
    /// `level ≥ i₀`.
    pub centers: Vec<usize>,
    /// For every stored point index, the position in `centers` of its
    /// net center (its lowest ancestor at `level ≥ i₀`).
    /// Indexed by point index; points not in the tree hold `u32::MAX`.
    pub assignment: Vec<u32>,
    /// Upper bound on `dis(point, its center)`: `2^{i₀+1}`.
    pub cover_radius: f64,
    /// Lower bound on pairwise center separation: `2^{i₀}`.
    pub separation: f64,
}

impl<'a, P, M: Metric<P>> CoverTree<'a, P, M> {
    /// Extracts the implicit level-`level` net `T_level`.
    ///
    /// Centers are all chains alive at `level` (explicit nodes with
    /// `node.level ≥ level`); every stored point is assigned to the center
    /// whose subtree contains it, at distance ≤ `2^{level+1}`.
    ///
    /// The `assignment` vector is sized to the backing slice; entries for
    /// points that were never inserted are `u32::MAX`.
    pub fn extract_net(&self, level: i32) -> NetExtraction {
        let mut centers = Vec::new();
        let mut assignment = vec![u32::MAX; self.points.len()];
        if let Some(root) = self.root {
            // DFS carrying the current center: a node starts a new center
            // when its level is >= the target level; otherwise it belongs
            // to its parent's center.
            let mut stack: Vec<(u32, u32)> = Vec::new(); // (node, center pos)
            let root_center = centers.len() as u32;
            centers.push(self.nodes[root as usize].point as usize);
            stack.push((root, root_center));
            while let Some((id, center)) = stack.pop() {
                let node = &self.nodes[id as usize];
                assignment[node.point as usize] = center;
                for &s in &node.same {
                    assignment[s as usize] = center;
                }
                for &c in &node.children {
                    let child = &self.nodes[c as usize];
                    if child.level >= level {
                        let pos = centers.len() as u32;
                        centers.push(child.point as usize);
                        stack.push((c, pos));
                    } else {
                        stack.push((c, center));
                    }
                }
            }
        }
        NetExtraction {
            centers,
            assignment,
            cover_radius: exp2(level + 1),
            separation: exp2(level),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::Euclidean;

    fn line(n: usize, step: f64) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 * step]).collect()
    }

    #[test]
    fn net_covers_and_separates() {
        let pts = line(100, 1.0);
        let tree = CoverTree::build(&pts, &Euclidean);
        for level in [-1, 0, 1, 2, 3, 4] {
            let net = tree.extract_net(level);
            assert!(!net.centers.is_empty(), "level {level}");
            // covering
            for (i, p) in pts.iter().enumerate() {
                let c = net.assignment[i];
                assert_ne!(c, u32::MAX, "point {i} unassigned at level {level}");
                let center = &pts[net.centers[c as usize]];
                let d = Euclidean.distance(center, p);
                assert!(
                    d <= net.cover_radius + 1e-12,
                    "level {level}: point {i} at {d} > cover {}",
                    net.cover_radius
                );
            }
            // separation (the chains alive at `level` form a 2^level packing)
            for (a, &ci) in net.centers.iter().enumerate() {
                for &cj in net.centers.iter().skip(a + 1) {
                    let d = Euclidean.distance(&pts[ci], &pts[cj]);
                    assert!(
                        d > net.separation - 1e-12,
                        "level {level}: centers {ci},{cj} at {d} <= {}",
                        net.separation
                    );
                }
            }
        }
    }

    #[test]
    fn coarse_level_is_single_center() {
        let pts = line(32, 1.0);
        let tree = CoverTree::build(&pts, &Euclidean);
        let top = tree.root_level().unwrap();
        let net = tree.extract_net(top + 1);
        assert_eq!(net.centers.len(), 1);
        assert!(net.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn fine_level_every_point_is_center() {
        let pts = line(16, 1.0);
        let tree = CoverTree::build(&pts, &Euclidean);
        let net = tree.extract_net(-40);
        assert_eq!(net.centers.len(), 16);
    }

    #[test]
    fn duplicates_share_assignment() {
        let pts = vec![vec![0.0], vec![0.0], vec![8.0], vec![8.0]];
        let tree = CoverTree::build(&pts, &Euclidean);
        let net = tree.extract_net(0);
        assert_eq!(net.assignment[0], net.assignment[1]);
        assert_eq!(net.assignment[2], net.assignment[3]);
        assert_ne!(net.assignment[0], net.assignment[2]);
    }

    #[test]
    fn subset_tree_leaves_rest_unassigned() {
        let pts = line(10, 1.0);
        let tree = CoverTree::from_indices(&pts, &Euclidean, [0usize, 2, 4]);
        let net = tree.extract_net(-10);
        assert_eq!(net.assignment[1], u32::MAX);
        assert_ne!(net.assignment[0], u32::MAX);
    }
}
