//! Edit-distance text workloads — the stand-in for the paper's COLA /
//! AG News / MRPC / MNLI experiments, where clustering runs in the
//! non-Euclidean metric space of strings under Levenshtein distance.

use mdbscan_metric::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification for [`string_clusters`].
#[derive(Debug, Clone)]
pub struct StringSpec {
    /// Total inlier count.
    pub n: usize,
    /// Number of clusters (seed strings).
    pub clusters: usize,
    /// Length of each seed string.
    pub seed_len: usize,
    /// Maximum number of random edits applied to a member (each member
    /// gets `1..=max_edits` edits, so clusters have edit-distance radius
    /// `≤ max_edits`).
    pub max_edits: usize,
    /// Alphabet to draw characters from.
    pub alphabet: &'static [u8],
    /// Fraction of `n` added as fully random outlier strings, label `-1`.
    pub outlier_frac: f64,
}

impl Default for StringSpec {
    fn default() -> Self {
        Self {
            n: 500,
            clusters: 5,
            seed_len: 24,
            max_edits: 3,
            alphabet: b"abcdefghijklmnopqrstuvwxyz",
            outlier_frac: 0.02,
        }
    }
}

fn random_string<R: Rng>(rng: &mut R, len: usize, alphabet: &[u8]) -> String {
    (0..len)
        .map(|_| alphabet[rng.random_range(0..alphabet.len())] as char)
        .collect()
}

fn apply_edit<R: Rng>(rng: &mut R, s: &mut Vec<char>, alphabet: &[u8]) {
    let c = alphabet[rng.random_range(0..alphabet.len())] as char;
    match rng.random_range(0..3) {
        0 if !s.is_empty() => {
            // substitute
            let i = rng.random_range(0..s.len());
            s[i] = c;
        }
        1 if !s.is_empty() => {
            // delete
            let i = rng.random_range(0..s.len());
            s.remove(i);
        }
        _ => {
            // insert
            let i = rng.random_range(0..=s.len());
            s.insert(i, c);
        }
    }
}

/// Clusters of strings: `clusters` random seed strings; each member is its
/// cluster's seed with `1..=max_edits` random edits (so intra-cluster edit
/// distance is `≤ 2·max_edits` by the triangle inequality); outliers are
/// fresh random strings (with high probability far from every seed).
pub fn string_clusters(spec: &StringSpec, seed: u64) -> Dataset<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let seeds: Vec<String> = (0..spec.clusters)
        .map(|_| random_string(&mut rng, spec.seed_len, spec.alphabet))
        .collect();
    let mut points = Vec::with_capacity(spec.n);
    let mut labels = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let k = i % spec.clusters;
        let mut chars: Vec<char> = seeds[k].chars().collect();
        let edits = rng.random_range(1..=spec.max_edits.max(1));
        for _ in 0..edits {
            apply_edit(&mut rng, &mut chars, spec.alphabet);
        }
        points.push(chars.into_iter().collect());
        labels.push(k as i32);
    }
    let outliers = ((spec.n as f64) * spec.outlier_frac) as usize;
    for _ in 0..outliers {
        // Outliers use a different length band to stay far in edit
        // distance.
        let len = spec.seed_len * 2 + rng.random_range(0..spec.seed_len);
        points.push(random_string(&mut rng, len, spec.alphabet));
        labels.push(-1);
    }
    Dataset::with_labels("strings", points, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::{Levenshtein, Metric};

    #[test]
    fn members_stay_near_their_seed() {
        let spec = StringSpec {
            n: 100,
            clusters: 4,
            seed_len: 20,
            max_edits: 3,
            outlier_frac: 0.1,
            ..Default::default()
        };
        let ds = string_clusters(&spec, 17);
        assert_eq!(ds.len(), 110);
        let labels = ds.labels().unwrap();
        // members of the same cluster are within 2*max_edits of each other
        for i in 0..100 {
            for j in (i + 1)..100 {
                if labels[i] == labels[j] {
                    let d = Levenshtein.distance(&ds.points()[i], &ds.points()[j]);
                    assert!(d <= 6.0, "same-cluster distance {d}");
                }
            }
        }
        // outliers are far from every inlier (length gap >= seed_len)
        for i in 100..110 {
            for j in 0..100 {
                let d = Levenshtein.distance(&ds.points()[i], &ds.points()[j]);
                assert!(d > 6.0, "outlier {i} too close ({d})");
            }
        }
    }

    #[test]
    fn deterministic() {
        let spec = StringSpec::default();
        assert_eq!(
            string_clusters(&spec, 1).points(),
            string_clusters(&spec, 1).points()
        );
        assert_ne!(
            string_clusters(&spec, 1).points(),
            string_clusters(&spec, 2).points()
        );
    }

    #[test]
    fn edit_helper_changes_string() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s: Vec<char> = "hello".chars().collect();
        for _ in 0..10 {
            apply_edit(&mut rng, &mut s, b"xyz");
        }
        let out: String = s.iter().collect();
        assert_ne!(out, "hello");
    }
}
