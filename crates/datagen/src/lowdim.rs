//! Low-dimensional (2-D/3-D) million-scale Gaussian workloads — the
//! stand-ins for the paper's big planar tables (HT Sensor, Household,
//! and the Fig. 6 scalability sweeps), sized for the grid candidate
//! index (`mdbscan_grid`): millions of coordinate points in a dimension
//! low enough that ε-aligned cells stay meaningful.
//!
//! [`blobs`](crate::blobs) already covers arbitrary ambient dimension;
//! this generator differs in its defaults (100 000 points, not 1 000),
//! its dimension gate (2 or 3 only — the grid's useful range), and its
//! denser cluster layout so large `n` still produces DBSCAN-nontrivial
//! structure at small ε.

use mdbscan_metric::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::randutil::{normal, uniform_vec};

/// Specification for [`lowdim_blobs`].
#[derive(Debug, Clone)]
pub struct LowDimSpec {
    /// Total inlier count (split round-robin across clusters).
    pub n: usize,
    /// Ambient dimension — must be 2 or 3 (the grid index's sweet spot).
    pub dim: usize,
    /// Number of Gaussian clusters.
    pub clusters: usize,
    /// Per-coordinate standard deviation of each cluster.
    pub std: f64,
    /// Fraction of additional uniform noise points (of `n`), labeled `-1`.
    pub noise_frac: f64,
    /// Half side length of the box cluster centers are drawn from; noise
    /// covers the 1.25× enclosing box.
    pub extent: f64,
}

impl Default for LowDimSpec {
    fn default() -> Self {
        Self {
            n: 100_000,
            dim: 2,
            clusters: 10,
            std: 1.0,
            noise_frac: 0.02,
            extent: 100.0,
        }
    }
}

/// Isotropic Gaussian mixture in 2-D or 3-D with uniform background
/// noise, deterministic per seed.
///
/// Cluster centers are drawn uniformly from `[-extent, extent]^dim`,
/// rejecting any center closer than `8·std` to an earlier one (up to a
/// bounded number of attempts) so ground-truth clusters are separable
/// at `ε` a few multiples of `std`. Inliers are assigned round-robin;
/// noise points are uniform over the 1.25× enclosing box and labeled
/// `-1`.
///
/// Panics if `spec.dim` is not 2 or 3, or `spec.clusters` is 0.
pub fn lowdim_blobs(spec: &LowDimSpec, seed: u64) -> Dataset<Vec<f64>> {
    assert!(
        spec.dim == 2 || spec.dim == 3,
        "lowdim_blobs supports dim 2 or 3, got {}",
        spec.dim
    );
    assert!(spec.clusters > 0, "lowdim_blobs needs at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let b = spec.extent;
    let min_sep = 8.0 * spec.std;
    let mut centers: Vec<Vec<f64>> = Vec::new();
    let mut attempts = 0;
    while centers.len() < spec.clusters {
        let c = uniform_vec(&mut rng, spec.dim, -b, b);
        attempts += 1;
        let ok = centers.iter().all(|o| {
            let d2: f64 = o.iter().zip(c.iter()).map(|(x, y)| (x - y).powi(2)).sum();
            d2.sqrt() >= min_sep
        });
        if ok || attempts > 2000 {
            centers.push(c);
        }
    }
    let mut points = Vec::with_capacity(spec.n);
    let mut labels = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let k = i % spec.clusters;
        let p: Vec<f64> = centers[k]
            .iter()
            .map(|&c| c + spec.std * normal(&mut rng))
            .collect();
        points.push(p);
        labels.push(k as i32);
    }
    let noise = ((spec.n as f64) * spec.noise_frac) as usize;
    for _ in 0..noise {
        points.push(uniform_vec(&mut rng, spec.dim, -1.25 * b, 1.25 * b));
        labels.push(-1);
    }
    Dataset::with_labels("lowdim_blobs", points, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::validate_vectors;

    #[test]
    fn default_is_100k_2d() {
        let spec = LowDimSpec {
            n: 5_000, // keep the unit test fast; the default n is exercised by the bench
            ..Default::default()
        };
        assert_eq!(LowDimSpec::default().n, 100_000);
        let ds = lowdim_blobs(&spec, 7);
        assert_eq!(ds.len(), 5_000 + 100);
        assert!(ds.points().iter().all(|p| p.len() == 2));
        validate_vectors(ds.points()).unwrap();
    }

    #[test]
    fn three_d_and_determinism() {
        let spec = LowDimSpec {
            n: 2_000,
            dim: 3,
            clusters: 4,
            ..Default::default()
        };
        let a = lowdim_blobs(&spec, 1);
        let b = lowdim_blobs(&spec, 1);
        assert_eq!(a.points(), b.points());
        assert_ne!(a.points(), lowdim_blobs(&spec, 2).points());
        assert!(a.points().iter().all(|p| p.len() == 3));
    }

    #[test]
    fn noise_labels_are_negative() {
        let spec = LowDimSpec {
            n: 1_000,
            noise_frac: 0.1,
            ..Default::default()
        };
        let ds = lowdim_blobs(&spec, 3);
        let labels = ds.labels().unwrap();
        assert_eq!(labels.iter().filter(|&&l| l == -1).count(), 100);
    }

    #[test]
    #[should_panic(expected = "dim 2 or 3")]
    fn rejects_high_dim() {
        lowdim_blobs(
            &LowDimSpec {
                dim: 4,
                ..Default::default()
            },
            0,
        );
    }
}
