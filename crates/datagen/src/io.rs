//! Minimal CSV import/export for datasets, so the library and the
//! experiment harness can run on user-supplied data (and so Fig. 5's
//! cluster dumps can be re-read). No external CSV crate: the format is
//! plain `f64` columns, optional trailing integer `label` column,
//! optional `#`-prefixed comments, header auto-detected.

use std::io::{BufRead, Write};

use mdbscan_metric::Dataset;

/// Writes `dataset` as CSV: one row per point, coordinates then (when
/// present) the ground-truth label as the last column.
pub fn write_csv<W: Write>(dataset: &Dataset<Vec<f64>>, mut out: W) -> std::io::Result<()> {
    let d = dataset.points().first().map_or(0, Vec::len);
    let header: Vec<String> = (0..d)
        .map(|i| format!("x{i}"))
        .chain(dataset.labels().map(|_| "label".to_string()))
        .collect();
    writeln!(out, "{}", header.join(","))?;
    for (i, p) in dataset.points().iter().enumerate() {
        let mut row: Vec<String> = p.iter().map(|v| format!("{v}")).collect();
        if let Some(labels) = dataset.labels() {
            row.push(labels[i].to_string());
        }
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// Reads a CSV of `f64` columns into a dataset.
///
/// * lines starting with `#` and blank lines are skipped;
/// * a first row that fails to parse as numbers is treated as a header;
/// * when `labeled` is true the last column is taken as an integer
///   ground-truth label (`-1` = noise).
///
/// Returns an error on ragged rows or unparsable values.
pub fn read_csv<R: BufRead>(
    name: impl Into<String>,
    input: R,
    labeled: bool,
) -> std::io::Result<Dataset<Vec<f64>>> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    let mut points: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<i32> = Vec::new();
    let mut width: Option<usize> = None;
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let parsed: Result<Vec<f64>, _> = fields.iter().map(|f| f.parse::<f64>()).collect();
        let Ok(mut values) = parsed else {
            if points.is_empty() && width.is_none() {
                continue; // header row
            }
            return Err(bad(format!("line {}: unparsable value", lineno + 1)));
        };
        let label = if labeled {
            let l = values
                .pop()
                .ok_or_else(|| bad(format!("line {}: empty row", lineno + 1)))?;
            if l.fract() != 0.0 {
                return Err(bad(format!("line {}: non-integer label {l}", lineno + 1)));
            }
            Some(l as i32)
        } else {
            None
        };
        match width {
            None => width = Some(values.len()),
            Some(w) if w != values.len() => {
                return Err(bad(format!(
                    "line {}: expected {w} coordinates, got {}",
                    lineno + 1,
                    values.len()
                )));
            }
            _ => {}
        }
        points.push(values);
        if let Some(l) = label {
            labels.push(l);
        }
    }
    Ok(if labeled {
        Dataset::with_labels(name, points, labels)
    } else {
        Dataset::new(name, points)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_labels() {
        let ds = crate::moons(50, 0.05, 0.1, 3);
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv("moons", buf.as_slice(), true).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.points(), ds.points());
        assert_eq!(back.labels(), ds.labels());
    }

    #[test]
    fn round_trip_without_labels() {
        let ds = Dataset::new("raw", vec![vec![1.5, -2.0], vec![0.0, 3.25]]);
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv("raw", buf.as_slice(), false).unwrap();
        assert_eq!(back.points(), ds.points());
        assert!(back.labels().is_none());
    }

    #[test]
    fn comments_blanks_and_headers_are_skipped() {
        let text = "# a comment\nx0,x1,label\n\n1.0,2.0,0\n3.0,4.0,-1\n";
        let ds = read_csv("t", text.as_bytes(), true).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.labels().unwrap(), &[0, -1]);
        assert_eq!(ds.points()[1], vec![3.0, 4.0]);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(read_csv("t", "1.0,2.0\n3.0\n".as_bytes(), false).is_err());
        // (an unparsable *first* row is a header by design; later rows must parse)
        assert!(read_csv("t", "1.0,2.0\n1.0,oops\n".as_bytes(), false).is_err());
        assert!(
            read_csv("t", "1.0,2.5\n".as_bytes(), true).is_err(),
            "fractional label"
        );
        let empty = read_csv("t", "# nothing\n".as_bytes(), false).unwrap();
        assert!(empty.is_empty());
    }
}
