//! Small deterministic sampling helpers (no external distribution crate:
//! Box–Muller over `rand`'s uniform source keeps the dependency set to the
//! approved list).

use rand::Rng;

/// One standard normal sample via Box–Muller (delegates to the shared
/// shim sampler so datagen and `mdbscan_rp` consume the identical
/// uniform-draw schedule for a given seed).
pub(crate) fn normal<R: Rng>(rng: &mut R) -> f64 {
    rand::distr::standard_normal(rng)
}

/// A standard normal vector of dimension `d`.
pub(crate) fn normal_vec<R: Rng>(rng: &mut R, d: usize) -> Vec<f64> {
    (0..d).map(|_| normal(rng)).collect()
}

/// A uniform vector in the axis-aligned box `[lo, hi]^d`.
pub(crate) fn uniform_vec<R: Rng>(rng: &mut R, d: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..d).map(|_| rng.random_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn vectors_have_requested_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(normal_vec(&mut rng, 7).len(), 7);
        let u = uniform_vec(&mut rng, 5, -3.0, 3.0);
        assert_eq!(u.len(), 5);
        assert!(u.iter().all(|&x| (-3.0..3.0).contains(&x)));
    }
}
