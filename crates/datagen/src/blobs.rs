//! Gaussian blob mixtures in arbitrary ambient dimension — the stand-ins
//! for the paper's small/medium UCI tables (Cancer 32-d, Biodeg 41-d,
//! Arrhythmia 262-d).

use mdbscan_metric::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::randutil::{normal, uniform_vec};

/// Specification for [`blobs`].
#[derive(Debug, Clone)]
pub struct BlobSpec {
    /// Total inlier count (split evenly across clusters).
    pub n: usize,
    /// Ambient dimension.
    pub dim: usize,
    /// Number of Gaussian clusters.
    pub clusters: usize,
    /// Per-coordinate standard deviation of each cluster.
    pub std: f64,
    /// Half side length of the box cluster centers are drawn from.
    pub center_box: f64,
    /// Fraction of additional uniform outliers (of `n`), labeled `-1`.
    pub outlier_frac: f64,
}

impl Default for BlobSpec {
    fn default() -> Self {
        Self {
            n: 1000,
            dim: 2,
            clusters: 3,
            std: 1.0,
            center_box: 20.0,
            outlier_frac: 0.01,
        }
    }
}

/// Isotropic Gaussian mixture with `spec.clusters` components whose
/// centers are drawn uniformly from the box (rejecting centers closer than
/// `6·std` so the ground-truth clusters are actually separable), plus
/// uniform outliers over a 1.5× enclosing box.
pub fn blobs(spec: &BlobSpec, seed: u64) -> Dataset<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let b = spec.center_box;
    let mut centers: Vec<Vec<f64>> = Vec::new();
    let min_sep = 6.0 * spec.std;
    let mut attempts = 0;
    while centers.len() < spec.clusters {
        let c = uniform_vec(&mut rng, spec.dim, -b, b);
        attempts += 1;
        let ok = centers.iter().all(|o| {
            let d2: f64 = o.iter().zip(c.iter()).map(|(x, y)| (x - y).powi(2)).sum();
            d2.sqrt() >= min_sep
        });
        if ok || attempts > 1000 {
            centers.push(c);
        }
    }
    let mut points = Vec::with_capacity(spec.n);
    let mut labels = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let k = i % spec.clusters;
        let p: Vec<f64> = centers[k]
            .iter()
            .map(|&c| c + spec.std * normal(&mut rng))
            .collect();
        points.push(p);
        labels.push(k as i32);
    }
    let outliers = ((spec.n as f64) * spec.outlier_frac) as usize;
    for _ in 0..outliers {
        points.push(uniform_vec(&mut rng, spec.dim, -1.5 * b, 1.5 * b));
        labels.push(-1);
    }
    Dataset::with_labels("blobs", points, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdbscan_metric::{validate_vectors, Euclidean, Metric};

    #[test]
    fn blob_structure() {
        let spec = BlobSpec {
            n: 600,
            dim: 8,
            clusters: 3,
            std: 0.5,
            center_box: 30.0,
            outlier_frac: 0.05,
        };
        let ds = blobs(&spec, 42);
        assert_eq!(ds.len(), 600 + 30);
        validate_vectors(ds.points()).unwrap();
        let labels = ds.labels().unwrap();
        // every inlier is within a few std of its cluster mates' centroid
        for k in 0..3 {
            let members: Vec<&Vec<f64>> = ds
                .points()
                .iter()
                .zip(labels)
                .filter(|(_, &l)| l == k)
                .map(|(p, _)| p)
                .collect();
            assert_eq!(members.len(), 200);
            let centroid: Vec<f64> = (0..8)
                .map(|d| members.iter().map(|p| p[d]).sum::<f64>() / members.len() as f64)
                .collect();
            for p in members {
                assert!(
                    Euclidean.distance(p, &centroid) < 0.5 * 8.0,
                    "blob member strayed"
                );
            }
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let spec = BlobSpec::default();
        assert_eq!(blobs(&spec, 1).points(), blobs(&spec, 1).points());
        assert_ne!(blobs(&spec, 1).points(), blobs(&spec, 2).points());
    }

    #[test]
    fn zero_outliers() {
        let spec = BlobSpec {
            outlier_frac: 0.0,
            ..Default::default()
        };
        let ds = blobs(&spec, 3);
        assert!(ds.labels().unwrap().iter().all(|&l| l >= 0));
    }
}
